"""Benchmark: regenerate Figure 17 (integration-feature ablation)."""

from benchmarks.conftest import record
from repro.experiments import figure17


def test_figure17(benchmark):
    result = benchmark(figure17.run)
    record("figure17", result.format_table())
    # Headlines: every feature helps at every density, and TEPL roughly
    # doubles performance at 5% density.
    for values in result.speedups.values():
        assert values == sorted(values)
    assert 1.7 <= result.tepl_gain_at(0.05) <= 2.6
