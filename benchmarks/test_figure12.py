"""Benchmark: regenerate Figure 12 (compressed-GeMM speedups, DDR)."""

from benchmarks.conftest import record
from repro.experiments import figure12


def test_figure12(benchmark):
    result = benchmark(figure12.run)
    record("figure12", result.format_table())
    # Headline: DECA gains appear only at high compression factors and
    # reach ~1.7x over software.
    assert 1.3 <= result.max_deca_over_software <= 2.0
    assert result.speedups[0].deca_over_software < 1.1
