"""Benchmark: the full headline-claim validation run."""

from benchmarks.conftest import record
from repro.experiments import validation


def test_validate_all_claims(benchmark):
    report = benchmark.pedantic(validation.run, rounds=1, iterations=1)
    record("validation", report.format_table())
    assert report.all_passed
