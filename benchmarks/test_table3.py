"""Benchmark: regenerate Table 3 (component utilisation)."""

from benchmarks.conftest import record
from repro.experiments import table3
from repro.experiments.paper_reference import TABLE3_UTILIZATION


def test_table3(benchmark):
    result = benchmark(table3.run)
    record("table3", result.format_table())
    for (density, engine), paper in TABLE3_UTILIZATION.items():
        ours = result.reports[(density, engine)].as_percentages()
        for column in ("MEM", "TMUL", "DEC"):
            assert abs(ours[column] - paper[column]) <= 8, (
                density, engine, column,
            )
