"""Benchmark: regenerate Figure 13 (compressed-GeMM speedups, HBM)."""

from benchmarks.conftest import record
from repro.experiments import figure13


def test_figure13(benchmark):
    result = benchmark(figure13.run)
    record("figure13", result.format_table())
    # Headline: DECA speedups over software reach ~4x, and DECA tracks
    # the roofline-optimal speedup.
    assert 3.3 <= result.max_deca_over_software <= 4.8
    for row in result.speedups:
        assert row.deca >= 0.8 * row.optimal
