"""Benchmark: regenerate Figure 14 (TFLOPS vs active core count, DDR)."""

from benchmarks.conftest import record
from repro.experiments import figure14


def test_figure14(benchmark):
    result = benchmark(figure14.run)
    record("figure14", result.format_table())
    # Headline: 16 DECA-augmented cores beat 56 conventional cores.
    assert result.deca_cores_matching_full_software() <= 16
