"""Benchmark: regenerate the Section 8 area estimate."""

from benchmarks.conftest import record
from repro.experiments import area


def test_area(benchmark):
    result = benchmark(area.run)
    record("area", result.format_table())
    assert abs(result.breakdown.total - 2.51) < 0.05
    assert result.breakdown.die_overhead() < 0.002
