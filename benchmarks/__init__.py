"""Benchmark suite: one regeneration harness per paper table/figure."""
