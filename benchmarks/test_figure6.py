"""Benchmark: regenerate Figure 6 (BORD with 4x vector throughput)."""

from benchmarks.conftest import record
from repro.experiments import figure6


def test_figure6(benchmark):
    result = benchmark(figure6.run)
    record("figure6", result.format_table())
    # Headline: even 4x VOS leaves at least one kernel VEC-bound.
    assert len(result.still_vec_bound()) >= 1
    assert result.vec_region_scaled < result.vec_region_baseline
