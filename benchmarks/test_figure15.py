"""Benchmark: regenerate Figure 15 (DECA vs scaled CPU vector resources)."""

from benchmarks.conftest import record
from repro.experiments import figure15


def test_figure15(benchmark):
    result = benchmark(figure15.run)
    record("figure15", result.format_table())
    # Headline: conventional vector scaling stays far below DECA.
    assert result.deca_wins_everywhere()
    worst_gap = min(
        row.deca / max(row.more_avx_units, row.wider_avx_units)
        for row in result.rows
    )
    assert worst_gap >= 1.0
