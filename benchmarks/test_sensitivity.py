"""Benchmark: calibration-constant sensitivity analysis."""

from benchmarks.conftest import record
from repro.experiments import sensitivity


def test_sensitivity(benchmark):
    result = benchmark.pedantic(sensitivity.run, rounds=1, iterations=1)
    record("sensitivity", result.format_table())
    assert result.max_headline_shift() < 0.25
