"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures, times the
regeneration with pytest-benchmark, prints the rows/series next to the
paper's reported values, and persists them under ``benchmarks/output/``.
"""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def record(name: str, text: str) -> None:
    """Print a regenerated table and persist it to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
