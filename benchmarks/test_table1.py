"""Benchmark: regenerate Table 1 (FC-GeMM fraction of next-token time)."""

from benchmarks.conftest import record
from repro.experiments import table1


def test_table1(benchmark):
    result = benchmark(table1.run)
    record("table1", result.format_table())
    # Headline: GeMMs dominate — >95% on DDR, 85-90% on HBM.
    assert all(
        f > 0.94 for (mem, _t, _b), f in result.fractions.items()
        if mem == "DDR"
    )
    assert all(
        0.84 < f < 0.92 for (mem, _t, _b), f in result.fractions.items()
        if mem == "HBM"
    )
