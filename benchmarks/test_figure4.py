"""Benchmark: regenerate Figure 4 (Roof-Surface plot and R-L/R-S table)."""

from benchmarks.conftest import record
from repro.experiments import figure4
from repro.experiments.paper_reference import FIGURE4B_TFLOPS


def test_figure4(benchmark):
    result = benchmark(figure4.run)
    record("figure4", result.format_table())
    # The Roof-Surface predictions must track the paper's within 10%.
    for name, (_rl, paper_rs, _real) in FIGURE4B_TFLOPS.items():
        ours = result.comparison[name][1]
        assert abs(ours - paper_rs) / paper_rs < 0.10, name
    # The 3-D surface grid is well-formed.
    x, y, z = result.surface
    assert x.shape == y.shape == z.shape
