"""Benchmark: the batch-size robustness claim of Section 9.1."""

from benchmarks.conftest import record
from repro.experiments import batch_sweep


def test_batch_sweep(benchmark):
    result = benchmark(batch_sweep.run)
    record("batch_sweep", result.format_table())
    # "We repeated this analysis for batch sizes of up to N=16 and
    # observed similar results": the max DECA/SW ratio moves <10%.
    assert result.max_ratio_spread() < 0.10
