"""Benchmark: regenerate Figure 5 (BORDs for HBM and DDR)."""

from benchmarks.conftest import record
from repro.experiments import figure5


def test_figure5(benchmark):
    hbm, ddr = benchmark(figure5.run)
    record("figure5", hbm.format_table() + "\n\n" + ddr.format_table())
    # Headline: most kernels VEC-bound on HBM, MEM-bound on DDR.
    assert len(hbm.vec_bound_names()) >= 8
    assert len(ddr.vec_bound_names()) <= 3
