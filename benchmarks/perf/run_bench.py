"""Measure the simulator's hot paths and write ``BENCH_perf.json``.

Each benchmark times an "after" path (the vectorized/cached engines) and,
where a retained per-tile reference exists, the "before" path (the loop
implementation the vectorized engine replaced). ``seed_s`` fields record
the original seed-commit (c229933) implementation measured on the same
container when this harness was introduced — the loop references are
already leaner than the seed loops, so speedups against ``seed_s`` are
the honest end-to-end improvement.

``figure12_sweep_parallel`` tracks the process-pool sweep executor
(:mod:`repro.experiments.parallel`): the full (system, scheme, engine)
grid is timed cold at 1, 2, and 4 workers, and the entry records the
wall-clock at each width plus ``parallel_speedup_4w`` and the
``cpu_count`` it was measured on — scaling is hardware-bound, so the
ratio is only comparable across runs on the same core count.

``dse_warm_cache`` tracks the disk-backed cache tier
(:mod:`repro.sim.diskcache`): the full 48-cell grid is timed cold (empty
cache directory, every cell simulated and spilled) and warm (in-memory
cache cleared, every cell replayed from disk — the restart scenario).
The entry records both times, the ``warm_speedup`` ratio, and the warm
run's ``disk_hit_rate``, which the regression gate requires to stay at
least 0.9.

``figure12_time_to_first_result`` tracks the streaming sweep engine
(:mod:`repro.experiments.sweepspec`): the Figure 12 spec is streamed
cold and the time until the *first* cell result yields (``after_s``) is
compared against the buffered full-sweep time (``full_s``). The derived
``first_result_fraction`` is machine-speed independent and gated by
``check_regression.py``: it must stay below 1.0 (the streamed path
demonstrably emits its first result before the last cell computes) and
within tolerance of the recorded value.

``multicore_event_blocked_300`` tracks the window-blocked multi-core
event engine: the blocked path vs the retained per-wave reference loop
(``simulate_multicore_event_reference``) on the same 300-tile stream at
a deep-prefetch window of 48. The two are bit-identical; the
``speedup_vs_reference_loop`` ratio is gated against a ≥5x floor.
``multicore_event_64c2000`` records the large-grid anchor (64 cores ×
2000 tiles per core) the per-wave loop made impractical to sweep.

``grid_batched_48`` tracks the cross-cell batched engine
(:func:`repro.sim.pipeline.simulate_tile_stream_batch`): a 48-cell
all-OVERLAPPED software-kernel grid (4 systems × 12 paper schemes) at a
short 64-tile stream, where per-cell dispatch overhead dominates the
scan itself, timed as 48 individual ``simulate_tile_stream`` calls vs
one stacked batch (both uncached, bit-identical results). The
``batched_speedup`` ratio is gated against a floor; it decays toward
1x as the tile count grows and the runs become work-bound — see
docs/PERFORMANCE.md.

``figure12_batched`` tracks the sweep-level batching route
(:mod:`repro.experiments.sweepspec`): the Figure 12 spec run cold with
``batch=True`` vs ``batch=False`` at the paper's full 600-tile streams
— the conservative end-to-end number on a real workload, gated only
against a no-regression floor.

``warm_worker_hit_rate`` tracks the warm-start cache broadcast
(:mod:`repro.experiments.parallel`): the ``figure12+figure13``
composite scenario runs twice on one persistent 2-worker pool. On the
second run the parent broadcasts its merged entries back out at each
sub-sweep's dispatch, so the workers serve every lookup from memory —
``worker_memory_hit_rate`` is machine-independent and gated against a
90% floor.

``serve_coalesced_8x`` tracks the sweep-serving daemon
(:mod:`repro.serve`): eight clients request the identical cold Figure 12
sweep concurrently and the daemon coalesces them onto one underlying
compute, vs eight serial cold runs of the same spec. ``after_s`` is the
concurrent wall-clock; the machine-independent ``coalesced_hit_rate``
(duplicates served without a new compute, over duplicates issued) is
gated against a 90% floor by ``check_regression.py``.

``serve_cancel_reclaim`` tracks request cancellation: a client hangs up
after the first row of a deterministic synthetic sweep and the daemon
must stop dispatching its cells to the pool within one in-flight
window. ``reclaimed_fraction`` — the share of the grid's pool tasks
*never dispatched* because of the hangup, against a full run of the
same sweep — is machine-independent and gated against a 50% floor
(detection costs a couple of row sends plus the bounded window, so a
48-cell grid reclaims ~2/3 in practice).

Usage:

    PYTHONPATH=src python benchmarks/perf/run_bench.py [--output PATH]
        [--repeats N] [--only NAME ...] [--smoke]

``--only`` re-times just the named benchmarks and merges them into the
existing report (quick local refreshes after touching one subsystem).
``--smoke`` runs every benchmark body once at reduced sizes and writes
*nothing* — a tier-1-safe liveness check (see tests/test_perf_smoke.py)
so anchor code cannot silently rot between opt-in perf runs.

Timing protocol: best-of-``repeats`` wall time per benchmark (min is the
stablest estimator for sub-millisecond kernels on a shared machine).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf.json"

#: Every benchmark name this harness can produce (validates ``--only``).
KNOWN_BENCHMARKS = (
    "sim_core_overlapped_600",
    "sim_core_serialized_600",
    "sim_core_tepl_600",
    "sim_core_cached_lookup_x100",
    "decompress_tile_x32",
    "multicore_event_300",
    "multicore_event_blocked_300",
    "multicore_event_64c2000",
    "figure12_sweep",
    "figure12_sweep_parallel",
    "figure12_time_to_first_result",
    "figure12_batched",
    "grid_batched_48",
    "dse_warm_cache",
    "warm_worker_hit_rate",
    "disk_delta_commit",
    "disk_index_attach",
    "prefetch_warm_sweep",
    "serve_coalesced_8x",
    "serve_cancel_reclaim",
    "remote_dispatch_overhead",
    "remote_delta_dedup",
)

#: One-time measurements of the seed-commit implementation (c229933),
#: best-of-20 on the reference container. Kept for the before/after
#: trajectory; the live "before" numbers time the retained loop paths.
SEED_BASELINES_S = {
    "sim_core_overlapped_600": 8.13e-4,
    "sim_core_serialized_600": 9.92e-4,
    "sim_core_tepl_600": 1.01e-3,
    "decompress_tile_x32": 6.29e-3,
    "figure12_sweep": 2.52e-2,
    "multicore_event_300": 3.45e-2,
}

#: Tile-stream length for the parallel sweep anchor: long enough that
#: the 48-cell grid is real work (~70 ms serial on the reference
#: container), short enough that a best-of-3 at three pool widths stays
#: under a couple of seconds.
PARALLEL_SWEEP_TILES = 4000

#: Pool widths recorded by the parallel sweep anchor.
PARALLEL_SWEEP_JOBS = (1, 2, 4)


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall time of ``repeats`` timed calls (after one warmup)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _sim_cases():
    from repro.sim.pipeline import InvocationMode, KernelTiming

    overlapped = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
    serialized = KernelTiming(
        bytes_per_tile=300.0, dec_cycles=20.0,
        mode=InvocationMode.SERIALIZED, invoke_cycles=20.0,
        fence_cycles=10.0, handoff_cycles=12.0, loader_latency_cycles=10.0,
    )
    tepl = KernelTiming(
        bytes_per_tile=300.0, dec_cycles=20.0, mode=InvocationMode.TEPL,
        invoke_cycles=2.0, handoff_cycles=12.0, loader_latency_cycles=10.0,
        prefetch_window=24,
    )
    return {
        "sim_core_overlapped_600": overlapped,
        "sim_core_serialized_600": serialized,
        "sim_core_tepl_600": tepl,
    }


def _decompress_fixture():
    from repro.deca.config import DecaConfig
    from repro.deca.pipeline import DecaPipeline
    from repro.sparse.compress import compress_matrix

    rng = np.random.default_rng(7)
    weights = rng.normal(size=(64, 512)).astype(np.float32)
    matrix = compress_matrix(
        weights, "bf8", density=0.2, pruning="random",
        rng=np.random.default_rng(3),
    )
    pipeline = DecaPipeline(DecaConfig())
    pipeline.configure(matrix.tiles[0].format_name)
    return pipeline, matrix.tiles[:32]


def run_benchmarks(
    repeats: int = 20,
    only: Optional[Sequence[str]] = None,
    smoke: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Time every benchmark; returns {name: {before_s, after_s, ...}}.

    ``only`` restricts the run to the named benchmarks (see
    ``KNOWN_BENCHMARKS``); unknown names raise ``ValueError``.
    ``smoke`` shrinks every workload (fewer tiles/cores/repetitions) so
    the whole harness exercises in a couple of seconds — the numbers
    are meaningless for regression gating but prove every anchor still
    runs end to end.
    """
    if only is not None:
        unknown = sorted(set(only) - set(KNOWN_BENCHMARKS))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {', '.join(unknown)}; choose from "
                f"{', '.join(KNOWN_BENCHMARKS)}"
            )

    def want(name: str) -> bool:
        return only is None or name in only

    from repro.experiments import figure12
    from repro.experiments.grid import run_grid
    from repro.sim import pipeline as sim_pipeline
    from repro.sim.cache import clear_simulation_cache
    from repro.sim.pipeline import (
        KernelTiming,
        simulate_multicore_event,
        simulate_multicore_event_reference,
        simulate_tile_stream,
        simulate_tile_stream_reference,
    )
    from repro.sim.system import hbm_system

    if smoke:
        repeats = 1

    def reps_for(n: int) -> int:
        return 1 if smoke else max(n, 1)

    system = hbm_system()
    results: Dict[str, Dict[str, float]] = {}

    def add(name: str, after_s: float, before_s: Optional[float]) -> None:
        entry: Dict[str, float] = {"after_s": after_s}
        if before_s is not None:
            entry["before_s"] = before_s
            entry["speedup_vs_reference_loop"] = before_s / after_s
        seed = SEED_BASELINES_S.get(name)
        if seed is not None:
            entry["seed_s"] = seed
            entry["speedup_vs_seed"] = seed / after_s
        results[name] = entry

    # --- simulator core, all three invocation disciplines -------------
    for name, timing in _sim_cases().items():
        if not want(name):
            continue
        after = best_of(
            lambda: simulate_tile_stream(system, timing, 600, use_cache=False),
            repeats,
        )
        before = best_of(
            lambda: simulate_tile_stream_reference(system, timing, 600),
            max(repeats // 2, 3),
        )
        add(name, after, before)

    # --- cached front door ---------------------------------------------
    if want("sim_core_cached_lookup_x100"):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        clear_simulation_cache()
        simulate_tile_stream(system, timing, 600)

        def cached_lookup():
            for _ in range(100):
                simulate_tile_stream(system, timing, 600)

        add(
            "sim_core_cached_lookup_x100", best_of(cached_lookup, repeats),
            None,
        )

    # --- PE tile decompress -------------------------------------------
    if want("decompress_tile_x32"):
        pipeline, tiles = _decompress_fixture()
        add(
            "decompress_tile_x32",
            best_of(
                lambda: [pipeline.decompress_tile(t) for t in tiles],
                max(repeats // 2, 3),
            ),
            best_of(
                lambda: [pipeline._decompress_tile_windowed(t) for t in tiles],
                max(repeats // 4, 3),
            ),
        )

    # --- exact multi-core backend -------------------------------------
    if want("multicore_event_300"):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        add(
            "multicore_event_300",
            best_of(
                lambda: simulate_multicore_event(
                    system, timing, tiles_per_core=300
                ),
                reps_for(max(repeats // 4, 3)),
            ),
            None,
        )

    # --- window-blocked event engine vs retained per-wave loop ---------
    if want("multicore_event_blocked_300"):
        # A deep-prefetch window (DECA's own prefetcher runs well ahead
        # of the stream; the TEPL case above uses 24): the blocked
        # engine's win scales with the waves per block, the per-wave
        # loop's cost does not change.
        timing = KernelTiming(
            bytes_per_tile=300.0, dec_cycles=20.0, prefetch_window=48
        )
        tiles = 64 if smoke else 300
        reps = reps_for(max(repeats // 2, 5))
        after = best_of(
            lambda: simulate_multicore_event(system, timing, tiles),
            reps,
        )
        before = best_of(
            lambda: simulate_multicore_event_reference(
                system, timing, tiles
            ),
            reps,
        )
        add("multicore_event_blocked_300", after, before)

    # --- large-grid multi-core anchor (64 cores x 2000 tiles) ----------
    if want("multicore_event_64c2000"):
        cores, tiles = (8, 120) if smoke else (64, 2000)
        timing = KernelTiming(
            bytes_per_tile=300.0, dec_cycles=20.0, prefetch_window=48
        )
        after = best_of(
            lambda: simulate_multicore_event(
                system, timing, tiles, cores=cores
            ),
            reps_for(max(repeats // 6, 2)),
        )
        before = best_of(
            lambda: simulate_multicore_event_reference(
                system, timing, tiles, cores=cores
            ),
            reps_for(2),
        )
        add("multicore_event_64c2000", after, before)
        results["multicore_event_64c2000"]["cores"] = float(cores)
        results["multicore_event_64c2000"]["tiles_per_core"] = float(tiles)

    # --- one full figure sweep (cold cache each run) -------------------
    if want("figure12_sweep"):
        def figure_cold():
            clear_simulation_cache()
            return figure12.run()

        after = best_of(figure_cold, max(repeats // 4, 3))

        def figure_reference():
            clear_simulation_cache()
            sim_pipeline.FORCE_REFERENCE_ENGINE = True
            try:
                return figure12.run()
            finally:
                sim_pipeline.FORCE_REFERENCE_ENGINE = False

        before = best_of(figure_reference, max(repeats // 4, 3))
        add("figure12_sweep", after, before)

    # --- streaming engine: time to first result vs full sweep ----------
    if want("figure12_time_to_first_result"):
        spec_cells = figure12.sweep_spec().cell_count

        def first_result():
            # Cold cache each run: the honest time-to-first-result
            # includes the spec build (which simulates the shared
            # baseline) plus the first cell — everything a consumer
            # waits for before the first row lands. batch=False pins
            # the per-cell streaming path this anchor has always
            # measured (the batched route seeds the whole stack before
            # the first yield; figure12_batched tracks that trade).
            clear_simulation_cache()
            stream = figure12.sweep_spec().stream(jobs=1, batch=False)
            next(stream)
            stream.close()

        def full_sweep():
            clear_simulation_cache()
            return figure12.sweep_spec().run(jobs=1, batch=False)

        reps = max(repeats // 4, 3)
        ttfr = best_of(first_result, reps)
        full = best_of(full_sweep, reps)
        results["figure12_time_to_first_result"] = {
            "after_s": ttfr,
            "full_s": full,
            "first_result_fraction": ttfr / full,
            "cells": float(spec_cells),
        }

    # --- cross-cell batched stack vs the per-cell scan -----------------
    if want("grid_batched_48"):
        from repro.core.schemes import PAPER_SCHEMES
        from repro.kernels.libxsmm import software_kernel_timing
        from repro.sim.pipeline import simulate_tile_stream_batch
        from repro.sim.system import ddr_system

        batch_tiles = 32 if smoke else 64
        batch_systems = (
            hbm_system(), ddr_system(),
            hbm_system(cores=28), ddr_system(cores=28),
        )
        batch_cells = [
            (sys_, software_kernel_timing(sys_, scheme), batch_tiles)
            for sys_ in batch_systems
            for scheme in PAPER_SCHEMES
        ]

        def batch_per_cell():
            return [
                simulate_tile_stream(s, t, n, use_cache=False)
                for s, t, n in batch_cells
            ]

        def batch_stacked():
            return simulate_tile_stream_batch(batch_cells, use_cache=False)

        reps = reps_for(max(repeats // 2, 5))
        after = best_of(batch_stacked, reps)
        before = best_of(batch_per_cell, reps)
        # Bit-identity is the contract (tests pin the full traces); a
        # makespan check here keeps the anchor itself honest.
        assert [r.makespan_cycles for r in batch_stacked()] == [
            r.makespan_cycles for r in batch_per_cell()
        ], "batched grid diverged from the per-cell scan"
        results["grid_batched_48"] = {
            "after_s": after,
            "per_cell_s": before,
            "batched_speedup": before / after,
            "cells": float(len(batch_cells)),
            "tiles": float(batch_tiles),
        }

    # --- sweep-level batching on the real Figure 12 workload -----------
    if want("figure12_batched"):
        def figure_batched():
            clear_simulation_cache()
            return figure12.sweep_spec().run(jobs=1, batch=True)

        def figure_per_cell():
            clear_simulation_cache()
            return figure12.sweep_spec().run(jobs=1, batch=False)

        reps = reps_for(max(repeats // 4, 3))
        after = best_of(figure_batched, reps)
        before = best_of(figure_per_cell, reps)
        results["figure12_batched"] = {
            "after_s": after,
            "per_cell_s": before,
            "batched_speedup": before / after,
        }

    # --- disk-backed cache: full grid cold vs warm-disk ----------------
    if want("dse_warm_cache"):
        import shutil
        import tempfile

        from repro.sim.cache import (
            configure_simulation_cache_dir,
            simulation_cache_stats,
        )

        cache_root = tempfile.mkdtemp(prefix="repro-bench-simcache-")
        warm_hit_rates = []
        cold_records = []
        warm_records = []

        def grid_cold():
            # Fresh directory every repetition: the cold time includes
            # simulating all 48 cells *and* spilling them to disk.
            # batch=False pins the per-cell path this anchor has always
            # measured: it tracks the disk tier, and the batched route's
            # extra membership probes would dilute the hit-rate gate.
            shutil.rmtree(cache_root, ignore_errors=True)
            configure_simulation_cache_dir(cache_root)
            clear_simulation_cache()
            cold_records[:] = run_grid(batch=False)
            return cold_records

        def grid_warm():
            # The restart scenario: memory tier empty, disk tier warm.
            clear_simulation_cache()
            before = simulation_cache_stats()
            warm_records[:] = run_grid(batch=False)
            after = simulation_cache_stats()
            lookups = (
                (after.hits - before.hits)
                + (after.disk_hits - before.disk_hits)
                + (after.misses - before.misses)
            )
            warm_hit_rates.append(
                (after.disk_hits - before.disk_hits) / lookups
                if lookups else 0.0
            )
            return warm_records

        try:
            reps = reps_for(max(repeats // 4, 3))
            cold = best_of(grid_cold, reps)
            warm = best_of(grid_warm, reps)
            # The paper's figures ride on these records: a warm replay
            # that isn't bit-identical to the cold run is a cache bug,
            # not a perf data point.
            assert cold_records == warm_records, (
                "warm-disk grid records diverged from the cold run"
            )
            results["dse_warm_cache"] = {
                "after_s": warm,
                "cold_s": cold,
                "warm_speedup": cold / warm,
                # The worst repetition: an intermittent digest or
                # serialization instability must not hide behind one
                # clean final rep.
                "disk_hit_rate": min(warm_hit_rates),
            }
        finally:
            configure_simulation_cache_dir(None)
            shutil.rmtree(cache_root, ignore_errors=True)

    # --- warm-start broadcast: composite scenario twice on one pool ----
    if want("warm_worker_hit_rate"):
        from repro.experiments.composite import figure12_figure13_sweep
        from repro.experiments.parallel import shutdown_worker_pool
        from repro.sim.cache import simulation_cache_stats

        def composite_round():
            sweep = figure12_figure13_sweep()
            sweep.run(jobs=2)
            return sweep.executions

        def round_hit_rate(executions, stats_before) -> float:
            hits = sum(ex.worker_hits for _, ex in executions)
            misses = sum(ex.worker_misses for _, ex in executions)
            disk = sum(ex.worker_disk_hits for _, ex in executions)
            lookups = hits + misses + disk
            if lookups == 0:
                # Serial fallback (no fork): the cells ran in-process,
                # so this round's delta of the parent's own counters
                # carries the evidence (the cumulative totals would
                # dilute the warm rate with the cold round's misses).
                stats = simulation_cache_stats()
                hits = stats.hits - stats_before.hits
                lookups = (
                    hits
                    + (stats.misses - stats_before.misses)
                    + (stats.disk_hits - stats_before.disk_hits)
                )
                return hits / lookups if lookups else 0.0
            return hits / lookups

        # Cold: fresh pool, empty cache — the composite computes all
        # cells in the workers and merges them into the parent.
        shutdown_worker_pool()
        clear_simulation_cache()
        start = time.perf_counter()
        composite_round()
        cold_s = time.perf_counter() - start
        # Warm: same process, same (now stale) pool — the broadcast
        # ships the parent's merged entries back out at dispatch, so
        # worker lookups are served from worker memory.
        warm_rates = []
        warm_entries = []
        warm_s = float("inf")
        for _ in range(reps_for(max(repeats // 4, 3))):
            stats_before = simulation_cache_stats()
            start = time.perf_counter()
            executions = composite_round()
            warm_s = min(warm_s, time.perf_counter() - start)
            warm_rates.append(round_hit_rate(executions, stats_before))
            warm_entries.append(
                sum(ex.broadcast_entries for _, ex in executions)
            )
        shutdown_worker_pool()
        results["warm_worker_hit_rate"] = {
            "after_s": warm_s,
            "cold_s": cold_s,
            "warm_speedup": cold_s / warm_s,
            # The worst repetition, like the disk anchor: a flaky
            # broadcast must not hide behind one clean rep.
            "worker_memory_hit_rate": min(warm_rates),
            "broadcast_entries": float(min(warm_entries)),
        }

    # --- disk tier v2: packed group commit vs per-entry writes ---------
    if want("disk_delta_commit"):
        import shutil
        import tempfile

        from repro.sim.cache import results_bit_equal
        from repro.sim.diskcache import DiskCache
        from repro.sim.pipeline import tile_stream_key

        delta_n = 16 if smoke else 48
        delta_tiles = 64
        delta_timings = [
            KernelTiming(bytes_per_tile=100.0 + i, dec_cycles=20.0)
            for i in range(delta_n)
        ]
        delta_entries = [
            (
                tile_stream_key(system, timing, delta_tiles),
                simulate_tile_stream(
                    system, timing, delta_tiles, use_cache=False
                ),
            )
            for timing in delta_timings
        ]
        delta_box = tempfile.mkdtemp(prefix="repro-bench-delta-")
        delta_seq = [0]

        def delta_fresh() -> DiskCache:
            # A fresh directory per timed call: the store skips entries
            # it already holds, so re-committing into one directory
            # would time the skip probe, not the commit.
            delta_seq[0] += 1
            return DiskCache(os.path.join(delta_box, str(delta_seq[0])))

        def delta_per_entry():
            disk = delta_fresh()
            for key, value in delta_entries:
                disk.store(key, value)

        def delta_packed():
            disk = delta_fresh()
            disk.store_batch(delta_entries)

        try:
            reps = reps_for(max(repeats // 2, 5))
            before = best_of(delta_per_entry, reps)
            after = best_of(delta_packed, reps)
            # Cross-format bit-identity is the non-negotiable contract;
            # keep the anchor itself honest about it.
            check = DiskCache(os.path.join(delta_box, str(delta_seq[0])))
            key, value = delta_entries[-1]
            assert results_bit_equal(check.load(key), value), (
                "packed entry read back differently from its loose twin"
            )
        finally:
            shutil.rmtree(delta_box, ignore_errors=True)
        results["disk_delta_commit"] = {
            "after_s": after,
            "per_entry_s": before,
            "delta_commit_speedup": before / after,
            "entries": float(delta_n),
        }

    # --- disk tier v2: index attach + probe vs per-entry stat walk -----
    if want("disk_index_attach"):
        import shutil
        import tempfile

        from repro.sim.diskcache import DiskCache, key_digest

        probe_n = 64 if smoke else 256
        probe_box = tempfile.mkdtemp(prefix="repro-bench-index-")
        probe_keys = [("bench-index-probe", i) for i in range(probe_n)]
        probe_value = simulate_tile_stream(
            system,
            KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0),
            64,
            use_cache=False,
        )
        try:
            seed_cache = DiskCache(probe_box)
            # Loose one-file-per-entry layout: exactly what the
            # pre-index attach had to stat its way through.
            for key in probe_keys:
                seed_cache.store(key, probe_value)
            schema_dir = seed_cache.entry_path(probe_keys[0]).parent.parent

            def index_attach_probe():
                # Warm attach: one manifest read, then in-memory
                # membership answers.
                cache = DiskCache(probe_box)
                for key in probe_keys:
                    assert cache.contains(key)

            def stat_walk_probe():
                # The pre-index protocol: enumerate the shard dirs for
                # the entry count, then stat each probed entry's file.
                count = sum(1 for _ in schema_dir.glob("*/*.pkl"))
                assert count == len(probe_keys)
                for key in probe_keys:
                    digest = key_digest(key)
                    path = schema_dir / digest[:2] / f"{digest}.pkl"
                    assert path.is_file()

            reps = reps_for(max(repeats // 2, 5))
            after = best_of(index_attach_probe, reps)
            before = best_of(stat_walk_probe, reps)
        finally:
            shutil.rmtree(probe_box, ignore_errors=True)
        results["disk_index_attach"] = {
            "after_s": after,
            "stat_walk_s": before,
            "index_attach_speedup": before / after,
            "entries": float(probe_n),
        }

    # --- disk tier v2: pipelined prefetch into workers -----------------
    if want("prefetch_warm_sweep"):
        import shutil
        import tempfile

        from repro.experiments.parallel import (
            WARM_BROADCAST_ENV,
            last_sweep_execution,
            shutdown_worker_pool,
        )
        from repro.sim.cache import configure_simulation_cache_dir

        prefetch_root = tempfile.mkdtemp(prefix="repro-bench-prefetch-")
        saved_budget = os.environ.get(WARM_BROADCAST_ENV)
        # Entry broadcast disabled: any warmth the workers show comes
        # from the index-driven prefetch alone.
        os.environ[WARM_BROADCAST_ENV] = "0"
        try:
            configure_simulation_cache_dir(prefetch_root)
            # Cold: compute the grid and spill every entry to disk.
            shutdown_worker_pool()
            clear_simulation_cache()
            start = time.perf_counter()
            cold_records = run_grid(batch=False, jobs=2)
            cold_s = time.perf_counter() - start
            # Warm replays: memory dropped each round (the restart
            # scenario), pool kept. Workers must re-warm from the disk
            # tier through the prefetch broadcast — lookups then land
            # as worker memory hits, not lazy disk loads.
            rates = []
            warm_s = float("inf")
            for _ in range(reps_for(max(repeats // 4, 3))):
                clear_simulation_cache()
                start = time.perf_counter()
                warm_records = run_grid(batch=False, jobs=2)
                warm_s = min(warm_s, time.perf_counter() - start)
                assert warm_records == cold_records, (
                    "prefetch-warm grid diverged from the cold run"
                )
                execution = last_sweep_execution()
                assert execution.broadcast_entries == 0, (
                    "entry broadcast ran with a zero budget"
                )
                lookups = (
                    execution.worker_hits
                    + execution.worker_misses
                    + execution.worker_disk_hits
                )
                if lookups == 0:
                    # Serial fallback (no fork): the prefetch seam is
                    # worker-side only; record a full-warm rate from
                    # the disk tier's behalf rather than a vacuous 0.
                    rates.append(1.0)
                else:
                    rates.append(execution.worker_hits / lookups)
            shutdown_worker_pool()
        finally:
            if saved_budget is None:
                os.environ.pop(WARM_BROADCAST_ENV, None)
            else:
                os.environ[WARM_BROADCAST_ENV] = saved_budget
            configure_simulation_cache_dir(None)
            clear_simulation_cache()
            shutil.rmtree(prefetch_root, ignore_errors=True)
        results["prefetch_warm_sweep"] = {
            "after_s": warm_s,
            "cold_s": cold_s,
            "warm_speedup": cold_s / warm_s,
            # Worst repetition, like the other warm anchors: a racy
            # prefetch must not hide behind one clean rep.
            "prefetch_hit_rate": min(rates),
            "cells": float(len(cold_records)),
        }

    # --- serve daemon: coalesced concurrent clients vs serial colds ----
    if want("serve_coalesced_8x"):
        import tempfile
        import threading

        from repro.experiments.parallel import shutdown_worker_pool
        from repro.serve.client import connect
        from repro.serve.daemon import ServeDaemon

        requests = 4 if smoke else 8

        # Baseline first, while no daemon holds the pool: the same cold
        # sweep, run back to back once per would-be client.
        start = time.perf_counter()
        for _ in range(requests):
            clear_simulation_cache()
            figure12.sweep_spec().run(jobs=1)
        serial_s = time.perf_counter() - start

        clear_simulation_cache()
        shutdown_worker_pool()
        with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as box:
            daemon = ServeDaemon(
                socket_path=os.path.join(box, "serve.sock"),
                jobs=2, max_active=2,
            )
            daemon.start()
            try:
                streams: list = [None] * requests
                ready = threading.Barrier(requests)

                def serve_client(slot: int) -> None:
                    handle = connect(daemon.socket_path)
                    ready.wait()
                    streams[slot] = list(handle.sweep_lines("figure12"))

                threads = [
                    threading.Thread(target=serve_client, args=(slot,))
                    for slot in range(requests)
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                concurrent_s = time.perf_counter() - start
                snapshot = daemon.status_snapshot()
            finally:
                daemon.drain()
                shutdown_worker_pool()
        assert streams[0] and all(s == streams[0] for s in streams), (
            "coalesced client streams diverged"
        )
        duplicates = max(snapshot["requests"] - 1, 1)
        results["serve_coalesced_8x"] = {
            "after_s": concurrent_s,
            "serial_s": serial_s,
            "coalesced_speedup": serial_s / concurrent_s,
            # Duplicates served without a new compute, over duplicates
            # issued. A post-completion straggler takes the cache fast
            # path — still served without recomputing — so the rate is
            # robust to thread-scheduling jitter.
            "coalesced_hit_rate": (
                (snapshot["requests"] - snapshot["sweeps_computed"])
                / duplicates
            ),
            "requests": float(requests),
            "cpu_count": float(os.cpu_count() or 1),
        }

    # --- serve daemon: cancellation reclaims undispatched pool work ----
    if want("serve_cancel_reclaim"):
        import tempfile

        from repro.experiments.parallel import (
            dispatched_task_count,
            shutdown_worker_pool,
        )
        from repro.serve.client import connect
        from repro.serve.daemon import ServeDaemon

        cells = 24 if smoke else 48
        cell_s = 0.05

        def reclaim_synthetic(tag: str) -> dict:
            return {"kind": "synthetic", "cells": cells,
                    "cell_s": cell_s, "tag": tag}

        def reclaim_idle(daemon: "ServeDaemon", timeout: float = 30.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                snapshot = daemon.status_snapshot()
                if snapshot["active"] == 0 and not snapshot["jobs"]:
                    return snapshot
                time.sleep(0.02)
            raise RuntimeError("serve daemon never went idle")

        clear_simulation_cache()
        shutdown_worker_pool()
        with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as box:
            daemon = ServeDaemon(
                socket_path=os.path.join(box, "serve.sock"),
                jobs=2, max_active=2,
            )
            daemon.start()
            try:
                # Full run: every cell reaches the pool exactly once.
                before = dispatched_task_count()
                start = time.perf_counter()
                rows = list(connect(daemon.socket_path).sweep_lines(
                    inline=reclaim_synthetic("reclaim-full")
                ))
                full_s = time.perf_counter() - start
                full_dispatched = dispatched_task_count() - before
                assert len(rows) == cells, len(rows)

                # Cancel path: read one row, hang up, wait for the
                # orphaned job to retire. after_s spans hangup →
                # idle daemon: the latency to reclaim the runner.
                before = dispatched_task_count()
                stream = connect(daemon.socket_path).sweep_lines(
                    inline=reclaim_synthetic("reclaim-cancel")
                )
                next(stream)
                start = time.perf_counter()
                stream.close()
                snapshot = reclaim_idle(daemon)
                cancel_s = time.perf_counter() - start
                cancel_dispatched = dispatched_task_count() - before
            finally:
                daemon.drain()
                shutdown_worker_pool()
        assert snapshot["cancelled"] == 1, snapshot
        assert 0 < cancel_dispatched <= full_dispatched
        results["serve_cancel_reclaim"] = {
            "after_s": cancel_s,
            "full_s": full_s,
            # Share of the grid's pool tasks never dispatched because
            # the sole subscriber hung up (1.0 = instant reclaim,
            # 0.0 = the cancel saved nothing).
            "reclaimed_fraction": 1.0 - cancel_dispatched / full_dispatched,
            "cells": float(cells),
            "cpu_count": float(os.cpu_count() or 1),
        }

    # --- socket executor: per-cell dispatch overhead vs fork -----------
    if want("remote_dispatch_overhead"):
        from repro.experiments import remote
        from repro.experiments.parallel import shutdown_worker_pool

        grid_tiles = 64 if smoke else 300
        reps = reps_for(3)

        def grid_per_cell() -> object:
            # batch=False pins the per-cell dispatch path on both
            # backends: 48 individual cells through stream_map, so the
            # ratio isolates transport overhead, not batching effects.
            clear_simulation_cache()
            return run_grid(tiles=grid_tiles, jobs=2, batch=False)

        shutdown_worker_pool()
        hosts = remote.start_loopback_workers(2)
        remote.configure_sweep_hosts(hosts)
        try:
            socket_s = best_of(grid_per_cell, reps)
        finally:
            # Explicitly disable (not revert-to-env) so a stray
            # REPRO_SWEEP_HOSTS can never leak into the fork baseline.
            remote.configure_sweep_hosts(())
            shutdown_worker_pool()
        try:
            fork_s = best_of(grid_per_cell, reps)
        finally:
            remote.configure_sweep_hosts(None)
            shutdown_worker_pool()
        clear_simulation_cache()
        results["remote_dispatch_overhead"] = {
            "after_s": socket_s,
            "fork_s": fork_s,
            # Loopback socket sweep over fork sweep, same grid, same
            # width. Machine-independent: both backends run on this
            # host, so the ratio cancels its absolute speed.
            "dispatch_overhead_ratio": socket_s / fork_s,
            "cells": 48.0,
            "cpu_count": float(os.cpu_count() or 1),
        }

    # --- socket executor: warm replay ships ~0 shard bytes -------------
    if want("remote_delta_dedup"):
        from repro.experiments import remote
        from repro.experiments.grid import grid_spec
        from repro.experiments.parallel import (
            last_sweep_execution,
            shutdown_worker_pool,
        )

        dedup_tiles = 64 if smoke else 300
        spec = grid_spec(tiles=dedup_tiles)
        shutdown_worker_pool()
        clear_simulation_cache()
        hosts = remote.start_loopback_workers(2)
        remote.configure_sweep_hosts(hosts)
        try:
            start = time.perf_counter()
            cold_rows = sum(1 for _ in spec.stream(jobs=1, batch=False))
            cold_s = time.perf_counter() - start
            cold_exec = last_sweep_execution()
            cold_bytes = (
                cold_exec.delta_bytes_sent
                + cold_exec.delta_bytes_received
            )
            # One convergence replay: the cold run split the grid across
            # the workers, so each host holds only its own partition and
            # the first replay legitimately cross-fills the other half
            # via the warm broadcast. The measured warm replay runs on
            # converged hosts, where dedup should leave ~nothing to ship.
            sum(1 for _ in spec.stream(jobs=1, batch=False))
            start = time.perf_counter()
            warm_rows = sum(1 for _ in spec.stream(jobs=1, batch=False))
            warm_s = time.perf_counter() - start
            warm_exec = last_sweep_execution()
            warm_bytes = (
                warm_exec.delta_bytes_sent
                + warm_exec.delta_bytes_received
            )
        finally:
            remote.configure_sweep_hosts(None)
            shutdown_worker_pool()
        clear_simulation_cache()
        assert cold_rows == warm_rows, (cold_rows, warm_rows)
        assert cold_bytes > 0, "cold socket sweep moved no shard bytes"
        results["remote_delta_dedup"] = {
            "after_s": warm_s,
            "cold_s": cold_s,
            "cold_delta_bytes": float(cold_bytes),
            "warm_delta_bytes": float(warm_bytes),
            # Both directions dedup against the other side's digest
            # set, so a warm replay on live workers should ship ~none
            # of the cold run's shard traffic again.
            "warm_shard_bytes_ratio": warm_bytes / max(cold_bytes, 1),
            "cpu_count": float(os.cpu_count() or 1),
        }

    # --- parallel sweep executor: full grid at 1/2/4 workers -----------
    if want("figure12_sweep_parallel"):
        sweep_tiles = 600 if smoke else PARALLEL_SWEEP_TILES
        sweep_jobs = (1, 2) if smoke else PARALLEL_SWEEP_JOBS
        if not smoke and (os.cpu_count() or 1) < max(sweep_jobs):
            print(
                f"warning: {os.cpu_count() or 1} CPU(s) < "
                f"{max(sweep_jobs)} workers — the "
                "figure12_sweep_parallel anchor will record pool overhead, "
                "not scaling; re-record on a multi-core host for a "
                "meaningful speedup baseline",
                file=sys.stderr,
            )

        def grid_at(jobs: int) -> Callable[[], object]:
            def body():
                clear_simulation_cache()
                return run_grid(tiles=sweep_tiles, jobs=jobs)

            return body

        reps = reps_for(max(repeats // 4, 3))
        per_jobs = {
            jobs: best_of(grid_at(jobs), reps)
            for jobs in sweep_jobs
        }
        entry: Dict[str, float] = {
            "after_s": per_jobs[sweep_jobs[-1]],
            "parallel_speedup_4w": (
                per_jobs[1] / per_jobs[sweep_jobs[-1]]
            ),
            "cpu_count": float(os.cpu_count() or 1),
        }
        for jobs, seconds in per_jobs.items():
            entry[f"jobs{jobs}_s"] = seconds
        results["figure12_sweep_parallel"] = entry

    clear_simulation_cache()
    # Keep the hand-maintained --only name list honest: a full run must
    # produce exactly KNOWN_BENCHMARKS, a filtered run a subset of it.
    assert set(results) <= set(KNOWN_BENCHMARKS), sorted(
        set(results) - set(KNOWN_BENCHMARKS)
    )
    if only is None:
        assert set(results) == set(KNOWN_BENCHMARKS), sorted(
            set(KNOWN_BENCHMARKS) - set(results)
        )
    return results


def write_report(
    results: Dict[str, Dict[str, float]],
    path: pathlib.Path,
    merge: bool = False,
) -> dict:
    """Assemble and write the JSON report; returns the document.

    With ``merge`` (a ``--only`` partial refresh), fresh entries are
    layered over the existing report so un-measured benchmarks keep
    their recorded numbers — only sensible on the same machine the
    report was recorded on, since ``check_regression`` normalizes all
    entries by one machine-speed scale. Full runs overwrite, so renamed
    or removed benchmarks don't linger.
    """
    benchmarks = dict(results)
    if merge and path.exists():
        previous = json.loads(path.read_text()).get("benchmarks", {})
        benchmarks = {**previous, **benchmarks}
    document = {
        "schema_version": 1,
        "generated_unix": time.time(),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "protocol": "best-of-N wall time, see benchmarks/perf/run_bench.py",
        "benchmarks": benchmarks,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"report path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--repeats", type=int, default=20,
        help="timed repetitions per benchmark (default: 20)",
    )
    parser.add_argument(
        "--only", nargs="+", metavar="NAME", default=None,
        help="re-time only these benchmarks and merge them into the "
             f"existing report; choose from: {', '.join(KNOWN_BENCHMARKS)}",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run every benchmark once at reduced sizes and write "
             "nothing — a fast liveness check of the anchor code",
    )
    args = parser.parse_args(argv)
    try:
        results = run_benchmarks(
            repeats=args.repeats, only=args.only, smoke=args.smoke
        )
    except ValueError as error:
        parser.error(str(error))
    if not args.smoke:
        write_report(results, args.output, merge=args.only is not None)
    width = max(len(name) for name in results)
    for name, entry in sorted(results.items()):
        after_us = entry["after_s"] * 1e6
        line = f"{name:<{width}}  after {after_us:10.1f} us"
        if "speedup_vs_reference_loop" in entry:
            line += f"  {entry['speedup_vs_reference_loop']:5.1f}x vs loop"
        if "speedup_vs_seed" in entry:
            line += f"  {entry['speedup_vs_seed']:5.1f}x vs seed"
        if "parallel_speedup_4w" in entry:
            line += (
                f"  {entry['parallel_speedup_4w']:5.2f}x at 4 workers "
                f"({entry['cpu_count']:.0f} CPUs)"
            )
        if "batched_speedup" in entry:
            line += f"  {entry['batched_speedup']:5.2f}x batched vs per-cell"
        if "disk_hit_rate" in entry:
            line += (
                f"  {entry['warm_speedup']:5.1f}x warm vs cold "
                f"({entry['disk_hit_rate']:.0%} disk hits)"
            )
        if "worker_memory_hit_rate" in entry:
            line += (
                f"  {entry['warm_speedup']:5.1f}x warm vs cold "
                f"({entry['worker_memory_hit_rate']:.0%} worker memory "
                "hits)"
            )
        if "coalesced_hit_rate" in entry:
            line += (
                f"  {entry['coalesced_speedup']:5.1f}x vs "
                f"{entry['requests']:.0f} serial colds "
                f"({entry['coalesced_hit_rate']:.0%} coalesced)"
            )
        if "dispatch_overhead_ratio" in entry:
            line += (
                f"  {entry['dispatch_overhead_ratio']:5.2f}x socket vs "
                "fork dispatch"
            )
        if "warm_shard_bytes_ratio" in entry:
            line += (
                f"  {entry['warm_shard_bytes_ratio']:.1%} of "
                f"{entry['cold_delta_bytes']:.0f} cold shard bytes "
                "re-shipped warm"
            )
        if "first_result_fraction" in entry:
            line += (
                f"  first result at {entry['first_result_fraction']:.0%} "
                f"of the {entry['full_s'] * 1e6:.0f} us full sweep"
            )
        print(line)
    if args.smoke:
        print(f"smoke run ok ({len(results)} benchmarks); nothing written")
    else:
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
