"""Opt-in perf gate: fail if the hot paths regressed past BENCH_perf.json.

Deselected by default (see pytest.ini); run with:

    PYTHONPATH=src python -m pytest -m perf benchmarks/perf
"""

import pytest

from benchmarks.perf import check_regression
from benchmarks.perf.run_bench import DEFAULT_OUTPUT

pytestmark = pytest.mark.perf


def test_no_perf_regression():
    assert DEFAULT_OUTPUT.exists(), (
        "BENCH_perf.json missing; regenerate with "
        "PYTHONPATH=src python benchmarks/perf/run_bench.py"
    )
    assert check_regression.main([]) == 0
