"""Micro-benchmark harness tracking the simulator's performance trajectory.

``run_bench.py`` times the hot paths (tile-stream engines, PE tile
decompress, a full figure sweep) against their retained loop references
and writes ``BENCH_perf.json`` at the repository root;
``check_regression.py`` re-measures and fails on >25% regressions. See
docs/PERFORMANCE.md.
"""
