"""Compare a fresh benchmark run against ``BENCH_perf.json``.

Re-measures every benchmark recorded in the checked-in report and exits
nonzero if any ``after_s`` regressed by more than the tolerance (25% by
default — generous enough for container jitter, tight enough to catch an
accidental return to per-tile Python loops). Entries carrying a
``parallel_speedup_4w`` field (the sweep-executor anchor) additionally
gate their scaling ratio against runs on the same ``cpu_count``, entries
carrying a ``disk_hit_rate`` field (the disk-cache anchor) gate the warm
run's hit rate against a machine-independent 90% floor, and entries
carrying a ``first_result_fraction`` field (the streaming-engine anchor)
gate time-to-first-result: the fraction must stay below 1.0 — the
streamed path emits its first result before the last cell computes —
and within tolerance of the recorded ratio. ``RATIO_FLOORS`` adds
machine-independent gates: the window-blocked multi-core engine must
stay >=5x over its retained per-wave reference loop, the warm-start
broadcast must keep persistent workers >=90% memory-hot on the second
composite-scenario run, the cross-cell batched engine must hold its
floors on both batching anchors (>=2.2x on the dispatch-bound 48-cell
short-stream grid, no outright regression on the work-bound Figure 12
workload), the serve daemon must coalesce >=90% of duplicate
concurrent requests onto a single underlying sweep, and a cancelled
sweep must leave >=50% of its grid's pool tasks undispatched.
``RATIO_CEILINGS`` is the mirror image for overhead ratios: loopback
socket dispatch must stay within 2x of the fork pool, and a warm
replay on live socket workers must re-ship at most 10% of the cold
run's cache-shard bytes. On a single-CPU machine the parallel scaling
gate is skipped with a printed reason rather than silently passed, and
every skipped gate is also emitted as a machine-readable JSON line
(``{"skipped_gates": [...]}``) so CI can assert the skip reason.

Usage:

    PYTHONPATH=src python benchmarks/perf/check_regression.py
        [--report PATH] [--tolerance 0.25] [--repeats N]

Wired into pytest as the opt-in ``perf`` marker:

    python -m pytest -m perf benchmarks/perf
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

# Allow direct `python benchmarks/perf/check_regression.py` invocation:
# the interpreter puts this script's directory on sys.path, not the repo
# root that anchors the `benchmarks` package.
_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from benchmarks.perf.run_bench import DEFAULT_OUTPUT, run_benchmarks


def _speed_scale(recorded: dict, fresh: dict) -> float:
    """How much slower this run's machine is than the recording's.

    The retained loop references run inside the same measurement, so
    their slowdown is pure machine/load difference — using it as an
    anchor keeps the gate from flagging a busy container (or a slower
    laptop) as a code regression. Scale is clamped at 1.0 so a *faster*
    machine still has to meet the recorded absolute numbers.
    """
    ratios = []
    for name, entry in recorded.items():
        baseline = entry.get("before_s")
        current = fresh.get(name, {}).get("before_s")
        if baseline and current:
            ratios.append(current / baseline)
    if not ratios:
        return 1.0
    ratios.sort()
    return max(1.0, ratios[len(ratios) // 2])


def _parallel_scaling_failures(
    recorded: dict, fresh: dict, tolerance: float,
    skips: "list[str] | None" = None,
) -> "list[str]":
    """Gate the sweep executor's scaling ratio (figure12_sweep_parallel).

    ``parallel_speedup_4w`` is serial-time over 4-worker-time measured
    in the same run, so machine *speed* cancels out — but the ratio is
    still bound by the machine's core count, so it is only compared when
    the fresh run sees the same ``cpu_count`` the report recorded. (The
    absolute ``after_s`` gate in :func:`compare` skips mismatched
    ``cpu_count`` entries for the same reason, so a mismatched machine
    is not gated on this anchor at all — re-record on the machine that
    runs the gate.) On a single-CPU machine the gate is skipped outright
    — pool workers cannot beat serial without a second core, so any
    ratio measured there is pool overhead, not scaling — and the skip is
    recorded in ``skips`` so a quiet pass can be told from a real one.
    Catches the executor silently degrading to serial-plus-overhead.
    """
    failures = []
    for name, entry in sorted(recorded.items()):
        ratio = entry.get("parallel_speedup_4w")
        if ratio is None:
            continue
        if (os.cpu_count() or 1) == 1:
            if skips is not None:
                skips.append(
                    f"{name}: parallel scaling gate skipped — this machine "
                    "has 1 CPU, so multi-worker speedup is unmeasurable "
                    "(re-record and gate on a multi-core host)"
                )
            continue
        fresh_entry = fresh.get(name, {})
        fresh_ratio = fresh_entry.get("parallel_speedup_4w")
        if fresh_ratio is None:
            failures.append(
                f"{name}: parallel scaling measurement disappeared"
            )
            continue
        if fresh_entry.get("cpu_count") != entry.get("cpu_count"):
            continue
        if fresh_ratio < ratio * (1.0 - tolerance):
            cpu_count = entry.get("cpu_count")
            machine = (
                f"the same {cpu_count:.0f}-CPU machine"
                if cpu_count is not None
                else "a machine of unrecorded core count"
            )
            failures.append(
                f"{name}: 4-worker speedup {fresh_ratio:.2f}x vs recorded "
                f"{ratio:.2f}x (allowed {ratio * (1.0 - tolerance):.2f}x "
                f"on {machine})"
            )
    return failures


#: Minimum warm-run disk hit rate for the dse_warm_cache anchor. A warm
#: replay of an unchanged grid should be served ~entirely from disk;
#: anything below this means the key digest or entry format drifted.
MIN_DISK_HIT_RATE = 0.9


def _warm_cache_failures(recorded: dict, fresh: dict) -> "list[str]":
    """Gate the disk-cache anchor's hit rate (dse_warm_cache).

    Unlike the wall-clock gates, the hit rate is machine-independent:
    a warm directory written and read by the same code must serve at
    least :data:`MIN_DISK_HIT_RATE` of the repeated sweep's lookups, or
    the content-addressed store has silently stopped recognizing its
    own entries (digest instability, schema churn, serialization
    breakage).
    """
    failures = []
    for name, entry in sorted(recorded.items()):
        if "disk_hit_rate" not in entry:
            continue
        fresh_entry = fresh.get(name, {})
        rate = fresh_entry.get("disk_hit_rate")
        if rate is None:
            failures.append(f"{name}: disk hit rate measurement disappeared")
        elif rate < MIN_DISK_HIT_RATE:
            failures.append(
                f"{name}: warm-disk hit rate {rate:.0%} below the "
                f"{MIN_DISK_HIT_RATE:.0%} floor"
            )
    return failures


#: Machine-independent ratio floors, keyed by benchmark name:
#: ``(field, floor, what it proves)``. Unlike the wall-clock gates these
#: compare two measurements from the *same* run, so machine speed
#: cancels out and the floor is absolute.
RATIO_FLOORS = {
    # The window-blocked multi-core engine must stay >=5x over the
    # retained (bit-identical) per-wave reference loop at 300 tiles.
    "multicore_event_blocked_300": (
        "speedup_vs_reference_loop", 5.0,
        "the blocked event engine has degraded toward the per-wave loop",
    ),
    # On the second composite run over one persistent pool, the
    # warm-start broadcast must let workers serve >=90% of lookups
    # from their in-memory cache.
    "warm_worker_hit_rate": (
        "worker_memory_hit_rate", 0.9,
        "the warm-start broadcast no longer reaches persistent workers",
    ),
    # The cross-cell batched engine must stay well clear of the per-cell
    # scan on the dispatch-bound 48-cell short-stream grid (recorded
    # >=3x; the floor leaves jitter headroom).
    "grid_batched_48": (
        "batched_speedup", 2.2,
        "cross-cell batching has degraded toward per-cell dispatch",
    ),
    # On the paper's real 600-tile Figure 12 workload the runs are
    # work-bound and batching is ~parity (see docs/PERFORMANCE.md for
    # the tile-count decay) — this floor only catches the batched route
    # becoming an outright regression on real sweeps.
    "figure12_batched": (
        "batched_speedup", 0.85,
        "sweep-level batching now slows real workloads down",
    ),
    # N identical concurrent requests to the serve daemon must cost one
    # underlying sweep: every duplicate either coalesces onto the
    # running compute or is served off the warmed cache.
    "serve_coalesced_8x": (
        "coalesced_hit_rate", 0.9,
        "identical concurrent requests no longer coalesce onto one sweep",
    ),
    # A client hanging up after the first row must stop the daemon
    # dispatching the sweep's remaining cells: at least half the grid's
    # pool tasks are never submitted (recorded ~2/3 reclaimed on the
    # 48-cell anchor; detection costs a couple of row sends plus the
    # executor's bounded in-flight window).
    "serve_cancel_reclaim": (
        "reclaimed_fraction", 0.5,
        "cancelling a sweep no longer stops its pool dispatch",
    ),
    # A 48-entry cache delta must group-commit as one pack meaningfully
    # faster than 48 tmp+rename round-trips (recorded >=3x; the floor
    # leaves jitter headroom while still catching the packed path
    # silently degrading to the per-entry loop).
    "disk_delta_commit": (
        "delta_commit_speedup", 2.0,
        "packed delta commits have degraded toward per-entry writes",
    ),
    # Probing a warm directory through the persistent index must beat
    # re-stat-ing the store; below this the attach path has quietly gone
    # back to walking the directory.
    "disk_index_attach": (
        "index_attach_speedup", 1.5,
        "index-backed containment probes no longer beat the stat walk",
    ),
    # With the entry broadcast disabled, pipelined prefetch alone must
    # keep workers >=90% memory-hot on a warm replay: below this the
    # prefetch broadcast is no longer warming worker LRUs ahead of need.
    "prefetch_warm_sweep": (
        "prefetch_hit_rate", 0.9,
        "worker prefetch no longer warms the memory tier ahead of need",
    ),
}


def _ratio_floor_failures(recorded: dict, fresh: dict) -> "list[str]":
    """Gate the machine-independent ratio floors (see RATIO_FLOORS)."""
    failures = []
    for name, (field, floor, meaning) in sorted(RATIO_FLOORS.items()):
        if name not in recorded:
            continue
        value = fresh.get(name, {}).get(field)
        if value is None:
            failures.append(f"{name}: {field} measurement disappeared")
        elif value < floor:
            failures.append(
                f"{name}: {field} {value:.2f} below the {floor:.2f} "
                f"floor — {meaning}"
            )
    return failures


#: Machine-independent ratio ceilings, keyed by benchmark name:
#: ``(field, ceiling, what exceeding it proves)``. The mirror image of
#: :data:`RATIO_FLOORS` for overhead ratios measured within one run,
#: where *smaller* is better and machine speed cancels out.
RATIO_CEILINGS = {
    # Dispatching a dispatch-bound grid through 2 loopback socket
    # workers may cost framing/pickling overhead over the fork pool,
    # but must stay within 2x of it — above that the socket transport
    # is re-shipping state per cell instead of amortizing it.
    "remote_dispatch_overhead": (
        "dispatch_overhead_ratio", 2.0,
        "loopback socket dispatch costs more than 2x the fork pool",
    ),
    # A warm replay on live socket workers must ship almost no shard
    # bytes: the hash-sharded delta exchange dedups against each
    # host's disk index, so re-sending more than 10% of the cold
    # transfer means dedup has silently stopped recognizing entries.
    "remote_delta_dedup": (
        "warm_shard_bytes_ratio", 0.1,
        "warm socket replay re-ships cache shards dedup should skip",
    ),
}


def _ratio_ceiling_failures(recorded: dict, fresh: dict) -> "list[str]":
    """Gate the machine-independent ratio ceilings (see RATIO_CEILINGS)."""
    failures = []
    for name, (field, ceiling, meaning) in sorted(RATIO_CEILINGS.items()):
        if name not in recorded:
            continue
        value = fresh.get(name, {}).get(field)
        if value is None:
            failures.append(f"{name}: {field} measurement disappeared")
        elif value > ceiling:
            failures.append(
                f"{name}: {field} {value:.2f} above the {ceiling:.2f} "
                f"ceiling — {meaning}"
            )
    return failures


#: Hard ceiling for the streamed first-result fraction: at or above 1.0
#: the "stream" waits for the whole sweep, i.e. the incremental join has
#: silently degraded to a barrier.
MAX_FIRST_RESULT_FRACTION = 1.0


def _streaming_failures(
    recorded: dict, fresh: dict, tolerance: float
) -> "list[str]":
    """Gate time-to-first-result (figure12_time_to_first_result).

    ``first_result_fraction`` is first-cell time over full-sweep time
    measured in the same run, so machine speed cancels out. Two checks:
    the machine-independent ceiling (< 1.0 — streaming must beat the
    barrier by construction) and drift against the recorded ratio
    (catches the first cell silently doing a growing share of the
    sweep's work).
    """
    failures = []
    for name, entry in sorted(recorded.items()):
        ratio = entry.get("first_result_fraction")
        if ratio is None:
            continue
        fresh_ratio = fresh.get(name, {}).get("first_result_fraction")
        if fresh_ratio is None:
            failures.append(
                f"{name}: time-to-first-result measurement disappeared"
            )
            continue
        if fresh_ratio >= MAX_FIRST_RESULT_FRACTION:
            failures.append(
                f"{name}: first result arrived at {fresh_ratio:.0%} of the "
                "full sweep — the streamed path no longer emits before "
                "the sweep finishes"
            )
        elif fresh_ratio > ratio * (1.0 + tolerance):
            failures.append(
                f"{name}: first-result fraction {fresh_ratio:.2f} vs "
                f"recorded {ratio:.2f} (allowed "
                f"{ratio * (1.0 + tolerance):.2f})"
            )
    return failures


def compare(
    recorded: dict, fresh: dict, tolerance: float,
    skips: "list[str] | None" = None,
) -> "list[str]":
    """Return a list of human-readable regression descriptions.

    ``skips`` (if given) collects human-readable notes for gates that
    were skipped rather than evaluated (e.g. the parallel scaling gate
    on a single-CPU machine).
    """
    failures = []
    scale = _speed_scale(recorded, fresh)
    for name, entry in sorted(recorded.items()):
        baseline = entry.get("after_s")
        if baseline is None:
            continue
        fresh_entry = fresh.get(name, {})
        current = fresh_entry.get("after_s")
        if current is None:
            failures.append(f"{name}: benchmark disappeared from the harness")
            continue
        if (
            "cpu_count" in entry
            and fresh_entry.get("cpu_count") != entry.get("cpu_count")
        ):
            # Pool-width timings are core-count-bound, not just
            # machine-speed-bound: a 4-worker wall time recorded on a
            # multi-core host is unreachable on a 1-CPU container no
            # matter how fast it is. Only same-shape runs are gated.
            continue
        allowed = baseline * scale * (1.0 + tolerance)
        if current > allowed:
            failures.append(
                f"{name}: {current * 1e6:.1f} us vs recorded "
                f"{baseline * 1e6:.1f} us (allowed {allowed * 1e6:.1f} us "
                f"at machine-speed scale {scale:.2f})"
            )
    failures.extend(
        _parallel_scaling_failures(recorded, fresh, tolerance, skips)
    )
    failures.extend(_warm_cache_failures(recorded, fresh))
    failures.extend(_streaming_failures(recorded, fresh, tolerance))
    failures.extend(_ratio_floor_failures(recorded, fresh))
    failures.extend(_ratio_ceiling_failures(recorded, fresh))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"recorded report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown before failing (default: 0.25)",
    )
    parser.add_argument(
        "--repeats", type=int, default=10,
        help="timed repetitions per benchmark (default: 10)",
    )
    args = parser.parse_args(argv)
    if not args.report.exists():
        print(
            f"no recorded report at {args.report}; generate one with "
            "benchmarks/perf/run_bench.py"
        )
        return 2
    recorded = json.loads(args.report.read_text())["benchmarks"]
    fresh = run_benchmarks(repeats=args.repeats)
    skips: "list[str]" = []
    failures = compare(recorded, fresh, args.tolerance, skips)
    for skip in skips:
        print(f"skipped gate: {skip}")
    # Machine-readable skip record: CI asserts the skip *reason* off this
    # line instead of grepping the prose above.
    print(json.dumps({"skipped_gates": skips}))
    if failures:
        print("performance regressions detected:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"all {len(recorded)} benchmarks within +{args.tolerance:.0%} of "
        f"{args.report}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
