"""Benchmark: regenerate Figure 3 (traditional rooflines, DDR & HBM)."""

from benchmarks.conftest import record
from repro.experiments import figure3


def test_figure3(benchmark):
    ddr, hbm = benchmark(figure3.run)
    record(
        "figure3", ddr.format_table() + "\n\n" + hbm.format_table()
    )
    # Headline: on HBM the observed/optimal gap grows with compression;
    # Section 3.3 quotes optimal/observed = 4.94x at Q8_5%.
    q8_5 = next(p for p in hbm.points if p.label == "Q8_5%")
    assert 4.0 <= 1 / q8_5.efficiency <= 6.0
    # On DDR most schemes sit near the roofline.
    near = [p for p in ddr.points if p.efficiency > 0.9]
    assert len(near) >= 10
