"""Benchmark: regenerate Table 4 (LLM next-token latency)."""

from benchmarks.conftest import record
from repro.experiments import table4
from repro.experiments.paper_reference import TABLE4_LATENCY_MS


def test_table4(benchmark):
    result = benchmark(table4.run)
    record("table4", result.format_table())
    for (model, batch, scheme, engine), paper in TABLE4_LATENCY_MS.items():
        ours = result.latencies[(model, batch, scheme, engine)]
        tolerance = 0.10 if batch == 1 else 0.20
        assert abs(ours - paper) / paper <= tolerance, (model, batch, scheme)
