"""Benchmark: regenerate Figure 16 + Section 9.2 (design-space validation)."""

from benchmarks.conftest import record
from repro.experiments import figure16


def test_figure16(benchmark):
    result = benchmark(figure16.run)
    record("figure16", result.format_table())
    # Headlines: the DSE picks {W=32, L=8}; best is ~2x over the
    # underprovisioned design; overprovisioning gains <3%.
    assert (result.dse.best.width, result.dse.best.lut_count) == (32, 8)
    assert 1.5 <= result.best_over_under <= 2.5
    assert result.over_over_best - 1 < 0.03
