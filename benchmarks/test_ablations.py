"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation perturbs one modelling or microarchitecture decision and
checks the consequence the design rationale predicts:

* two Loaders (not one, not four) capture the double-buffering benefit,
* DECA's own prefetcher beats the stock L2 prefetch window,
* the fair-share single-core simulation matches the exact event backend,
* the binomial bubble model matches exact per-tile window counting,
* the software demand-load cap is what separates DDR from HBM behaviour.
"""

import numpy as np
import pytest

from benchmarks.conftest import record
from repro.core.schemes import parse_scheme
from repro.deca.config import DecaConfig
from repro.deca.integration import deca_kernel_timing
from repro.deca.timing import deca_dec_cycles, exact_dec_cycles
from repro.experiments.report import Table
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim.pipeline import (
    simulate_multicore_event,
    simulate_tile_stream,
)
from repro.sim.system import hbm_system
from repro.sparse.compress import compress_matrix


def test_loader_count_ablation(benchmark):
    """Two loaders ~halve the TEPL hazard; more than two adds little."""
    system = hbm_system()
    scheme = parse_scheme("Q8_5%")

    def run():
        intervals = {}
        for loaders in (1, 2, 4):
            config = DecaConfig(n_loaders=loaders)
            timing = deca_kernel_timing(system, scheme, config=config)
            sim = simulate_tile_stream(system, timing)
            intervals[loaders] = sim.steady_interval_cycles
        return intervals

    intervals = benchmark(run)
    table = Table(
        "Ablation: DECA Loader count (Q8_5%, HBM, TEPL)",
        ["loaders", "interval (cycles/tile)"],
    )
    for loaders, value in intervals.items():
        table.add_row(loaders, round(value, 1))
    record("ablation_loaders", table.render())
    gain_two = intervals[1] / intervals[2]
    gain_four = intervals[2] / intervals[4]
    assert gain_two > 1.5  # the second loader is transformative...
    assert gain_four < 1.25  # ...further loaders are not


def test_prefetch_discipline_ablation(benchmark):
    """DECA's prefetcher recovers the bandwidth the L2 one leaves idle."""
    system = hbm_system()
    scheme = parse_scheme("Q8")

    def run():
        from repro.deca.integration import INTEGRATION_LADDER
        return {
            opt.label: simulate_tile_stream(
                system, deca_kernel_timing(system, scheme, integration=opt)
            ).utilization.memory
            for opt in INTEGRATION_LADDER[:3]
        }

    utils = benchmark(run)
    table = Table(
        "Ablation: prefetch discipline vs memory utilisation (Q8, HBM)",
        ["configuration", "MEM util"],
    )
    for label, value in utils.items():
        table.add_row(label, f"{value:.0%}")
    record("ablation_prefetch", table.render())
    assert utils["+DECA prefetcher"] > utils["Base"]


def test_fair_share_vs_event_backend(benchmark):
    """The two simulation backends agree within 2%."""
    system = hbm_system()
    scheme = parse_scheme("Q8_20%")
    timing = software_kernel_timing(system, scheme)

    def run():
        fair = simulate_tile_stream(system, timing, tiles=300)
        event = simulate_multicore_event(system, timing, tiles_per_core=300)
        return fair.steady_interval_cycles, event.steady_interval_cycles

    fair, event = benchmark(run)
    record(
        "ablation_backends",
        f"fair-share interval {fair:.2f} vs event backend {event:.2f} "
        f"cycles/tile (diff {abs(fair - event) / fair:.2%})",
    )
    assert event == pytest.approx(fair, rel=0.02)


def test_bubble_model_vs_exact_windows(benchmark):
    """The binomial expectation matches real bitmask windows."""
    config = DecaConfig()
    rng = np.random.default_rng(7)
    weights = rng.normal(size=(256, 512)).astype(np.float32)

    def run():
        rows = {}
        for density in (0.5, 0.3, 0.1, 0.05):
            matrix = compress_matrix(
                weights, "bf8", density=density, pruning="random",
                rng=np.random.default_rng(int(density * 100)),
            )
            exact = float(np.mean(exact_dec_cycles(config, matrix)))
            model = deca_dec_cycles(
                config, parse_scheme(f"Q8_{int(density * 100)}%")
            )
            rows[density] = (exact, model)
        return rows

    rows = benchmark(run)
    table = Table(
        "Ablation: binomial bubble model vs exact window counting",
        ["density", "exact cycles/tile", "model cycles/tile"],
    )
    for density, (exact, model) in rows.items():
        table.add_row(f"{density:.0%}", round(exact, 2), round(model, 2))
        assert exact == pytest.approx(model, rel=0.04), density
    record("ablation_bubbles", table.render())


def test_software_demand_cap_sensitivity(benchmark):
    """The demand-load cap explains dense-Q8's 74% HBM memory utilisation."""
    system = hbm_system()
    scheme = parse_scheme("Q8")
    from dataclasses import replace

    def run():
        results = {}
        base = software_kernel_timing(system, scheme)
        for cap in (2.25, 4.5, 9.0, None):
            timing = replace(base, demand_load_cap=cap)
            sim = simulate_tile_stream(system, timing)
            results[cap] = sim.utilization.memory
        return results

    utils = benchmark(run)
    table = Table(
        "Ablation: software demand-load cap vs memory utilisation "
        "(dense Q8, HBM; paper observes 74%)",
        ["cap (B/cycle/core)", "MEM util"],
    )
    for cap, value in utils.items():
        table.add_row("uncapped" if cap is None else cap, f"{value:.0%}")
    record("ablation_demand_cap", table.render())
    # The calibrated 4.5 B/cycle reproduces the paper's 74%.
    assert utils[4.5] == pytest.approx(0.74, abs=0.03)
    assert utils[None] > utils[4.5]
