"""DECA's flexibility: support a brand-new quantization format by
reprogramming the LUT array — no hardware change (Section 7).

Defines a 3-bit "NF3"-style format (normal-float: codes placed at Gaussian
quantiles), registers it, compresses a matrix with it, and decompresses it
through the same DECA PE used for BF8/MXFP4.

Run with: python examples/custom_format.py
"""

import numpy as np

from repro import DecaPE, compress_matrix, decompress_matrix
from repro.core.bubbles import deca_vops_per_tile
from repro.formats.registry import QuantFormat, get_format, register_format

# A 3-bit normal-float grid: symmetric Gaussian quantiles (like NF4, one
# bit narrower). Hardware support costs nothing: it is just LUT contents.
_NF3_VALUES = np.array(
    [-1.0, -0.52, -0.23, 0.0, 0.12, 0.3, 0.56, 1.0], dtype=np.float32
)


def _nf3_encode(values: np.ndarray) -> np.ndarray:
    values = np.ascontiguousarray(values, dtype=np.float32)
    flat = values.ravel()[:, None]
    codes = np.abs(flat - _NF3_VALUES[None, :]).argmin(axis=1)
    return codes.astype(np.uint8).reshape(values.shape)


def _nf3_decode(codes: np.ndarray) -> np.ndarray:
    return _NF3_VALUES[np.ascontiguousarray(codes, dtype=np.uint8)]


def main() -> None:
    try:
        fmt = get_format("nf3")
    except Exception:
        fmt = register_format(
            QuantFormat(
                name="nf3",
                bits=3,
                group_size=None,
                scale_bits=0,
                encode=_nf3_encode,
                decode=_nf3_decode,
                description="3-bit normal-float (custom demo format)",
            )
        )
    rng = np.random.default_rng(1)
    weights = np.tanh(rng.normal(size=(256, 256))).astype(np.float32)
    matrix = compress_matrix(weights, "nf3", density=0.4)
    print(f"NF3 @ 40% density: CF = {matrix.compression_factor():.2f}x")

    # The exact same PE decompresses it after a LUT reprogram.
    pe = DecaPE()
    pe.configure("nf3")
    tout, stats = pe.process_tile(matrix.tiles[0])
    assert np.array_equal(
        pe.read_tout(tout), matrix.tiles[0].decompress_reference()
    )
    print(f"decompressed bit-exactly; {stats.bubbles} bubbles "
          f"(3-bit codes read 4 sub-LUTs per big LUT: Lq = 32)")

    # Sub-6-bit codes quadruple the LUT read rate, so even the dense form
    # runs bubble-free on the baseline {W=32, L=8} design:
    dense_slots = deca_vops_per_tile(32, 8, 3, 1.0, sparse=False)
    print(f"pipeline slots per dense NF3 tile: {dense_slots:.0f} "
          "(16 vOps, zero bubbles)")

    restored = decompress_matrix(matrix)
    err = np.abs(restored - np.where(restored != 0, weights, 0)).mean()
    print(f"mean reconstruction error on kept weights: {err:.4f}")


if __name__ == "__main__":
    main()
