"""Streaming sweep: consume results while the grid is still computing.

Run with: python examples/streaming_sweep.py [--jobs N]
    [--out rows.jsonl]

Every sweep in this package is a declarative ``SweepSpec`` (named axes
→ cell grid, a picklable per-cell task, a reducer) executed by a
streaming engine: workers ship back ``(cell_index, result,
cache_delta)`` chunks as each cell finishes, the parent merges cache
deltas and re-sorts by index on the fly, and ``spec.stream()`` yields
results in input order long before the last cell computes. This
example demonstrates the three things that buys you:

1. **time to first result** — the first record arrives at a small
   fraction of the full-sweep wall clock;
2. **incremental emission** — with ``--out``, every row is written and
   flushed as its cell lands (`tail -f` the file mid-sweep);
3. **early exit** — breaking out of the stream cancels every cell that
   has not been dispatched yet.

A note on batching: batchable specs (the grid is one) default to
*cross-cell batched* execution — shape-compatible cells are simulated
as one stacked NumPy pass that seeds the cache, and the per-cell tasks
then stream warm hits. Records, ordering, and emitted rows are
bit-identical either way; what changes is the latency profile (the
stack computes before the first yield, trading time-to-first-result
for total wall time). The latency demos below pass ``batch=False`` to
show the per-cell profile; drop it — or set ``REPRO_NO_BATCH=1`` /
use the CLI's ``--no-batch`` for the reverse — to compare.
"""

import argparse
import time

from repro.core.schemes import PAPER_SCHEMES
from repro.experiments.grid import grid_spec
from repro.experiments.parallel import last_sweep_execution
from repro.experiments.sweepspec import (
    iter_scenarios,
    open_emitter,
)
from repro.sim import clear_simulation_cache
from repro.sim.system import ddr_system, hbm_system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (0 = one per CPU, 1 = serial)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="emit per-cell rows to PATH (.csv or .jsonl) "
                             "incrementally")
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # 0. The registry: every sweep the package declares.
    # ------------------------------------------------------------------
    print("registered sweep scenarios:")
    for scenario in iter_scenarios():
        print(f"  {scenario.name:<12} {scenario.summary}")
    print()

    spec = grid_spec(
        systems=(hbm_system(), ddr_system()), schemes=PAPER_SCHEMES
    )
    total = spec.cell_count
    print(f"grid spec: {total} cells ({spec.describe_axes()})")

    # ------------------------------------------------------------------
    # 1 + 2. Stream the grid: first result early, rows emitted per cell.
    # ------------------------------------------------------------------
    clear_simulation_cache()
    emitter = open_emitter(args.out) if args.out else None
    start = time.perf_counter()
    first_at = None
    records = []
    for cell in spec.stream(jobs=args.jobs, batch=False):
        if first_at is None:
            first_at = time.perf_counter() - start
        records.append(cell.value)
        if emitter is not None:
            for row in spec.rows_for(cell):
                emitter.emit(row)
    full = time.perf_counter() - start
    if emitter is not None:
        emitter.close()
        print(f"emitted {total} rows incrementally to {args.out}")
    execution = last_sweep_execution()
    print(f"first record after {first_at * 1e3:6.1f} ms "
          f"({first_at / full:.0%} of the {full * 1e3:.1f} ms sweep, "
          f"{execution.jobs} worker(s))")

    # ------------------------------------------------------------------
    # 3. Early exit: stop after 4 cells; undispatched cells never run.
    # ------------------------------------------------------------------
    clear_simulation_cache()
    consumed = 0
    for cell in spec.stream(jobs=args.jobs, batch=False):
        consumed += 1
        if consumed == 4:
            break  # closing the stream cancels outstanding dispatch
    execution = last_sweep_execution()
    print(f"early exit: consumed {consumed}/{total} cells, "
          f"computed only {execution.completed} "
          f"(cancelled={execution.cancelled})")

    # The reduced (buffered) path is unchanged and warm from the merge.
    start = time.perf_counter()
    rerun = spec.run(jobs=1)
    assert rerun == records, "streamed records must match the buffered run"
    print(f"warm buffered rerun: {(time.perf_counter() - start) * 1e3:6.1f} "
          f"ms for {len(rerun)} records")


if __name__ == "__main__":
    main()
