"""Parallel grid sweep: fan a (system, scheme, engine) grid out across
worker processes, merge the per-worker simulation caches on join, and
export the records as CSV.

Run with: python examples/parallel_sweep.py [--jobs N] [--csv PATH]

``--jobs 0`` (the default here) uses one worker per CPU; results are
bit-identical to a serial run — the pool only changes wall-clock time.
"""

import argparse
import time

from repro.core.schemes import PAPER_SCHEMES
from repro.experiments.grid import run_grid, save_csv, to_csv
from repro.experiments.parallel import last_sweep_execution
from repro.sim import clear_simulation_cache, simulation_cache_stats
from repro.sim.system import ddr_system, hbm_system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (0 = one per CPU, 1 = serial)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="also write the records to this CSV file")
    args = parser.parse_args()

    systems = (hbm_system(), ddr_system())

    # ------------------------------------------------------------------
    # 1. Serial reference: the same grid on one core.
    # ------------------------------------------------------------------
    clear_simulation_cache()
    start = time.perf_counter()
    serial = run_grid(systems=systems, schemes=PAPER_SCHEMES, jobs=1)
    serial_s = time.perf_counter() - start
    print(f"serial:   {len(serial)} cells in {serial_s * 1e3:7.1f} ms")

    # ------------------------------------------------------------------
    # 2. Parallel run: same cells, striped across forked workers.
    # ------------------------------------------------------------------
    clear_simulation_cache()
    start = time.perf_counter()
    records = run_grid(systems=systems, schemes=PAPER_SCHEMES, jobs=args.jobs)
    parallel_s = time.perf_counter() - start
    execution = last_sweep_execution()
    print(f"parallel: {len(records)} cells in {parallel_s * 1e3:7.1f} ms "
          f"({execution.jobs} workers, {serial_s / parallel_s:.2f}x)")

    # ------------------------------------------------------------------
    # 3. The executor's contract: bit-identical records, merged cache.
    # ------------------------------------------------------------------
    assert records == serial, "parallel records must match serial exactly"
    stats = simulation_cache_stats()
    print(f"merged cache: {execution.merged_entries} entries from workers "
          f"({execution.duplicate_entries} duplicates), "
          f"{stats.misses} misses / {stats.hits} hits recorded")

    # A repeat sweep in this (parent) process is now all cache hits.
    start = time.perf_counter()
    run_grid(systems=systems, schemes=PAPER_SCHEMES, jobs=1)
    print(f"warm rerun from merged cache: "
          f"{(time.perf_counter() - start) * 1e3:7.1f} ms")

    # ------------------------------------------------------------------
    # 4. Export.
    # ------------------------------------------------------------------
    csv_text = to_csv(records)
    header, first = csv_text.splitlines()[:2]
    print(f"CSV: {len(csv_text.splitlines()) - 1} rows, e.g.\n"
          f"  {header}\n  {first}")
    if args.csv:
        save_csv(records, args.csv)
        print(f"wrote {args.csv}")


if __name__ == "__main__":
    main()
