"""Parallel grid sweep: declare a (system, scheme, engine) grid as a
``SweepSpec``, stream it across worker processes with incremental
cache merging, spill the results to a restart-surviving disk cache,
and export the records as CSV.

Run with: python examples/parallel_sweep.py [--jobs N] [--csv PATH]
    [--cache-dir PATH]

``--jobs 0`` (the default here) uses one worker per CPU; results are
bit-identical to a serial run — the pool only changes wall-clock time.
With ``--cache-dir`` the sweep also writes every simulated cell to a
content-addressed on-disk store; re-running this example with the same
directory replays the grid from disk instead of simulating it. (For
the streaming consumer side — first result early, per-cell emission,
early exit — see examples/streaming_sweep.py.)
"""

import argparse
import time

from repro.core.schemes import PAPER_SCHEMES
from repro.experiments.grid import grid_spec, save_csv, to_csv
from repro.experiments.parallel import last_sweep_execution
from repro.sim import (
    clear_simulation_cache,
    configure_simulation_cache_dir,
    simulation_cache_stats,
)
from repro.sim.system import ddr_system, hbm_system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (0 = one per CPU, 1 = serial)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="also write the records to this CSV file")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="spill results to a disk cache that "
                             "survives restarts (re-run me to see it)")
    args = parser.parse_args()

    # One declarative spec; every run below executes the same grid.
    spec = grid_spec(
        systems=(hbm_system(), ddr_system()), schemes=PAPER_SCHEMES
    )
    print(f"spec: {spec.cell_count} cells ({spec.describe_axes()})")

    # ------------------------------------------------------------------
    # 1. Serial reference: the same grid on one core.
    # ------------------------------------------------------------------
    clear_simulation_cache()
    start = time.perf_counter()
    serial = spec.run(jobs=1)
    serial_s = time.perf_counter() - start
    print(f"serial:   {len(serial)} cells in {serial_s * 1e3:7.1f} ms")

    # ------------------------------------------------------------------
    # 2. Parallel run: same cells, streamed across forked workers.
    # ------------------------------------------------------------------
    clear_simulation_cache()
    start = time.perf_counter()
    records = spec.run(jobs=args.jobs)
    parallel_s = time.perf_counter() - start
    execution = last_sweep_execution()
    print(f"parallel: {len(records)} cells in {parallel_s * 1e3:7.1f} ms "
          f"({execution.jobs} workers, {serial_s / parallel_s:.2f}x)")

    # ------------------------------------------------------------------
    # 3. The executor's contract: bit-identical records, merged cache.
    # ------------------------------------------------------------------
    assert records == serial, "parallel records must match serial exactly"
    stats = simulation_cache_stats()
    print(f"merged cache: {execution.merged_entries} entries from workers "
          f"({execution.duplicate_entries} duplicates), "
          f"{stats.misses} misses / {stats.hits} hits recorded")

    # A repeat sweep in this (parent) process is now all cache hits.
    start = time.perf_counter()
    spec.run(jobs=1)
    print(f"warm rerun from merged cache: "
          f"{(time.perf_counter() - start) * 1e3:7.1f} ms")

    # With --cache-dir, the same replay works across *restarts*. The
    # disk tier is attached only now, after the timed serial/parallel
    # comparison above, so those numbers measure pool scaling, not disk
    # replay: first a cold run computes every cell and spills it, then
    # dropping the in-memory tier (as a new process would) replays the
    # whole grid from disk.
    if args.cache_dir:
        configure_simulation_cache_dir(args.cache_dir)
        clear_simulation_cache()
        start = time.perf_counter()
        spec.run(jobs=args.jobs)
        print(f"spill into {args.cache_dir}: "
              f"{(time.perf_counter() - start) * 1e3:7.1f} ms")
        clear_simulation_cache()
        start = time.perf_counter()
        replayed = spec.run(jobs=args.jobs)
        stats = simulation_cache_stats()
        assert replayed == records, "disk replay must be bit-identical"
        print(f"warm replay from {args.cache_dir}: "
              f"{(time.perf_counter() - start) * 1e3:7.1f} ms "
              f"({stats.disk_hits} disk hits, {stats.misses} misses)")

    # ------------------------------------------------------------------
    # 4. Export.
    # ------------------------------------------------------------------
    csv_text = to_csv(records)
    header, first = csv_text.splitlines()[:2]
    print(f"CSV: {len(csv_text.splitlines()) - 1} rows, e.g.\n"
          f"  {header}\n  {first}")
    if args.csv:
        save_csv(records, args.csv)
        print(f"wrote {args.csv}")


if __name__ == "__main__":
    main()
