"""Walk the Figure 17 integration ladder for one scheme.

Shows how each system-integration decision (L2 reads, DECA's prefetcher,
TOut registers, TEPL) contributes to DECA's performance, and how the
TEPL benefit grows as tiles get sparser.

Run with: python examples/integration_ablation.py
"""

from repro.core.schemes import CompressionScheme
from repro.deca.integration import INTEGRATION_LADDER, deca_kernel_timing
from repro.sim import hbm_system, simulate_tile_stream


def main() -> None:
    system = hbm_system()
    print("Q8 per-tile steady-state interval (cycles) on the HBM machine:")
    header = "  density  " + "  ".join(
        f"{opt.label:>17s}" for opt in INTEGRATION_LADDER
    )
    print(header)
    for density in (1.0, 0.5, 0.2, 0.05):
        scheme = CompressionScheme("bf8", density)
        cells = []
        for option in INTEGRATION_LADDER:
            timing = deca_kernel_timing(system, scheme, integration=option)
            sim = simulate_tile_stream(system, timing)
            cells.append(f"{sim.steady_interval_cycles:17.1f}")
        print(f"  {density:7.0%}  " + "  ".join(cells))
    print("\nreading: every column is one more integration feature; the")
    print("last two (TOut registers, TEPL) matter most for sparse tiles,")
    print("where the fixed communication cost dominates the shrinking")
    print("decompression time — TEPL roughly doubles 5%-density speed.")


if __name__ == "__main__":
    main()
