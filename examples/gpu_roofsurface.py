"""The Roof-Surface model applied to GPUs (the paper's Section 10).

GPU Tensor Cores, like the TMUL, only consume dense well-formed tiles, so
Flash-LLM-style kernels decompress with SIMT vector instructions. This
example places the paper's compression schemes on an A100-like BORD and
shows most of them are vector-bound on the GPU too — the argument for a
DECA-style decompression engine inside the TMA.

Run with: python examples/gpu_roofsurface.py
"""

from repro.core import PAPER_SCHEMES
from repro.core.gpu import a100_like, gpu_bord, h100_like
from repro.core.roofsurface import BoundingFactor
from repro.kernels.libxsmm import software_aixv


def main() -> None:
    for machine in (a100_like(), h100_like()):
        bord = gpu_bord(machine)
        print(f"\n{machine.name}: MBW {machine.memory_bandwidth / 1e12:.2f} "
              f"TB/s, VOS {machine.vector_ops_per_second / 1e12:.2f} T/s, "
              f"MOS {machine.matrix_ops_per_second / 1e9:.0f} G tiles/s")
        vec_bound = []
        for scheme in PAPER_SCHEMES:
            bound = bord.classify(scheme.aixm(), software_aixv(scheme))
            marker = " <-- VEC" if bound is BoundingFactor.VECTOR else ""
            print(f"  {scheme.name:9s} {bound.value}{marker}")
            if bound is BoundingFactor.VECTOR:
                vec_bound.append(scheme.name)
        print(f"  => {len(vec_bound)}/12 schemes are vector-bound with "
              "software decompression; a TMA-integrated DECA would lift "
              "them to the memory bound, exactly as on the CPU.")


if __name__ == "__main__":
    main()
