"""Export the paper's key figures as SVG files (no matplotlib needed).

Writes Figure 3 (rooflines), Figure 5 (BORDs), and Figure 13 (speedups)
into ./figures/.

Run with: python examples/export_figures.py
"""

import pathlib

from repro.core.bord import Bord
from repro.core.roofsurface import RoofSurface
from repro.experiments import figure3, figure4, figure5, figure13
from repro.report.figures import bord_svg, roofline_svg, speedup_bars_svg
from repro.report.surface3d import roofsurface_svg
from repro.sim.system import ddr_system, hbm_system


def main() -> None:
    out = pathlib.Path("figures")
    out.mkdir(exist_ok=True)

    ddr, hbm = figure3.run()
    for result in (ddr, hbm):
        svg = roofline_svg(
            result.curve, result.points,
            f"Figure 3 ({result.memory}, N={result.batch_rows})",
        )
        (out / f"figure3_{result.memory.lower()}.svg").write_text(svg)

    for result, system in (
        (figure5.run_one(hbm_system(), "HBM"), hbm_system()),
        (figure5.run_one(ddr_system(), "DDR"), ddr_system()),
    ):
        svg = bord_svg(
            Bord(system.machine), result.points, 0.012, 0.012,
            f"Figure 5 ({result.memory}): Bounding Region Diagram",
        )
        (out / f"figure5_{result.memory.lower()}.svg").write_text(svg)

    fig4 = figure4.run()
    model = RoofSurface(hbm_system().machine, batch_rows=4)
    max_m = max(p.aixm for p in fig4.points) * 1.2
    max_v = max(p.aixv for p in fig4.points) * 1.2
    (out / "figure4a.svg").write_text(
        roofsurface_svg(model, fig4.points, max_m, max_v)
    )

    fig13 = figure13.run()
    labels = [row.scheme.name for row in fig13.speedups]
    svg = speedup_bars_svg(
        labels,
        {
            "software": [row.software for row in fig13.speedups],
            "DECA": [row.deca for row in fig13.speedups],
            "optimal": [row.optimal for row in fig13.speedups],
        },
        "Figure 13 (HBM, N=1): speedup vs uncompressed BF16",
    )
    (out / "figure13.svg").write_text(svg)
    print(f"wrote {len(list(out.glob('*.svg')))} SVG files into {out}/")


if __name__ == "__main__":
    main()
