"""Dimension a DECA design with the Roof-Surface model (Section 9.2).

Sweeps (W, L) pairs, reports which schemes each design leaves VEC-bound,
renders the BORD of the chosen design, and prices the candidates with the
area model.

Run with: python examples/design_space_exploration.py
"""

from repro.core import PAPER_SCHEMES, SPR_HBM, explore_deca_designs
from repro.core.bord import Bord
from repro.core.dse import deca_machine_view, scheme_deca_signature
from repro.deca.area import deca_area
from repro.deca.config import DecaConfig


def main() -> None:
    result = explore_deca_designs(SPR_HBM, PAPER_SCHEMES)
    print("design sweep (HBM SPR, the paper's 12 schemes):")
    for point in result.designs:
        status = "saturates" if point.saturates else (
            f"VEC-bound: {', '.join(point.vec_bound_schemes)}"
        )
        print(f"  W={point.width:3d} L={point.lut_count:3d} "
              f"cost={point.cost:7.0f}  {status}")
    best = result.best
    print(f"\nchosen design: W={best.width}, L={best.lut_count} "
          "(the paper's pick)")

    # BORD of the chosen design.
    bord = Bord(deca_machine_view(SPR_HBM))
    points = []
    for scheme in PAPER_SCHEMES:
        aixm, aixv = scheme_deca_signature(scheme, best.width, best.lut_count)
        points.append(bord.place(scheme.name, aixm, aixv))
    print()
    print(bord.render_ascii(points, 0.012, 0.07))

    # Price the Figure 16 designs.
    print("\narea (56 PEs, 7 nm):")
    for width, luts in ((8, 4), (32, 8), (64, 64)):
        breakdown = deca_area(DecaConfig(width=width, lut_count=luts))
        print(f"  W={width:3d} L={luts:3d}: {breakdown.total:6.2f} mm^2 "
              f"({breakdown.die_overhead():.3%} of the die)")


if __name__ == "__main__":
    main()
