"""Quickstart: compress a weight matrix, decompress it with DECA, and
predict compressed-GeMM performance with the Roof-Surface model.

Run with: python examples/quickstart.py
"""

import numpy as np

from repro import CompressionScheme, DecaPE, compress_matrix
from repro.core import RoofSurface, SPR_HBM
from repro.deca.integration import deca_kernel_timing
from repro.deca.timing import deca_aixv_for_scheme
from repro.deca.config import DecaConfig
from repro.kernels.libxsmm import software_aixv, software_kernel_timing
from repro.sim import hbm_system, simulate_tile_stream


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. Offline: compress a weight matrix (Figure 1, left).
    # ------------------------------------------------------------------
    weights = rng.normal(scale=0.05, size=(1024, 1024)).astype(np.float32)
    matrix = compress_matrix(weights, "bf8", density=0.2)
    print(f"compressed {matrix.shape} BF8 @ 20% density: "
          f"{matrix.nbytes() / 1e6:.2f} MB "
          f"(CF = {matrix.compression_factor():.2f}x vs BF16)")

    # ------------------------------------------------------------------
    # 2. Online: decompress one tile through the DECA PE (Figure 11).
    # ------------------------------------------------------------------
    pe = DecaPE()
    pe.configure("bf8")
    tout, stats = pe.process_tile(matrix.tiles[0])
    dense_tile = pe.read_tout(tout)
    reference = matrix.tiles[0].decompress_reference()
    assert np.array_equal(dense_tile, reference)
    print(f"DECA decompressed one tile in {stats.total_cycles} cycles "
          f"({stats.vops} vOps, {stats.bubbles} bubbles) — bit-exact")

    # ------------------------------------------------------------------
    # 3. Analytics: place the kernel on the Roof-Surface (Section 4).
    # ------------------------------------------------------------------
    scheme = CompressionScheme("bf8", 0.2)
    surface = RoofSurface(SPR_HBM, batch_rows=1)
    sw_point = surface.evaluate(
        "software", scheme.aixm(), software_aixv(scheme)
    )
    # DECA's own VOS is one vOp per cycle per PE (half the core's 2 units).
    deca_surface = RoofSurface(SPR_HBM.with_vector_scale(0.5), batch_rows=1)
    deca_point = deca_surface.evaluate(
        "DECA", scheme.aixm(), deca_aixv_for_scheme(DecaConfig(), scheme)
    )
    print(f"Roof-Surface: {sw_point.summary()}")
    print(f"Roof-Surface: {deca_point.summary()}")

    # ------------------------------------------------------------------
    # 4. Simulation: measure the actual speedup on the HBM machine.
    #    simulate_tile_stream memoizes by value (repro.sim.cache), so
    #    repeating either call — here or in any figure harness — is a
    #    dictionary lookup, not a re-simulation.
    # ------------------------------------------------------------------
    system = hbm_system()
    sw = simulate_tile_stream(system, software_kernel_timing(system, scheme))
    dc = simulate_tile_stream(system, deca_kernel_timing(system, scheme))
    speedup = sw.steady_interval_cycles / dc.steady_interval_cycles
    print(f"simulated: software {sw.flops(1) / 1e12:.2f} TFLOPS, "
          f"DECA {dc.flops(1) / 1e12:.2f} TFLOPS -> {speedup:.2f}x")

    # Sweeping many configurations? run_grid(jobs=N) fans independent
    # cells across a persistent pool of worker processes and merges
    # their caches on join — see examples/parallel_sweep.py and
    # `python -m repro --help` (--jobs on the experiments/simulate/dse
    # subcommands). Add --cache-dir PATH (or set REPRO_CACHE_DIR) and
    # results also spill to a disk cache that survives restarts: the
    # next invocation replays them instead of re-simulating.


if __name__ == "__main__":
    main()
