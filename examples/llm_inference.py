"""LLM next-token latency: reproduce the Table 4 story for Llama2-70B.

Sweeps the paper's compression schemes with software decompression and
with DECA, printing the latency and the speedup over the uncompressed
BF16 baseline.

Run with: python examples/llm_inference.py
"""

from repro.core.schemes import UNCOMPRESSED, parse_scheme
from repro.llm import EngineKind, llama2_70b, next_token_latency, opt_66b
from repro.sim import hbm_system


def main() -> None:
    system = hbm_system()
    schemes = ["Q4", "Q8_20%", "Q8_5%"]
    for model in (llama2_70b(), opt_66b()):
        baseline = next_token_latency(
            model, system, UNCOMPRESSED, EngineKind.UNCOMPRESSED,
            batch=1, input_tokens=128,
        )
        print(f"\n{model.name} ({model.fc_params / 1e9:.1f}B FC weights, "
              f"batch 1, 128 input tokens, HBM)")
        print(f"  BF16 baseline: {baseline.total_ms:7.1f} ms "
              f"({baseline.gemm_fraction:.0%} in FC GeMMs)")
        for name in schemes:
            scheme = parse_scheme(name)
            sw = next_token_latency(
                model, system, scheme, EngineKind.SOFTWARE, batch=1
            )
            deca = next_token_latency(
                model, system, scheme, EngineKind.DECA, batch=1
            )
            print(f"  {name:8s} software {sw.total_ms:7.1f} ms "
                  f"({baseline.total_ms / sw.total_ms:.2f}x) | "
                  f"DECA {deca.total_ms:7.1f} ms "
                  f"({baseline.total_ms / deca.total_ms:.2f}x, "
                  f"{sw.total_ms / deca.total_ms:.2f}x over software)")


if __name__ == "__main__":
    main()
