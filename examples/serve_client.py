"""Serve a sweep to many clients at once: the ``repro serve`` daemon.

Run with: python examples/serve_client.py [--clients N] [--jobs N]

Every CLI invocation normally pays the full serving setup — fork a
worker pool, warm the simulation cache — and throws it away on exit.
``repro serve`` keeps that state alive in one long-lived process and
streams sweep rows to concurrent clients over a local UNIX socket.
This example hosts a daemon in-process (the embedded ``ServeDaemon``
is exactly what the CLI verb runs) and demonstrates the three things
the serving layer adds on top of the sweep engine:

1. **request coalescing** — N concurrent identical requests attach to
   ONE compute and all receive bit-identical, cell-index-ordered
   streams;
2. **the cache-hit fast path** — a request whose cells are all warm
   streams straight off the memory tier without touching the pool;
3. **graceful drain** — the daemon finishes in-flight work, flushes
   the memory cache to the disk tier, and refuses new connections.

Against a daemon started separately (``python -m repro serve``), the
client half of this file is all you need; see docs/SERVING.md.
"""

import argparse
import tempfile
import threading
import time
from pathlib import Path

from repro.experiments.parallel import fork_available, shutdown_worker_pool
from repro.serve import ServeDaemon, ServeUnavailableError, connect
from repro.sim import clear_simulation_cache

SCENARIO = "figure12"


def stream_one(socket_path, results, index, barrier):
    """One client: connect, stream the sweep, record lines + timing."""
    client = connect(socket_path)
    barrier.wait()  # release every client at the same instant
    start = time.perf_counter()
    lines = list(client.sweep_lines(SCENARIO))
    results[index] = (lines, time.perf_counter() - start, client.last_ack)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent identical requests (default 4)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="daemon pool width (default 2)")
    args = parser.parse_args()
    if not fork_available():
        raise SystemExit("this example needs the fork start method")

    clear_simulation_cache()
    shutdown_worker_pool()
    with tempfile.TemporaryDirectory() as tmp:
        daemon = ServeDaemon(
            socket_path=str(Path(tmp) / "serve.sock"),
            jobs=args.jobs,
            max_active=2,
        )
        daemon.start()
        print(f"daemon listening on {daemon.socket_path} "
              f"(pool={args.jobs})")

        # --------------------------------------------------------------
        # 1. Coalescing: N cold clients, one compute.
        # --------------------------------------------------------------
        results = [None] * args.clients
        barrier = threading.Barrier(args.clients)
        threads = [
            threading.Thread(
                target=stream_one,
                args=(daemon.socket_path, results, i, barrier),
            )
            for i in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reference = results[0][0]
        assert all(lines == reference for lines, _, _ in results)
        coalesced = sum(bool(ack.get("coalesced")) for _, _, ack in results)
        snapshot = daemon.status_snapshot()
        print(f"{args.clients} concurrent '{SCENARIO}' requests → "
              f"{snapshot['sweeps_computed']} sweep(s) computed, "
              f"{coalesced} coalesced; every stream is bit-identical "
              f"({len(reference)} rows each)")

        # --------------------------------------------------------------
        # 2. Fast path: the cache is warm now — no pool involved.
        # --------------------------------------------------------------
        client = connect(daemon.socket_path)
        start = time.perf_counter()
        rows = list(client.sweep(SCENARIO))
        warm_s = time.perf_counter() - start
        assert client.last_summary.get("fast_path")
        print(f"warm rerun: {len(rows)} rows in {warm_s * 1e3:6.1f} ms "
              f"via the cache fast path (pool untouched)")

        # --------------------------------------------------------------
        # 3. Drain: finish in-flight work, then refuse new clients.
        # --------------------------------------------------------------
        daemon.drain()
        try:
            connect(daemon.socket_path).ping()
        except ServeUnavailableError:
            print("drained: socket removed, new connections refused")
    shutdown_worker_pool()


if __name__ == "__main__":
    main()
