"""Tests for the regression gate's skip reporting and ratio ceilings.

CI asserts skip *reasons* (e.g. the 1-CPU parallel-scaling skip) off a
machine-readable JSON line rather than grepping prose, and the socket
executor's overhead/dedup anchors are gated by ratio *ceilings* — the
mirror image of the long-standing ratio floors.
"""

import json

import pytest

from benchmarks.perf import check_regression


@pytest.fixture()
def report(tmp_path):
    """A minimal recorded report with the parallel-scaling anchor."""
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({
        "benchmarks": {
            "figure12_sweep_parallel": {
                "after_s": 1.0,
                "parallel_speedup_4w": 2.0,
                "cpu_count": 4.0,
            },
        },
    }))
    return path


def test_skipped_gates_emitted_as_json(report, monkeypatch, capsys):
    recorded = json.loads(report.read_text())["benchmarks"]
    monkeypatch.setattr(check_regression, "run_benchmarks",
                        lambda repeats: recorded)
    monkeypatch.setattr(check_regression.os, "cpu_count", lambda: 1)
    assert check_regression.main(["--report", str(report)]) == 0
    lines = capsys.readouterr().out.splitlines()
    payloads = [line for line in lines if line.startswith("{")]
    assert len(payloads) == 1
    skipped = json.loads(payloads[0])["skipped_gates"]
    assert len(skipped) == 1
    assert "1 CPU" in skipped[0]
    # The human-readable line still prints alongside the JSON record.
    assert any(line.startswith("skipped gate:") for line in lines)


def test_skipped_gates_empty_when_nothing_skipped(report, monkeypatch,
                                                  capsys):
    recorded = json.loads(report.read_text())["benchmarks"]
    monkeypatch.setattr(check_regression, "run_benchmarks",
                        lambda repeats: recorded)
    monkeypatch.setattr(check_regression.os, "cpu_count", lambda: 4)
    assert check_regression.main(["--report", str(report)]) == 0
    lines = capsys.readouterr().out.splitlines()
    payloads = [line for line in lines if line.startswith("{")]
    assert json.loads(payloads[0]) == {"skipped_gates": []}


def test_ratio_ceilings_flag_overhead_blowups():
    recorded = {
        "remote_dispatch_overhead": {
            "after_s": 1.0, "dispatch_overhead_ratio": 1.4,
        },
        "remote_delta_dedup": {
            "after_s": 1.0, "warm_shard_bytes_ratio": 0.0,
        },
    }
    # Within the ceilings: no failures.
    fresh = {
        "remote_dispatch_overhead": {
            "after_s": 1.0, "dispatch_overhead_ratio": 1.9,
        },
        "remote_delta_dedup": {
            "after_s": 1.0, "warm_shard_bytes_ratio": 0.05,
        },
    }
    assert check_regression._ratio_ceiling_failures(recorded, fresh) == []
    # Above them: both anchors flagged, and a vanished measurement is a
    # failure rather than a silent pass.
    fresh = {
        "remote_dispatch_overhead": {
            "after_s": 1.0, "dispatch_overhead_ratio": 2.5,
        },
        "remote_delta_dedup": {"after_s": 1.0},
    }
    failures = check_regression._ratio_ceiling_failures(recorded, fresh)
    assert len(failures) == 2
    assert any("above the 2.00 ceiling" in f for f in failures)
    assert any("disappeared" in f for f in failures)
