"""Tests for the packed-bitmask helpers."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.sparse.bitmask import (
    expansion_indices,
    pack_bitmask,
    popcount,
    unpack_bitmask,
)


class TestPackUnpack:
    def test_roundtrip(self, rng):
        mask = rng.random(512) < 0.3
        packed = pack_bitmask(mask)
        assert np.array_equal(unpack_bitmask(packed, 512), mask)

    def test_lsb_first_order(self):
        mask = np.zeros(8, dtype=bool)
        mask[0] = True
        assert pack_bitmask(mask)[0] == 1
        mask = np.zeros(8, dtype=bool)
        mask[7] = True
        assert pack_bitmask(mask)[0] == 0x80

    def test_padding(self):
        mask = np.ones(3, dtype=bool)
        packed = pack_bitmask(mask)
        assert packed.size == 1 and packed[0] == 0b111

    def test_512_bits_is_64_bytes(self):
        packed = pack_bitmask(np.ones(512, dtype=bool))
        assert packed.size == 64

    def test_unpack_count_too_large(self):
        with pytest.raises(CompressionError):
            unpack_bitmask(np.zeros(1, dtype=np.uint8), 9)

    def test_unpack_negative_count(self):
        with pytest.raises(CompressionError):
            unpack_bitmask(np.zeros(1, dtype=np.uint8), -1)


class TestPopcount:
    def test_matches_sum(self, rng):
        mask = rng.random(512) < 0.5
        assert popcount(pack_bitmask(mask)) == int(mask.sum())

    def test_empty(self):
        assert popcount(pack_bitmask(np.zeros(64, dtype=bool))) == 0

    def test_full(self):
        assert popcount(pack_bitmask(np.ones(64, dtype=bool))) == 64


class TestExpansionIndices:
    def test_exclusive_prefix_sum(self):
        mask = np.array([1, 0, 1, 1, 0, 1], dtype=bool)
        indices = expansion_indices(mask)
        assert list(indices) == [0, 1, 1, 2, 3, 3]

    def test_routing_reconstructs_dense(self, rng):
        mask = rng.random(64) < 0.4
        values = rng.normal(size=int(mask.sum())).astype(np.float32)
        indices = expansion_indices(mask)
        dense = np.zeros(64, dtype=np.float32)
        dense[mask] = values[indices[mask]]
        expected = np.zeros(64, dtype=np.float32)
        expected[mask] = values
        assert np.array_equal(dense, expected)

    def test_all_zeros(self):
        indices = expansion_indices(np.zeros(16, dtype=bool))
        assert np.all(indices == 0)
