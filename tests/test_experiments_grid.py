"""Tests for the grid-sweep tooling."""

import pytest

from repro.core.schemes import parse_scheme
from repro.errors import ConfigurationError
from repro.experiments.grid import run_grid, save_csv, to_csv
from repro.sim.system import hbm_system


class TestRunGrid:
    @pytest.fixture(scope="class")
    def records(self):
        return run_grid(
            systems=(hbm_system(),),
            schemes=(parse_scheme("Q8"), parse_scheme("Q8_5%")),
        )

    def test_cartesian_coverage(self, records):
        assert len(records) == 1 * 2 * 2
        keys = {(r.scheme, r.engine) for r in records}
        assert ("Q8_5%", "deca") in keys

    def test_deca_faster_on_vec_bound_scheme(self, records):
        by_key = {(r.scheme, r.engine): r for r in records}
        assert (
            by_key[("Q8_5%", "deca")].tiles_per_second
            > by_key[("Q8_5%", "software")].tiles_per_second
        )

    def test_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            run_grid(
                systems=(hbm_system(),),
                schemes=(parse_scheme("Q8"),),
                engines=("fpga",),
            )


class TestCsv:
    def test_roundtrippable_csv(self, tmp_path):
        records = run_grid(
            systems=(hbm_system(),), schemes=(parse_scheme("Q4"),)
        )
        text = to_csv(records)
        lines = text.strip().splitlines()
        assert lines[0].startswith("system,scheme,engine")
        assert len(lines) == len(records) + 1
        path = tmp_path / "grid.csv"
        save_csv(records, path)
        assert path.read_text() == text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            to_csv([])
