"""Tests for compression schemes and their memory signatures."""

import pytest

from repro.core.schemes import (
    CompressionScheme,
    PAPER_SCHEMES,
    UNCOMPRESSED,
    parse_scheme,
)
from repro.errors import ConfigurationError


class TestParsing:
    def test_dense_names(self):
        assert parse_scheme("Q8").format_name == "bf8"
        assert parse_scheme("Q4").format_name == "mxfp4"
        assert parse_scheme("Q16").format_name == "bf16"

    def test_density_suffix(self):
        scheme = parse_scheme("Q8_20%")
        assert scheme.density == pytest.approx(0.2)

    def test_case_insensitive(self):
        assert parse_scheme("q8_5%").name == "Q8_5%"

    def test_name_roundtrip(self):
        for scheme in PAPER_SCHEMES:
            assert parse_scheme(scheme.name) == scheme

    def test_bad_name(self):
        with pytest.raises(ConfigurationError):
            parse_scheme("FP8_20%")
        with pytest.raises(ConfigurationError):
            parse_scheme("Q8_")

    def test_unknown_q(self):
        with pytest.raises(ConfigurationError):
            parse_scheme("Q2")

    def test_invalid_density(self):
        with pytest.raises(ConfigurationError):
            CompressionScheme("bf8", 0.0)
        with pytest.raises(ConfigurationError):
            CompressionScheme("bf8", 1.2)


class TestBytesAndFactors:
    def test_uncompressed_tile_bytes(self):
        assert UNCOMPRESSED.bytes_per_tile() == 1024

    def test_dense_q8(self):
        assert parse_scheme("Q8").bytes_per_tile() == 512

    def test_sparse_adds_bitmask(self):
        # 512 x 0.2 x 1B + 64B bitmask.
        assert parse_scheme("Q8_20%").bytes_per_tile() == pytest.approx(166.4)

    def test_q4_includes_scales(self):
        assert parse_scheme("Q4").bytes_per_tile() == 256 + 16

    def test_compression_factor_formula(self):
        # Paper: CF = 16 / (Q * d + 1) for sparse schemes.
        scheme = parse_scheme("Q8_20%")
        assert scheme.compression_factor() == pytest.approx(16 / (8 * 0.2 + 1))

    def test_paper_scheme_order_is_increasing_cf(self):
        factors = [s.compression_factor() for s in PAPER_SCHEMES]
        assert factors == sorted(factors)

    def test_aixm_inverse_of_bytes(self, scheme):
        assert scheme.aixm() == pytest.approx(1.0 / scheme.bytes_per_tile())

    def test_traditional_ai_scales_with_batch(self):
        scheme = parse_scheme("Q8")
        assert scheme.traditional_ai(4) == pytest.approx(
            4 * scheme.traditional_ai(1)
        )

    def test_traditional_ai_saturates_at_16(self):
        scheme = parse_scheme("Q8")
        assert scheme.traditional_ai(32) == scheme.traditional_ai(16)

    def test_twelve_paper_schemes(self):
        assert len(PAPER_SCHEMES) == 12
