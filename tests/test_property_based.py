"""Property-based tests (hypothesis) on the core data structures.

Invariants covered:

* codec round trips are idempotent and error-bounded for every format,
* bitmask pack/unpack/expand is an exact bijection,
* tile compression -> DECA pipeline decompression is bit-exact against the
  reference for arbitrary data, formats, and densities,
* the binomial bubble model matches exact window counting in expectation,
* the Roof-Surface equation is monotone in both intensities.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bubbles import bubbles_per_vop_sparse, lut_reads_per_cycle
from repro.core.machine import SPR_HBM
from repro.core.roofsurface import RoofSurface
from repro.deca.config import DecaConfig
from repro.deca.crossbar import expand_window, split_windows
from repro.deca.pipeline import DecaPipeline
from repro.formats.bfloat import bf16_round, e5m2_bits_to_float32, float32_to_e5m2_bits
from repro.formats.fp8 import e4m3_bits_to_float32, float32_to_e4m3_bits
from repro.formats.mxfp import mx_group_dequantize, mx_group_quantize
from repro.sparse.bitmask import expansion_indices, pack_bitmask, popcount, unpack_bitmask
from repro.sparse.tile import CompressedTile, TILE_SHAPE

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False,
    width=32,
)


@st.composite
def float_arrays(draw, size):
    return draw(
        arrays(dtype=np.float32, shape=size, elements=finite_floats)
    )


class TestCodecProperties:
    @given(values=float_arrays(64))
    @settings(max_examples=50, deadline=None)
    def test_bf16_round_idempotent(self, values):
        once = bf16_round(values)
        assert np.array_equal(bf16_round(once), once)

    @given(values=float_arrays(64))
    @settings(max_examples=50, deadline=None)
    def test_bf16_relative_error(self, values):
        rounded = bf16_round(values)
        # 2^-132 of absolute slack covers float32 subnormals below BF16's
        # smallest subnormal (2^-133), which round to zero or to it.
        assert np.all(
            np.abs(rounded - values) <= np.abs(values) * 2.0**-8 + 2.0**-132
        )

    @given(values=float_arrays(64))
    @settings(max_examples=50, deadline=None)
    def test_e5m2_fixed_point(self, values):
        decoded = e5m2_bits_to_float32(float32_to_e5m2_bits(values))
        again = e5m2_bits_to_float32(float32_to_e5m2_bits(decoded))
        assert np.array_equal(decoded, again, equal_nan=True)

    @given(values=float_arrays(64))
    @settings(max_examples=50, deadline=None)
    def test_e4m3_fixed_point(self, values):
        decoded = e4m3_bits_to_float32(float32_to_e4m3_bits(values))
        again = e4m3_bits_to_float32(float32_to_e4m3_bits(decoded))
        assert np.array_equal(decoded, again, equal_nan=True)

    @given(values=float_arrays(32))
    @settings(max_examples=50, deadline=None)
    def test_mx_group_roundtrip_bounded(self, values):
        codes, scales = mx_group_quantize(values)
        restored = mx_group_dequantize(codes, scales)
        from repro.formats.mxfp import decode_shared_scale
        bound = float(decode_shared_scale(scales)[0]) * 2.0 + 1e-6
        assert np.all(np.abs(restored - values) <= bound)


class TestBitmaskProperties:
    @given(mask=arrays(dtype=bool, shape=512))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_bijection(self, mask):
        assert np.array_equal(unpack_bitmask(pack_bitmask(mask), 512), mask)

    @given(mask=arrays(dtype=bool, shape=512))
    @settings(max_examples=50, deadline=None)
    def test_popcount_invariant(self, mask):
        assert popcount(pack_bitmask(mask)) == int(mask.sum())

    @given(mask=arrays(dtype=bool, shape=64), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_expand_inverts_compaction(self, mask, data):
        nnz = int(mask.sum())
        values = data.draw(float_arrays(nnz))
        dense = expand_window(values, mask)
        # Compacting the dense vector must give the values back.
        assert np.array_equal(dense[mask], values)
        assert np.all(dense[~mask] == 0.0)

    @given(mask=arrays(dtype=bool, shape=256))
    @settings(max_examples=50, deadline=None)
    def test_expansion_indices_monotone(self, mask):
        indices = expansion_indices(mask)
        assert np.all(np.diff(indices) >= 0)

    @given(mask=arrays(dtype=bool, shape=512),
           width=st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=50, deadline=None)
    def test_split_windows_partition(self, mask, width):
        sizes, starts = split_windows(mask, width)
        assert sizes.sum() == mask.sum()
        assert starts[0] == 0
        assert np.all(np.diff(starts) == sizes[:-1])


class TestPipelineProperties:
    @given(
        data=st.data(),
        fmt=st.sampled_from(["bf8", "e4m3", "mxfp4", "bf16"]),
        width=st.sampled_from([8, 16, 32]),
        luts=st.sampled_from([4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_pipeline_bit_exact_for_arbitrary_tiles(
        self, data, fmt, width, luts
    ):
        dense = data.draw(float_arrays(TILE_SHAPE))
        mask = data.draw(arrays(dtype=bool, shape=TILE_SHAPE))
        if not mask.any():
            mask[0, 0] = True
        tile = CompressedTile.from_dense(dense, fmt, mask)
        pipeline = DecaPipeline(DecaConfig(width=width, lut_count=luts))
        pipeline.configure(fmt)
        out, stats = pipeline.decompress_tile(tile)
        assert np.array_equal(
            out, tile.decompress_reference(), equal_nan=True
        )
        assert stats.vops == 512 // width

    @given(
        density=st.floats(min_value=0.02, max_value=0.98),
        width=st.sampled_from([16, 32]),
        luts=st.sampled_from([4, 8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_bubble_model_matches_exact_windows(self, density, width, luts):
        # Expected bubbles from the CDF formula vs counting real windows.
        rng = np.random.default_rng(0)
        lq = lut_reads_per_cycle(luts, 8)
        windows = rng.binomial(width, density, size=50_000)
        empirical = float(
            np.mean(np.maximum(np.ceil(windows / lq), 1) - 1)
        )
        model = bubbles_per_vop_sparse(width, lq, density)
        assert math.isclose(model, empirical, abs_tol=0.05)


class TestRoofSurfaceProperties:
    @given(
        aixm=st.floats(min_value=1e-5, max_value=1.0),
        aixv=st.floats(min_value=1e-5, max_value=1.0),
        scale=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_intensities(self, aixm, aixv, scale):
        model = RoofSurface(SPR_HBM, batch_rows=1)
        base = model.tiles_per_second(aixm, aixv)
        assert model.tiles_per_second(aixm * scale, aixv) >= base
        assert model.tiles_per_second(aixm, aixv * scale) >= base

    @given(
        aixm=st.floats(min_value=1e-5, max_value=1.0),
        aixv=st.floats(min_value=1e-5, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_any_term(self, aixm, aixv):
        model = RoofSurface(SPR_HBM, batch_rows=1)
        tps = model.tiles_per_second(aixm, aixv)
        assert tps <= model.memory_rate(aixm) + 1e-6
        assert tps <= model.vector_rate(aixv) + 1e-6
        assert tps <= model.matrix_rate() + 1e-6
