"""Tests for matrix-level compression."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.formats.bfloat import bf16_round
from repro.sparse.compress import (
    compress_matrix,
    decompress_matrix,
    expected_tile_bytes,
)


class TestCompressMatrix:
    def test_tile_count(self, rng):
        w = rng.normal(size=(64, 96)).astype(np.float32)
        matrix = compress_matrix(w, "bf8")
        assert matrix.tile_count == (64 // 16) * (96 // 32)

    def test_dense_roundtrip_bf16(self, rng):
        w = rng.normal(size=(32, 64)).astype(np.float32)
        matrix = compress_matrix(w, "bf16")
        assert np.array_equal(decompress_matrix(matrix), bf16_round(w))

    def test_density_respected(self, rng):
        w = rng.normal(size=(64, 64)).astype(np.float32)
        matrix = compress_matrix(w, "bf8", density=0.3)
        assert matrix.density == pytest.approx(0.3, abs=0.01)

    def test_magnitude_pruning_keeps_largest(self, rng):
        w = rng.normal(size=(16, 32)).astype(np.float32)
        matrix = compress_matrix(w, "bf16", density=0.1)
        out = decompress_matrix(matrix)
        kept = out != 0
        assert np.abs(w[kept]).min() >= np.abs(w[~kept]).max()

    def test_random_pruning(self, rng):
        w = rng.normal(size=(32, 32)).astype(np.float32)
        matrix = compress_matrix(w, "bf8", density=0.5, pruning="random", rng=rng)
        assert matrix.density == pytest.approx(0.5, abs=0.02)

    def test_unknown_pruning(self, rng):
        w = rng.normal(size=(16, 32)).astype(np.float32)
        with pytest.raises(CompressionError, match="unknown pruning"):
            compress_matrix(w, "bf8", density=0.5, pruning="structured")

    def test_non_2d_rejected(self):
        with pytest.raises(CompressionError):
            compress_matrix(np.zeros((2, 16, 32), dtype=np.float32), "bf8")

    def test_compression_factor_dense_bf8(self, rng):
        w = rng.normal(size=(32, 64)).astype(np.float32)
        matrix = compress_matrix(w, "bf8")
        assert matrix.compression_factor() == pytest.approx(2.0)

    def test_compression_factor_sparse(self, rng):
        w = rng.normal(size=(64, 64)).astype(np.float32)
        matrix = compress_matrix(w, "bf8", density=0.2)
        # CF = 16 / (8 * 0.2 + 1) = 6.15
        assert matrix.compression_factor() == pytest.approx(6.15, rel=0.02)


class TestExpectedTileBytes:
    def test_dense_bf16(self):
        assert expected_tile_bytes(16, 1.0, sparse=False) == 1024

    def test_sparse_adds_bitmask(self):
        assert expected_tile_bytes(8, 0.5, sparse=True) == 256 + 64

    def test_group_scales(self):
        assert expected_tile_bytes(
            4, 1.0, sparse=False, scale_bits_per_group=8, group_size=32
        ) == 256 + 16

    def test_invalid_density(self):
        with pytest.raises(CompressionError):
            expected_tile_bytes(8, 0.0, sparse=True)
