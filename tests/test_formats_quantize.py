"""Tests for tensor-level quantization."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.quantize import (
    dequantize_tensor,
    quantize_tensor,
)


class TestQuantizeTensor:
    def test_bf16_roundtrip_is_rounding(self, rng):
        values = rng.normal(size=(8, 32)).astype(np.float32)
        tensor = quantize_tensor(values, "bf16")
        restored = dequantize_tensor(tensor)
        assert np.all(np.abs(restored - values) <= np.abs(values) * 2.0**-8)

    def test_bf8_storage_bits(self, rng):
        values = rng.normal(size=(4, 32)).astype(np.float32)
        tensor = quantize_tensor(values, "bf8")
        assert tensor.storage_bits() == 4 * 32 * 8

    def test_mxfp4_storage_bits_include_scales(self, rng):
        values = rng.normal(size=(2, 64)).astype(np.float32)
        tensor = quantize_tensor(values, "mxfp4")
        assert tensor.storage_bits() == 2 * 64 * 4 + 4 * 8  # 4 groups

    def test_mxfp4_shape_preserved(self, rng):
        values = rng.normal(size=(2, 64)).astype(np.float32)
        tensor = quantize_tensor(values, "mxfp4")
        assert tensor.codes.shape == (2, 64)
        assert dequantize_tensor(tensor).shape == (2, 64)

    def test_mxfp4_group_alignment_enforced(self, rng):
        values = rng.normal(size=(2, 33)).astype(np.float32)
        with pytest.raises(FormatError, match="not a multiple"):
            quantize_tensor(values, "mxfp4")

    def test_mxfp4_error_bound(self, rng):
        values = rng.normal(size=(4, 32)).astype(np.float32)
        restored = dequantize_tensor(quantize_tensor(values, "mxfp4"))
        # Error is bounded by two shared-scale units per group; the scale
        # is at least amax/8, so amax/4 bounds every element's error.
        amax = np.abs(values).max(axis=1, keepdims=True)
        assert np.all(np.abs(restored - values) <= amax * 0.25 + 1e-6)

    def test_unknown_format(self, rng):
        with pytest.raises(FormatError):
            quantize_tensor(np.zeros((2, 32), dtype=np.float32), "nope")

    def test_missing_scales_rejected(self, rng):
        values = rng.normal(size=(2, 32)).astype(np.float32)
        tensor = quantize_tensor(values, "mxfp4")
        broken = type(tensor)(
            format_name=tensor.format_name,
            codes=tensor.codes,
            scale_bits=None,
            shape=tensor.shape,
        )
        with pytest.raises(FormatError, match="requires scale bits"):
            dequantize_tensor(broken)
