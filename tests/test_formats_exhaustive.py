"""Exhaustive codec checks over complete code spaces."""

import numpy as np
import pytest

from repro.formats.bfloat import (
    bf16_bits_to_float32,
    e5m2_bits_to_float32,
    float32_to_bf16_bits,
    float32_to_e5m2_bits,
)
from repro.formats.fp8 import e4m3_bits_to_float32, float32_to_e4m3_bits
from repro.formats.mxfp import e2m1_bits_to_float32, float32_to_e2m1_bits
from repro.formats.registry import get_format


class TestExhaustiveFixedPoints:
    def test_every_e5m2_code_is_a_fixed_point(self):
        codes = np.arange(256, dtype=np.uint8)
        values = e5m2_bits_to_float32(codes)
        finite = np.isfinite(values)
        reencoded = float32_to_e5m2_bits(values[finite])
        assert np.array_equal(
            e5m2_bits_to_float32(reencoded), values[finite]
        )

    def test_every_e4m3_value_is_a_fixed_point(self):
        codes = np.arange(256, dtype=np.uint8)
        values = e4m3_bits_to_float32(codes)
        finite = np.isfinite(values)
        reencoded = float32_to_e4m3_bits(values[finite])
        assert np.array_equal(
            e4m3_bits_to_float32(reencoded), values[finite]
        )

    def test_every_e2m1_code_is_a_fixed_point(self):
        codes = np.arange(16, dtype=np.uint8)
        values = e2m1_bits_to_float32(codes)
        assert np.array_equal(
            e2m1_bits_to_float32(float32_to_e2m1_bits(values)), values
        )

    def test_bf16_positive_code_space_monotone(self):
        # All positive finite BF16 codes decode monotonically.
        codes = np.arange(0x0000, 0x7F80, dtype=np.uint16)
        values = bf16_bits_to_float32(codes)
        assert np.all(np.diff(values) > 0)

    def test_bf16_sample_codes_fixed_points(self):
        codes = np.arange(0x0000, 0x7F80, 37, dtype=np.uint16)
        values = bf16_bits_to_float32(codes)
        assert np.array_equal(float32_to_bf16_bits(values), codes)


class TestNearestNeighbourProperty:
    @pytest.mark.parametrize("fmt_name,encode,decode,bits", [
        ("bf8", float32_to_e5m2_bits, e5m2_bits_to_float32, 8),
        ("e4m3", float32_to_e4m3_bits, e4m3_bits_to_float32, 8),
        ("mxfp4", float32_to_e2m1_bits, e2m1_bits_to_float32, 4),
    ])
    def test_encode_picks_nearest_value(self, rng, fmt_name, encode, decode, bits):
        # Brute-force verification on random probes: no representable
        # value may be strictly closer than the chosen one.
        table = decode(np.arange(2**bits, dtype=np.uint8))
        finite_table = table[np.isfinite(table)]
        max_finite = np.nanmax(np.abs(finite_table))
        probes = rng.uniform(-max_finite, max_finite, size=500).astype(
            np.float32
        )
        chosen = decode(encode(probes))
        chosen_dist = np.abs(chosen.astype(np.float64) - probes)
        best_dist = np.min(
            np.abs(
                finite_table[None, :].astype(np.float64)
                - probes[:, None]
            ),
            axis=1,
        )
        assert np.allclose(chosen_dist, best_dist, rtol=0, atol=1e-12)


class TestLutDecoderEquivalence:
    @pytest.mark.parametrize("name", ["bf8", "e4m3", "mxfp4", "int4g32"])
    def test_lut_is_complete_decoder(self, name):
        from repro.formats.registry import dequant_lut
        fmt = get_format(name)
        lut = dequant_lut(fmt)
        codes = np.arange(2**fmt.bits, dtype=np.uint8)
        from repro.formats.bfloat import bf16_round
        assert np.array_equal(
            lut, bf16_round(fmt.decode(codes)), equal_nan=True
        )
