"""Tests for the shared speedup harness."""

import pytest

from repro.core.schemes import parse_scheme
from repro.experiments.speedups import (
    baseline_result,
    scheme_speedup,
    sweep_speedups,
)
from repro.sim.system import ddr_system, hbm_system


class TestSchemeSpeedup:
    def test_optimal_is_compression_factor_when_mem_bound(self, hbm):
        baseline = baseline_result(hbm)
        scheme = parse_scheme("Q8")
        row = scheme_speedup(hbm, scheme, baseline)
        assert row.optimal == pytest.approx(scheme.compression_factor())

    def test_deca_over_software_property(self, hbm):
        baseline = baseline_result(hbm)
        row = scheme_speedup(hbm, parse_scheme("Q8_10%"), baseline)
        assert row.deca_over_software == pytest.approx(
            row.deca / row.software
        )

    def test_batch_changes_optimal_only_via_ratio(self, hbm):
        baseline = baseline_result(hbm)
        n1 = scheme_speedup(hbm, parse_scheme("Q8"), baseline, batch_rows=1)
        n4 = scheme_speedup(hbm, parse_scheme("Q8"), baseline, batch_rows=4)
        # Speedups are ratios: batch cancels out for weight-bound kernels.
        assert n4.optimal == pytest.approx(n1.optimal)
        assert n4.software == pytest.approx(n1.software)


class TestSweep:
    def test_order_preserved(self, ddr):
        rows = sweep_speedups(ddr)
        names = [row.scheme.name for row in rows]
        assert names[0] == "Q16_50%" and names[-1] == "Q8_5%"

    def test_small_tile_budget_still_stable(self, hbm):
        fast = sweep_speedups(
            hbm, schemes=[parse_scheme("Q8_5%")], tiles=200
        )[0]
        slow = sweep_speedups(
            hbm, schemes=[parse_scheme("Q8_5%")], tiles=1200
        )[0]
        assert fast.deca == pytest.approx(slow.deca, rel=0.03)
