"""Bit-identity of the cross-cell batched engines vs the per-cell path.

The batched entry points promise *bit-identical* results to calling the
per-cell simulators cell by cell — same floats, same frozen traces, same
cache counter movement. These tests sweep an equivalence matrix across
heterogeneous systems, invocation modes, window geometries, per-tile
array timings, partial cache hits, and the escape hatches.
"""

import numpy as np
import pytest

from repro.core.schemes import PAPER_SCHEMES
from repro.deca.integration import FULL_INTEGRATION, deca_kernel_timing
from repro.errors import ConfigurationError
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim import pipeline as pipeline_module
from repro.sim.cache import (
    clear_simulation_cache,
    results_bit_equal,
    simulation_cache_stats,
)
from repro.sim.pipeline import (
    InvocationMode,
    KernelTiming,
    batch_group_key,
    multicore_batch_group_key,
    simulate_multicore_event,
    simulate_multicore_event_batch,
    simulate_tile_stream,
    simulate_tile_stream_batch,
)
from repro.sim.system import ddr_system, hbm_system


def _timing(**kwargs) -> KernelTiming:
    defaults = dict(bytes_per_tile=512.0, dec_cycles=32.0)
    defaults.update(kwargs)
    return KernelTiming(**defaults)


def _assert_batch_matches_per_cell(cells, use_cache=True):
    clear_simulation_cache()
    per = [
        simulate_tile_stream(s, t, n, use_cache=use_cache)
        for s, t, n in cells
    ]
    clear_simulation_cache()
    batched = simulate_tile_stream_batch(cells, use_cache=use_cache)
    assert len(batched) == len(cells)
    for one, two in zip(per, batched):
        assert results_bit_equal(one, two)
    return batched


class TestTileStreamEquivalence:
    def test_paper_grid_mixed_modes(self, hbm, ddr):
        # Heterogeneous systems x schemes x engines: software OVERLAPPED
        # cells and DECA TEPL cells in one call, several stack groups.
        cells = []
        for system in (hbm, ddr):
            for scheme in PAPER_SCHEMES[:4]:
                cells.append(
                    (system, software_kernel_timing(system, scheme), 96)
                )
                cells.append((
                    system,
                    deca_kernel_timing(
                        system, scheme, config=None,
                        integration=FULL_INTEGRATION,
                    ),
                    96,
                ))
        _assert_batch_matches_per_cell(cells)

    def test_paper_grid_uncached(self, hbm, ddr):
        cells = [
            (system, software_kernel_timing(system, scheme), 64)
            for system in (hbm, ddr)
            for scheme in PAPER_SCHEMES[:3]
        ]
        _assert_batch_matches_per_cell(cells, use_cache=False)

    @pytest.mark.parametrize("mode", list(InvocationMode))
    def test_single_mode_stack(self, hbm, ddr, mode):
        cells = [
            (system, _timing(
                mode=mode,
                bytes_per_tile=bpt,
                dec_cycles=dec,
                handoff_cycles=ho,
                invoke_cycles=2.0,
                fence_cycles=1.5,
            ), 48)
            for system in (hbm, ddr)
            for bpt, dec, ho in (
                (256.0, 24.0, 1.0), (2048.0, 8.0, 0.0), (64.0, 90.0, 3.0),
            )
        ]
        _assert_batch_matches_per_cell(cells)

    def test_no_dec_overlapped_stack(self, hbm, ddr):
        cells = [
            (system, _timing(dec_cycles=0.0, bytes_per_tile=bpt), 48)
            for system in (hbm, ddr)
            for bpt in (128.0, 1024.0, 4096.0)
        ]
        _assert_batch_matches_per_cell(cells)

    def test_window_variations_split_groups(self, hbm):
        # Three window sizes: three separate stacks, all bit-identical.
        cells = [
            (hbm, _timing(prefetch_window=window, bytes_per_tile=bpt), 48)
            for window in (2, 8, 24)
            for bpt in (256.0, 1024.0)
        ]
        _assert_batch_matches_per_cell(cells)

    def test_per_tile_array_timings(self, hbm, ddr, rng):
        # Per-tile byte/dec arrays stack like scalars (rows are the
        # broadcast arrays).
        tiles = 48
        cells = []
        for system in (hbm, ddr):
            for _ in range(3):
                cells.append((system, _timing(
                    bytes_per_tile=rng.uniform(64.0, 2048.0, tiles),
                    dec_cycles=rng.uniform(1.0, 60.0, tiles),
                ), tiles))
        _assert_batch_matches_per_cell(cells)

    def test_mixed_dec_cells_fall_back_per_cell(self, hbm):
        # An OVERLAPPED stream mixing dec and no-dec tiles has no batch
        # class; it must still come back bit-identical via the per-cell
        # engine, alongside batchable neighbours.
        mixed_dec = np.zeros(48)
        mixed_dec[::2] = 40.0
        cells = [
            (hbm, _timing(dec_cycles=mixed_dec.copy()), 48),
            (hbm, _timing(bytes_per_tile=256.0), 48),
            (hbm, _timing(bytes_per_tile=1024.0), 48),
        ]
        _assert_batch_matches_per_cell(cells)

    def test_singleton_groups_fall_back_per_cell(self, hbm):
        cells = [
            (hbm, _timing(prefetch_window=2), 48),
            (hbm, _timing(prefetch_window=9), 48),
        ]
        _assert_batch_matches_per_cell(cells)

    def test_serialized_uses_reference_loop_costs(self, hbm, ddr):
        cells = [
            (system, _timing(
                mode=InvocationMode.SERIALIZED,
                invoke_cycles=3.0, fence_cycles=2.0,
                handoff_cycles=1.0, loader_latency_cycles=4.0,
                bytes_per_tile=bpt,
            ), 48)
            for system in (hbm, ddr)
            for bpt in (128.0, 512.0, 2048.0)
        ]
        _assert_batch_matches_per_cell(cells)

    def test_traces_frozen_read_only(self, hbm):
        cells = [
            (hbm, _timing(bytes_per_tile=bpt), 48)
            for bpt in (256.0, 512.0, 1024.0)
        ]
        clear_simulation_cache()
        for result in simulate_tile_stream_batch(cells):
            trace = result.trace
            for array in (
                trace.fetch_issue, trace.mem_done, trace.dec_start,
                trace.dec_done, trace.mtx_start, trace.mtx_done,
            ):
                assert not array.flags.writeable

    def test_too_few_tiles_rejected(self, hbm):
        with pytest.raises(ConfigurationError):
            simulate_tile_stream_batch([(hbm, _timing(), 4)])

    def test_force_reference_engine_routes_per_cell(self, hbm):
        cells = [
            (hbm, _timing(bytes_per_tile=bpt), 48)
            for bpt in (256.0, 512.0, 1024.0)
        ]
        clear_simulation_cache()
        reference = [simulate_tile_stream(s, t, n) for s, t, n in cells]
        pipeline_module.FORCE_REFERENCE_ENGINE = True
        try:
            clear_simulation_cache()
            forced = simulate_tile_stream_batch(cells)
        finally:
            pipeline_module.FORCE_REFERENCE_ENGINE = False
        for one, two in zip(reference, forced):
            assert results_bit_equal(one, two)


class TestBatchGroupKey:
    def test_serialized_keys_on_mode_and_tiles(self):
        one = batch_group_key(
            _timing(mode=InvocationMode.SERIALIZED, prefetch_window=2), 48
        )
        two = batch_group_key(
            _timing(mode=InvocationMode.SERIALIZED, prefetch_window=30), 48
        )
        assert one == two  # serialized has no window feedback

    def test_tepl_keys_on_window_and_loaders(self):
        base = _timing(mode=InvocationMode.TEPL)
        assert batch_group_key(base, 48) != batch_group_key(
            _timing(mode=InvocationMode.TEPL, n_loaders=4), 48
        )

    def test_overlapped_keys_on_dec_class(self):
        with_dec = batch_group_key(_timing(dec_cycles=32.0), 48)
        no_dec = batch_group_key(_timing(dec_cycles=0.0), 48)
        assert with_dec != no_dec

    def test_mixed_dec_has_no_class(self):
        mixed = np.zeros(48)
        mixed[0] = 5.0
        assert batch_group_key(_timing(dec_cycles=mixed), 48) is None

    def test_tile_counts_never_alias(self):
        assert batch_group_key(_timing(), 48) != batch_group_key(
            _timing(), 64
        )


class TestCacheInterplay:
    def test_counter_parity_with_per_cell(self, hbm, ddr):
        cells = [
            (system, software_kernel_timing(system, scheme), 64)
            for system in (hbm, ddr)
            for scheme in PAPER_SCHEMES[:3]
        ]
        clear_simulation_cache()
        for system, timing, tiles in cells:
            simulate_tile_stream(system, timing, tiles)
        per_stats = simulation_cache_stats()
        clear_simulation_cache()
        simulate_tile_stream_batch(cells)
        batch_stats = simulation_cache_stats()
        assert batch_stats.hits == per_stats.hits
        assert batch_stats.misses == per_stats.misses
        assert batch_stats.size == per_stats.size

    def test_partial_warm_cache_excluded_from_stack(self, hbm):
        cells = [
            (hbm, _timing(bytes_per_tile=bpt), 48)
            for bpt in (256.0, 512.0, 1024.0, 2048.0)
        ]
        clear_simulation_cache()
        warm = [
            simulate_tile_stream(*cells[0]),
            simulate_tile_stream(*cells[2]),
        ]
        before = simulation_cache_stats()
        batched = simulate_tile_stream_batch(cells)
        after = simulation_cache_stats()
        # Warm cells are served from cache (one hit each), cold cells
        # are computed (one miss each).
        assert after.hits == before.hits + 2
        assert after.misses == before.misses + 2
        assert batched[0] is warm[0]
        assert batched[2] is warm[1]

    def test_duplicate_cells_compute_once(self, hbm):
        timing = _timing(bytes_per_tile=640.0)
        other = _timing(bytes_per_tile=320.0)
        cells = [(hbm, timing, 48), (hbm, other, 48), (hbm, timing, 48)]
        clear_simulation_cache()
        batched = simulate_tile_stream_batch(cells)
        stats = simulation_cache_stats()
        assert stats.misses == 2
        assert stats.hits == 1
        assert batched[0] is batched[2]
        assert results_bit_equal(
            batched[0], simulate_tile_stream(hbm, timing, 48)
        )

    def test_batched_results_serve_later_per_cell_calls(self, hbm):
        cells = [
            (hbm, _timing(bytes_per_tile=bpt), 48)
            for bpt in (300.0, 700.0)
        ]
        clear_simulation_cache()
        batched = simulate_tile_stream_batch(cells)
        for (system, timing, tiles), row in zip(cells, batched):
            assert simulate_tile_stream(system, timing, tiles) is row

    def test_use_cache_false_leaves_cache_untouched(self, hbm):
        cells = [
            (hbm, _timing(bytes_per_tile=bpt), 48)
            for bpt in (300.0, 700.0)
        ]
        clear_simulation_cache()
        simulate_tile_stream_batch(cells, use_cache=False)
        stats = simulation_cache_stats()
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.size == 0


class TestMulticoreEquivalence:
    def _cells(self, hbm, ddr):
        return [
            (system, _timing(bytes_per_tile=bpt, dec_cycles=dec), 12, cores)
            for system in (hbm, ddr)
            for bpt, dec in ((256.0, 24.0), (2048.0, 4.0))
            for cores in (4, None)
        ]

    def test_stack_matches_per_cell(self, hbm, ddr):
        cells = self._cells(hbm, ddr)
        per = [simulate_multicore_event(*cell) for cell in cells]
        batched = simulate_multicore_event_batch(cells)
        for one, two in zip(per, batched):
            assert results_bit_equal(one, two)

    def test_per_wave_arrays_match(self, hbm, rng):
        waves = 10
        cells = [
            (hbm, _timing(
                bytes_per_tile=rng.uniform(64.0, 4096.0, waves),
                dec_cycles=rng.uniform(1.0, 50.0, waves),
            ), waves, 6)
            for _ in range(4)
        ]
        per = [simulate_multicore_event(*cell) for cell in cells]
        batched = simulate_multicore_event_batch(cells)
        for one, two in zip(per, batched):
            assert results_bit_equal(one, two)

    def test_incompatible_cells_fall_back(self, hbm):
        # Mixed-dec waves have no blocked batch class; a lone window
        # geometry is a singleton group. Both take the per-cell path.
        mixed = np.zeros(12)
        mixed[3] = 9.0
        cells = [
            (hbm, _timing(prefetch_window=3), 12, 4),
            (hbm, _timing(dec_cycles=mixed), 12, 4),
            (hbm, _timing(), 12, 4),
        ]
        per = [simulate_multicore_event(*cell) for cell in cells]
        batched = simulate_multicore_event_batch(cells)
        for one, two in zip(per, batched):
            assert results_bit_equal(one, two)

    def test_group_key_splits_on_cores(self, hbm):
        timing = _timing()
        assert multicore_batch_group_key(hbm, timing, 12, 4) != (
            multicore_batch_group_key(hbm, timing, 12, 8)
        )

    def test_force_reference_engine_routes_per_cell(self, hbm):
        cells = [
            (hbm, _timing(bytes_per_tile=bpt), 12, 4)
            for bpt in (256.0, 1024.0)
        ]
        reference = [simulate_multicore_event(*cell) for cell in cells]
        pipeline_module.FORCE_REFERENCE_ENGINE = True
        try:
            forced = simulate_multicore_event_batch(cells)
        finally:
            pipeline_module.FORCE_REFERENCE_ENGINE = False
        for one, two in zip(reference, forced):
            assert results_bit_equal(one, two)
