"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CompressionError,
    ConfigurationError,
    FormatError,
    ProgramError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        FormatError, CompressionError, ConfigurationError,
        SimulationError, ProgramError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catchable_individually(self):
        with pytest.raises(FormatError):
            raise FormatError("x")

    def test_base_not_builtin_shadow(self):
        assert not issubclass(ReproError, (ValueError, TypeError))
