"""Tests for compressed AMX tiles."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.formats.bfloat import bf16_round
from repro.sparse.prune import random_mask
from repro.sparse.tile import BITMASK_BYTES, CompressedTile, TILE_SHAPE, tile_grid


def _dense_tile(rng):
    return rng.normal(scale=0.05, size=TILE_SHAPE).astype(np.float32)


class TestFromDense:
    def test_dense_tile_has_no_bitmask(self, rng):
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf8")
        assert tile.bitmask is None
        assert tile.nnz == 512

    def test_sparse_tile_has_bitmask(self, rng):
        mask = random_mask(TILE_SHAPE, 0.2, rng=rng)
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf8", mask)
        assert tile.bitmask is not None
        assert tile.bitmask.size == BITMASK_BYTES
        assert tile.nnz == int(mask.sum())

    def test_density_property(self, rng):
        mask = random_mask(TILE_SHAPE, 0.25, rng=rng)
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf16", mask)
        assert tile.density == pytest.approx(0.25)

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(CompressionError):
            CompressedTile.from_dense(
                np.zeros((8, 32), dtype=np.float32), "bf8"
            )

    def test_wrong_mask_shape_rejected(self, rng):
        with pytest.raises(CompressionError):
            CompressedTile.from_dense(
                _dense_tile(rng), "bf8", np.ones((8, 32), dtype=bool)
            )

    def test_mxfp4_has_scales(self, rng):
        tile = CompressedTile.from_dense(_dense_tile(rng), "mxfp4")
        assert tile.scale_bits is not None
        assert tile.scale_bits.size == 16  # 512 / 32 groups

    def test_bf8_has_no_scales(self, rng):
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf8")
        assert tile.scale_bits is None


class TestNbytes:
    def test_dense_bf16(self, rng):
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf16")
        assert tile.nbytes() == 1024

    def test_dense_bf8(self, rng):
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf8")
        assert tile.nbytes() == 512

    def test_dense_mxfp4(self, rng):
        tile = CompressedTile.from_dense(_dense_tile(rng), "mxfp4")
        assert tile.nbytes() == 256 + 16  # packed nibbles + scales

    def test_sparse_adds_bitmask(self, rng):
        mask = random_mask(TILE_SHAPE, 0.5, rng=rng)
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf8", mask)
        assert tile.nbytes() == 256 + 64


class TestDecompressReference:
    def test_dense_bf16_is_rounding(self, rng):
        dense = _dense_tile(rng)
        tile = CompressedTile.from_dense(dense, "bf16")
        assert np.array_equal(tile.decompress_reference(), bf16_round(dense))

    def test_sparse_zeros_in_place(self, rng):
        dense = _dense_tile(rng)
        mask = random_mask(TILE_SHAPE, 0.3, rng=rng)
        tile = CompressedTile.from_dense(dense, "bf16", mask)
        out = tile.decompress_reference()
        assert np.all(out[~mask] == 0.0)
        assert np.array_equal(out[mask], bf16_round(dense)[mask])

    def test_row_nnz_matches_mask(self, rng):
        mask = random_mask(TILE_SHAPE, 0.4, rng=rng)
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf8", mask)
        assert np.array_equal(tile.row_nnz(), mask.sum(axis=1))

    def test_mxfp4_scaling_applied(self, rng):
        dense = (_dense_tile(rng) * 100).astype(np.float32)
        tile = CompressedTile.from_dense(dense, "mxfp4")
        out = tile.decompress_reference()
        # Error bounded by 2 shared-scale units; scales are per 32-element
        # row group, so amax/4 per row bounds every element.
        amax = np.abs(dense).max(axis=1, keepdims=True)
        assert np.all(np.abs(out - dense) <= amax * 0.25 + 1e-4)

    def test_bitmask_popcount_validated(self, rng):
        mask = random_mask(TILE_SHAPE, 0.5, rng=rng)
        tile = CompressedTile.from_dense(_dense_tile(rng), "bf8", mask)
        with pytest.raises(CompressionError, match="popcount"):
            CompressedTile(
                format_name=tile.format_name,
                codes=tile.codes[:-1],  # drop one code
                bitmask=tile.bitmask,
                scale_bits=None,
            )


class TestTileGrid:
    def test_covers_matrix(self):
        slices = list(tile_grid((32, 64)))
        assert len(slices) == 2 * 2

    def test_row_major_order(self):
        slices = list(tile_grid((32, 64)))
        assert slices[0] == (slice(0, 16), slice(0, 32))
        assert slices[1] == (slice(0, 16), slice(32, 64))
        assert slices[2] == (slice(16, 32), slice(0, 32))

    def test_misaligned_rejected(self):
        with pytest.raises(CompressionError):
            list(tile_grid((30, 64)))
        with pytest.raises(CompressionError):
            list(tile_grid((32, 60)))
