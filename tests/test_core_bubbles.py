"""Tests for the binomial bubble model (Section 6.2)."""

import numpy as np
import pytest

from repro.core.bubbles import (
    bubbles_per_vop,
    bubbles_per_vop_dense,
    bubbles_per_vop_sparse,
    deca_aixv,
    deca_vops_per_tile,
    lut_reads_per_cycle,
)
from repro.errors import ConfigurationError


class TestLq:
    def test_eight_bit(self):
        assert lut_reads_per_cycle(8, 8) == 8

    def test_seven_bit_doubles(self):
        assert lut_reads_per_cycle(8, 7) == 16

    def test_six_bit_and_below_quadruple(self):
        assert lut_reads_per_cycle(8, 6) == 32
        assert lut_reads_per_cycle(8, 4) == 32
        assert lut_reads_per_cycle(8, 1) == 32

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            lut_reads_per_cycle(8, 9)
        with pytest.raises(ConfigurationError):
            lut_reads_per_cycle(8, 0)


class TestDenseBubbles:
    def test_w32_l8_8bit(self):
        # Window always 32, Lq=8 -> 4 cycles -> 3 bubbles.
        assert bubbles_per_vop_dense(32, 8) == 3

    def test_no_bubbles_when_lq_covers_w(self):
        assert bubbles_per_vop_dense(32, 32) == 0

    def test_w64_l64(self):
        assert bubbles_per_vop_dense(64, 64) == 0


class TestSparseBubbles:
    def test_zero_when_lq_covers_w(self):
        assert bubbles_per_vop_sparse(32, 32, 0.5) == 0.0

    def test_decreases_with_sparsity(self):
        dense_ish = bubbles_per_vop_sparse(32, 8, 0.9)
        sparse = bubbles_per_vop_sparse(32, 8, 0.1)
        assert sparse < dense_ish

    def test_approaches_dense_limit(self):
        # Density ~1 behaves like the dense case.
        assert bubbles_per_vop_sparse(32, 8, 0.9999) == pytest.approx(
            3.0, abs=0.01
        )

    def test_matches_monte_carlo(self):
        # Validate the CDF expectation against direct simulation.
        rng = np.random.default_rng(42)
        width, lq, density = 32, 8, 0.3
        windows = rng.binomial(width, density, size=200_000)
        emp = np.mean(np.maximum(np.ceil(windows / lq), 1) - 1)
        model = bubbles_per_vop_sparse(width, lq, density)
        assert model == pytest.approx(emp, abs=0.01)

    def test_invalid_density(self):
        with pytest.raises(ConfigurationError):
            bubbles_per_vop_sparse(32, 8, 0.0)

    def test_dispatch(self):
        assert bubbles_per_vop(32, 8, 1.0, sparse=False) == 3.0
        assert bubbles_per_vop(32, 8, 0.5, sparse=True) < 3.0


class TestVopsPerTile:
    def test_dense_8bit_w32_l8(self):
        # 16 vOps x (1 + 3 bubbles) = 64 pipeline slots.
        assert deca_vops_per_tile(32, 8, 8, 1.0, sparse=False) == 64

    def test_dense_4bit_no_bubbles(self):
        # Lq = 4 x 8 = 32 = W.
        assert deca_vops_per_tile(32, 8, 4, 1.0, sparse=False) == 16

    def test_no_dequant_no_bubbles(self):
        assert deca_vops_per_tile(32, 8, 8, 0.5, True, dequant_needed=False) == 16

    def test_width_must_divide_tile(self):
        with pytest.raises(ConfigurationError):
            deca_vops_per_tile(33, 8, 8, 1.0, sparse=False)

    def test_aixv_is_reciprocal(self):
        vops = deca_vops_per_tile(32, 8, 8, 0.2, sparse=True)
        assert deca_aixv(32, 8, 8, 0.2, sparse=True) == pytest.approx(1 / vops)

    def test_sparser_is_faster(self):
        slow = deca_vops_per_tile(32, 8, 8, 0.8, sparse=True)
        fast = deca_vops_per_tile(32, 8, 8, 0.05, sparse=True)
        assert fast < slow
