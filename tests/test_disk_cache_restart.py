"""End-to-end warm-restart tests for the disk cache and worker pool.

The disk tier's whole point is surviving process restarts, so these
tests actually restart: a small ``run_grid`` sweep runs in a fresh
subprocess twice against the same cache directory, and the second run
must replay bit-identical records almost entirely from disk. The
persistent-pool tests assert the other half of ISSUE 3's tentpole: two
sweeps inside one invocation reuse the same forked workers.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.experiments.parallel import (
    fork_available,
    last_sweep_execution,
    parallel_map,
    shutdown_worker_pool,
    worker_pool_pids,
    worker_pool_size,
)

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Driver executed in a fresh interpreter per "CLI invocation". Prints
#: one JSON document: the grid records with floats spelled as exact hex
#: (so the parent can assert bit-equality across processes) plus the
#: run's cache counters.
_DRIVER = """
import json, sys
from repro.core.schemes import parse_scheme
from repro.experiments.grid import run_grid
from repro.sim.cache import (
    configure_simulation_cache_dir, simulation_cache_stats,
)
from repro.sim.system import hbm_system

configure_simulation_cache_dir(sys.argv[1])
records = run_grid(
    systems=(hbm_system(),),
    schemes=tuple(parse_scheme(name) for name in sys.argv[2].split(",")),
    tiles=64,
)
stats = simulation_cache_stats()
print(json.dumps({
    "records": [
        [
            record.system, record.scheme, record.engine,
            record.interval_cycles.hex(), record.tiles_per_second.hex(),
            record.tflops_n1.hex(), record.mem_util.hex(),
            record.tmul_util.hex(), record.dec_util.hex(),
        ]
        for record in records
    ],
    "hits": stats.hits,
    "disk_hits": stats.disk_hits,
    "misses": stats.misses,
}))
"""


def _run_sweep_process(cache_dir, schemes="Q4,Q8_5%"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", _DRIVER, str(cache_dir), schemes],
        capture_output=True, text=True, env=env, cwd=_REPO_ROOT,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout)


@pytest.mark.slow
class TestWarmRestart:
    def test_restarted_sweep_replays_bit_identical_from_disk(self, tmp_path):
        cold = _run_sweep_process(tmp_path)
        warm = _run_sweep_process(tmp_path)
        # Bit-identical records: every float was serialized as exact hex.
        assert warm["records"] == cold["records"]
        # The cold process computed everything; the restarted process
        # must serve >= 90% of its lookups from the disk tier.
        assert cold["disk_hits"] == 0
        assert cold["misses"] > 0
        lookups = warm["hits"] + warm["disk_hits"] + warm["misses"]
        assert lookups > 0
        assert warm["disk_hits"] / lookups >= 0.9

    def test_unrelated_sweep_does_not_hit_stale_entries(self, tmp_path):
        _run_sweep_process(tmp_path, schemes="Q4")
        other = _run_sweep_process(tmp_path, schemes="Q8_20%")
        # Different configurations share no keys: all fresh misses
        # (aside from the shared baseline-free grid there is no overlap).
        assert other["disk_hits"] == 0
        assert other["misses"] > 0


def _worker_pid(_):
    """Module-level task body so pool workers can unpickle it."""
    return os.getpid()


@pytest.mark.skipif(
    not fork_available(), reason="persistent pool needs the fork start method"
)
class TestPersistentPool:
    def test_consecutive_sweeps_reuse_worker_pids(self):
        shutdown_worker_pool()
        first = set(parallel_map(_worker_pid, range(8), jobs=2))
        pool_pids = worker_pool_pids()
        assert len(pool_pids) == 2
        assert first <= set(pool_pids)
        second = set(parallel_map(_worker_pid, range(8), jobs=2))
        assert worker_pool_pids() == pool_pids
        assert second <= set(pool_pids)
        assert last_sweep_execution().pool_reused
        shutdown_worker_pool()

    def test_pool_rebuilt_when_grown(self):
        shutdown_worker_pool()
        parallel_map(_worker_pid, range(8), jobs=2)
        narrow = worker_pool_pids()
        parallel_map(_worker_pid, range(9), jobs=3)
        wide = worker_pool_pids()
        assert worker_pool_size() == 3
        assert len(wide) == 3
        assert not set(narrow) & set(wide)
        assert not last_sweep_execution().pool_reused
        shutdown_worker_pool()

    def test_smaller_sweep_reuses_wider_pool(self):
        # A 2-task sweep after a 3-wide one clamps to 2 partitions but
        # must not tear down the wider pool (surplus workers just idle).
        shutdown_worker_pool()
        parallel_map(_worker_pid, range(9), jobs=3)
        wide = worker_pool_pids()
        small = set(parallel_map(_worker_pid, range(2), jobs=3))
        assert worker_pool_pids() == wide
        assert worker_pool_size() == 3
        assert last_sweep_execution().pool_reused
        assert small <= set(wide)
        shutdown_worker_pool()

    def test_serial_sweep_spawns_no_pool(self):
        shutdown_worker_pool()
        parallel_map(_worker_pid, range(4), jobs=1)
        assert worker_pool_size() == 0
        assert worker_pool_pids() == ()

    def test_shutdown_is_idempotent(self):
        shutdown_worker_pool()
        shutdown_worker_pool()
        assert worker_pool_size() == 0
