"""Tests for the pipelined prefetch broadcast (disk tier v2).

A batchable sweep ships its cells' *keys* (not entries) to the pool at
dispatch; each worker warms its in-memory LRU from the shared disk tier
ahead of need. The invariants: prefetch is counter-neutral (a warmed
entry later reads as an ordinary memory hit), ``REPRO_NO_PREFETCH``
disables the whole seam, and the warming honors the deadline/cancel
seams instead of racing a finished sweep.
"""

import threading

import pytest

from repro.core.schemes import parse_scheme
from repro.experiments.grid import run_grid
from repro.experiments.parallel import (
    PREFETCH_DISABLE_ENV,
    fork_available,
    last_sweep_execution,
    prefetch_enabled,
    shutdown_worker_pool,
)
from repro.sim.cache import (
    SimulationCache,
    clear_simulation_cache,
    configure_simulation_cache_dir,
    prefetch_simulation_keys,
    simulation_cache_stats,
)
from repro.sim.diskcache import DiskCache
from repro.sim.pipeline import DRAM_EFFICIENCY, KernelTiming, simulate_tile_stream
from repro.sim.system import hbm_system

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="the worker pool needs the fork start method"
)


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_simulation_cache()
    yield
    configure_simulation_cache_dir(None)
    clear_simulation_cache()


def _sim_entries(n, tiles=8):
    from repro.sim.cache import simulation_key

    system = hbm_system()
    out = []
    for i in range(n):
        timing = KernelTiming(bytes_per_tile=150.0 + i, dec_cycles=20.0)
        key = simulation_key(system, timing, tiles, DRAM_EFFICIENCY)
        out.append((key, simulate_tile_stream(system, timing, tiles, use_cache=False)))
    return out


class TestPrefetchPrimitives:
    def test_prefetch_is_counter_neutral(self, tmp_path):
        entries = _sim_entries(3)
        disk = DiskCache(tmp_path)
        for key, value in entries:
            assert disk.store(key, value)
        cache = SimulationCache(maxsize=8, disk=disk)
        for key, _value in entries:
            assert cache.prefetch(key)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)
        assert disk.stats().hits == 0
        # The warmed entries now serve as ordinary memory hits.
        for key, value in entries:
            got = cache.get_or_compute(
                key, lambda: pytest.fail("prefetched entry not resident")
            )
            assert got is not None
        assert cache.stats().hits == len(entries)
        assert disk.stats().hits == 0

    def test_prefetch_missing_key_is_silent(self, tmp_path):
        cache = SimulationCache(maxsize=8, disk=DiskCache(tmp_path))
        assert cache.prefetch(("absent", 1)) is False
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_prefetch_simulation_keys_honors_should_stop(self, tmp_path):
        entries = _sim_entries(4)
        configure_simulation_cache_dir(str(tmp_path))
        try:
            from repro.sim.cache import simulation_cache_disk

            disk = simulation_cache_disk()
            for key, value in entries:
                assert disk.store(key, value)
            clear_simulation_cache()
            calls = []

            def stop_after_two():
                calls.append(None)
                return len(calls) > 2

            warmed = prefetch_simulation_keys(
                [key for key, _ in entries], should_stop=stop_after_two
            )
            assert warmed == 2
        finally:
            configure_simulation_cache_dir(None)


class TestPrefetchEscapeHatch:
    def test_env_disables_prefetch(self, monkeypatch):
        assert prefetch_enabled() is True
        monkeypatch.setenv(PREFETCH_DISABLE_ENV, "1")
        assert prefetch_enabled() is False
        monkeypatch.setenv(PREFETCH_DISABLE_ENV, "0")
        assert prefetch_enabled() is True

    def test_disabled_prefetch_sweep_still_bit_identical(
        self, tmp_path, monkeypatch
    ):
        configure_simulation_cache_dir(str(tmp_path))
        shutdown_worker_pool()
        grid = dict(
            systems=(hbm_system(),),
            schemes=(parse_scheme("Q8"), parse_scheme("Q4")),
            batch=False,
        )
        cold = run_grid(jobs=2, **grid)
        clear_simulation_cache()
        monkeypatch.setenv(PREFETCH_DISABLE_ENV, "1")
        warm = run_grid(jobs=2, **grid)
        execution = last_sweep_execution()
        assert warm == cold
        assert execution.prefetch_keys == 0
        assert execution.prefetch_workers == 0
        assert execution.prefetched_entries == 0
        # The replay is still fully cache-served, just lazily.
        assert execution.worker_misses == 0
        assert simulation_cache_stats().misses == 0


class TestPrefetchSweep:
    def test_warm_replay_prefetches_into_workers(self, tmp_path):
        configure_simulation_cache_dir(str(tmp_path))
        shutdown_worker_pool()
        grid = dict(
            systems=(hbm_system(),),
            schemes=(parse_scheme("Q8"), parse_scheme("Q4")),
            batch=False,
        )
        cold = run_grid(jobs=2, **grid)
        # Keys are shipped even on a cold sweep (the workers' probes
        # simply miss an empty disk) — warming is opportunistic.
        assert last_sweep_execution().prefetch_keys > 0
        clear_simulation_cache()
        warm = run_grid(jobs=2, **grid)
        execution = last_sweep_execution()
        assert warm == cold
        assert execution.prefetch_keys == 4  # 2 schemes x 2 engines
        assert execution.prefetch_workers >= execution.jobs
        assert execution.prefetched_entries >= 4
        assert execution.worker_misses == 0
