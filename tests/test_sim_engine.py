"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventEngine


class TestEventEngine:
    def test_events_run_in_time_order(self):
        engine = EventEngine()
        order = []
        engine.schedule_at(5.0, lambda: order.append("b"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_fifo(self):
        engine = EventEngine()
        order = []
        engine.schedule_at(1.0, lambda: order.append(1))
        engine.schedule_at(1.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_relative_scheduling(self):
        engine = EventEngine()
        times = []
        def first():
            times.append(engine.now)
            engine.schedule(3.0, lambda: times.append(engine.now))
        engine.schedule_at(2.0, first)
        final = engine.run()
        assert times == [2.0, 5.0]
        assert final == 5.0

    def test_past_scheduling_rejected(self):
        engine = EventEngine()
        engine.schedule_at(10.0, lambda: engine.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            engine.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventEngine().schedule(-1.0, lambda: None)

    def test_event_budget(self):
        engine = EventEngine()
        def loop():
            engine.schedule(1.0, loop)
        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="budget"):
            engine.run(max_events=100)

    def test_pending_count(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending == 2
        engine.run()
        assert engine.pending == 0
