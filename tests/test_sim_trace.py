"""Tests for pipeline tracing and Gantt rendering."""

import pytest

from repro.core.schemes import parse_scheme
from repro.deca.integration import INTEGRATION_LADDER, deca_kernel_timing
from repro.errors import SimulationError
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim import render_gantt, simulate_tile_stream, stage_latency_summary


@pytest.fixture
def result(hbm):
    timing = software_kernel_timing(hbm, parse_scheme("Q8_20%"))
    return simulate_tile_stream(hbm, timing, tiles=64)


class TestTrace:
    def test_trace_attached(self, result):
        assert result.trace is not None
        assert len(result.trace.mtx_done) == 64

    def test_stage_ordering_invariants(self, result):
        trace = result.trace
        for i in range(64):
            spans = trace.stage_spans(i)
            assert spans["fetch"][0] <= spans["fetch"][1]
            assert spans["decompress"][0] <= spans["decompress"][1]
            assert spans["matrix"][0] <= spans["matrix"][1]
            # Data must arrive before decompression starts.
            assert spans["fetch"][1] <= spans["decompress"][0] + 1e-9
            # The TMUL consumes only decompressed tiles.
            assert spans["decompress"][1] <= spans["matrix"][0] + 1e-9

    def test_out_of_range_tile(self, result):
        with pytest.raises(SimulationError):
            result.trace.stage_spans(64)

    def test_all_modes_traced(self, hbm):
        scheme = parse_scheme("Q8_20%")
        for option in INTEGRATION_LADDER:
            timing = deca_kernel_timing(hbm, scheme, integration=option)
            result = simulate_tile_stream(hbm, timing, tiles=32)
            assert result.trace is not None
            spans = result.trace.stage_spans(10)
            assert spans["decompress"][1] <= spans["matrix"][0] + 1e-9


class TestGantt:
    def test_renders_all_stages(self, result):
        art = render_gantt(result, first_tile=20, tiles=6)
        assert "d" in art and "M" in art
        assert art.count("tile ") == 6

    def test_window_validation(self, result):
        with pytest.raises(SimulationError):
            render_gantt(result, first_tile=60, tiles=10)
        with pytest.raises(SimulationError):
            render_gantt(result, width=4)

    def test_summary_values(self, result):
        summary = stage_latency_summary(result)
        assert summary["matrix_cycles"] == pytest.approx(16.0)
        assert summary["decompress_cycles"] > 0
        assert summary["fetch_cycles"] > 0
