"""Tests for the Kogge-Stone prefix-sum network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.deca.prefix_sum import KoggeStonePrefixSum
from repro.errors import ConfigurationError
from repro.sparse.bitmask import expansion_indices


class TestNetwork:
    def test_stage_count(self):
        assert KoggeStonePrefixSum(32).stage_count == 5
        assert KoggeStonePrefixSum(1).stage_count == 0
        assert KoggeStonePrefixSum(33).stage_count == 6

    def test_adder_count_w32(self):
        # Sum over s of (32 - 2^s) for s in 0..4 = 160 - 31 = 129.
        assert KoggeStonePrefixSum(32).adder_count() == 129

    def test_inclusive_scan(self):
        network = KoggeStonePrefixSum(8)
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=bool)
        trace = network.evaluate(bits)
        assert trace.inclusive.tolist() == [1, 1, 2, 3, 3, 3, 4, 4]
        assert trace.exclusive.tolist() == [0, 1, 1, 2, 3, 3, 3, 4]

    def test_depth_matches_stage_count(self):
        network = KoggeStonePrefixSum(16)
        trace = network.evaluate(np.ones(16, dtype=bool))
        assert trace.depth == network.stage_count

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigurationError):
            KoggeStonePrefixSum(8).evaluate(np.ones(9, dtype=bool))
        with pytest.raises(ConfigurationError):
            KoggeStonePrefixSum(0)

    @given(bits=arrays(dtype=bool, shape=32))
    @settings(max_examples=50, deadline=None)
    def test_matches_cumsum_shortcut(self, bits):
        network = KoggeStonePrefixSum(32)
        assert np.array_equal(
            network.expansion_indices(bits), expansion_indices(bits)
        )
        assert network.matches_reference(bits)

    def test_non_power_of_two_width(self):
        network = KoggeStonePrefixSum(24)
        bits = np.zeros(24, dtype=bool)
        bits[[0, 5, 23]] = True
        assert np.array_equal(
            network.expansion_indices(bits), expansion_indices(bits)
        )
