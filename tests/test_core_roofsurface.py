"""Tests for the 3-D Roof-Surface model."""

import numpy as np
import pytest

from repro.core.machine import SPR_HBM
from repro.core.roofsurface import BoundingFactor, RoofSurface
from repro.errors import ConfigurationError


class TestEquation:
    def test_min_of_three_terms(self):
        model = RoofSurface(SPR_HBM, batch_rows=1)
        aixm, aixv = 0.002, 0.01
        expected = min(850e9 * aixm, 280e9 * aixv, 8.75e9)
        assert model.tiles_per_second(aixm, aixv) == pytest.approx(expected)

    def test_flops_is_512n_times_tps(self):
        model = RoofSurface(SPR_HBM, batch_rows=4)
        assert model.flops(0.002, 0.01) == pytest.approx(
            512 * 4 * model.tiles_per_second(0.002, 0.01)
        )

    def test_batch_saturates_at_16(self):
        m16 = RoofSurface(SPR_HBM, batch_rows=16)
        m32 = RoofSurface(SPR_HBM, batch_rows=32)
        assert m16.flops(0.002, 0.01) == m32.flops(0.002, 0.01)

    def test_memory_bound_classification(self):
        model = RoofSurface(SPR_HBM)
        assert model.bounding_factor(1e-4, 1.0) is BoundingFactor.MEMORY

    def test_vector_bound_classification(self):
        model = RoofSurface(SPR_HBM)
        assert model.bounding_factor(1.0, 1e-4) is BoundingFactor.VECTOR

    def test_matrix_bound_classification(self):
        model = RoofSurface(SPR_HBM)
        assert model.bounding_factor(1.0, 1.0) is BoundingFactor.MATRIX

    def test_tie_never_reports_vector(self):
        model = RoofSurface(SPR_HBM)
        # Pick AI_XV so VEC rate exactly equals MOS.
        aixv = SPR_HBM.matrix_ops_per_second / SPR_HBM.vector_ops_per_second
        assert model.bounding_factor(1.0, aixv) is BoundingFactor.MATRIX

    def test_evaluate_summary(self):
        model = RoofSurface(SPR_HBM, batch_rows=4)
        point = model.evaluate("Q8", 0.002, 0.01)
        assert "Q8" in point.summary()
        assert point.bound in BoundingFactor

    def test_invalid_intensities(self):
        model = RoofSurface(SPR_HBM)
        with pytest.raises(ConfigurationError):
            model.tiles_per_second(0.0, 0.01)
        with pytest.raises(ConfigurationError):
            model.tiles_per_second(0.01, -1.0)


class TestSurfaceGrid:
    def test_shape(self):
        model = RoofSurface(SPR_HBM, batch_rows=4)
        x, y, z = model.surface_grid(0.01, 0.04, points=17)
        assert x.shape == y.shape == z.shape == (17, 17)

    def test_grid_matches_equation(self):
        model = RoofSurface(SPR_HBM, batch_rows=4)
        x, y, z = model.surface_grid(0.01, 0.04, points=9)
        for i in range(9):
            for j in range(9):
                assert z[i, j] == pytest.approx(model.flops(x[i, j], y[i, j]))

    def test_surface_is_monotone(self):
        model = RoofSurface(SPR_HBM, batch_rows=1)
        _x, _y, z = model.surface_grid(0.01, 0.04, points=15)
        # Increasing either intensity never decreases attainable FLOPS.
        assert np.all(np.diff(z, axis=0) >= -1e-6)
        assert np.all(np.diff(z, axis=1) >= -1e-6)

    def test_invalid_extent(self):
        with pytest.raises(ConfigurationError):
            RoofSurface(SPR_HBM).surface_grid(0.0, 0.01)
