"""Tests for the TEPL instruction model."""

import numpy as np
import pytest

from repro.deca.pe import DecaPE
from repro.errors import ProgramError
from repro.isa.amx import TileRegisterFile
from repro.isa.tepl import TeplInstruction, TeplUnit
from repro.sparse.prune import random_mask
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from tests.conftest import random_weights


def _tile(rng, density=0.4):
    mask = random_mask(TILE_SHAPE, density, rng=rng)
    return CompressedTile.from_dense(
        random_weights(rng, *TILE_SHAPE), "bf8", mask
    )


def _unit():
    pe = DecaPE()
    pe.configure("bf8")
    return TeplUnit(pe=pe, regs=TileRegisterFile())


class TestStructuralHazard:
    def test_two_in_flight_allowed(self, rng):
        unit = _unit()
        unit.issue(TeplInstruction(_tile(rng), 0))
        unit.issue(TeplInstruction(_tile(rng), 1))
        assert not unit.can_issue()

    def test_third_rejected(self, rng):
        unit = _unit()
        unit.issue(TeplInstruction(_tile(rng), 0))
        unit.issue(TeplInstruction(_tile(rng), 1))
        with pytest.raises(ProgramError, match="structural hazard"):
            unit.issue(TeplInstruction(_tile(rng), 0))

    def test_completion_frees_port(self, rng):
        unit = _unit()
        unit.issue(TeplInstruction(_tile(rng), 0))
        unit.issue(TeplInstruction(_tile(rng), 1))
        unit.complete_oldest()
        assert unit.can_issue()


class TestCompletion:
    def test_loads_destination_register(self, rng):
        unit = _unit()
        tile = _tile(rng)
        unit.issue(TeplInstruction(tile, 3))
        unit.complete_oldest()
        assert np.array_equal(
            unit.regs.read(3), tile.decompress_reference()
        )

    def test_fifo_order(self, rng):
        unit = _unit()
        first, second = _tile(rng), _tile(rng)
        unit.issue(TeplInstruction(first, 0))
        unit.issue(TeplInstruction(second, 1))
        done = unit.complete_oldest()
        assert done.tile is first

    def test_complete_on_empty_returns_none(self):
        assert _unit().complete_oldest() is None

    def test_drain(self, rng):
        unit = _unit()
        unit.issue(TeplInstruction(_tile(rng), 0))
        unit.issue(TeplInstruction(_tile(rng), 1))
        assert unit.drain() == 2
        assert unit.issued_total == 2


class TestSquash:
    def test_squash_aborts_everything(self, rng):
        unit = _unit()
        unit.issue(TeplInstruction(_tile(rng), 0))
        unit.issue(TeplInstruction(_tile(rng), 1))
        assert unit.squash() == 2
        assert unit.can_issue()
        assert unit.squashed_total == 2

    def test_reissue_after_squash_is_safe(self, rng):
        unit = _unit()
        tile = _tile(rng)
        unit.issue(TeplInstruction(tile, 0))
        unit.squash()
        unit.issue(TeplInstruction(tile, 0))
        unit.complete_oldest()
        assert np.array_equal(
            unit.regs.read(0), tile.decompress_reference()
        )
