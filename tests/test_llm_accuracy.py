"""Tests for the numerical-fidelity analysis."""

import numpy as np
import pytest

from repro.core.schemes import parse_scheme
from repro.llm.accuracy import (
    fidelity_sweep,
    gemm_relative_error,
    weight_sqnr_db,
)
from tests.conftest import random_weights


class TestSqnr:
    def test_bf16_very_high(self, rng):
        w = random_weights(rng, 64, 64)
        assert weight_sqnr_db(parse_scheme("Q16"), w) > 45

    def test_ordering_by_bits(self, rng):
        # More mantissa bits -> higher SQNR.
        w = random_weights(rng, 64, 64)
        q16 = weight_sqnr_db(parse_scheme("Q16"), w)
        q8 = weight_sqnr_db(parse_scheme("Q8"), w)
        q4 = weight_sqnr_db(parse_scheme("Q4"), w)
        assert q16 > q8 > q4

    def test_q4_still_usable(self, rng):
        # MXFP4's group scaling keeps SQNR in the usable range the
        # accuracy literature reports.
        w = random_weights(rng, 128, 128)
        assert weight_sqnr_db(parse_scheme("Q4"), w) > 12

    def test_pruning_isolated_from_quantization(self, rng):
        w = random_weights(rng, 64, 64)
        pruned_only = weight_sqnr_db(
            parse_scheme("Q16_50%"), w, against_pruned=True
        )
        with_pruning_noise = weight_sqnr_db(
            parse_scheme("Q16_50%"), w, against_pruned=False
        )
        assert pruned_only > with_pruning_noise


class TestGemmError:
    def test_error_grows_with_compression(self, rng):
        w = random_weights(rng, 64, 128)
        a = rng.normal(size=(4, 128)).astype(np.float32)
        e16 = gemm_relative_error(parse_scheme("Q16"), w, a)
        e8 = gemm_relative_error(parse_scheme("Q8"), w, a)
        e4 = gemm_relative_error(parse_scheme("Q4"), w, a)
        assert e16 < e8 < e4

    def test_magnitude_pruning_bounded_error(self, rng):
        # 50% magnitude pruning of Gaussian weights keeps most energy.
        w = random_weights(rng, 64, 128)
        a = rng.normal(size=(4, 128)).astype(np.float32)
        error = gemm_relative_error(parse_scheme("Q16_50%"), w, a)
        assert error < 0.45

    def test_int4_comparable_to_mxfp4(self, rng):
        w = random_weights(rng, 64, 128)
        a = rng.normal(size=(4, 128)).astype(np.float32)
        e_mx = gemm_relative_error(parse_scheme("Q4"), w, a)
        e_i4 = gemm_relative_error(parse_scheme("I4"), w, a)
        assert e_i4 == pytest.approx(e_mx, rel=0.8)


class TestSweep:
    def test_reports_for_all_schemes(self, rng):
        schemes = [parse_scheme(n) for n in ("Q16", "Q8", "Q4", "I4")]
        reports = fidelity_sweep(schemes, rows=64, cols=64, rng=rng)
        assert [r.scheme_name for r in reports] == ["Q16", "Q8", "Q4", "I4"]
        for report in reports:
            assert report.weight_sqnr_db > 0
            assert "SQNR" in report.summary()
