"""Tests for machine specifications."""

import pytest

from repro.core.machine import SPR_DDR, SPR_HBM, MachineSpec, spr_hbm
from repro.errors import ConfigurationError


class TestMachineSpec:
    def test_hbm_vos(self):
        # 2.5 GHz x 56 cores x 2 SIMD units = 280 G vOps/s.
        assert SPR_HBM.vector_ops_per_second == pytest.approx(280e9)

    def test_hbm_mos(self):
        # 2.5 GHz x 56 / 16 cycles = 8.75 G tile ops/s.
        assert SPR_HBM.matrix_ops_per_second == pytest.approx(8.75e9)

    def test_bandwidths(self):
        assert SPR_HBM.memory_bandwidth == pytest.approx(850e9)
        assert SPR_DDR.memory_bandwidth == pytest.approx(260e9)

    def test_with_cores(self):
        small = SPR_HBM.with_cores(8)
        assert small.cores == 8
        assert small.matrix_ops_per_second == pytest.approx(8.75e9 / 7)

    def test_with_vector_scale(self):
        scaled = SPR_HBM.with_vector_scale(4)
        assert scaled.vector_ops_per_second == pytest.approx(4 * 280e9)
        assert scaled.matrix_ops_per_second == SPR_HBM.matrix_ops_per_second

    def test_with_bandwidth(self):
        fast = SPR_DDR.with_bandwidth(500e9)
        assert fast.memory_bandwidth == 500e9

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("x", 0, 2.5e9, 2, 1e9)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("x", 1, 0.0, 2, 1e9)

    def test_invalid_vector_scale(self):
        with pytest.raises(ConfigurationError):
            SPR_HBM.with_vector_scale(0.1)

    def test_custom_core_count_preset(self):
        assert spr_hbm(16).cores == 16
