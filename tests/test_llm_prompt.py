"""Tests for the prompt-phase and request-latency models."""

import pytest

from repro.core.schemes import parse_scheme
from repro.errors import ConfigurationError
from repro.llm.inference import EngineKind
from repro.llm.models import llama2_70b, opt_66b
from repro.llm.prompt import prompt_latency, request_latency


class TestPromptPhase:
    def test_compute_bound_for_long_prompts(self, hbm):
        # Past ~150 tokens the TMUL becomes the bottleneck and FC time
        # scales linearly with the token count.
        t256 = prompt_latency(llama2_70b(), hbm, input_tokens=256)
        t2048 = prompt_latency(llama2_70b(), hbm, input_tokens=2048)
        assert t2048.fc_seconds == pytest.approx(
            8 * t256.fc_seconds, rel=0.05
        )
        # While a short prompt sits on the memory floor.
        t16 = prompt_latency(llama2_70b(), hbm, input_tokens=16)
        t1 = prompt_latency(llama2_70b(), hbm, input_tokens=1)
        assert t16.fc_seconds == pytest.approx(t1.fc_seconds, rel=0.01)

    def test_memory_floor_for_single_token(self, hbm):
        # One token still sweeps all the weights once.
        result = prompt_latency(llama2_70b(), hbm, input_tokens=1)
        weight_seconds = llama2_70b().fc_bytes_bf16() / (850e9 * 0.93)
        assert result.fc_seconds == pytest.approx(weight_seconds, rel=0.01)

    def test_compression_shrinks_short_prompt_time(self, hbm):
        base = prompt_latency(llama2_70b(), hbm, input_tokens=16)
        compressed = prompt_latency(
            llama2_70b(), hbm, parse_scheme("Q8_10%"), input_tokens=16
        )
        assert compressed.fc_seconds < base.fc_seconds

    def test_attention_quadratic(self, hbm):
        t1 = prompt_latency(llama2_70b(), hbm, input_tokens=256)
        t2 = prompt_latency(llama2_70b(), hbm, input_tokens=512)
        assert t2.attention_seconds == pytest.approx(
            4 * t1.attention_seconds, rel=0.01
        )

    def test_validation(self, hbm):
        with pytest.raises(ConfigurationError):
            prompt_latency(llama2_70b(), hbm, input_tokens=0)


class TestRequestLatency:
    def test_composition(self, hbm):
        request = request_latency(
            llama2_70b(), hbm, parse_scheme("Q4"), EngineKind.DECA,
            input_tokens=128, output_tokens=128,
        )
        assert request.total_seconds == pytest.approx(
            request.prompt.total_seconds + 128 * request.per_token_seconds
        )

    def test_generation_dominates_long_outputs(self, hbm):
        # The paper's premise: generation dominates end-to-end time.
        request = request_latency(
            llama2_70b(), hbm, input_tokens=128, output_tokens=128,
        )
        assert request.generation_seconds > 5 * request.prompt.total_seconds

    def test_deca_improves_tokens_per_second(self, hbm):
        scheme = parse_scheme("Q8_5%")
        sw = request_latency(
            llama2_70b(), hbm, scheme, EngineKind.SOFTWARE,
        )
        deca = request_latency(
            llama2_70b(), hbm, scheme, EngineKind.DECA,
        )
        assert deca.tokens_per_second > 2 * sw.tokens_per_second

    def test_opt_request_faster(self, hbm):
        llama = request_latency(llama2_70b(), hbm)
        opt = request_latency(opt_66b(), hbm)
        assert opt.total_seconds < llama.total_seconds

    def test_validation(self, hbm):
        with pytest.raises(ConfigurationError):
            request_latency(llama2_70b(), hbm, output_tokens=0)
