"""Tests for disk-cache garbage collection (``prune_cache_dir``).

The disk tier used to be append-only; these tests pin the eviction
contract: LRU by *use* (loads refresh mtime), age and byte budgets,
stale-tmp reclamation, and the CLI/env front doors.
"""

import os
import time

import pytest

from repro.sim.diskcache import (
    DiskCache,
    PruneReport,
    STALE_TMP_AGE_S,
    key_digest,
    prune_cache_dir,
)


def _age(path, seconds):
    """Backdate a file's mtime by ``seconds``."""
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def _make_entries(root, count, payload_size=100):
    """Store ``count`` distinct entries; returns their file paths."""
    cache = DiskCache(root)
    paths = []
    for i in range(count):
        key = ("prune-test", i)
        assert cache.store(key, "x" * payload_size)
        paths.append(cache.entry_path(key))
    return cache, paths


class TestPruneCacheDir:
    def test_missing_root_yields_zero_report(self, tmp_path):
        report = prune_cache_dir(tmp_path / "never-created", max_bytes=0)
        assert report == PruneReport(0, 0, 0, 0, 0, 0, 0)

    def test_max_bytes_zero_empties_the_store(self, tmp_path):
        _make_entries(tmp_path, 3)
        report = prune_cache_dir(tmp_path, max_bytes=0)
        assert report.scanned_entries == 3
        assert report.removed_entries == 3
        assert report.kept_entries == 0
        assert report.kept_bytes == 0
        assert not list(tmp_path.rglob("*.pkl"))
        # The directory itself survives and keeps accepting entries.
        cache = DiskCache(tmp_path)
        assert cache.store(("fresh",), "value")

    def test_oldest_entries_evicted_first(self, tmp_path):
        _, paths = _make_entries(tmp_path, 3)
        _age(paths[0], 300)
        _age(paths[1], 200)
        _age(paths[2], 100)
        total = sum(p.stat().st_size for p in paths)
        budget = total - 1  # forces out exactly the oldest entry
        report = prune_cache_dir(tmp_path, max_bytes=budget)
        assert report.removed_entries == 1
        assert not paths[0].exists()
        assert paths[1].exists() and paths[2].exists()
        assert report.kept_bytes <= budget

    def test_max_age_evicts_unconditionally(self, tmp_path):
        _, paths = _make_entries(tmp_path, 3)
        _age(paths[0], 9000)
        _age(paths[1], 9000)
        report = prune_cache_dir(tmp_path, max_age_s=3600)
        assert report.removed_entries == 2
        assert paths[2].exists()

    def test_load_refreshes_mtime_so_hot_entries_survive(self, tmp_path):
        cache, paths = _make_entries(tmp_path, 2)
        _age(paths[0], 500)
        _age(paths[1], 100)
        # Entry 0 is older on disk — but a hit marks it recently used.
        assert cache.load(("prune-test", 0)) is not None
        total = sum(p.stat().st_size for p in paths)
        report = prune_cache_dir(tmp_path, max_bytes=total - 1)
        assert report.removed_entries == 1
        assert paths[0].exists()      # hot entry survived
        assert not paths[1].exists()  # cold one was evicted

    def test_stale_tmp_files_reclaimed(self, tmp_path):
        cache, _ = _make_entries(tmp_path, 1)
        shard = cache.schema_dir / "ab"
        shard.mkdir(exist_ok=True)
        stale = shard / ".deadbeef.123.tmp"
        stale.write_bytes(b"partial")
        _age(stale, STALE_TMP_AGE_S + 10)
        fresh = shard / ".cafef00d.456.tmp"
        fresh.write_bytes(b"in flight")
        report = prune_cache_dir(tmp_path)
        assert report.removed_tmp_files == 1
        assert not stale.exists()
        assert fresh.exists()  # a live writer's file is left alone
        assert report.removed_entries == 0  # no budget given, no eviction

    def test_emptied_shard_dirs_are_cleaned(self, tmp_path):
        cache, paths = _make_entries(tmp_path, 1)
        shard_dir = paths[0].parent
        prune_cache_dir(tmp_path, max_bytes=0)
        assert not shard_dir.exists()
        assert tmp_path.exists()

    def test_negative_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            prune_cache_dir(tmp_path, max_bytes=-1)
        with pytest.raises(ValueError):
            prune_cache_dir(tmp_path, max_age_s=-0.5)

    def test_report_describe_is_one_line(self, tmp_path):
        _make_entries(tmp_path, 2)
        report = prune_cache_dir(tmp_path, max_bytes=0)
        text = report.describe()
        assert "\n" not in text
        assert "2 of 2" in text

    def test_recently_read_packed_entry_survives_byte_budget(self, tmp_path):
        # Group-commit a delta as one pack, then age the whole pack.
        cache = DiskCache(tmp_path)
        keys = [("prune-pack", i) for i in range(8)]
        assert cache.store_batch([(k, "x" * 100) for k in keys]) == 8
        assert cache.stats().pack_commits == 1
        pack = next(cache.schema_dir.glob("packs/*.pack"))
        _age(pack, 500)
        # A fresh attach with no manifest takes every packed atime from
        # the (backdated) pack mtime — the restart-after-a-while shape.
        (cache.schema_dir / "index.repri").unlink()
        fresh = DiskCache(tmp_path)
        # Reading one packed entry can only record recency through the
        # manifest (there is no per-entry file to utime).
        assert fresh.load(keys[3]) is not None
        length = fresh.index.get(key_digest(keys[3])).length
        report = prune_cache_dir(tmp_path, max_bytes=length)
        assert report.removed_entries == 7
        assert report.compacted_packs == 1
        survivor = DiskCache(tmp_path)
        assert survivor.load(keys[3]) is not None
        assert all(not survivor.contains(k) for k in keys if k != keys[3])

    def test_fully_dead_pack_is_unlinked_whole(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.store_batch(
            [(("prune-pack", i), "x" * 100) for i in range(8)]
        ) == 8
        report = prune_cache_dir(tmp_path, max_bytes=0)
        assert report.removed_entries == 8
        assert report.compacted_packs == 0  # nothing survived to rewrite
        assert not list(tmp_path.rglob("*.pack"))
        assert not list(tmp_path.rglob("index.repri"))

    def test_old_schema_generations_age_out(self, tmp_path):
        # A directory from an older code generation is unreachable by
        # the running code; its entries stop being touched and fall to
        # the age budget like any cold entry.
        _make_entries(tmp_path, 1)
        legacy = tmp_path / "v0-deadbeef0000" / "aa"
        legacy.mkdir(parents=True)
        old_entry = legacy / "aa00.pkl"
        old_entry.write_bytes(b"legacy pickle")
        _age(old_entry, 9000)
        report = prune_cache_dir(tmp_path, max_age_s=3600)
        assert not old_entry.exists()
        assert not legacy.exists()
        assert report.removed_entries == 1
