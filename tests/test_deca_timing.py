"""Tests for DECA timing helpers (expected vs exact cycles)."""

import numpy as np
import pytest

from repro.core.schemes import parse_scheme
from repro.deca.config import DecaConfig
from repro.deca.timing import (
    deca_aixv_for_scheme,
    deca_dec_cycles,
    exact_dec_cycles,
)
from repro.sparse.compress import compress_matrix
from tests.conftest import random_weights


class TestExpectedCycles:
    def test_dense_q8(self):
        assert deca_dec_cycles(DecaConfig(32, 8), parse_scheme("Q8")) == 64

    def test_dense_q4(self):
        assert deca_dec_cycles(DecaConfig(32, 8), parse_scheme("Q4")) == 16

    def test_q16_bypasses_lut(self):
        assert deca_dec_cycles(DecaConfig(32, 8), parse_scheme("Q16_50%")) == 16

    def test_aixv_reciprocal(self):
        scheme = parse_scheme("Q8_30%")
        config = DecaConfig(32, 8)
        assert deca_aixv_for_scheme(config, scheme) == pytest.approx(
            1 / deca_dec_cycles(config, scheme)
        )


class TestExactCycles:
    def test_expected_matches_exact_in_mean(self, rng):
        # Statistical agreement between the binomial model and real masks.
        scheme = parse_scheme("Q8_30%")
        config = DecaConfig(32, 8)
        w = random_weights(rng, 256, 256)
        matrix = compress_matrix(
            w, "bf8", density=0.3, pruning="random", rng=rng
        )
        exact = exact_dec_cycles(config, matrix)
        expected = deca_dec_cycles(config, scheme)
        assert np.mean(exact) == pytest.approx(expected, rel=0.03)

    def test_dense_matrix_exact(self, rng):
        config = DecaConfig(32, 8)
        matrix = compress_matrix(random_weights(rng, 32, 64), "bf8")
        assert exact_dec_cycles(config, matrix) == [64.0, 64.0, 64.0, 64.0]

    def test_bf16_matrix_one_cycle_per_vop(self, rng):
        config = DecaConfig(32, 8)
        matrix = compress_matrix(
            random_weights(rng, 32, 64), "bf16", density=0.5
        )
        assert exact_dec_cycles(config, matrix) == [16.0] * 4

    def test_matches_pipeline_stats(self, rng):
        from repro.deca.pipeline import DecaPipeline
        config = DecaConfig(32, 8)
        matrix = compress_matrix(
            random_weights(rng, 64, 64), "bf8", density=0.25,
            pruning="random", rng=rng,
        )
        pipeline = DecaPipeline(config)
        pipeline.configure("bf8")
        for tile, cycles in zip(matrix.tiles, exact_dec_cycles(config, matrix)):
            _out, stats = pipeline.decompress_tile(tile)
            assert stats.dequant_cycles == cycles
