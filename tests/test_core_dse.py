"""Tests for the DECA design-space exploration."""

import pytest

from repro.core.dse import (
    deca_machine_view,
    design_cost,
    explore_deca_designs,
    scheme_deca_signature,
)
from repro.core.machine import SPR_HBM
from repro.core.roofsurface import BoundingFactor
from repro.core.schemes import PAPER_SCHEMES, parse_scheme
from repro.errors import ConfigurationError


class TestDecaMachineView:
    def test_one_vop_per_cycle_per_core(self):
        view = deca_machine_view(SPR_HBM)
        assert view.vector_ops_per_second == pytest.approx(56 * 2.5e9)

    def test_other_rates_unchanged(self):
        view = deca_machine_view(SPR_HBM)
        assert view.matrix_ops_per_second == SPR_HBM.matrix_ops_per_second
        assert view.memory_bandwidth == SPR_HBM.memory_bandwidth


class TestSignatures:
    def test_q16_bypasses_lut(self):
        # 16-bit storage needs no dequantization: AI_XV = W / 512.
        _aixm, aixv = scheme_deca_signature(parse_scheme("Q16_50%"), 32, 8)
        assert aixv == pytest.approx(1 / 16)

    def test_dense_q8_bubbles(self):
        _aixm, aixv = scheme_deca_signature(parse_scheme("Q8"), 32, 8)
        assert aixv == pytest.approx(1 / 64)

    def test_q4_uses_sub_luts(self):
        _aixm, aixv = scheme_deca_signature(parse_scheme("Q4"), 32, 8)
        assert aixv == pytest.approx(1 / 16)


class TestExploration:
    def test_paper_best_design(self):
        result = explore_deca_designs(SPR_HBM, PAPER_SCHEMES)
        assert (result.best.width, result.best.lut_count) == (32, 8)

    def test_underprovisioned_fails(self):
        result = explore_deca_designs(SPR_HBM, PAPER_SCHEMES)
        under = result.design(8, 4)
        assert not under.saturates
        assert len(under.vec_bound_schemes) >= 8

    def test_overprovisioned_saturates(self):
        result = explore_deca_designs(SPR_HBM, PAPER_SCHEMES)
        assert result.design(64, 64).saturates

    def test_best_is_cheapest_saturating(self):
        result = explore_deca_designs(SPR_HBM, PAPER_SCHEMES)
        for point in result.designs:
            if point.saturates:
                assert point.cost >= result.best.cost

    def test_unknown_design_lookup(self):
        result = explore_deca_designs(SPR_HBM, PAPER_SCHEMES)
        with pytest.raises(ConfigurationError):
            result.design(7, 3)

    def test_cost_monotone_in_w_and_l(self):
        assert design_cost(64, 8) > design_cost(32, 8)
        assert design_cost(32, 16) > design_cost(32, 8)

    def test_empty_schemes_rejected(self):
        with pytest.raises(ConfigurationError):
            explore_deca_designs(SPR_HBM, [])

    def test_bounds_recorded_per_scheme(self):
        result = explore_deca_designs(SPR_HBM, PAPER_SCHEMES)
        best = result.best
        assert set(best.bounds) == {s.name for s in PAPER_SCHEMES}
        assert all(isinstance(b, BoundingFactor) for b in best.bounds.values())
