"""Concurrency stress tests for the serve daemon's request coalescing.

The headline contract: N identical concurrent requests cost ONE
underlying compute (pinned by the executor's cumulative pool-task
counter, not just the daemon's own bookkeeping), and every client
receives the complete, bit-identical, index-sorted row stream — the
same bytes a direct ``stream_map``-backed run of the spec emits.
"""

from __future__ import annotations

import threading

import pytest

from repro.experiments import figure12
from repro.experiments.parallel import (
    dispatched_task_count,
    fork_available,
    shutdown_worker_pool,
)
from repro.experiments.sweepspec import jsonl_line, spec_request_key
from repro.serve.client import connect
from repro.serve.daemon import ServeDaemon
from repro.serve.inline import synthetic_spec
from repro.sim.cache import clear_simulation_cache

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)

CLIENTS = 8


@pytest.fixture
def daemon(tmp_path):
    """An in-process daemon on a fresh socket, cold cache, fresh pool."""
    clear_simulation_cache()
    shutdown_worker_pool()
    d = ServeDaemon(
        socket_path=str(tmp_path / "serve.sock"), jobs=2, max_active=2
    )
    d.start()
    yield d
    d.drain()
    shutdown_worker_pool()
    clear_simulation_cache()


def _direct_stream_lines(spec, jobs=2):
    """The spec's rows exactly as the daemon would wire them."""
    return [
        jsonl_line(row)
        for cell in spec.stream(jobs=jobs)
        for row in spec.rows_for(cell)
    ]


class TestCoalescing:
    def test_eight_identical_requests_one_compute(self, daemon):
        dispatched_before = dispatched_task_count()
        streams = [None] * CLIENTS
        start = threading.Barrier(CLIENTS)

        def client(i: int) -> None:
            handle = connect(daemon.socket_path)
            start.wait()
            streams[i] = list(handle.sweep_lines("figure12"))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        daemon_dispatched = dispatched_task_count() - dispatched_before

        snapshot = daemon.status_snapshot()
        assert snapshot["requests"] == CLIENTS
        # Exactly one underlying compute; every duplicate either
        # coalesced onto it or (a post-completion straggler) took the
        # cache fast path — neither touches the pool again.
        assert snapshot["sweeps_computed"] == 1
        assert snapshot["coalesced"] + snapshot["fast_path"] == CLIENTS - 1
        assert snapshot["errors"] == 0

        # Bit-identical, index-sorted, complete streams for everyone.
        assert all(stream == streams[0] for stream in streams)
        spec = figure12.sweep_spec()
        assert len(streams[0]) == spec.cell_count

        # The daemon's one compute dispatched exactly as many pool
        # tasks as a direct stream_map-backed run of the same spec
        # (which now runs warm off the daemon-merged cache — results
        # are bit-identical by the cache's merge contract).
        direct_before = dispatched_task_count()
        expected = _direct_stream_lines(spec, jobs=2)
        direct_dispatched = dispatched_task_count() - direct_before
        assert streams[0] == expected
        assert daemon_dispatched == direct_dispatched

    def test_second_round_takes_cache_fast_path(self, daemon):
        first = connect(daemon.socket_path)
        lines_cold = list(first.sweep_lines("figure12"))
        assert first.last_summary is not None
        assert first.last_summary["fast_path"] is False

        dispatched_before = dispatched_task_count()
        second = connect(daemon.socket_path)
        lines_warm = list(second.sweep_lines("figure12"))
        assert lines_warm == lines_cold
        assert second.last_summary is not None
        assert second.last_summary["fast_path"] is True
        # Fully-warm requests never touch the pool.
        assert dispatched_task_count() == dispatched_before

    def test_midstream_disconnect_leaves_shared_sweep_running(self, daemon):
        inline = {"kind": "synthetic", "cells": 6, "cell_s": 0.05,
                  "tag": "disconnect"}
        streams = [None] * 3
        start = threading.Barrier(3)

        def full_reader(i: int) -> None:
            handle = connect(daemon.socket_path)
            start.wait()
            streams[i] = list(handle.sweep_lines(inline=inline))

        def quitter() -> None:
            handle = connect(daemon.socket_path)
            start.wait()
            stream = handle.sweep_lines(inline=inline)
            next(stream)
            stream.close()  # hang up after one row, mid-sweep

        threads = [
            threading.Thread(target=full_reader, args=(i,)) for i in (0, 1)
        ]
        threads.append(threading.Thread(target=quitter))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        snapshot = daemon.status_snapshot()
        assert snapshot["sweeps_computed"] == 1
        assert snapshot["errors"] == 0
        # The survivors got the whole stream despite the hang-up.
        assert streams[0] == streams[1]
        assert len(streams[0]) == 6

    def test_different_requests_do_not_coalesce(self, daemon):
        a = connect(daemon.socket_path)
        b = connect(daemon.socket_path)
        lines_a = list(a.sweep_lines(
            inline={"kind": "synthetic", "cells": 2, "tag": "a"}
        ))
        lines_b = list(b.sweep_lines(
            inline={"kind": "synthetic", "cells": 3, "tag": "b"}
        ))
        assert len(lines_a) == 2 and len(lines_b) == 3
        assert a.last_ack is not None and b.last_ack is not None
        assert a.last_ack["key"] != b.last_ack["key"]
        assert daemon.status_snapshot()["coalesced"] == 0


class TestRequestKey:
    def test_key_is_deterministic_across_builds(self):
        assert spec_request_key(figure12.sweep_spec()) == spec_request_key(
            figure12.sweep_spec()
        )

    def test_key_separates_scenarios(self):
        from repro.experiments import figure13

        assert spec_request_key(figure12.sweep_spec()) != spec_request_key(
            figure13.sweep_spec()
        )

    def test_key_covers_synthetic_parameters(self):
        assert spec_request_key(synthetic_spec(cells=4)) != spec_request_key(
            synthetic_spec(cells=5)
        )
        assert spec_request_key(
            synthetic_spec(cells=4, cell_s=0.1)
        ) != spec_request_key(synthetic_spec(cells=4, cell_s=0.2))

    def test_key_handles_composites(self):
        from repro.experiments.sweepspec import get_scenario

        composite = get_scenario("figure12+figure13").build()
        assert spec_request_key(composite) == spec_request_key(
            get_scenario("figure12+figure13").build()
        )
        assert spec_request_key(composite) != spec_request_key(
            figure12.sweep_spec()
        )