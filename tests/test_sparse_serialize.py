"""Tests for compressed-matrix serialization."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.sparse.compress import compress_matrix, decompress_matrix
from repro.sparse.serialize import load_matrix, save_matrix
from tests.conftest import random_weights


class TestRoundtrip:
    @pytest.mark.parametrize("fmt,density", [
        ("bf16", 1.0), ("bf8", 0.25), ("mxfp4", 1.0),
        ("bf8", 1.0), ("int4g32", 0.5),
    ])
    def test_bit_exact(self, rng, tmp_path, fmt, density):
        w = random_weights(rng, 64, 96)
        matrix = compress_matrix(w, fmt, density=density)
        path = tmp_path / "m.npz"
        save_matrix(matrix, path)
        loaded = load_matrix(path)
        assert loaded.shape == matrix.shape
        assert loaded.format_name == matrix.format_name
        assert np.array_equal(
            decompress_matrix(loaded), decompress_matrix(matrix)
        )

    def test_nbytes_preserved(self, rng, tmp_path):
        w = random_weights(rng, 32, 64)
        matrix = compress_matrix(w, "bf8", density=0.3)
        path = tmp_path / "m.npz"
        save_matrix(matrix, path)
        assert load_matrix(path).nbytes() == matrix.nbytes()

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, magic=np.array("nope"), data=np.zeros(3))
        with pytest.raises(CompressionError):
            load_matrix(path)
