"""Tests for the GeMM instruction-stream builder and interpreter."""

import numpy as np
import pytest

from repro.deca.pe import DecaPE
from repro.errors import ProgramError
from repro.isa.program import (
    build_software_gemm,
    build_tepl_gemm,
    run_program,
)
from repro.kernels.gemm import compressed_gemm_reference
from repro.sparse.compress import compress_matrix
from tests.conftest import random_weights


def _setup(rng, fmt="bf8", density=0.4, m=64, k=96, n=4):
    w = random_weights(rng, m, k)
    a = rng.normal(size=(n, k)).astype(np.float32)
    matrix = compress_matrix(w, fmt, density=density)
    return a, matrix


class TestSoftwareProgram:
    def test_matches_reference(self, rng):
        a, matrix = _setup(rng)
        result = run_program(build_software_gemm(a, matrix))
        assert np.array_equal(result.output, compressed_gemm_reference(a, matrix))

    def test_instruction_count(self, rng):
        a, matrix = _setup(rng, m=32, k=64)
        program = build_software_gemm(a, matrix)
        # Per m-block: tilezero + store + 3 per k-block.
        m_blocks, k_blocks = 2, 2
        assert len(program.instructions) == m_blocks * (2 + 3 * k_blocks)

    def test_tiles_decompressed_counted(self, rng):
        a, matrix = _setup(rng)
        result = run_program(build_software_gemm(a, matrix))
        assert result.tiles_decompressed == matrix.tile_count


class TestTeplProgram:
    @pytest.mark.parametrize("fmt,density", [
        ("bf8", 0.4), ("mxfp4", 1.0), ("bf16", 0.2), ("e4m3", 1.0),
    ])
    def test_matches_software_path(self, rng, fmt, density):
        a, matrix = _setup(rng, fmt=fmt, density=density)
        software = run_program(build_software_gemm(a, matrix))
        pe = DecaPE()
        pe.configure(fmt)
        tepl = run_program(build_tepl_gemm(a, matrix), pe)
        assert np.array_equal(tepl.output, software.output)

    def test_needs_pe(self, rng):
        a, matrix = _setup(rng)
        with pytest.raises(ProgramError, match="needs a DecaPE"):
            run_program(build_tepl_gemm(a, matrix))

    def test_pe_format_must_match(self, rng):
        a, matrix = _setup(rng, fmt="bf8")
        pe = DecaPE()
        pe.configure("mxfp4")
        with pytest.raises(ProgramError, match="configured for"):
            run_program(build_tepl_gemm(a, matrix), pe)

    def test_tepl_count(self, rng):
        a, matrix = _setup(rng)
        pe = DecaPE()
        pe.configure("bf8")
        result = run_program(build_tepl_gemm(a, matrix), pe)
        assert result.tepl_issued == matrix.tile_count

    def test_batch_too_large(self, rng):
        a, matrix = _setup(rng, n=17)
        with pytest.raises(ProgramError, match="at most 16"):
            build_tepl_gemm(a, matrix)

    def test_activation_k_mismatch(self, rng):
        _a, matrix = _setup(rng)
        bad = np.zeros((4, 32), dtype=np.float32)
        with pytest.raises(ProgramError):
            build_software_gemm(bad, matrix)
