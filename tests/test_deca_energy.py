"""Tests for the energy model."""

import pytest

from repro.core.schemes import parse_scheme
from repro.deca.energy import (
    EnergyBreakdown,
    gemm_energy,
    memory_pj_per_bit,
)
from repro.deca.integration import deca_kernel_timing
from repro.errors import ConfigurationError
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import ddr_system, hbm_system


class TestBasics:
    def test_memory_technology_selection(self):
        assert memory_pj_per_bit(hbm_system()) == 4.0
        assert memory_pj_per_bit(ddr_system()) == 15.0

    def test_breakdown_total(self):
        b = EnergyBreakdown(1.0, 0.5, 0.25, 0.25)
        assert b.total == 2.0
        assert b.as_millijoules()["total"] == 2000.0

    def test_validation(self, hbm):
        scheme = parse_scheme("Q8")
        result = simulate_tile_stream(hbm, deca_kernel_timing(hbm, scheme))
        with pytest.raises(ConfigurationError):
            gemm_energy(hbm, result, 0, 512.0, uses_deca=True)
        with pytest.raises(ConfigurationError):
            gemm_energy(hbm, result, 100, -1.0, uses_deca=True)


class TestComparisons:
    def test_compression_saves_memory_energy(self, hbm):
        tiles = 100_000
        from repro.kernels.libxsmm import uncompressed_kernel_timing
        base = simulate_tile_stream(hbm, uncompressed_kernel_timing(hbm))
        base_energy = gemm_energy(
            hbm, base, tiles, 1024.0, uses_deca=False
        )
        scheme = parse_scheme("Q8_10%")
        deca = simulate_tile_stream(hbm, deca_kernel_timing(hbm, scheme))
        deca_energy = gemm_energy(
            hbm, deca, tiles, scheme.bytes_per_tile(), uses_deca=True
        )
        assert deca_energy.memory_joules < base_energy.memory_joules / 7
        assert deca_energy.total < base_energy.total

    def test_few_deca_cores_beat_many_sw_cores_on_energy(self):
        # The Figure 14 scenario: 16 DECA cores (40 parked) vs 56 software
        # cores, Q8_5% on DDR, equal work.
        scheme = parse_scheme("Q8_5%")
        tiles = 200_000
        sw_system = ddr_system(56)
        sw = simulate_tile_stream(
            sw_system, software_kernel_timing(sw_system, scheme)
        )
        sw_energy = gemm_energy(
            sw_system, sw, tiles, scheme.bytes_per_tile(), uses_deca=False
        )
        deca_system = ddr_system(16)
        deca = simulate_tile_stream(
            deca_system, deca_kernel_timing(deca_system, scheme)
        )
        deca_energy = gemm_energy(
            deca_system, deca, tiles, scheme.bytes_per_tile(),
            uses_deca=True, parked_cores=40,
        )
        # Even paying idle power for 40 parked cores, the DECA setup uses
        # far less energy (and finishes sooner, per Figure 14).
        assert deca_energy.total < sw_energy.total
        assert deca.tiles_per_second >= sw.tiles_per_second * 0.95

    def test_deca_power_is_small_adder(self, hbm):
        scheme = parse_scheme("Q8")
        result = simulate_tile_stream(hbm, deca_kernel_timing(hbm, scheme))
        energy = gemm_energy(
            hbm, result, 10_000, scheme.bytes_per_tile(), uses_deca=True
        )
        assert energy.deca_joules < 0.05 * energy.core_joules
