"""Tests for the SVG canvas and figure builders."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.bord import Bord
from repro.core.machine import SPR_HBM
from repro.errors import ConfigurationError
from repro.report.figures import bord_svg, roofline_svg, speedup_bars_svg
from repro.report.svg import AxisScale, SvgCanvas


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestAxisScale:
    def test_linear_mapping(self):
        scale = AxisScale(0.0, 10.0, 100.0, 200.0)
        assert scale(0.0) == 100.0
        assert scale(10.0) == 200.0
        assert scale(5.0) == 150.0

    def test_log_mapping(self):
        scale = AxisScale(1.0, 100.0, 0.0, 100.0, log=True)
        assert scale(10.0) == pytest.approx(50.0)

    def test_inverted_pixel_axis(self):
        # SVG y grows downward: pixel_min > pixel_max is legal.
        scale = AxisScale(0.0, 1.0, 300.0, 50.0)
        assert scale(1.0) == 50.0

    def test_log_ticks_are_decades(self):
        scale = AxisScale(0.5, 500.0, 0, 1, log=True)
        assert scale.ticks() == [1.0, 10.0, 100.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AxisScale(1.0, 1.0, 0, 1)
        with pytest.raises(ConfigurationError):
            AxisScale(-1.0, 1.0, 0, 1, log=True)


class TestCanvas:
    def test_well_formed_document(self):
        canvas = SvgCanvas()
        canvas.rect(0, 0, 10, 10, fill="#fff")
        canvas.line(0, 0, 5, 5)
        canvas.circle(3, 3)
        canvas.text(1, 1, "label <&>")
        canvas.polyline([(0, 0), (1, 1), (2, 0)])
        root = _parse(canvas.render())
        tags = [child.tag.split("}")[-1] for child in root]
        for expected in ("rect", "line", "circle", "text", "polyline"):
            assert expected in tags

    def test_text_escaped(self):
        canvas = SvgCanvas()
        canvas.text(0, 0, "a<b & c>d")
        assert "&lt;" in canvas.render()

    def test_save(self, tmp_path):
        canvas = SvgCanvas()
        canvas.circle(10, 10)
        path = tmp_path / "fig.svg"
        canvas.save(path)
        _parse(path.read_text())

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ConfigurationError):
            SvgCanvas(10, 10)

    def test_short_polyline_rejected(self):
        with pytest.raises(ConfigurationError):
            SvgCanvas().polyline([(0, 0)])


class TestFigureBuilders:
    def test_roofline_figure(self):
        from repro.experiments import figure3
        result = figure3.run_one(__import__(
            "repro.sim.system", fromlist=["hbm_system"]
        ).hbm_system(), "HBM")
        svg = roofline_svg(result.curve, result.points, "Figure 3 (HBM)")
        root = _parse(svg)
        circles = [c for c in root if c.tag.endswith("circle")]
        assert len(circles) == 2 * len(result.points)

    def test_bord_figure(self):
        bord = Bord(SPR_HBM)
        points = [bord.place("Q8", 0.002, 0.002)]
        svg = bord_svg(bord, points, 0.012, 0.012, "BORD", samples=16)
        root = _parse(svg)
        rects = [r for r in root if r.tag.endswith("rect")]
        assert len(rects) > 16 * 16  # region cells + legend + background

    def test_speedup_bars(self):
        svg = speedup_bars_svg(
            ["Q8", "Q4"],
            {"software": [1.5, 1.7], "DECA": [2.0, 3.8]},
            "Figure 13",
        )
        root = _parse(svg)
        rects = [r for r in root if r.tag.endswith("rect")]
        assert len(rects) >= 4

    def test_series_length_validated(self):
        with pytest.raises(ConfigurationError):
            speedup_bars_svg(["a", "b"], {"x": [1.0]}, "bad")

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            roofline_svg([], [], "t")
        with pytest.raises(ConfigurationError):
            speedup_bars_svg([], {}, "t")
