"""Tests for the instruction-level libxsmm sequence model."""

import numpy as np
import pytest

from repro.core.schemes import PAPER_SCHEMES, UNCOMPRESSED, parse_scheme
from repro.errors import ProgramError
from repro.kernels.jit import (
    count_by_category,
    emit_decompress_sequence,
    execute_sequence,
    verify_against_recipe,
)
from repro.sparse.prune import random_mask
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from tests.conftest import random_weights


def _tile(rng, fmt, density):
    dense = random_weights(rng, *TILE_SHAPE)
    mask = None if density >= 1.0 else random_mask(TILE_SHAPE, density, rng=rng)
    return CompressedTile.from_dense(dense, fmt, mask)


class TestEmission:
    def test_counts_match_recipe_for_all_paper_schemes(self):
        for scheme in PAPER_SCHEMES:
            assert verify_against_recipe(scheme), scheme.name

    def test_uncompressed_emits_nothing(self):
        assert emit_decompress_sequence(UNCOMPRESSED) == []

    def test_sparse_has_expand_instructions(self):
        seq = emit_decompress_sequence(parse_scheme("Q8_20%"))
        opcodes = [i.opcode for i in seq]
        assert opcodes.count("vpexpandb") == 16
        assert opcodes.count("kmovd") == 16

    def test_q4_has_lut_permutes(self):
        seq = emit_decompress_sequence(parse_scheme("Q4"))
        opcodes = [i.opcode for i in seq]
        assert opcodes.count("vpermw.lut0") == 16
        assert opcodes.count("vscalef") == 16

    def test_category_aggregation(self):
        seq = emit_decompress_sequence(parse_scheme("Q8"))
        recipe = count_by_category(seq)
        assert recipe.total == len(seq)


class TestExecution:
    @pytest.mark.parametrize("fmt,density", [
        ("bf8", 1.0), ("bf8", 0.2), ("bf16", 0.5),
        ("mxfp4", 1.0), ("int4g32", 1.0), ("mxfp4", 0.3),
    ])
    def test_matches_reference(self, rng, fmt, density):
        tile = _tile(rng, fmt, density)
        scheme_density = 1.0 if density >= 1.0 else density
        from repro.core.schemes import CompressionScheme
        scheme = CompressionScheme(fmt, scheme_density)
        seq = emit_decompress_sequence(scheme)
        out = execute_sequence(seq, tile)
        assert np.array_equal(out, tile.decompress_reference())

    def test_empty_sequence_rejected(self, rng):
        tile = _tile(rng, "bf16", 1.0)
        with pytest.raises(ProgramError, match="uncompressed"):
            execute_sequence([], tile)

    def test_truncated_sequence_rejected(self, rng):
        from repro.core.schemes import CompressionScheme
        tile = _tile(rng, "bf8", 0.5)
        seq = emit_decompress_sequence(CompressionScheme("bf8", 0.5))
        with pytest.raises(ProgramError, match="stored"):
            execute_sequence(seq[: len(seq) // 2], tile)
