"""Tests for 2:4 structured sparsity (the Table 2 comparison axis)."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.sparse.prune import (
    kept_energy_fraction,
    magnitude_mask,
    structured_24_mask,
)
from tests.conftest import random_weights


class TestStructured24:
    def test_exactly_two_of_four(self, rng):
        w = random_weights(rng, 16, 32)
        mask = structured_24_mask(w)
        groups = mask.reshape(-1, 4)
        assert np.all(groups.sum(axis=1) == 2)

    def test_density_is_half(self, rng):
        mask = structured_24_mask(random_weights(rng, 16, 32))
        assert mask.mean() == 0.5

    def test_keeps_largest_within_group(self, rng):
        w = random_weights(rng, 4, 8)
        mask = structured_24_mask(w)
        for group_w, group_m in zip(
            np.abs(w).reshape(-1, 4), mask.reshape(-1, 4)
        ):
            kept = sorted(group_w[group_m])
            dropped = sorted(group_w[~group_m])
            assert kept[0] >= dropped[-1]

    def test_misaligned_rejected(self):
        with pytest.raises(CompressionError):
            structured_24_mask(np.zeros((2, 6), dtype=np.float32))


class TestEnergyComparison:
    def test_unstructured_keeps_more_energy(self, rng):
        # The paper's Section 2.2 rationale: unstructured pruning achieves
        # higher accuracy at the same density. Energy kept is the proxy.
        w = random_weights(rng, 64, 64)
        unstructured = kept_energy_fraction(w, magnitude_mask(w, 0.5))
        structured = kept_energy_fraction(w, structured_24_mask(w))
        assert unstructured >= structured

    def test_structured_still_keeps_most_energy(self, rng):
        w = random_weights(rng, 64, 64)
        assert kept_energy_fraction(w, structured_24_mask(w)) > 0.85

    def test_all_zero_rejected(self):
        with pytest.raises(CompressionError):
            kept_energy_fraction(
                np.zeros((4, 4)), np.ones((4, 4), dtype=bool)
            )

    def test_structured_tile_compresses(self, rng):
        # A 2:4 mask is a valid unstructured bitmask to DECA — the
        # flexible format subsumes the structured one.
        from repro.sparse.tile import CompressedTile
        w = random_weights(rng, 16, 32)
        tile = CompressedTile.from_dense(w, "bf8", structured_24_mask(w))
        assert tile.density == 0.5
        assert np.count_nonzero(tile.decompress_reference()) <= 256
