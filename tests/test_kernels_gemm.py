"""Tests for functional GeMM execution."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.formats.bfloat import bf16_round
from repro.kernels.gemm import (
    compressed_gemm_reference,
    dense_gemm_reference,
    tile_operation,
)
from repro.sparse.compress import compress_matrix, decompress_matrix
from tests.conftest import random_weights


class TestDenseGemm:
    def test_matches_numpy_on_bf16_inputs(self, rng):
        a = bf16_round(rng.normal(size=(4, 64)).astype(np.float32))
        w = bf16_round(rng.normal(size=(32, 64)).astype(np.float32))
        assert np.allclose(dense_gemm_reference(a, w), a @ w.T, rtol=1e-6)

    def test_k_mismatch(self, rng):
        with pytest.raises(CompressionError):
            dense_gemm_reference(
                np.zeros((4, 64), dtype=np.float32),
                np.zeros((32, 32), dtype=np.float32),
            )


class TestCompressedGemm:
    def test_equals_dense_gemm_of_decompressed(self, rng):
        w = random_weights(rng, 64, 96)
        a = rng.normal(size=(4, 96)).astype(np.float32)
        matrix = compress_matrix(w, "bf8", density=0.3)
        restored = decompress_matrix(matrix)
        via_tiles = compressed_gemm_reference(a, matrix)
        direct = bf16_round(a) @ restored.T
        assert np.allclose(via_tiles, direct, rtol=1e-5, atol=1e-6)

    def test_bf16_dense_exact(self, rng):
        w = random_weights(rng, 32, 64)
        a = rng.normal(size=(2, 64)).astype(np.float32)
        matrix = compress_matrix(w, "bf16")
        # Tile-by-tile accumulation reorders the K summation; only
        # rounding noise may differ.
        assert np.allclose(
            compressed_gemm_reference(a, matrix),
            dense_gemm_reference(a, w),
            rtol=1e-6,
            atol=1e-6,
        )

    def test_shape(self, rng):
        w = random_weights(rng, 48, 64)
        a = rng.normal(size=(3, 64)).astype(np.float32)
        out = compressed_gemm_reference(a, compress_matrix(w, "bf8"))
        assert out.shape == (3, 48)

    def test_k_mismatch(self, rng):
        w = random_weights(rng, 32, 64)
        with pytest.raises(CompressionError):
            compressed_gemm_reference(
                np.zeros((2, 32), dtype=np.float32), compress_matrix(w, "bf8")
            )


class TestTileOperation:
    def test_shapes(self, rng):
        act = rng.normal(size=(4, 32)).astype(np.float32)
        w = rng.normal(size=(16, 32)).astype(np.float32)
        assert tile_operation(act, w).shape == (4, 16)

    def test_too_many_rows(self, rng):
        with pytest.raises(CompressionError):
            tile_operation(
                np.zeros((17, 32), dtype=np.float32),
                np.zeros((16, 32), dtype=np.float32),
            )

    def test_bad_weight_shape(self):
        with pytest.raises(CompressionError):
            tile_operation(
                np.zeros((4, 32), dtype=np.float32),
                np.zeros((16, 16), dtype=np.float32),
            )
