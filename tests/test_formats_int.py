"""Tests for the INT8/INT4 codecs."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.int_formats import (
    int4_decode,
    int4_encode,
    int4_pack,
    int4_unpack,
    int8_decode,
    int8_encode,
)


class TestInt8:
    def test_roundtrip_error(self, rng):
        values = rng.normal(size=256).astype(np.float32)
        codes, scales = int8_encode(values, group_size=128)
        restored = int8_decode(codes, scales, group_size=128)
        amax = np.abs(values).reshape(-1, 128).max(axis=1)
        bound = np.repeat(amax / 127 / 2 + 1e-7, 128)
        assert np.all(np.abs(restored - values) <= bound)

    def test_codes_in_range(self, rng):
        values = (rng.normal(size=128) * 100).astype(np.float32)
        codes, _ = int8_encode(values, group_size=128)
        assert codes.max() <= 127 and codes.min() >= -127

    def test_zero_group(self):
        codes, scales = int8_encode(np.zeros(128, dtype=np.float32))
        assert np.all(codes == 0)
        assert np.all(int8_decode(codes, scales) == 0.0)

    def test_group_size_mismatch(self):
        with pytest.raises(FormatError):
            int8_encode(np.zeros(100, dtype=np.float32), group_size=128)


class TestInt4:
    def test_roundtrip_error(self, rng):
        values = rng.normal(size=64).astype(np.float32)
        codes, scales = int4_encode(values, group_size=32)
        restored = int4_decode(codes, scales, group_size=32)
        amax = np.abs(values).reshape(-1, 32).max(axis=1)
        bound = np.repeat(amax / 7 / 2 + 1e-7, 32)
        assert np.all(np.abs(restored - values) <= bound)

    def test_codes_in_range(self, rng):
        values = (rng.normal(size=32) * 50).astype(np.float32)
        codes, _ = int4_encode(values, group_size=32)
        assert codes.max() <= 7 and codes.min() >= -7

    def test_decode_rejects_out_of_range_codes(self):
        with pytest.raises(FormatError):
            int4_decode(
                np.full(32, 8, dtype=np.int8),
                np.ones(1, dtype=np.float32),
                group_size=32,
            )


class TestInt4Packing:
    def test_pack_unpack_roundtrip(self, rng):
        codes = rng.integers(-7, 8, size=64).astype(np.int8)
        assert np.array_equal(int4_unpack(int4_pack(codes)), codes)

    def test_pack_halves_size(self):
        codes = np.zeros(64, dtype=np.int8)
        assert int4_pack(codes).size == 32

    def test_odd_count_rejected(self):
        with pytest.raises(FormatError):
            int4_pack(np.zeros(3, dtype=np.int8))

    def test_low_nibble_first(self):
        codes = np.array([1, 2], dtype=np.int8)
        packed = int4_pack(codes)
        assert packed[0] == 0x21
