"""Routing-layer tests for cross-cell batched sweep execution.

The engine-level bit-identity of ``simulate_tile_stream_batch`` is
covered by ``test_sim_batched.py``; these tests pin the *routing*: a
``SweepSpec`` carrying a :func:`batchable` annotation must produce
exactly the records, ordering, emission rows, and cache behaviour of
the per-cell path — with batching observable only through cache
counters — and every escape hatch (``batch=`` argument,
``REPRO_NO_BATCH`` env, :func:`set_batching_enabled`) must actually
disable it.
"""

import io

import pytest

from repro.experiments.grid import grid_spec, run_grid
from repro.experiments.parallel import fork_available
from repro.experiments.speedups import sweep_speedups
from repro.experiments.sweepspec import (
    JsonlEmitter,
    batching_enabled,
    set_batching_enabled,
    stream_to_emitter,
)
from repro.sim.cache import clear_simulation_cache, simulation_cache_stats
from repro.sim.system import hbm_system


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Every test starts and ends with an empty simulation cache."""
    clear_simulation_cache()
    yield
    clear_simulation_cache()


def _grid_records(batch, tiles=64, jobs=1):
    clear_simulation_cache()
    return run_grid(tiles=tiles, jobs=jobs, batch=batch)


class TestBatchingFlag:
    def test_default_enabled(self):
        assert batching_enabled() is True

    def test_set_batching_enabled_round_trips(self):
        previous = set_batching_enabled(False)
        try:
            assert previous is True
            assert batching_enabled() is False
        finally:
            set_batching_enabled(True)
        assert batching_enabled() is True

    def test_env_escape_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        assert batching_enabled() is False

    def test_env_zero_is_not_an_escape(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "0")
        assert batching_enabled() is True

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        assert batching_enabled(True) is True
        assert batching_enabled(False) is False


class TestGridRouting:
    def test_batched_records_bit_identical(self):
        batched = _grid_records(batch=True)
        per_cell = _grid_records(batch=False)
        assert batched == per_cell
        assert len(batched) == 48

    def test_batching_seeds_the_cache(self):
        """Batch-on: every task lookup is a warm hit of the seeded stack."""
        _grid_records(batch=True)
        stats = simulation_cache_stats()
        assert stats.misses == 48
        assert stats.hits == 48

    def test_per_cell_path_has_no_warm_hits(self):
        _grid_records(batch=False)
        stats = simulation_cache_stats()
        assert stats.misses == 48
        assert stats.hits == 0

    def test_env_escape_routes_per_cell(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        records = _grid_records(batch=None)
        assert simulation_cache_stats().hits == 0
        clear_simulation_cache()
        monkeypatch.delenv("REPRO_NO_BATCH")
        assert records == run_grid(tiles=64)

    def test_process_flag_routes_per_cell(self):
        set_batching_enabled(False)
        try:
            _grid_records(batch=None)
            assert simulation_cache_stats().hits == 0
        finally:
            set_batching_enabled(True)

    def test_stream_preserves_index_order_and_coords(self):
        spec = grid_spec(tiles=64)
        coords = spec.coords()
        cells = list(spec.stream(jobs=1, batch=True))
        assert [c.index for c in cells] == list(range(len(coords)))
        assert [c.coords for c in cells] == coords

    def test_uncached_cells_fall_through(self):
        """use_cache=False cells declare no sims: per-cell path, zero stats."""
        records = run_grid(tiles=64, use_cache=False, batch=True)
        stats = simulation_cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        clear_simulation_cache()
        assert records == run_grid(tiles=64, use_cache=False, batch=False)

    def test_partial_warm_cache(self):
        """Cells already resident stay out of the stack but still stream."""
        warm = run_grid(schemes=grid_spec().axes["scheme"][:3], tiles=64,
                        batch=False)
        full = run_grid(tiles=64, batch=True)
        assert full[:0] == []  # shape sanity
        clear_simulation_cache()
        assert full == run_grid(tiles=64, batch=False)
        assert len(warm) == 12


class TestSpeedupRouting:
    def test_batched_speedups_bit_identical(self):
        clear_simulation_cache()
        batched = sweep_speedups(hbm_system(), tiles=64, batch=True)
        clear_simulation_cache()
        per_cell = sweep_speedups(hbm_system(), tiles=64, batch=False)
        assert batched == per_cell
        assert len(batched) == 12


class TestParallelRouting:
    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_chunked_pool_matches_serial(self):
        spec = grid_spec(tiles=64)
        clear_simulation_cache()
        serial = [(c.index, c.value) for c in spec.stream(jobs=1, batch=False)]
        clear_simulation_cache()
        batched = [(c.index, c.value) for c in spec.stream(jobs=2, batch=True)]
        assert batched == serial

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_chunked_pool_reports_progress(self):
        spec = grid_spec(tiles=64)
        calls = []
        clear_simulation_cache()
        list(spec.stream(jobs=2, batch=True,
                         progress=lambda done, total: calls.append((done, total))))
        assert calls and calls[-1] == (48, 48)
        assert [done for done, _ in calls] == sorted(done for done, _ in calls)


class TestEmission:
    def test_emitted_rows_identical(self):
        spec = grid_spec(tiles=64)
        clear_simulation_cache()
        buf_on = io.StringIO()
        emitter = JsonlEmitter(buf_on)
        out_on = stream_to_emitter(spec, emitter, jobs=1, batch=True)
        clear_simulation_cache()
        buf_off = io.StringIO()
        emitter = JsonlEmitter(buf_off)
        out_off = stream_to_emitter(spec, emitter, jobs=1, batch=False)
        assert buf_on.getvalue() == buf_off.getvalue()
        assert out_on == out_off
        assert len(buf_on.getvalue().splitlines()) == 48
