"""Unit tests for the experiment harness modules themselves."""

import numpy as np
import pytest

from repro.core.roofsurface import BoundingFactor
from repro.experiments import (
    batch_sweep,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
)
from repro.sim.system import hbm_system


class TestTable1Module:
    def test_custom_parameters(self):
        result = table1.run(batches=(1,), token_counts=(32,))
        assert set(result.fractions) == {("DDR", 32, 1), ("HBM", 32, 1)}

    def test_format_table_includes_paper(self):
        result = table1.run(batches=(1,), token_counts=(32,))
        text = result.format_table()
        assert "paper" in text and "HBM" in text


class TestFigure3Module:
    def test_run_one(self):
        result = figure3.run_one(hbm_system(), "HBM", batch_rows=4)
        assert result.memory == "HBM"
        assert len(result.points) == 13  # 12 schemes + uncompressed
        assert len(result.curve) == 64

    def test_points_sorted_by_ai(self):
        result = figure3.run_one(hbm_system(), "HBM")
        ais = [p.arithmetic_intensity for p in result.points]
        assert ais == sorted(ais)

    def test_observed_never_exceeds_optimal(self):
        result = figure3.run_one(hbm_system(), "HBM")
        for point in result.points:
            assert point.observed_flops <= point.optimal_flops * 1.01


class TestFigure4Module:
    def test_surface_and_points_consistent(self):
        result = figure4.run()
        assert len(result.points) == 12
        x, y, z = result.surface
        assert float(z.max()) > 0
        # Every evaluated point's FLOPS must sit on or under the surface
        # maximum for its region.
        for point in result.points:
            assert point.flops <= float(z.max()) * 1.01


class TestFigure5Module:
    def test_ascii_plot_embedded(self):
        hbm, _ddr = figure5.run()
        assert "BORD" in hbm.ascii_plot
        assert "*" in hbm.ascii_plot

    def test_region_fractions_complete(self):
        hbm, ddr = figure5.run()
        for result in (hbm, ddr):
            assert set(result.region_fractions) == set(BoundingFactor)
            assert sum(result.region_fractions.values()) == pytest.approx(1.0)


class TestFigure6Module:
    def test_custom_scale(self):
        mild = figure6.run(vos_scale=2.0)
        strong = figure6.run(vos_scale=8.0)
        assert len(strong.still_vec_bound()) <= len(mild.still_vec_bound())


class TestBatchSweepModule:
    def test_custom_batches(self):
        result = batch_sweep.run(batches=(1, 8))
        assert result.batches == (1, 8)
        assert set(result.speedups) == {1, 8}

    def test_spread_small(self):
        result = batch_sweep.run(batches=(1, 16))
        assert result.max_ratio_spread() < 0.10
