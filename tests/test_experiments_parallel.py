"""Tests for the process-pool sweep executor and cache merging.

The contract under test (see ``repro/experiments/parallel.py``): for any
``jobs``, a parallel sweep returns results *bit-identical* to the serial
run, in the same order, and folds every worker's new cache entries back
into the parent keyed by the same ``simulation_key``.
"""

import time

import numpy as np
import pytest

from repro.core.schemes import parse_scheme
from repro.experiments import figure12, sensitivity
from repro.experiments.grid import run_grid, to_csv
from repro.experiments.parallel import (
    claim_worker_pool,
    dispatched_task_count,
    fork_available,
    last_sweep_execution,
    parallel_map,
    release_worker_pool,
    resolve_jobs,
    shutdown_worker_pool,
    stream_map,
    worker_pool_owned,
    worker_pool_pids,
    worker_pool_size,
)
from repro.experiments.speedups import sweep_speedups
from repro.errors import ConfigurationError, DeadlineExceededError
from repro.sim.cache import (
    clear_simulation_cache,
    export_simulation_cache,
    merge_simulation_cache,
    results_bit_equal,
    simulation_cache_stats,
)
from repro.sim.pipeline import KernelTiming, simulate_tile_stream
from repro.sim.system import hbm_system

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel executor needs the fork start method"
)

_SCHEMES = (parse_scheme("Q4"), parse_scheme("Q8_5%"))


def _small_grid(jobs):
    # batch=False: these tests pin the *per-cell* pool dispatch and its
    # cache-merge accounting (task counts, worker hit/miss deltas); the
    # batched routing has its own suite in test_sweep_batched.py.
    return run_grid(
        systems=(hbm_system(),), schemes=_SCHEMES, jobs=jobs, batch=False
    )


def _simulate_item(task):
    """Module-level task body so pool workers can unpickle it."""
    system, bytes_per_tile = task
    timing = KernelTiming(bytes_per_tile=bytes_per_tile, dec_cycles=20.0)
    return simulate_tile_stream(system, timing).steady_interval_cycles


class TestParallelSerialEquivalence:
    def test_run_grid_records_bit_identical(self):
        clear_simulation_cache()
        serial = _small_grid(jobs=1)
        clear_simulation_cache()
        parallel = _small_grid(jobs=4)
        # GridRecord is a float dataclass: == is exact, not approximate.
        assert serial == parallel

    def test_to_csv_round_trips_parallel_output(self, tmp_path):
        clear_simulation_cache()
        serial_csv = to_csv(_small_grid(jobs=1))
        clear_simulation_cache()
        parallel_csv = to_csv(_small_grid(jobs=2))
        assert serial_csv == parallel_csv
        lines = parallel_csv.strip().splitlines()
        assert lines[0].startswith("system,scheme,engine")
        assert len(lines) == 1 * len(_SCHEMES) * 2 + 1

    def test_sweep_speedups_bit_identical(self, hbm):
        clear_simulation_cache()
        serial = sweep_speedups(hbm, schemes=_SCHEMES)
        clear_simulation_cache()
        parallel = sweep_speedups(hbm, schemes=_SCHEMES, jobs=2)
        assert serial == parallel

    def test_dse_parallel_mapper_matches_serial(self):
        import functools

        from repro.core.dse import explore_deca_designs

        machine = hbm_system().machine
        serial = explore_deca_designs(machine, _SCHEMES)
        parallel = explore_deca_designs(
            machine, _SCHEMES,
            mapper=functools.partial(parallel_map, jobs=2),
        )
        assert serial == parallel
        assert parallel.best is not None

    def test_figure12_jobs_matches_serial(self):
        clear_simulation_cache()
        serial = figure12.run()
        clear_simulation_cache()
        parallel = figure12.run(jobs=2)
        assert serial == parallel

    def test_sensitivity_jobs_matches_serial(self):
        clear_simulation_cache()
        serial = sensitivity.run()
        clear_simulation_cache()
        parallel = sensitivity.run(jobs=2)
        assert serial == parallel


class TestCacheMerge:
    def test_worker_entries_merged_and_stats_sum(self):
        clear_simulation_cache()
        records = _small_grid(jobs=2)
        execution = last_sweep_execution()
        stats = simulation_cache_stats()
        # Every cell is a distinct configuration: each is one worker miss,
        # every computed entry lands in the parent on join, and the merged
        # counters are exactly the sum of the workers' deltas.
        assert execution.jobs == 2
        assert execution.tasks == len(records) == 4
        assert execution.merged_entries == 4
        assert execution.duplicate_entries == 0
        assert execution.worker_hits + execution.worker_misses == 4
        assert stats.hits == execution.worker_hits
        assert stats.misses == execution.worker_misses == 4
        assert stats.size == 4

    def test_merged_entries_keep_traces_read_only(self):
        # NumPy pickling drops the writeable flag, so worker-produced
        # results must be re-frozen on merge or a consumer could mutate
        # a shared cached trace that the serial path protects.
        clear_simulation_cache()
        _small_grid(jobs=2)
        for _, result in export_simulation_cache():
            assert not result.trace.mtx_done.flags.writeable
            assert not result.trace.fetch_issue.flags.writeable

    def test_parent_sweep_hits_merged_entries(self):
        clear_simulation_cache()
        _small_grid(jobs=2)
        before = simulation_cache_stats()
        _small_grid(jobs=1)  # serial rerun in the parent process
        after = simulation_cache_stats()
        assert after.hits - before.hits == 4
        assert after.misses == before.misses

    def test_duplicate_keys_across_workers_merge_once(self, hbm):
        clear_simulation_cache()
        # Two identical tasks land in different partitions at jobs=2 and
        # compute the same simulation key; however the persistent pool
        # schedules the partitions (two workers, or one fast worker
        # draining both), the parent must end up with exactly one entry.
        tasks = [(hbm, 300.0), (hbm, 300.0)]
        intervals = parallel_map(_simulate_item, tasks, jobs=2)
        assert intervals[0] == intervals[1]
        execution = last_sweep_execution()
        assert execution.merged_entries == 1
        assert execution.worker_hits + execution.worker_misses == 2
        # Both-partitions-on-one-worker shows up as a worker cache hit;
        # one-partition-each shows up as a duplicate dropped on merge.
        assert execution.duplicate_entries + execution.worker_hits == 1
        assert simulation_cache_stats().size == 1

    def test_duplicate_key_dropped_on_merge(self, hbm):
        # The duplicate-drop path itself, deterministically: merging the
        # same key twice keeps one entry and counts one duplicate.
        clear_simulation_cache()
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        result = simulate_tile_stream(hbm, timing)
        key, value = export_simulation_cache()[0]
        stats = merge_simulation_cache([(key, value)])
        assert (stats.inserted, stats.duplicates) == (0, 1)
        clear_simulation_cache()
        stats = merge_simulation_cache([(key, value), (key, value)])
        assert (stats.inserted, stats.duplicates) == (1, 1)
        assert simulation_cache_stats().size == 1
        assert result is not None

    def test_conflicting_duplicate_asserts_bit_equality(self, hbm):
        clear_simulation_cache()
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        result = simulate_tile_stream(hbm, timing)
        key = export_simulation_cache()[0][0]
        forged = type(result)(
            system=result.system,
            tiles=result.tiles,
            makespan_cycles=result.makespan_cycles + 1.0,
            steady_interval_cycles=result.steady_interval_cycles,
            utilization=result.utilization,
            trace=result.trace,
        )
        with pytest.raises(AssertionError):
            merge_simulation_cache([(key, forged)])

    def test_results_bit_equal(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        a = simulate_tile_stream(hbm, timing, use_cache=False)
        b = simulate_tile_stream(hbm, timing, use_cache=False)
        assert results_bit_equal(a, b)
        assert not results_bit_equal(a, None)
        assert results_bit_equal(np.arange(4.0), np.arange(4.0))
        assert not results_bit_equal(np.arange(4.0), np.arange(4))  # dtype


class TestDiskTierIntegration:
    def test_worker_disk_hits_flow_into_merged_stats(self, tmp_path):
        from repro.sim.cache import configure_simulation_cache_dir

        configure_simulation_cache_dir(str(tmp_path))
        try:
            clear_simulation_cache()
            cold = _small_grid(jobs=2)
            assert last_sweep_execution().worker_disk_hits == 0
            # Restart scenario inside one process: memory dropped (the
            # generation bump propagates to the persistent workers),
            # disk kept — the whole sweep replays from the disk tier.
            clear_simulation_cache()
            warm = _small_grid(jobs=2)
            execution = last_sweep_execution()
            stats = simulation_cache_stats()
            assert warm == cold
            assert execution.worker_misses == 0
            # Every lookup is served from the disk tier — either as a
            # lazy per-touch disk hit or, with the pipelined prefetch
            # having warmed the worker LRU first, as a memory hit of a
            # prefetched entry. Nothing recomputes either way.
            assert execution.worker_hits + execution.worker_disk_hits == 4
            # Prefetched entries are resident before each cell's
            # baseline snapshot, so workers no longer re-ship entries
            # the parent already holds on disk — the delta payload of a
            # fully warm replay is empty.
            assert execution.merged_entries == 0
            assert stats.misses == 0
            assert stats.hit_rate == 1.0
            # The grid is batchable, so the sweep shipped its keys and
            # the workers confirmed the prefetch (the broadcast covers
            # the whole pool, which may be wider than this sweep).
            assert execution.prefetch_keys == 4
            assert execution.prefetch_workers >= execution.jobs
            assert execution.prefetched_entries >= 4
        finally:
            configure_simulation_cache_dir(None)
            clear_simulation_cache()


class TestDegradation:
    def test_jobs_one_is_plain_serial(self):
        items = list(range(5))
        assert parallel_map(abs, items, jobs=1) == items
        assert last_sweep_execution().jobs == 1

    def test_order_preserved_under_striping(self, hbm):
        tasks = [(hbm, float(b)) for b in (100, 200, 300, 400, 500)]
        serial = parallel_map(_simulate_item, tasks, jobs=1)
        clear_simulation_cache()
        parallel = parallel_map(_simulate_item, tasks, jobs=3)
        assert serial == parallel

    def test_resolve_jobs_semantics(self):
        assert resolve_jobs(1, 100) == 1
        assert resolve_jobs(8, 3) == 3  # clamped to task count
        assert resolve_jobs(None, 100) >= 1  # auto
        assert resolve_jobs(0, 100) >= 1  # auto
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2, 10)

    def test_serial_fallback_without_fork(self, monkeypatch, hbm):
        monkeypatch.setattr(
            "repro.experiments.parallel.fork_available", lambda: False
        )
        clear_simulation_cache()
        records = _small_grid(jobs=4)
        assert last_sweep_execution().jobs == 1
        clear_simulation_cache()
        assert records == _small_grid(jobs=1)

    def test_nested_calls_degrade_to_serial(self, monkeypatch):
        monkeypatch.setattr("repro.experiments.parallel._IN_WORKER", True)
        assert resolve_jobs(4, 10) == 1

    def test_unknown_engine_rejected_before_fanout(self):
        with pytest.raises(ConfigurationError):
            run_grid(
                systems=(hbm_system(),), schemes=_SCHEMES,
                engines=("software", "fpga"), jobs=4,
            )


def _identity(x):
    """Module-level task body so pool workers can unpickle it."""
    return x


class TestPoolOwnership:
    """The claim/release seam a long-lived daemon relies on."""

    @pytest.fixture(autouse=True)
    def _fresh_pool(self):
        shutdown_worker_pool()
        yield
        release_worker_pool()

    def test_claim_excludes_pool_from_ambient_teardown(self):
        from repro.experiments.parallel import _ambient_pool_teardown

        width = claim_worker_pool(2)
        assert width == 2 and worker_pool_owned()
        pids = worker_pool_pids()
        _ambient_pool_teardown()  # the atexit hook must spare an owned pool
        assert worker_pool_pids() == pids
        release_worker_pool()
        assert not worker_pool_owned()
        assert worker_pool_size() == 0
        _ambient_pool_teardown()  # un-owned again: tears down, idempotent

    def test_owned_pool_never_rebuilt_wider(self):
        claim_worker_pool(2)
        pids = worker_pool_pids()
        results = parallel_map(_identity, list(range(8)), jobs=4)
        assert results == list(range(8))
        # The sweep ran at the owner's width on the owner's workers.
        assert last_sweep_execution().jobs == 2
        assert worker_pool_pids() == pids

    def test_release_is_idempotent(self):
        claim_worker_pool(2)
        release_worker_pool()
        release_worker_pool()
        assert worker_pool_size() == 0 and not worker_pool_owned()

    def test_claim_rejects_negative_width(self):
        with pytest.raises(ConfigurationError):
            claim_worker_pool(-3)

    def test_width_one_claim_still_takes_ownership(self):
        # Regression: a jobs=1 claim forks no pool but must still flip
        # the ownership bit, so a daemon's unconditional release on
        # drain is symmetric at every width (a width-1 daemon used to
        # leak its claim and break the next claimer's accounting).
        width = claim_worker_pool(1)
        assert width == 1
        assert worker_pool_owned()
        assert worker_pool_size() == 0  # no workers were forked
        release_worker_pool()
        assert not worker_pool_owned()


def _sleepy(task):
    """Module-level sleeping task body for deadline-seam tests."""
    index, duration = task
    time.sleep(duration)
    return index


class TestStreamDeadline:
    """The ``deadline=`` seam on :func:`stream_map` (both executors)."""

    def test_serial_deadline_raises_after_partial_yield(self):
        items = [(i, 0.05) for i in range(20)]
        seen = []
        with pytest.raises(DeadlineExceededError):
            for index, result in stream_map(
                _sleepy, items, jobs=1, deadline=time.monotonic() + 0.2
            ):
                assert index == result
                seen.append(index)
        assert 0 < len(seen) < 20
        assert seen == sorted(seen)

    def test_serial_past_deadline_yields_nothing(self):
        with pytest.raises(DeadlineExceededError):
            next(stream_map(
                _sleepy, [(0, 0.0)], jobs=1,
                deadline=time.monotonic() - 1.0,
            ))

    def test_parallel_deadline_stops_dispatch_and_keeps_pool_healthy(self):
        shutdown_worker_pool()
        items = [(i, 0.2) for i in range(12)]
        before = dispatched_task_count()
        with pytest.raises(DeadlineExceededError):
            for _ in stream_map(
                _sleepy, items, jobs=2, deadline=time.monotonic() + 0.5
            ):
                pass
        assert dispatched_task_count() - before < len(items)
        # The pool survived the abandoned sweep and runs a fresh one.
        results = list(stream_map(_sleepy, [(i, 0.0) for i in range(4)],
                                  jobs=2))
        assert results == [(0, 0), (1, 1), (2, 2), (3, 3)]
        shutdown_worker_pool()

    def test_no_deadline_is_unbounded(self):
        results = list(stream_map(_sleepy, [(i, 0.0) for i in range(3)],
                                  jobs=1))
        assert results == [(0, 0), (1, 1), (2, 2)]
