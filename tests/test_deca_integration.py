"""Tests for the DECA integration ladder (Figure 17 options)."""

import pytest

from repro.core.schemes import parse_scheme
from repro.deca.integration import (
    INTEGRATION_LADDER,
    DecaIntegration,
    FULL_INTEGRATION,
    deca_kernel_timing,
)
from repro.errors import ConfigurationError
from repro.sim.pipeline import InvocationMode, simulate_tile_stream


class TestLadder:
    def test_five_rungs(self):
        assert len(INTEGRATION_LADDER) == 5
        assert INTEGRATION_LADDER[0].label == "Base"
        assert INTEGRATION_LADDER[-1].label == "+TEPL (DECA)"

    def test_full_integration_is_last(self):
        assert FULL_INTEGRATION.tepl
        assert FULL_INTEGRATION.tout_regs

    def test_prefetch_windows_increase(self):
        windows = [opt.prefetch_window for opt in INTEGRATION_LADDER[:3]]
        assert windows == sorted(windows)
        assert windows[0] < windows[-1]

    def test_exposure_decreases(self, hbm):
        exposures = [
            opt.exposed_latency(hbm) for opt in INTEGRATION_LADDER[:3]
        ]
        assert exposures == sorted(exposures, reverse=True)

    def test_tout_shortens_handoff(self, hbm):
        without = INTEGRATION_LADDER[2].handoff_cycles(hbm)
        with_tout = INTEGRATION_LADDER[3].handoff_cycles(hbm)
        assert with_tout < without

    def test_prefetcher_requires_l2(self):
        with pytest.raises(ConfigurationError):
            DecaIntegration(
                reads_l2=False, own_prefetcher=True,
                tout_regs=False, tepl=False,
            )


class TestKernelTiming:
    def test_tepl_mode(self, hbm):
        timing = deca_kernel_timing(hbm, parse_scheme("Q8_20%"))
        assert timing.mode is InvocationMode.TEPL
        assert timing.fence_cycles == 0.0
        assert not timing.dec_is_avx

    def test_store_mode_before_tepl(self, hbm):
        timing = deca_kernel_timing(
            hbm, parse_scheme("Q8_20%"), integration=INTEGRATION_LADDER[3]
        )
        assert timing.mode is InvocationMode.SERIALIZED
        assert timing.invoke_cycles == hbm.mmio_store_latency

    def test_each_rung_improves(self, hbm):
        scheme = parse_scheme("Q8_10%")
        intervals = []
        for option in INTEGRATION_LADDER:
            timing = deca_kernel_timing(hbm, scheme, integration=option)
            sim = simulate_tile_stream(hbm, timing)
            intervals.append(sim.steady_interval_cycles)
        for prev, nxt in zip(intervals, intervals[1:]):
            assert nxt < prev

    def test_dec_cycles_override(self, hbm):
        timing = deca_kernel_timing(
            hbm, parse_scheme("Q8"), dec_cycles=[10.0, 20.0]
        )
        assert timing.tile_dec_cycles(4).tolist() == [10, 20, 10, 20]
