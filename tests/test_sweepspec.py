"""Tests for the declarative sweep engine and the streaming executor.

The contracts under test (see ``repro/experiments/sweepspec.py`` and
``repro/experiments/parallel.py``):

* a spec's cell grid is the ordered cartesian product of its axes, and
  ``run(jobs=N)`` is bit-identical to the hand-rolled serial loop;
* ``stream()`` yields results index-sorted even when workers complete
  out of order, and the first result is available before the sweep
  finishes (incremental JSONL emission);
* closing a stream mid-sweep stops dispatch — unsubmitted cells never
  run — and leaves the persistent pool usable;
* the scenario registry enumerates every ported sweep.
"""

import json
import os
import time

import pytest

from repro.core.schemes import parse_scheme
from repro.errors import ConfigurationError
from repro.experiments import sweepspec as sw
from repro.experiments.parallel import (
    NEGATIVE_JOBS_ERROR,
    fork_available,
    last_sweep_execution,
    parallel_map,
    resolve_jobs,
    stream_map,
)
from repro.sim.cache import clear_simulation_cache

_SCHEMES = (parse_scheme("Q4"), parse_scheme("Q8_5%"))


# ---------------------------------------------------------------------
# Module-level task bodies (pool workers pickle them by reference).
# ---------------------------------------------------------------------


def _double(item):
    return item * 2


def _sleep_then_mark(task):
    """Sleep, then drop a marker file; returns the item's index."""
    marker_dir, index, delay = task
    time.sleep(delay)
    with open(os.path.join(marker_dir, f"cell-{index}"), "w") as handle:
        handle.write(str(index))
    return index


def _mark_then_sleep(task):
    """Drop a marker file first (records dispatch), then sleep."""
    marker_dir, index, delay = task
    with open(os.path.join(marker_dir, f"cell-{index}"), "w") as handle:
        handle.write(str(index))
    time.sleep(delay)
    return index


def _explode_on_three(item):
    if item == 3:
        raise ValueError("cell 3 is cursed")
    return item


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="streaming executor needs fork"
)


# ---------------------------------------------------------------------
# SweepSpec basics
# ---------------------------------------------------------------------


class TestSweepSpec:
    def _spec(self, values=(1, 2, 3), **overrides):
        kwargs = dict(
            name="toy",
            axes={"x": tuple(values)},
            task=_double,
            make_cell=lambda coords: coords["x"],
        )
        kwargs.update(overrides)
        return sw.SweepSpec(**kwargs)

    def test_grid_is_ordered_axis_product(self):
        spec = sw.SweepSpec(
            name="grid2d",
            axes={"a": (1, 2), "b": ("x", "y", "z")},
            task=_double,
        )
        assert spec.cell_count == 6
        assert spec.coords()[:4] == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"}, {"a": 1, "b": "z"},
            {"a": 2, "b": "x"},
        ]
        assert spec.describe_axes() == "a×2 · b×3"

    def test_keep_prunes_cells(self):
        spec = sw.SweepSpec(
            name="pruned",
            axes={"a": (1, 2, 3), "b": (1, 2, 3)},
            keep=lambda c: c["b"] <= c["a"],
            task=_double,
        )
        assert spec.cell_count == 6
        assert all(c["b"] <= c["a"] for c in spec.coords())

    def test_run_reduces_ordered_results(self):
        spec = self._spec(reduce=sum)
        assert spec.run() == 12

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            sw.SweepSpec(name="bad", axes={"x": ()}, task=_double)
        with pytest.raises(ConfigurationError):
            sw.SweepSpec(name="bad", axes={}, task=_double)

    def test_stream_yields_cellresults_in_order(self):
        cells = list(self._spec().stream())
        assert [c.index for c in cells] == [0, 1, 2]
        assert [c.value for c in cells] == [2, 4, 6]
        assert cells[1].coords == {"x": 2}

    def test_progress_callback_sees_every_cell(self):
        calls = []
        self._spec().run(progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_default_rows_merge_coords_and_fields(self):
        cell = sw.CellResult(index=0, coords={"x": 1}, value=41)
        (row,) = sw._default_rows(cell)
        assert row == {"x": 1, "value": 41}


# ---------------------------------------------------------------------
# The scenario registry
# ---------------------------------------------------------------------


class TestRegistry:
    def test_all_seven_sweeps_registered(self):
        import repro.experiments  # noqa: F401 — triggers registration

        names = set(sw.scenario_names())
        assert {
            "grid", "speedups", "figure12", "figure13", "batch_sweep",
            "sensitivity", "dse",
        } <= names

    def test_lookup_and_unknown(self):
        import repro.experiments  # noqa: F401

        assert sw.get_scenario("grid").name == "grid"
        assert sw.find_scenario("not-a-sweep") is None
        with pytest.raises(ConfigurationError):
            sw.get_scenario("not-a-sweep")

    def test_listing_builds_nothing(self):
        # Scenario summaries must be available without running builders.
        for scenario in sw.iter_scenarios():
            assert scenario.summary

    def test_dse_scenario_matches_core_exploration(self):
        from repro.core.dse import explore_deca_designs
        from repro.experiments.dse import dse_spec
        from repro.sim.system import hbm_system

        machine = hbm_system().machine
        via_spec = dse_spec(machine, _SCHEMES).run()
        via_core = explore_deca_designs(machine, _SCHEMES)
        assert via_spec == via_core
        assert via_spec.best is not None


# ---------------------------------------------------------------------
# Streaming executor: ordering, cancellation, errors
# ---------------------------------------------------------------------


@needs_fork
class TestStreamingExecutor:
    def test_out_of_order_completion_yields_index_sorted(self, tmp_path):
        # Cell 0 sleeps while cells 1..3 finish instantly on the other
        # worker: completion order is out of order, yield order is not.
        marker_dir = str(tmp_path)
        tasks = [(marker_dir, 0, 0.3)] + [
            (marker_dir, i, 0.0) for i in (1, 2, 3)
        ]
        yielded = []
        for index, value in stream_map(_sleep_then_mark, tasks, jobs=2):
            if not yielded:
                # By the time index 0 finally lands, the later cells
                # must already have completed — proof the join really
                # saw out-of-order chunks and re-sorted them.
                done = {p.name for p in tmp_path.iterdir()}
                assert {"cell-1", "cell-2", "cell-3"} <= done
            yielded.append((index, value))
        assert yielded == [(0, 0), (1, 1), (2, 2), (3, 3)]
        execution = last_sweep_execution()
        assert execution.jobs == 2
        assert execution.completed == 4
        assert not execution.cancelled

    def test_mid_stream_break_cancels_outstanding_dispatch(self, tmp_path):
        marker_dir = str(tmp_path)
        total = 24
        tasks = [(marker_dir, i, 0.02) for i in range(total)]
        consumed = []
        for index, value in stream_map(_mark_then_sleep, tasks, jobs=2):
            consumed.append(index)
            if len(consumed) == 2:
                break  # closes the generator
        assert consumed == [0, 1]
        execution = last_sweep_execution()
        assert execution.cancelled
        assert execution.completed < total
        # Only the in-flight window (2 * jobs) beyond the consumed cells
        # was ever dispatched; the rest of the grid never ran.
        dispatched = len(list(tmp_path.iterdir()))
        assert dispatched < total / 2
        assert dispatched <= execution.completed + 4
        # The persistent pool survived the early close and still works.
        assert parallel_map(_double, [1, 2, 3], jobs=2) == [2, 4, 6]

    def test_worker_exception_propagates_and_pool_survives(self):
        with pytest.raises(ValueError, match="cursed"):
            list(stream_map(_explode_on_three, list(range(8)), jobs=2))
        assert parallel_map(_double, [5], jobs=1) == [10]

    def test_serial_stream_is_lazy(self):
        # jobs=1 must stream too: the first result arrives before later
        # cells run (the time-to-first-result property on one core).
        stream = stream_map(_double, [1, 2, 3], jobs=1)
        assert next(stream) == (0, 2)
        stream.close()
        execution = last_sweep_execution()
        assert execution.jobs == 1
        assert execution.completed == 1
        assert execution.cancelled

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="cursed"):
            list(stream_map(_explode_on_three, [1, 3], jobs=1))

    def test_task_failure_is_not_reported_as_cancellation(self):
        # A blown-up task ends the sweep early, but that is a failure,
        # not a consumer cancel — the execution report must not lie.
        with pytest.raises(ValueError):
            list(stream_map(_explode_on_three, [1, 3, 5], jobs=1))
        assert not last_sweep_execution().cancelled
        if fork_available():
            with pytest.raises(ValueError):
                list(stream_map(_explode_on_three, list(range(8)), jobs=2))
            assert not last_sweep_execution().cancelled


class TestResolveJobs:
    def test_zero_and_none_resolve_to_cpu_count(self):
        expected = min(os.cpu_count() or 1, 100)
        if fork_available():
            assert resolve_jobs(0, 100) == expected
            assert resolve_jobs(None, 100) == expected
        else:
            assert resolve_jobs(0, 100) == 1

    def test_negative_jobs_share_one_error_message(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_jobs(-2, 10)
        assert str(excinfo.value) == NEGATIVE_JOBS_ERROR.format(jobs=-2)
        with pytest.raises(ConfigurationError) as excinfo:
            list(stream_map(_double, [1], jobs=-7))
        assert str(excinfo.value) == NEGATIVE_JOBS_ERROR.format(jobs=-7)


# ---------------------------------------------------------------------
# Incremental emission
# ---------------------------------------------------------------------


class TestEmission:
    def _spec(self):
        return sw.SweepSpec(
            name="emit",
            axes={"x": (1, 2, 3, 4)},
            task=_double,
            make_cell=lambda coords: coords["x"],
        )

    def test_jsonl_lines_appear_before_sweep_finishes(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        lines_seen_mid_sweep = []
        with sw.open_emitter(path) as emitter:
            def on_cell(cell):
                lines_seen_mid_sweep.append(
                    len(path.read_text().splitlines())
                )

            output = sw.stream_to_emitter(
                self._spec(), emitter, jobs=1, on_cell=on_cell
            )
        # After the FIRST cell (3 cells still outstanding) the file
        # already held that cell's row — emission is incremental.
        assert lines_seen_mid_sweep == [1, 2, 3, 4]
        assert output == [2, 4, 6, 8]
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == [
            {"x": 1, "value": 2}, {"x": 2, "value": 4},
            {"x": 3, "value": 6}, {"x": 4, "value": 8},
        ]

    def test_csv_emitter_writes_header_once_and_flushes(self, tmp_path):
        path = tmp_path / "rows.csv"
        with sw.open_emitter(path) as emitter:
            assert isinstance(emitter, sw.CsvEmitter)
            sw.stream_to_emitter(self._spec(), emitter, jobs=1)
        lines = path.read_text().splitlines()
        assert lines[0] == "x,value"
        assert lines[1:] == ["1,2", "2,4", "3,6", "4,8"]

    def test_csv_rejects_mixed_row_schemas_cleanly(self, tmp_path):
        # CSV carries one schema per file; a second scenario's rows must
        # raise the catchable ConfigurationError, not a csv ValueError.
        with sw.open_emitter(tmp_path / "rows.csv") as emitter:
            emitter.emit({"a": 1, "b": 2})
            with pytest.raises(ConfigurationError, match="jsonl"):
                emitter.emit({"c": 3})

    def test_jsonl_line_is_the_shared_serialization(self):
        line = sw.jsonl_line({"scheme": parse_scheme("Q4"), "x": 1.5})
        assert json.loads(line) == {"scheme": "Q4", "x": 1.5}

    def test_suffix_selects_format(self, tmp_path):
        assert isinstance(
            sw.open_emitter(tmp_path / "a.jsonl"), sw.JsonlEmitter
        )
        assert isinstance(sw.open_emitter(tmp_path / "a.CSV"), sw.CsvEmitter)

    def test_row_values_coerced_to_scalars(self, tmp_path):
        # Schemes/systems carry a .name; everything else strs.
        assert sw._json_scalar(parse_scheme("Q4")) == "Q4"
        assert sw._json_scalar(3.5) == 3.5
        assert sw._json_scalar(None) is None
        assert sw._json_scalar((1, 2)) == "(1, 2)"


# ---------------------------------------------------------------------
# Ported entry points: the spec path is the old path, bit for bit
# ---------------------------------------------------------------------


class TestPortedSweeps:
    def test_grid_spec_enumerates_like_the_old_loop(self):
        from repro.experiments.grid import grid_spec
        from repro.sim.system import hbm_system

        spec = grid_spec(systems=(hbm_system(),), schemes=_SCHEMES)
        assert spec.cell_count == 1 * 2 * 2
        coords = spec.coords()
        # system-major, then scheme, then engine — the historical order.
        assert [c["engine"] for c in coords[:2]] == ["software", "deca"]
        assert coords[0]["scheme"].name == "Q4"
        assert coords[2]["scheme"].name == "Q8_5%"

    def test_grid_stream_matches_buffered_run(self):
        from repro.experiments.grid import grid_spec, run_grid
        from repro.sim.system import hbm_system

        clear_simulation_cache()
        records = run_grid(systems=(hbm_system(),), schemes=_SCHEMES)
        clear_simulation_cache()
        streamed = [
            cell.value
            for cell in grid_spec(
                systems=(hbm_system(),), schemes=_SCHEMES
            ).stream(jobs=1)
        ]
        assert streamed == records

    def test_speedup_rows_flatten_scheme_names(self):
        from repro.experiments.figure12 import sweep_spec

        spec = sweep_spec()
        cells = list(spec.stream(jobs=1))
        (row,) = spec.rows_for(cells[0])
        assert set(row) == {
            "scheme", "software", "deca", "optimal", "deca_over_software"
        }
        assert isinstance(row["scheme"], str)

    def test_sensitivity_spec_matches_run(self):
        from repro.experiments import sensitivity

        clear_simulation_cache()
        via_run = sensitivity.run()
        clear_simulation_cache()
        via_spec = sensitivity.sweep_spec().run(jobs=1)
        assert via_spec == via_run

    def test_batch_sweep_rows_expand_per_scheme(self):
        from repro.experiments import batch_sweep

        spec = batch_sweep.sweep_spec(batches=(1,))
        cells = list(spec.stream(jobs=1))
        rows = list(spec.rows_for(cells[0]))
        assert len(rows) == len(cells[0].value)
        assert all(row["batch"] == 1 for row in rows)
