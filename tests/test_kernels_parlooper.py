"""Tests for the Parlooper-style tile partitioning."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.parlooper import (
    imbalance,
    max_tiles_per_core,
    partition_tiles,
    tiles_for_matrix,
)


class TestTilesForMatrix:
    def test_counts(self):
        assert tiles_for_matrix(16, 32) == 1
        assert tiles_for_matrix(8192, 8192) == 512 * 256

    def test_misaligned(self):
        with pytest.raises(ConfigurationError):
            tiles_for_matrix(17, 32)


class TestPartition:
    def test_covers_everything(self):
        parts = partition_tiles(1000, 7)
        assert sum(p.count for p in parts) == 1000
        assert parts[0].start == 0
        assert parts[-1].stop == 1000

    def test_contiguous(self):
        parts = partition_tiles(100, 3)
        for prev, nxt in zip(parts, parts[1:]):
            assert prev.stop == nxt.start

    def test_imbalance_at_most_one(self):
        parts = partition_tiles(1001, 56)
        lo, hi = imbalance(parts)
        assert hi - lo <= 1

    def test_max_tiles_per_core(self):
        assert max_tiles_per_core(100, 7) == 15

    def test_exact_division(self):
        assert max_tiles_per_core(112, 56) == 2

    def test_more_cores_than_tiles(self):
        parts = partition_tiles(3, 8)
        assert sum(p.count for p in parts) == 3
        assert max(p.count for p in parts) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            partition_tiles(-1, 4)
        with pytest.raises(ConfigurationError):
            partition_tiles(4, 0)
        with pytest.raises(ConfigurationError):
            imbalance([])
