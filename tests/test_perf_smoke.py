"""Tier-1 liveness check for the perf benchmark harness.

The real perf gate is opt-in (``-m perf``), so its anchor code could
silently rot between runs. ``run_bench.py --smoke`` runs every anchor
body once at reduced sizes; this test exercises that mode inside tier-1
so a broken anchor fails fast, without timing anything for real and
without touching ``BENCH_perf.json``.
"""

import sys

import pytest

sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parents[1]))

from benchmarks.perf.run_bench import (  # noqa: E402
    DEFAULT_OUTPUT,
    KNOWN_BENCHMARKS,
    run_benchmarks,
)
from repro.experiments.parallel import fork_available  # noqa: E402
from repro.sim.cache import clear_simulation_cache  # noqa: E402


@pytest.mark.skipif(
    not fork_available(),
    reason="the pool-backed anchors need the fork start method",
)
def test_smoke_runs_every_anchor(tmp_path, monkeypatch):
    before = DEFAULT_OUTPUT.read_bytes() if DEFAULT_OUTPUT.exists() else None
    clear_simulation_cache()
    results = run_benchmarks(repeats=1, smoke=True)
    clear_simulation_cache()
    # Every known anchor produced an entry with a positive measurement.
    assert set(results) == set(KNOWN_BENCHMARKS)
    for name, entry in results.items():
        assert entry["after_s"] > 0.0, name
    # The machine-independent gate fields exist and are in range even
    # at smoke sizes (their values are only *gated* in real runs).
    assert results["multicore_event_blocked_300"]["speedup_vs_reference_loop"] > 0
    rate = results["warm_worker_hit_rate"]["worker_memory_hit_rate"]
    assert 0.0 <= rate <= 1.0
    assert results["dse_warm_cache"]["disk_hit_rate"] >= 0.0
    assert results["figure12_time_to_first_result"]["first_result_fraction"] > 0
    # The batching anchors measured both sides and derived their ratio.
    for name in ("grid_batched_48", "figure12_batched"):
        entry = results[name]
        assert entry["per_cell_s"] > 0.0, name
        assert entry["batched_speedup"] > 0.0, name
    assert results["grid_batched_48"]["cells"] == 48.0
    # The serve anchor measured both sides, and its coalescing rate is
    # a true rate even at smoke sizes.
    serve = results["serve_coalesced_8x"]
    assert serve["serial_s"] > 0.0
    assert 0.0 <= serve["coalesced_hit_rate"] <= 1.0
    assert serve["requests"] > 0.0
    # The cancellation anchor measured both sides; its reclaim share is
    # a true fraction even at smoke sizes.
    reclaim = results["serve_cancel_reclaim"]
    assert reclaim["full_s"] > 0.0
    assert 0.0 <= reclaim["reclaimed_fraction"] <= 1.0
    assert reclaim["cells"] > 0.0
    # The disk-tier anchors measured both sides and derived their
    # ratios; the prefetch hit rate is a true rate even at smoke sizes.
    delta = results["disk_delta_commit"]
    assert delta["per_entry_s"] > 0.0
    assert delta["delta_commit_speedup"] > 0.0
    assert delta["entries"] > 0.0
    attach = results["disk_index_attach"]
    assert attach["stat_walk_s"] > 0.0
    assert attach["index_attach_speedup"] > 0.0
    assert attach["entries"] > 0.0
    prefetch = results["prefetch_warm_sweep"]
    assert prefetch["cold_s"] > 0.0
    assert 0.0 <= prefetch["prefetch_hit_rate"] <= 1.0
    assert prefetch["cells"] > 0.0
    # The socket-executor anchors measured both backends / both sweeps
    # and derived their ratios; the warm shard ratio is a true fraction
    # of the cold transfer even at smoke sizes.
    dispatch = results["remote_dispatch_overhead"]
    assert dispatch["fork_s"] > 0.0
    assert dispatch["dispatch_overhead_ratio"] > 0.0
    assert dispatch["cells"] == 48.0
    dedup = results["remote_delta_dedup"]
    assert dedup["cold_s"] > 0.0
    assert dedup["cold_delta_bytes"] > 0.0
    assert 0.0 <= dedup["warm_shard_bytes_ratio"] <= 1.0
    # Smoke mode must not have rewritten the recorded report.
    after = DEFAULT_OUTPUT.read_bytes() if DEFAULT_OUTPUT.exists() else None
    assert before == after


def test_no_batch_env_escape(monkeypatch):
    """REPRO_NO_BATCH must route sweeps per-cell with identical records."""
    from repro.experiments.grid import run_grid
    from repro.experiments.sweepspec import batching_enabled
    from repro.sim.cache import simulation_cache_stats

    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    assert batching_enabled() is False
    clear_simulation_cache()
    escaped = run_grid(tiles=48)
    # The per-cell path never pre-seeds, so every lookup is a cold miss.
    stats = simulation_cache_stats()
    assert (stats.hits, stats.misses) == (0, 48)
    monkeypatch.delenv("REPRO_NO_BATCH")
    assert batching_enabled() is True
    clear_simulation_cache()
    batched = run_grid(tiles=48)
    assert simulation_cache_stats().hits == 48
    assert escaped == batched
    clear_simulation_cache()
