"""Equivalence and caching tests for the vectorized simulation core.

The vectorized engines must match the retained per-tile reference loops
*exactly* — same bits, not just close — across invocation modes, scalar
and per-tile costs, and demand-cap configurations. The cache must return
the same result object for value-equal keys and recompute when any key
component changes.
"""

import numpy as np
import pytest

from repro.sim.cache import (
    clear_simulation_cache,
    simulation_cache_stats,
    simulation_key,
)
from repro.sim.memory import MemoryChannel
from repro.sim.pipeline import (
    InvocationMode,
    KernelTiming,
    _broadcast,
    simulate_tile_stream,
    simulate_tile_stream_reference,
)
from repro.sim.system import ddr_system, hbm_system

_TRACE_FIELDS = (
    "fetch_issue", "mem_done", "dec_start", "dec_done",
    "mtx_start", "mtx_done",
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_simulation_cache()
    yield
    clear_simulation_cache()


def _assert_traces_identical(vectorized, reference):
    assert vectorized.trace is not None and reference.trace is not None
    for field in _TRACE_FIELDS:
        np.testing.assert_array_equal(
            getattr(vectorized.trace, field),
            getattr(reference.trace, field),
            err_msg=f"trace field {field} diverged from the reference loop",
        )
    assert vectorized.makespan_cycles == reference.makespan_cycles
    assert vectorized.steady_interval_cycles == reference.steady_interval_cycles


def _per_tile_arrays(tiles=240):
    rng = np.random.default_rng(42)
    nbytes = rng.uniform(40.0, 900.0, size=tiles)
    # A mix of zero-dec (pass-through) and decompressed tiles exercises
    # the subsequence chain.
    dec = np.where(rng.random(tiles) < 0.25, 0.0, rng.uniform(1.0, 90.0, tiles))
    return nbytes, dec


def _timings_for(mode):
    scalar = dict(bytes_per_tile=300.0, dec_cycles=24.0)
    nbytes, dec = _per_tile_arrays()
    per_tile = dict(bytes_per_tile=nbytes, dec_cycles=dec)
    comm = {}
    if mode is not InvocationMode.OVERLAPPED:
        comm = dict(
            invoke_cycles=20.0, fence_cycles=10.0, handoff_cycles=12.0,
            loader_latency_cycles=10.0,
        )
    for base in (scalar, per_tile):
        for cap in (None, 2.5):
            yield KernelTiming(
                mode=mode, demand_load_cap=cap,
                core_overhead_cycles=5.0, **base, **comm,
            )


class TestEngineEquivalence:
    @pytest.mark.parametrize("mode", list(InvocationMode))
    @pytest.mark.parametrize("system_factory", [hbm_system, ddr_system])
    def test_bit_identical_to_reference(self, mode, system_factory):
        system = system_factory()
        for timing in _timings_for(mode):
            vec = simulate_tile_stream(system, timing, 240, use_cache=False)
            ref = simulate_tile_stream_reference(system, timing, 240)
            _assert_traces_identical(vec, ref)

    def test_window_limited_regime_uses_exact_fallback(self, hbm):
        # Tiles so small the channel idles between fetches: the fixed
        # point propagates one prefetch window per pass, so the engine
        # must fall back to the reference loop — and still be exact.
        timing = KernelTiming(bytes_per_tile=16.0, dec_cycles=1.0)
        vec = simulate_tile_stream(hbm, timing, 600, use_cache=False)
        ref = simulate_tile_stream_reference(hbm, timing, 600)
        _assert_traces_identical(vec, ref)

    def test_tepl_no_prefetch_ahead(self, hbm):
        timing = KernelTiming(
            bytes_per_tile=120.0, dec_cycles=30.0, mode=InvocationMode.TEPL,
            invoke_cycles=2.0, handoff_cycles=12.0,
            loader_latency_cycles=10.0, prefetch_window=2, n_loaders=4,
        )
        vec = simulate_tile_stream(hbm, timing, 120, use_cache=False)
        ref = simulate_tile_stream_reference(hbm, timing, 120)
        _assert_traces_identical(vec, ref)

    def test_matches_seed_style_recurrence(self, hbm):
        # Safety net against semantic drift: an independently written
        # max/add evaluation of the OVERLAPPED recurrence (the seed's
        # arithmetic order) must agree to floating-point reassociation
        # noise.
        timing = KernelTiming(
            bytes_per_tile=300.0, dec_cycles=20.0, core_overhead_cycles=3.0,
            handoff_cycles=7.0,
        )
        tiles = 200
        result = simulate_tile_stream(hbm, timing, tiles, use_cache=False)
        nbytes = timing.tile_bytes(tiles)
        dec = timing.tile_dec_cycles(tiles)
        bpc = (
            hbm.per_core_bytes_per_cycle() * 0.93
        )
        exposed = timing.exposed_latency * hbm.memory_latency
        window = timing.prefetch_window
        dec_start = np.zeros(tiles)
        done = np.zeros(tiles)
        mem_free = dec_free = mtx_free = 0.0
        for i in range(tiles):
            issue = 0.0 if i < window else dec_start[i - window]
            start = max(issue, mem_free)
            mem_free = start + nbytes[i] / bpc
            mem_done = mem_free + exposed
            if dec[i] > 0.0:
                dec_start[i] = max(mem_done, dec_free)
                dec_free = dec_start[i] + dec[i] + timing.core_overhead_cycles
                dec_done = dec_free
            else:
                dec_start[i] = mem_done
                dec_done = mem_done
            mtx_start = max(dec_done + timing.handoff_cycles, mtx_free)
            mtx_free = mtx_start + timing.mtx_cycles
            done[i] = mtx_free
        np.testing.assert_allclose(
            result.trace.mtx_done, done, rtol=1e-9, atol=1e-6
        )
        np.testing.assert_allclose(
            result.trace.dec_start, dec_start, rtol=1e-9, atol=1e-6
        )


class TestRequestMany:
    def test_matches_sequential_requests_exactly_on_integral_values(self):
        # Integral services and issues: the relative-coordinate scan and
        # the scalar max/add path compute identical floats.
        batch = MemoryChannel(2.0, 100.0)
        scalar = MemoryChannel(2.0, 100.0)
        issues = np.array([0.0, 5.0, 6.0, 200.0, 201.0])
        nbytes = np.array([64.0, 32.0, 128.0, 16.0, 64.0])
        got = batch.request_many(issues, nbytes, 0.25)
        want = [scalar.request(i, b, 0.25) for i, b in zip(issues, nbytes)]
        np.testing.assert_array_equal(got, want)
        assert batch.busy_cycles == scalar.busy_cycles

    def test_matches_sequential_requests_on_random_values(self):
        rng = np.random.default_rng(3)
        batch = MemoryChannel(5.115, 317.3)
        scalar = MemoryChannel(5.115, 317.3)
        issues = np.cumsum(rng.uniform(0.0, 40.0, size=200))
        nbytes = rng.uniform(1.0, 700.0, size=200)
        got = batch.request_many(issues, nbytes, 0.08)
        want = [scalar.request(i, b, 0.08) for i, b in zip(issues, nbytes)]
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_state_carries_across_batches(self):
        channel = MemoryChannel(1.0, 0.0)
        first = channel.request_many(np.zeros(3), np.full(3, 10.0))
        assert first.tolist() == [10.0, 20.0, 30.0]
        second = channel.request_many(np.zeros(2), np.full(2, 5.0))
        assert second.tolist() == [35.0, 40.0]

    def test_rejects_bad_input(self):
        from repro.errors import SimulationError

        channel = MemoryChannel(1.0, 10.0)
        with pytest.raises(SimulationError):
            channel.request_many(np.zeros(2), np.array([1.0, -2.0]))
        with pytest.raises(SimulationError):
            channel.request_many(np.zeros(2), np.ones(3))
        with pytest.raises(SimulationError):
            channel.request_many(np.zeros(2), np.ones(2), exposed_latency=2.0)


class TestBroadcastScalars:
    def test_numpy_scalar_types_route_to_scalar_path(self):
        for value in (3.0, np.float64(3.0), np.float32(3.0), np.array(3.0)):
            out = _broadcast(value, 5, "bytes_per_tile")
            assert out.shape == (5,)
            assert out.tolist() == [3.0] * 5

    def test_zero_dim_array_in_kernel_timing(self):
        timing = KernelTiming(
            bytes_per_tile=np.array(128.0), dec_cycles=np.float64(4.0)
        )
        assert timing.tile_bytes(8).tolist() == [128.0] * 8
        assert timing.tile_dec_cycles(8).tolist() == [4.0] * 8

    def test_empty_sequence_still_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            _broadcast([], 8, "bytes_per_tile")


class TestSimulationCache:
    def test_same_key_returns_same_object(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        first = simulate_tile_stream(hbm, timing, 100)
        second = simulate_tile_stream(hbm, timing, 100)
        assert first is second
        stats = simulation_cache_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_value_equal_inputs_share_an_entry(self):
        # Distinct but equal system/timing objects hit the same entry.
        first = simulate_tile_stream(
            hbm_system(), KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0), 100
        )
        second = simulate_tile_stream(
            hbm_system(), KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0), 100
        )
        assert first is second

    def test_different_tiles_recomputes(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        first = simulate_tile_stream(hbm, timing, 100)
        second = simulate_tile_stream(hbm, timing, 101)
        assert first is not second
        assert simulation_cache_stats().misses == 2

    def test_per_tile_arrays_key_by_value(self, hbm):
        nbytes = np.linspace(100.0, 200.0, 64)
        t1 = KernelTiming(bytes_per_tile=nbytes.copy(), dec_cycles=8.0)
        t2 = KernelTiming(bytes_per_tile=nbytes.copy(), dec_cycles=8.0)
        assert simulation_key(hbm, t1, 64) == simulation_key(hbm, t2, 64)
        t3 = KernelTiming(bytes_per_tile=nbytes + 1.0, dec_cycles=8.0)
        assert simulation_key(hbm, t1, 64) != simulation_key(hbm, t3, 64)
        assert simulate_tile_stream(hbm, t1, 64) is simulate_tile_stream(
            hbm, t2, 64
        )
        assert simulate_tile_stream(hbm, t1, 64) is not simulate_tile_stream(
            hbm, t3, 64
        )

    def test_use_cache_false_bypasses(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        first = simulate_tile_stream(hbm, timing, 100, use_cache=False)
        second = simulate_tile_stream(hbm, timing, 100, use_cache=False)
        assert first is not second
        assert simulation_cache_stats().misses == 0

    def test_cached_results_agree_with_uncached(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        cached = simulate_tile_stream(hbm, timing, 100)
        fresh = simulate_tile_stream(hbm, timing, 100, use_cache=False)
        _assert_traces_identical(cached, fresh)

    def test_cached_trace_is_read_only(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        result = simulate_tile_stream(hbm, timing, 100)
        with pytest.raises(ValueError):
            result.trace.mtx_done[0] = -1.0

    def test_clear_resets(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        simulate_tile_stream(hbm, timing, 100)
        clear_simulation_cache()
        stats = simulation_cache_stats()
        assert stats.size == 0 and stats.hits == 0 and stats.misses == 0

    def test_dram_efficiency_perturbation_keys_its_own_entries(self, hbm):
        # The sensitivity study patches pipeline.DRAM_EFFICIENCY around
        # simulate_tile_stream calls; perturbed runs must neither reuse
        # the nominal cache entries nor pollute them.
        from repro.sim import pipeline as pipeline_module

        timing = KernelTiming(bytes_per_tile=1024.0, dec_cycles=1.0)
        nominal = simulate_tile_stream(hbm, timing, 100)
        original = pipeline_module.DRAM_EFFICIENCY
        pipeline_module.DRAM_EFFICIENCY = original * 0.8
        try:
            perturbed = simulate_tile_stream(hbm, timing, 100)
        finally:
            pipeline_module.DRAM_EFFICIENCY = original
        assert perturbed is not nominal
        assert (
            perturbed.steady_interval_cycles
            > nominal.steady_interval_cycles
        )
        # Restored constant: the nominal entry is intact, not polluted.
        assert simulate_tile_stream(hbm, timing, 100) is nominal
