"""Tests for the format registry and LUT generation."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.bfloat import bf16_round
from repro.formats.registry import (
    QuantFormat,
    available_formats,
    dequant_lut,
    get_format,
    register_format,
)


class TestRegistry:
    def test_builtin_formats_present(self):
        names = available_formats()
        for expected in ("bf16", "bf8", "e4m3", "mxfp4"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_format("BF8") is get_format("bf8")

    def test_unknown_format(self):
        with pytest.raises(FormatError, match="unknown format"):
            get_format("fp6")

    def test_duplicate_registration_rejected(self):
        fmt = get_format("bf8")
        with pytest.raises(FormatError, match="already registered"):
            register_format(fmt)

    def test_bits_per_weight_with_scale(self):
        mxfp4 = get_format("mxfp4")
        assert mxfp4.bits_per_weight() == pytest.approx(4 + 8 / 32)
        assert mxfp4.bits_per_weight(include_scale=False) == 4

    def test_bits_per_weight_ungrouped(self):
        assert get_format("bf8").bits_per_weight() == 8

    def test_grouped_flag(self):
        assert get_format("mxfp4").is_grouped
        assert not get_format("bf8").is_grouped

    def test_invalid_bits_rejected(self):
        with pytest.raises(FormatError):
            QuantFormat(
                name="bad", bits=0, group_size=None, scale_bits=0,
                encode=lambda x: x, decode=lambda x: x,
            )

    def test_scale_bits_group_consistency(self):
        with pytest.raises(FormatError):
            QuantFormat(
                name="bad2", bits=4, group_size=None, scale_bits=8,
                encode=lambda x: x, decode=lambda x: x,
            )


class TestDequantLut:
    def test_bf8_lut_has_256_entries(self):
        lut = dequant_lut(get_format("bf8"))
        assert lut.shape == (256,)

    def test_mxfp4_lut_has_16_entries(self):
        lut = dequant_lut(get_format("mxfp4"))
        assert lut.shape == (16,)

    def test_lut_entries_are_bf16_values(self):
        lut = dequant_lut(get_format("bf8"))
        assert np.array_equal(bf16_round(lut), lut, equal_nan=True)

    def test_lut_matches_decoder(self):
        fmt = get_format("e4m3")
        lut = dequant_lut(fmt)
        codes = np.arange(256, dtype=np.uint8)
        expected = bf16_round(fmt.decode(codes))
        assert np.array_equal(lut, expected, equal_nan=True)

    def test_bf16_has_no_lut(self):
        with pytest.raises(FormatError, match="LUTs address at most 8"):
            dequant_lut(get_format("bf16"))
