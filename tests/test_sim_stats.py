"""Tests for utilization reporting."""

import pytest

from repro.errors import SimulationError
from repro.sim.stats import UtilizationReport


class TestUtilizationReport:
    def test_bottleneck(self):
        report = UtilizationReport(memory=0.9, matrix=0.2, decompress=0.5)
        assert report.bottleneck == "MEM"

    def test_bottleneck_dec(self):
        report = UtilizationReport(memory=0.3, matrix=0.2, decompress=0.9)
        assert report.bottleneck == "DEC"

    def test_percent_rounding(self):
        report = UtilizationReport(memory=0.934, matrix=0.18, decompress=0.746)
        pct = report.as_percentages()
        assert pct == {"MEM": 93, "TMUL": 18, "DEC": 75}

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            UtilizationReport(memory=1.2, matrix=0.0, decompress=0.0)
        with pytest.raises(SimulationError):
            UtilizationReport(memory=-0.1, matrix=0.0, decompress=0.0)
