"""Tests for the software kernel timing builder."""

import math

import pytest

from repro.core.schemes import UNCOMPRESSED, parse_scheme
from repro.kernels.avx import AvxVariant
from repro.kernels.libxsmm import (
    SW_TILE_OVERHEAD_CYCLES,
    software_aixv,
    software_dec_cycles,
    software_kernel_timing,
    uncompressed_kernel_timing,
)
from repro.sim.pipeline import (
    InvocationMode,
    SW_DEMAND_LOAD_BYTES_PER_CYCLE,
)


class TestDecCycles:
    def test_two_vops_per_cycle(self):
        scheme = parse_scheme("Q8_20%")
        cycles = software_dec_cycles(scheme)
        from repro.kernels.avx import software_vops_per_tile
        assert cycles == pytest.approx(software_vops_per_tile(scheme) / 2)

    def test_uncompressed_is_free(self):
        assert software_dec_cycles(UNCOMPRESSED) == 0.0

    def test_more_units_halves_time(self):
        scheme = parse_scheme("Q8_20%")
        assert software_dec_cycles(
            scheme, AvxVariant.MORE_UNITS
        ) == pytest.approx(software_dec_cycles(scheme) / 2)


class TestAixv:
    def test_reciprocal_of_vops(self):
        scheme = parse_scheme("Q4")
        from repro.kernels.avx import software_vops_per_tile
        assert software_aixv(scheme) == pytest.approx(
            1 / software_vops_per_tile(scheme)
        )

    def test_uncompressed_is_infinite(self):
        assert math.isinf(software_aixv(UNCOMPRESSED))


class TestTimingBuilders:
    def test_software_timing_fields(self, hbm):
        timing = software_kernel_timing(hbm, parse_scheme("Q8_20%"))
        assert timing.mode is InvocationMode.OVERLAPPED
        assert timing.core_overhead_cycles == SW_TILE_OVERHEAD_CYCLES
        assert timing.demand_load_cap == SW_DEMAND_LOAD_BYTES_PER_CYCLE
        assert timing.dec_is_avx

    def test_uncompressed_timing(self, hbm):
        timing = uncompressed_kernel_timing(hbm)
        assert timing.dec_cycles == 0.0
        assert timing.bytes_per_tile == 1024.0
        assert timing.demand_load_cap is None

    def test_bf16_scheme_falls_back_to_uncompressed(self, hbm):
        timing = software_kernel_timing(hbm, UNCOMPRESSED)
        assert timing.dec_cycles == 0.0

    def test_bytes_override(self, hbm):
        timing = software_kernel_timing(
            hbm, parse_scheme("Q8"), bytes_per_tile=600.0
        )
        assert timing.bytes_per_tile == 600.0
