"""Tests for the BF16 and BF8 (E5M2) codecs."""

import numpy as np
import pytest

from repro.formats.bfloat import (
    bf16_bits_to_float32,
    bf16_round,
    e5m2_bits_to_float32,
    float32_to_bf16_bits,
    float32_to_e5m2_bits,
)


class TestBf16:
    def test_exact_values_roundtrip(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, 2.0, -3.5], dtype=np.float32)
        bits = float32_to_bf16_bits(values)
        assert np.array_equal(bf16_bits_to_float32(bits), values)

    def test_round_to_nearest_even_up(self):
        # 1 + 2^-8 is exactly halfway between two BF16 values around 1.0;
        # RNE picks the even mantissa (1.0).
        value = np.array([1.0 + 2.0**-8], dtype=np.float32)
        assert bf16_round(value)[0] == np.float32(1.0)

    def test_round_up_when_above_half(self):
        value = np.array([1.0 + 2.0**-8 + 2.0**-12], dtype=np.float32)
        assert bf16_round(value)[0] == np.float32(1.0 + 2.0**-7)

    def test_sign_preserved(self):
        values = np.array([-1.3, 1.3], dtype=np.float32)
        rounded = bf16_round(values)
        assert rounded[0] == -rounded[1]

    def test_negative_zero_preserved(self):
        bits = float32_to_bf16_bits(np.array([-0.0], dtype=np.float32))
        assert bits[0] == 0x8000

    def test_infinity_roundtrip(self):
        values = np.array([np.inf, -np.inf], dtype=np.float32)
        assert np.array_equal(bf16_round(values), values)

    def test_nan_canonicalised(self):
        bits = float32_to_bf16_bits(np.array([np.nan], dtype=np.float32))
        assert bits[0] & 0x7FFF == 0x7FC0
        assert np.isnan(bf16_bits_to_float32(bits))[0]

    def test_large_value_rounds_to_inf(self):
        # The largest float32 exceeds BF16's max after rounding up.
        value = np.array([3.4e38], dtype=np.float32)
        assert np.isinf(bf16_round(value))[0]

    def test_idempotent(self):
        values = np.linspace(-5, 5, 101, dtype=np.float32)
        once = bf16_round(values)
        assert np.array_equal(bf16_round(once), once)

    def test_matches_numpy_cast_on_random_values(self, rng):
        # numpy has no bf16, but truncation+RNE must preserve order.
        values = rng.normal(size=1000).astype(np.float32)
        rounded = bf16_round(values)
        assert np.all(np.abs(rounded - values) <= np.abs(values) * 2.0**-8 + 1e-45)

    def test_preserves_shape(self, rng):
        values = rng.normal(size=(7, 9)).astype(np.float32)
        assert bf16_round(values).shape == (7, 9)


class TestE5M2:
    def test_exact_values_roundtrip(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, 2.0, 1.5, -1.75], dtype=np.float32)
        bits = float32_to_e5m2_bits(values)
        assert np.array_equal(e5m2_bits_to_float32(bits), values)

    def test_all_codes_decode_finite_or_special(self):
        codes = np.arange(256, dtype=np.uint8)
        decoded = e5m2_bits_to_float32(codes)
        # 0x7C/0xFC are inf, 0x7D-0x7F / 0xFD-0xFF are NaN.
        nan_count = int(np.isnan(decoded).sum())
        inf_count = int(np.isinf(decoded).sum())
        assert nan_count == 6
        assert inf_count == 2

    def test_decode_is_monotonic_on_positive_finite(self):
        codes = np.arange(0, 0x7C, dtype=np.uint8)
        decoded = e5m2_bits_to_float32(codes)
        assert np.all(np.diff(decoded) > 0)

    def test_rounding_is_nearest(self, rng):
        values = rng.normal(scale=2.0, size=500).astype(np.float32)
        encoded = float32_to_e5m2_bits(values)
        decoded = e5m2_bits_to_float32(encoded)
        # E5M2 has 2 mantissa bits: relative error bound 2^-3 for normals.
        finite = np.isfinite(decoded)
        rel = np.abs(decoded[finite] - values[finite])
        assert np.all(rel <= np.maximum(np.abs(values[finite]) * 0.125, 2.0**-16))

    def test_nan_canonicalised(self):
        bits = float32_to_e5m2_bits(np.array([np.nan], dtype=np.float32))
        assert bits[0] & 0x7F == 0x7E

    def test_overflow_saturates_to_inf(self):
        bits = float32_to_e5m2_bits(np.array([1e9], dtype=np.float32))
        assert np.isinf(e5m2_bits_to_float32(bits))[0]

    def test_negative_sign_bit(self):
        bits = float32_to_e5m2_bits(np.array([-1.0], dtype=np.float32))
        assert bits[0] & 0x80

    def test_subnormal_values_decode(self):
        # The smallest E5M2 subnormal is 2^-16.
        smallest = np.array([0x01], dtype=np.uint8)
        assert e5m2_bits_to_float32(smallest)[0] == np.float32(2.0**-16)

    def test_roundtrip_idempotent(self, rng):
        values = rng.normal(size=200).astype(np.float32)
        once = e5m2_bits_to_float32(float32_to_e5m2_bits(values))
        twice = e5m2_bits_to_float32(float32_to_e5m2_bits(once))
        assert np.array_equal(once, twice, equal_nan=True)
