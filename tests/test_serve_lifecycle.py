"""Request-lifecycle tests for the serve daemon.

Covers the states an admitted sweep can end in beyond ``finished``:
``cancelled`` (the last subscriber hung up, or an explicit cancel
verb) and ``deadline_exceeded`` (a ``deadline_s`` request that ran out
of time queued or running) — plus the HTTP/SSE transport that maps
onto the same admission/coalescing core, the per-client admission
rate limit, and the client-side timeout mapping for a stalled daemon.

The cancellation contract is pinned at the executor level: cancelling
the sole subscriber of a running sweep must stop *pool dispatch*
within one in-flight window (asserted via the cumulative pool-task
counter), and the next identical request must recompute cleanly on
the same, still-healthy pool.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.errors import DeadlineExceededError
from repro.experiments.parallel import (
    dispatched_task_count,
    fork_available,
    shutdown_worker_pool,
    worker_pool_owned,
    worker_pool_size,
)
from repro.serve.client import (
    ServeClient,
    ServeRequestError,
    ServeUnavailableError,
    connect,
)
from repro.serve.daemon import ServeDaemon
from repro.serve.http import ServeHttpFrontend
from repro.serve.inline import synthetic_spec
from repro.serve.protocol import LineChannel, control_line
from repro.sim.cache import clear_simulation_cache

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)


@pytest.fixture
def daemon(tmp_path):
    """An in-process daemon on a fresh socket, cold cache, fresh pool."""
    clear_simulation_cache()
    shutdown_worker_pool()
    d = ServeDaemon(
        socket_path=str(tmp_path / "serve.sock"), jobs=2, max_active=2
    )
    d.start()
    yield d
    d.drain()
    shutdown_worker_pool()
    clear_simulation_cache()


def _synthetic(cells, cell_s, tag):
    return {"kind": "synthetic", "cells": cells, "cell_s": cell_s,
            "tag": tag}


def _await_idle(daemon, timeout=15.0):
    """Poll until no sweep is active and the coalescing table is empty."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snapshot = daemon.status_snapshot()
        if snapshot["active"] == 0 and not snapshot["jobs"]:
            return snapshot
        time.sleep(0.02)
    raise AssertionError("daemon never went idle")


class TestCancellation:
    def test_last_subscriber_detach_cancels_and_frees_pool(self, daemon):
        cells = 16
        inline = _synthetic(cells, 0.25, "cancel-sole")
        before = dispatched_task_count()
        client = connect(daemon.socket_path)
        stream = client.sweep_lines(inline=inline)
        next(stream)          # sweep is live and streaming
        stream.close()        # sole subscriber hangs up

        snapshot = _await_idle(daemon)
        assert snapshot["cancelled"] == 1
        assert snapshot["errors"] == 0
        cancelled_dispatch = dispatched_task_count() - before
        # Dispatch stopped within one in-flight window of the hangup:
        # the orphaned sweep never submitted anywhere near its full
        # grid (16 cells at 2 workers → window 4; a handful of rows
        # flow before the dead socket is noticed).
        assert cancelled_dispatch < cells - 4

        # The pool survived the cancellation and an identical request
        # recomputes cleanly on it (synthetic sweeps never cache).
        assert worker_pool_size() == 2
        rerun_before = dispatched_task_count()
        rows = list(connect(daemon.socket_path).sweep_lines(
            inline=_synthetic(cells, 0.0, "cancel-sole")
        ))
        assert len(rows) == cells
        assert dispatched_task_count() - rerun_before == cells

    def test_one_of_many_detach_does_not_cancel(self, daemon):
        inline = _synthetic(8, 0.1, "cancel-shared")
        survivor_rows = []
        start = threading.Barrier(2)

        def survivor():
            handle = connect(daemon.socket_path)
            start.wait()
            survivor_rows.extend(handle.sweep_lines(inline=inline))

        def quitter():
            handle = connect(daemon.socket_path)
            start.wait()
            stream = handle.sweep_lines(inline=inline)
            next(stream)
            stream.close()

        threads = [threading.Thread(target=survivor),
                   threading.Thread(target=quitter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = daemon.status_snapshot()
        assert len(survivor_rows) == 8
        assert snapshot["cancelled"] == 0
        assert snapshot["sweeps_computed"] == 1

    def test_explicit_cancel_verb(self, daemon):
        inline = _synthetic(16, 0.25, "cancel-verb")
        client = connect(daemon.socket_path)
        outcome = {}

        def consume():
            try:
                outcome["rows"] = len(list(client.sweep_lines(inline=inline)))
            except ServeRequestError as error:
                outcome["error"] = str(error)

        thread = threading.Thread(target=consume)
        thread.start()
        deadline = time.monotonic() + 10
        while client.last_ack is None and time.monotonic() < deadline:
            time.sleep(0.02)
        assert client.last_ack is not None
        assert connect(daemon.socket_path).cancel(client.last_ack["key"])
        thread.join(15)
        assert not thread.is_alive()
        # The attached subscriber saw the cancelled terminal as an error.
        assert "cancelled" in outcome["error"]
        snapshot = _await_idle(daemon)
        assert snapshot["cancelled"] == 1

    def test_cancel_unknown_key_reports_not_found(self, daemon):
        assert connect(daemon.socket_path).cancel("no-such-key") is False


class TestDeadline:
    def test_queued_expiry_never_touches_pool(self, tmp_path):
        clear_simulation_cache()
        shutdown_worker_pool()
        daemon = ServeDaemon(
            socket_path=str(tmp_path / "dl.sock"), jobs=2, max_active=1
        )
        daemon.start()
        try:
            blocker_cells = 4
            before = dispatched_task_count()
            blocker_rows = []
            started = threading.Event()

            def blocker():
                handle = connect(daemon.socket_path)
                stream = handle.sweep_lines(
                    inline=_synthetic(blocker_cells, 0.4, "dl-blocker")
                )
                blocker_rows.append(next(stream))
                started.set()
                blocker_rows.extend(stream)

            thread = threading.Thread(target=blocker)
            thread.start()
            assert started.wait(10)
            # The runner (max_active=1) is busy; this request expires
            # in the admission queue and must error without computing.
            with pytest.raises(ServeRequestError, match="deadline_exceeded"):
                list(connect(daemon.socket_path).sweep_lines(
                    inline=_synthetic(8, 0.2, "dl-queued"),
                    deadline_s=0.05,
                ))
            thread.join(15)
            assert len(blocker_rows) == blocker_cells
            # Only the blocker's cells ever reached the pool.
            assert dispatched_task_count() - before == blocker_cells
            assert daemon.status_snapshot()["deadline_exceeded"] == 1
        finally:
            daemon.drain()
            shutdown_worker_pool()
            clear_simulation_cache()

    def test_running_sweep_stops_within_cells_of_expiry(self, daemon):
        cells = 16
        before = dispatched_task_count()
        client = connect(daemon.socket_path)
        rows = []
        with pytest.raises(ServeRequestError, match="deadline_exceeded"):
            for line in client.sweep_lines(
                inline=_synthetic(cells, 0.2, "dl-running"),
                deadline_s=0.7,
            ):
                rows.append(line)
        # Some cells computed before expiry, nowhere near the full grid.
        assert 0 < len(rows) < cells
        assert dispatched_task_count() - before < cells
        assert daemon.status_snapshot()["deadline_exceeded"] == 1

    def test_rejects_non_positive_deadline(self, daemon):
        with pytest.raises(ServeRequestError, match="deadline_s"):
            list(connect(daemon.socket_path).sweep_lines(
                inline=_synthetic(2, 0.0, "dl-bad"), deadline_s=-1.0
            ))


class TestDeadlineSeam:
    """The executor-level deadline plumbed through SweepSpec.stream."""

    def test_serial_stream_deadline_raises_with_partial_rows(self):
        spec = synthetic_spec(cells=8, cell_s=0.1, tag="seam-serial")
        seen = []
        with pytest.raises(DeadlineExceededError):
            for cell in spec.stream(
                jobs=1, deadline=time.monotonic() + 0.25
            ):
                seen.append(cell.index)
        assert 0 < len(seen) < 8
        assert seen == sorted(seen)

    def test_parallel_stream_deadline_stops_dispatch(self):
        shutdown_worker_pool()
        spec = synthetic_spec(cells=12, cell_s=0.2, tag="seam-parallel")
        before = dispatched_task_count()
        with pytest.raises(DeadlineExceededError):
            for _cell in spec.stream(
                jobs=2, deadline=time.monotonic() + 0.5
            ):
                pass
        assert dispatched_task_count() - before < 12
        shutdown_worker_pool()


class TestAdmissionErrors:
    def test_unexpected_admit_error_answers_error_line(self, daemon):
        # cells=[] explodes in int() with TypeError — *not* the
        # ConfigurationError the admit path anticipates. The client
        # must still receive an error control line, never a bare EOF.
        with pytest.raises(ServeRequestError, match="TypeError"):
            list(connect(daemon.socket_path).sweep_lines(
                inline={"kind": "synthetic", "cells": []}
            ))
        assert daemon.status_snapshot()["errors"] == 1

    def test_rate_limit_covers_unix_transport(self, tmp_path):
        clear_simulation_cache()
        shutdown_worker_pool()
        daemon = ServeDaemon(
            socket_path=str(tmp_path / "rl.sock"), jobs=1, max_active=1,
            rate_limit=0.001, rate_burst=2.0,
        )
        daemon.start()
        try:
            client = connect(daemon.socket_path)
            for tag in ("rl-0", "rl-1"):
                assert list(client.sweep_lines(
                    inline=_synthetic(1, 0.0, tag)
                ))
            with pytest.raises(ServeRequestError, match="rate limited"):
                list(client.sweep_lines(inline=_synthetic(1, 0.0, "rl-2")))
            assert daemon.status_snapshot()["rate_limited"] == 1
        finally:
            daemon.drain()
            shutdown_worker_pool()
            clear_simulation_cache()


class TestClientTimeout:
    def test_stalled_daemon_maps_to_unavailable(self, tmp_path):
        """A daemon that acks then stalls mid-stream must surface as
        ServeUnavailableError, not a raw socket.timeout."""
        path = str(tmp_path / "stalled.sock")
        release = threading.Event()
        bound = threading.Event()

        def stalled_daemon():
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            listener.listen(1)
            bound.set()
            conn, _ = listener.accept()
            channel = LineChannel(conn)
            channel.recv_line()
            channel.send_line(
                control_line("ack", key="stall", coalesced=False)
            )
            release.wait(10.0)  # no rows, no end marker: a stall
            channel.close()
            listener.close()

        thread = threading.Thread(target=stalled_daemon, daemon=True)
        thread.start()
        assert bound.wait(10)
        client = ServeClient(socket_path=path, timeout=0.3)
        with pytest.raises(ServeUnavailableError, match="no data for"):
            list(client.sweep_lines(
                inline={"kind": "synthetic", "cells": 1}
            ))
        release.set()
        thread.join(5)


class TestHttpFrontend:
    @pytest.fixture
    def frontend(self, daemon):
        fe = ServeHttpFrontend(daemon, port=0)
        fe.start()
        yield fe
        fe.close()

    def _get_json(self, frontend, path):
        with urllib.request.urlopen(frontend.url + path, timeout=10) as resp:
            return json.loads(resp.read().decode("utf-8"))

    @staticmethod
    def _sse_events(body):
        """Parse an SSE body into (event, data) pairs."""
        events = []
        for frame in body.split("\n\n"):
            if not frame.strip():
                continue
            event = "message"
            data = None
            for line in frame.split("\n"):
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: "):
                    data = line[len("data: "):]
            events.append((event, data))
        return events

    def test_ping_status_and_404(self, frontend):
        assert self._get_json(frontend, "/ping") == {"serve": "pong"}
        status = self._get_json(frontend, "/status")
        assert status["serve"] == "status"
        assert "requests" in status and "pool" in status
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get_json(frontend, "/nowhere")
        assert excinfo.value.code == 404

    def test_sse_stream_bit_identical_to_socket_and_coalesces(
        self, daemon, frontend
    ):
        inline = _synthetic(6, 0.15, "sse-identity")
        query = urllib.parse.urlencode({"inline": json.dumps(inline)})
        socket_rows = []
        sse_rows = []
        start = threading.Barrier(2)

        def socket_client():
            handle = connect(daemon.socket_path)
            start.wait()
            socket_rows.extend(handle.sweep_lines(inline=inline))

        def sse_client():
            start.wait()
            with urllib.request.urlopen(
                f"{frontend.url}/sweep?{query}", timeout=30
            ) as resp:
                assert resp.headers["Content-Type"] == "text/event-stream"
                body = resp.read().decode("utf-8")
            for event, data in self._sse_events(body):
                if event == "message":
                    sse_rows.append(data)

        threads = [threading.Thread(target=socket_client),
                   threading.Thread(target=sse_client)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Byte-identical row streams over both transports...
        assert socket_rows and sse_rows == socket_rows
        # ...coalesced onto ONE compute (a post-completion straggler
        # would replay rather than recompute, but synthetic sweeps
        # never cache — so both requests must have shared the job).
        snapshot = daemon.status_snapshot()
        assert snapshot["sweeps_computed"] == 1
        assert snapshot["coalesced"] == 1

    def test_sse_terminal_frames(self, frontend):
        inline = _synthetic(2, 0.0, "sse-frames")
        query = urllib.parse.urlencode({"inline": json.dumps(inline)})
        with urllib.request.urlopen(
            f"{frontend.url}/sweep?{query}", timeout=30
        ) as resp:
            body = resp.read().decode("utf-8")
        events = self._sse_events(body)
        kinds = [event for event, _ in events]
        assert kinds[0] == "ack"
        assert kinds[-1] == "end"
        assert kinds.count("message") == 2
        end = json.loads(events[-1][1])
        assert end["state"] == "finished"
        assert end["rows"] == 2

    def test_sweep_rejects_bad_requests(self, frontend):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            with urllib.request.urlopen(
                f"{frontend.url}/sweep?scenario=notascenario", timeout=10
            ):
                pass
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            with urllib.request.urlopen(
                f"{frontend.url}/sweep?inline=notjson", timeout=10
            ):
                pass
        assert excinfo.value.code == 400

    def test_http_cancel_endpoint(self, daemon, frontend):
        client = connect(daemon.socket_path)
        inline = _synthetic(16, 0.25, "http-cancel")
        outcome = {}

        def consume():
            try:
                outcome["rows"] = len(list(client.sweep_lines(inline=inline)))
            except ServeRequestError as error:
                outcome["error"] = str(error)

        thread = threading.Thread(target=consume)
        thread.start()
        deadline = time.monotonic() + 10
        while client.last_ack is None and time.monotonic() < deadline:
            time.sleep(0.02)
        key = client.last_ack["key"]
        reply = self._get_json(
            frontend, "/cancel?" + urllib.parse.urlencode({"key": key})
        )
        assert reply == {"serve": "cancelled", "key": key, "found": True}
        thread.join(15)
        assert "cancelled" in outcome["error"]


class TestPreload:
    def test_preload_warms_memory_from_disk(self, tmp_path):
        """--preload derives a scenario's keys and warms the LRU.

        A first daemon computes figure12 into a cache dir; a second
        daemon preloading that scenario serves its first request at
        memory-hit latency (zero misses) and reports progress in
        /status.
        """
        from repro.sim.cache import (
            configure_simulation_cache_dir,
            simulation_cache_stats,
        )

        cache_dir = str(tmp_path / "cache")
        configure_simulation_cache_dir(cache_dir)
        try:
            clear_simulation_cache()
            shutdown_worker_pool()
            first = ServeDaemon(
                socket_path=str(tmp_path / "a.sock"), jobs=2, max_active=2
            )
            first.start()
            baseline = list(connect(first.socket_path).sweep_lines("figure12"))
            first.drain()  # flushes the memory tier to disk
            shutdown_worker_pool()
            clear_simulation_cache()

            second = ServeDaemon(
                socket_path=str(tmp_path / "b.sock"), jobs=2, max_active=2,
                preload=["figure12"],
            )
            second.start()
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                preload = second.status_snapshot()["preload"]
                if preload["done"]:
                    break
                time.sleep(0.02)
            assert preload["done"]
            assert preload["scenarios"] == ["figure12"]
            assert preload["keys"] > 0
            assert preload["warmed"] == preload["keys"]
            replay = list(connect(second.socket_path).sweep_lines("figure12"))
            assert replay == baseline
            assert simulation_cache_stats().misses == 0
            snapshot = second.status_snapshot()
            assert snapshot["disk"] is not None
            assert snapshot["disk"]["index_entries"] >= preload["keys"]
            second.drain()
        finally:
            configure_simulation_cache_dir(None)
            shutdown_worker_pool()
            clear_simulation_cache()

    def test_unknown_preload_scenario_degrades(self, tmp_path):
        from repro.sim.cache import configure_simulation_cache_dir

        cache_dir = str(tmp_path / "cache")
        configure_simulation_cache_dir(cache_dir)
        try:
            clear_simulation_cache()
            shutdown_worker_pool()
            daemon = ServeDaemon(
                socket_path=str(tmp_path / "serve.sock"), jobs=1,
                max_active=1, preload=["no-such-scenario"],
            )
            daemon.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                preload = daemon.status_snapshot()["preload"]
                if preload["done"]:
                    break
                time.sleep(0.02)
            assert preload["done"]
            assert preload["warmed"] == 0
            assert connect(daemon.socket_path).ping()
            daemon.drain()
        finally:
            configure_simulation_cache_dir(None)
            shutdown_worker_pool()
            clear_simulation_cache()


class TestDrainSymmetry:
    def test_drain_releases_width_one_claim(self, tmp_path):
        """A jobs=1 daemon claims no forked pool but still owns the
        pool seam; drain must release it (the leak this pins)."""
        shutdown_worker_pool()
        daemon = ServeDaemon(
            socket_path=str(tmp_path / "w1.sock"), jobs=1, max_active=1
        )
        daemon.start()
        assert worker_pool_owned()
        daemon.drain()
        assert not worker_pool_owned()
        assert worker_pool_size() == 0
