"""Tests for the expansion crossbar and window arithmetic."""

import numpy as np
import pytest

from repro.deca.crossbar import expand_window, split_windows, window_popcount
from repro.errors import SimulationError


class TestExpandWindow:
    def test_routes_values(self):
        mask = np.array([True, False, True, False], dtype=bool)
        out = expand_window(np.array([1.0, 2.0], dtype=np.float32), mask)
        assert out.tolist() == [1.0, 0.0, 2.0, 0.0]

    def test_empty_window(self):
        mask = np.zeros(8, dtype=bool)
        out = expand_window(np.zeros(0, dtype=np.float32), mask)
        assert np.all(out == 0.0)

    def test_full_window_is_identity(self, rng):
        values = rng.normal(size=16).astype(np.float32)
        out = expand_window(values, np.ones(16, dtype=bool))
        assert np.array_equal(out, values)

    def test_count_mismatch(self):
        with pytest.raises(SimulationError):
            expand_window(
                np.zeros(3, dtype=np.float32),
                np.array([True, False], dtype=bool),
            )

    def test_popcount(self):
        assert window_popcount(np.array([True, False, True])) == 2


class TestSplitWindows:
    def test_sizes_and_starts(self):
        mask = np.zeros(64, dtype=bool)
        mask[:10] = True   # 10 in window 0
        mask[40:45] = True  # 5 in window 1
        sizes, starts = split_windows(mask, 32)
        assert sizes.tolist() == [10, 5]
        assert starts.tolist() == [0, 10]

    def test_total_equals_popcount(self, rng):
        mask = rng.random(512) < 0.3
        sizes, _ = split_windows(mask, 32)
        assert sizes.sum() == mask.sum()

    def test_window_count(self, rng):
        mask = rng.random(512) < 0.5
        sizes, _ = split_windows(mask, 8)
        assert len(sizes) == 64

    def test_indivisible_width_rejected(self):
        with pytest.raises(SimulationError):
            split_windows(np.zeros(10, dtype=bool), 3)
