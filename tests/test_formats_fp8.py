"""Tests for the E4M3FN codec."""

import numpy as np
import pytest

from repro.formats.fp8 import e4m3_bits_to_float32, float32_to_e4m3_bits


class TestE4M3Decode:
    def test_zero(self):
        assert e4m3_bits_to_float32(np.array([0], dtype=np.uint8))[0] == 0.0

    def test_one(self):
        # 1.0 = exponent 7 (biased), mantissa 0 -> code 0x38.
        assert e4m3_bits_to_float32(np.array([0x38], dtype=np.uint8))[0] == 1.0

    def test_max_finite_is_448(self):
        codes = np.arange(0x80, dtype=np.uint8)
        decoded = e4m3_bits_to_float32(codes)
        assert np.nanmax(decoded) == 448.0

    def test_nan_codes(self):
        decoded = e4m3_bits_to_float32(np.array([0x7F, 0xFF], dtype=np.uint8))
        assert np.all(np.isnan(decoded))

    def test_no_infinities(self):
        codes = np.arange(256, dtype=np.uint8)
        decoded = e4m3_bits_to_float32(codes)
        assert not np.any(np.isinf(decoded))

    def test_subnormals(self):
        # Code 1: smallest subnormal 2^-9.
        assert e4m3_bits_to_float32(np.array([1], dtype=np.uint8))[0] == 2.0**-9

    def test_sign_symmetry(self):
        pos = np.arange(0x7F, dtype=np.uint8)
        neg = (pos | 0x80).astype(np.uint8)
        assert np.array_equal(
            e4m3_bits_to_float32(pos), -e4m3_bits_to_float32(neg)
        )


class TestE4M3Encode:
    def test_exact_roundtrip(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, 448.0, -448.0], dtype=np.float32)
        codes = float32_to_e4m3_bits(values)
        assert np.array_equal(e4m3_bits_to_float32(codes), values)

    def test_saturation(self):
        codes = float32_to_e4m3_bits(np.array([1e6, -1e6], dtype=np.float32))
        decoded = e4m3_bits_to_float32(codes)
        assert decoded[0] == 448.0 and decoded[1] == -448.0

    def test_nearest_rounding(self, rng):
        values = rng.normal(scale=10.0, size=1000).astype(np.float32)
        decoded = e4m3_bits_to_float32(float32_to_e4m3_bits(values))
        # 3 mantissa bits: relative error <= 2^-4 for normals in range.
        in_range = np.abs(values) <= 448
        rel = np.abs(decoded[in_range] - values[in_range])
        bound = np.maximum(np.abs(values[in_range]) * 2.0**-4, 2.0**-9)
        assert np.all(rel <= bound)

    def test_nan_encodes_to_nan(self):
        codes = float32_to_e4m3_bits(np.array([np.nan], dtype=np.float32))
        assert np.isnan(e4m3_bits_to_float32(codes))[0]

    def test_all_finite_codes_are_fixed_points(self):
        codes = np.array(
            [c for c in range(256) if not np.isnan(
                e4m3_bits_to_float32(np.array([c], dtype=np.uint8))[0])],
            dtype=np.uint8,
        )
        values = e4m3_bits_to_float32(codes)
        reencoded = float32_to_e4m3_bits(values)
        assert np.array_equal(
            e4m3_bits_to_float32(reencoded), values
        )

    def test_shape_preserved(self, rng):
        values = rng.normal(size=(3, 5)).astype(np.float32)
        assert float32_to_e4m3_bits(values).shape == (3, 5)
