"""Tests for the cycle-accurate PE scheduler."""

import numpy as np
import pytest

from repro.deca.config import DecaConfig
from repro.deca.cyclesim import (
    occupancy_histogram,
    simulate_pe_cycles,
    validate_against_tile_model,
)
from repro.errors import ConfigurationError
from repro.sparse.prune import random_mask
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from tests.conftest import random_weights


def _tiles(rng, fmt="bf8", density=0.3, count=4):
    tiles = []
    for _ in range(count):
        mask = (
            None if density >= 1.0
            else random_mask(TILE_SHAPE, density, rng=rng)
        )
        tiles.append(
            CompressedTile.from_dense(
                random_weights(rng, *TILE_SHAPE), fmt, mask
            )
        )
    return tiles


class TestCycleSim:
    def test_dense_q8_occupancy(self, rng):
        result = simulate_pe_cycles(
            DecaConfig(32, 8), _tiles(rng, density=1.0, count=2)
        )
        # 2 tiles x 16 vOps x 4 cycles + 2 drain cycles.
        assert result.total_cycles == 2 * 64 + 2
        assert result.stage_utilization() > 0.95

    def test_matches_tile_pipeline_model(self, rng):
        tiles = _tiles(rng, density=0.25, count=6)
        assert validate_against_tile_model(DecaConfig(32, 8), tiles)

    def test_loaders_alternate(self, rng):
        result = simulate_pe_cycles(DecaConfig(32, 8), _tiles(rng, count=4))
        loader_by_tile = {
            e.tile_index: e.loader_id for e in result.events
        }
        assert loader_by_tile == {0: 0, 1: 1, 2: 0, 3: 1}

    def test_vops_in_order(self, rng):
        result = simulate_pe_cycles(DecaConfig(32, 8), _tiles(rng, count=2))
        starts = [e.dequant_start for e in result.events]
        assert starts == sorted(starts)

    def test_sparse_beats_dense_throughput(self, rng):
        dense = simulate_pe_cycles(
            DecaConfig(32, 8), _tiles(rng, density=1.0, count=3)
        )
        sparse = simulate_pe_cycles(
            DecaConfig(32, 8), _tiles(rng, density=0.1, count=3)
        )
        assert sparse.total_cycles < dense.total_cycles

    def test_histogram_shape(self, rng):
        result = simulate_pe_cycles(
            DecaConfig(32, 8), _tiles(rng, density=1.0, count=1)
        )
        hist = occupancy_histogram(result)
        # Dense 8-bit at W=32, L=8: every vOp takes exactly 4 cycles.
        assert hist[4] == 16
        assert hist[:4].sum() == 0

    def test_bf16_one_cycle_per_vop(self, rng):
        result = simulate_pe_cycles(
            DecaConfig(32, 8), _tiles(rng, fmt="bf16", density=0.5, count=2)
        )
        assert all(e.dequant_cycles == 1 for e in result.events)

    def test_mixed_formats_rejected(self, rng):
        tiles = _tiles(rng, fmt="bf8", count=1) + _tiles(
            rng, fmt="mxfp4", density=1.0, count=1
        )
        with pytest.raises(ConfigurationError):
            simulate_pe_cycles(DecaConfig(), tiles)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_pe_cycles(DecaConfig(), [])

    def test_mean_cycles_match_binomial_model(self, rng):
        from repro.core.bubbles import deca_vops_per_tile
        config = DecaConfig(32, 8)
        tiles = _tiles(rng, density=0.3, count=40)
        result = simulate_pe_cycles(config, tiles)
        measured = np.mean(
            [result.tile_pipeline_cycles(i) for i in range(len(tiles))]
        )
        expected = deca_vops_per_tile(32, 8, 8, 0.3, sparse=True)
        assert measured == pytest.approx(expected, rel=0.05)
