"""Tests for the traditional 2-D roofline."""

import pytest

from repro.core.machine import SPR_DDR, SPR_HBM
from repro.core.roofline import Roofline
from repro.core.schemes import UNCOMPRESSED, parse_scheme
from repro.errors import ConfigurationError


class TestRoofline:
    def test_peak_flops(self):
        roofline = Roofline(SPR_HBM, batch_rows=4)
        assert roofline.peak_flops == pytest.approx(512 * 4 * 8.75e9)

    def test_memory_bound_region(self):
        roofline = Roofline(SPR_HBM, batch_rows=4)
        ai = UNCOMPRESSED.traditional_ai(4)
        assert roofline.is_memory_bound(ai)
        assert roofline.attainable_flops(ai) == pytest.approx(850e9 * ai)

    def test_compute_ceiling(self):
        roofline = Roofline(SPR_HBM, batch_rows=4)
        huge_ai = roofline.ridge_intensity * 100
        assert roofline.attainable_flops(huge_ai) == roofline.peak_flops

    def test_ridge_point_continuity(self):
        roofline = Roofline(SPR_DDR, batch_rows=1)
        ridge = roofline.ridge_intensity
        assert roofline.attainable_flops(ridge) == pytest.approx(
            roofline.peak_flops
        )

    def test_ddr_ridge_is_further_right(self):
        # Lower bandwidth pushes the ridge point right.
        assert (
            Roofline(SPR_DDR, 4).ridge_intensity
            > Roofline(SPR_HBM, 4).ridge_intensity
        )

    def test_scheme_point_efficiency(self):
        roofline = Roofline(SPR_HBM, batch_rows=4)
        scheme = parse_scheme("Q8")
        point = roofline.scheme_point(scheme, observed_flops=1e12)
        assert point.efficiency == pytest.approx(
            1e12 / roofline.attainable_flops(scheme.traditional_ai(4))
        )

    def test_series_matches_pointwise(self):
        roofline = Roofline(SPR_HBM, batch_rows=1)
        grid = [0.5, 1.0, 2.0]
        series = roofline.series(grid)
        for (ai, flops) in series:
            assert flops == roofline.attainable_flops(ai)

    def test_invalid_ai(self):
        with pytest.raises(ConfigurationError):
            Roofline(SPR_HBM).attainable_flops(0.0)

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            Roofline(SPR_HBM, batch_rows=0)

    def test_intensity_grid_spans_ridge(self):
        roofline = Roofline(SPR_HBM, batch_rows=4)
        grid = roofline.default_intensity_grid()
        assert grid[0] < roofline.ridge_intensity < grid[-1]
