"""Tests for the isometric Roof-Surface rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.machine import SPR_HBM
from repro.core.roofsurface import RoofSurface
from repro.errors import ConfigurationError
from repro.report.surface3d import roofsurface_svg


class TestSurfaceSvg:
    @pytest.fixture
    def model(self):
        return RoofSurface(SPR_HBM, batch_rows=4)

    def test_well_formed(self, model):
        point = model.evaluate("Q8", 0.002, 0.01)
        svg = roofsurface_svg(model, [point], 0.012, 0.07, grid=8)
        root = ET.fromstring(svg)
        polygons = [c for c in root if c.tag.endswith("polygon")]
        assert len(polygons) == 8 * 8

    def test_points_rendered_as_stems(self, model):
        points = [
            model.evaluate("a", 0.002, 0.01),
            model.evaluate("b", 0.008, 0.03),
        ]
        svg = roofsurface_svg(model, points, 0.012, 0.07, grid=6)
        root = ET.fromstring(svg)
        circles = [c for c in root if c.tag.endswith("circle")]
        assert len(circles) == 2

    def test_all_regions_coloured(self, model):
        svg = roofsurface_svg(model, [], 0.012, 0.07, grid=12)
        for fill in ("#8fbc8f", "#e8b86d", "#7f9fd4"):
            assert fill in svg

    def test_tiny_grid_rejected(self, model):
        with pytest.raises(ConfigurationError):
            roofsurface_svg(model, [], 0.01, 0.01, grid=2)
