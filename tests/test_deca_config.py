"""Tests for the DECA PE configuration."""

import pytest

from repro.deca.config import (
    BASELINE_CONFIG,
    OVERPROVISIONED_CONFIG,
    UNDERPROVISIONED_CONFIG,
    DecaConfig,
)
from repro.errors import ConfigurationError


class TestDecaConfig:
    def test_baseline_is_paper_design(self):
        assert (BASELINE_CONFIG.width, BASELINE_CONFIG.lut_count) == (32, 8)

    def test_vops_per_tile(self):
        assert DecaConfig(width=32).vops_per_tile == 16
        assert DecaConfig(width=8, lut_count=4).vops_per_tile == 64

    def test_lq_by_bits(self):
        config = DecaConfig(width=32, lut_count=8)
        assert config.lq(8) == 8
        assert config.lq(7) == 16
        assert config.lq(4) == 32

    def test_dequant_cycles_for_window(self):
        config = DecaConfig(width=32, lut_count=8)
        assert config.dequant_cycles_for_window(0, 8) == 1
        assert config.dequant_cycles_for_window(8, 8) == 1
        assert config.dequant_cycles_for_window(9, 8) == 2
        assert config.dequant_cycles_for_window(32, 8) == 4
        assert config.dequant_cycles_for_window(32, 4) == 1

    def test_window_out_of_range(self):
        config = DecaConfig()
        with pytest.raises(ConfigurationError):
            config.dequant_cycles_for_window(33, 8)

    def test_width_must_divide_512(self):
        with pytest.raises(ConfigurationError):
            DecaConfig(width=24)

    def test_l_greater_than_w_rejected(self):
        with pytest.raises(ConfigurationError):
            DecaConfig(width=8, lut_count=16)

    def test_figure16_designs_valid(self):
        assert UNDERPROVISIONED_CONFIG.width == 8
        assert OVERPROVISIONED_CONFIG.lut_count == 64
