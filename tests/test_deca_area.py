"""Tests for the DECA area model."""

import pytest

from repro.deca.area import deca_area
from repro.deca.config import DecaConfig
from repro.errors import ConfigurationError


class TestReferenceDesign:
    def test_total_matches_paper(self):
        breakdown = deca_area()
        assert breakdown.total == pytest.approx(2.51, rel=0.01)

    def test_fractions_match_paper(self):
        fractions = deca_area().fractions()
        assert fractions["buffering"] == pytest.approx(0.55, abs=0.01)
        assert fractions["lut_array"] == pytest.approx(0.22, abs=0.01)
        assert fractions["logic"] == pytest.approx(0.23, abs=0.01)

    def test_die_overhead_under_0_2_percent(self):
        assert deca_area().die_overhead() < 0.002

    def test_per_pe(self):
        breakdown = deca_area()
        assert breakdown.per_pe == pytest.approx(2.51 / 56, rel=0.01)


class TestScaling:
    def test_lut_scales_with_l(self):
        big = deca_area(DecaConfig(width=32, lut_count=16))
        base = deca_area()
        assert big.lut_array == pytest.approx(2 * base.lut_array)
        assert big.buffering == pytest.approx(base.buffering)

    def test_crossbar_scales_quadratically_with_w(self):
        big = deca_area(DecaConfig(width=64, lut_count=8))
        base = deca_area()
        assert big.crossbar == pytest.approx(4 * base.crossbar)
        assert big.buffering == pytest.approx(2 * base.buffering)

    def test_overprovisioned_much_larger(self):
        over = deca_area(DecaConfig(width=64, lut_count=64))
        assert over.total > 2 * deca_area().total

    def test_pe_count(self):
        half = deca_area(pes=28)
        assert half.total == pytest.approx(deca_area().total / 2)

    def test_invalid_pes(self):
        with pytest.raises(ConfigurationError):
            deca_area(pes=0)
