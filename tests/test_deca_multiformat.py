"""Cross-format DECA PE workflows: reconfiguration and context switches."""

import numpy as np
import pytest

from repro.deca.pe import DecaPE
from repro.errors import FormatError
from repro.sparse.prune import random_mask
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from tests.conftest import random_weights


def _tile(rng, fmt, density=0.5):
    mask = None if density >= 1.0 else random_mask(TILE_SHAPE, density, rng=rng)
    return CompressedTile.from_dense(
        random_weights(rng, *TILE_SHAPE), fmt, mask
    )


class TestReconfiguration:
    def test_pe_switches_formats_via_lut_reprogram(self, rng):
        # The Section 7 flexibility claim: one PE, many formats, no
        # hardware change — only control state.
        pe = DecaPE()
        for fmt in ("bf8", "mxfp4", "e4m3", "int4g32", "bf16"):
            pe.configure(fmt)
            tile = _tile(rng, fmt)
            tout, _ = pe.process_tile(tile)
            assert np.array_equal(
                pe.read_tout(tout), tile.decompress_reference()
            ), fmt

    def test_interleaved_processes_context_switch(self, rng):
        # Two "processes" with different formats sharing one PE through
        # OS-mediated save/restore (Section 5.1).
        pe = DecaPE()
        pe.configure("bf8")
        state_a = pe.save_state()
        pe.configure("mxfp4")
        state_b = pe.save_state()
        tile_a = _tile(rng, "bf8")
        tile_b = _tile(rng, "mxfp4", density=1.0)
        for _ in range(3):
            pe.restore_state(state_a)
            tout, _ = pe.process_tile(tile_a)
            assert np.array_equal(
                pe.read_tout(tout), tile_a.decompress_reference()
            )
            pe.restore_state(state_b)
            tout, _ = pe.process_tile(tile_b)
            assert np.array_equal(
                pe.read_tout(tout), tile_b.decompress_reference()
            )

    def test_wrong_process_traps(self, rng):
        # A process using the PE without reconfiguration traps — the OS
        # hook the paper proposes.
        pe = DecaPE()
        pe.configure("bf8")
        with pytest.raises(FormatError):
            pe.process_tile(_tile(rng, "mxfp4", density=1.0))


class TestThroughputAcrossFormats:
    def test_narrower_codes_never_slower(self, rng):
        # At fixed density, <=6-bit codes quadruple LUT reads: 4-bit
        # dequantization can never take more cycles than 8-bit.
        pe = DecaPE()
        dense = random_weights(rng, *TILE_SHAPE)
        mask = random_mask(TILE_SHAPE, 0.5, rng=rng)
        pe.configure("bf8")
        _t, stats8 = pe.process_tile(
            CompressedTile.from_dense(dense, "bf8", mask)
        )
        pe.configure("int4g32")
        _t, stats4 = pe.process_tile(
            CompressedTile.from_dense(dense, "int4g32", mask)
        )
        assert stats4.dequant_cycles <= stats8.dequant_cycles

    def test_stats_track_multiple_formats(self, rng):
        pe = DecaPE()
        pe.configure("bf8")
        pe.process_tile(_tile(rng, "bf8"))
        pe.configure("mxfp4")
        pe.process_tile(_tile(rng, "mxfp4", density=1.0))
        assert pe.stats.tiles_processed == 2
        assert pe.stats.vops_executed == 32
