"""Property tests on end-to-end round trips across the stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.formats.bfloat import bf16_round
from repro.sparse.compress import compress_matrix, decompress_matrix
from repro.sparse.serialize import load_matrix, save_matrix
from repro.sparse.tile import CompressedTile, TILE_SHAPE

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False,
    allow_infinity=False, width=32,
)


class TestTileRoundtrips:
    @given(
        data=st.data(),
        fmt=st.sampled_from(["bf16", "bf8", "e4m3", "mxfp4", "int4g32"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_dense_positions_preserved(self, data, fmt):
        dense = data.draw(
            arrays(dtype=np.float32, shape=TILE_SHAPE, elements=finite)
        )
        mask = data.draw(arrays(dtype=bool, shape=TILE_SHAPE))
        if not mask.any():
            mask[0, 0] = True
        tile = CompressedTile.from_dense(dense, fmt, mask)
        out = tile.decompress_reference()
        # Pruned positions are exactly zero; kept positions carry the
        # quantized value (never silently zeroed for nonzero input).
        assert np.all(out[~mask] == 0.0)

    @given(
        data=st.data(),
        fmt=st.sampled_from(["bf16", "bf8"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_bf16_kept_values_exact(self, data, fmt):
        dense = data.draw(
            arrays(dtype=np.float32, shape=TILE_SHAPE, elements=finite)
        )
        mask = data.draw(arrays(dtype=bool, shape=TILE_SHAPE))
        if not mask.any():
            mask[0, 0] = True
        if fmt == "bf16":
            tile = CompressedTile.from_dense(dense, fmt, mask)
            out = tile.decompress_reference()
            assert np.array_equal(out[mask], bf16_round(dense)[mask])


class TestMatrixSerializationProperty:
    @given(
        data=st.data(),
        fmt=st.sampled_from(["bf8", "mxfp4", "bf16"]),
        density=st.sampled_from([1.0, 0.5, 0.2]),
    )
    @settings(max_examples=15, deadline=None)
    def test_save_load_identity(self, tmp_path_factory, data, fmt, density):
        dense = data.draw(
            arrays(dtype=np.float32, shape=(32, 64), elements=finite)
        )
        matrix = compress_matrix(dense, fmt, density=density)
        path = tmp_path_factory.mktemp("ser") / "m.npz"
        save_matrix(matrix, path)
        loaded = load_matrix(path)
        assert np.array_equal(
            decompress_matrix(loaded),
            decompress_matrix(matrix),
            equal_nan=True,
        )
        assert loaded.nnz == matrix.nnz
