"""Property tests on end-to-end round trips across the stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.formats.bfloat import bf16_round
from repro.sparse.compress import compress_matrix, decompress_matrix
from repro.sparse.serialize import load_matrix, save_matrix
from repro.sparse.tile import CompressedTile, TILE_SHAPE

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False,
    allow_infinity=False, width=32,
)


class TestTileRoundtrips:
    @given(
        data=st.data(),
        fmt=st.sampled_from(["bf16", "bf8", "e4m3", "mxfp4", "int4g32"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_dense_positions_preserved(self, data, fmt):
        dense = data.draw(
            arrays(dtype=np.float32, shape=TILE_SHAPE, elements=finite)
        )
        mask = data.draw(arrays(dtype=bool, shape=TILE_SHAPE))
        if not mask.any():
            mask[0, 0] = True
        tile = CompressedTile.from_dense(dense, fmt, mask)
        out = tile.decompress_reference()
        # Pruned positions are exactly zero; kept positions carry the
        # quantized value (never silently zeroed for nonzero input).
        assert np.all(out[~mask] == 0.0)

    @given(
        data=st.data(),
        fmt=st.sampled_from(["bf16", "bf8"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_bf16_kept_values_exact(self, data, fmt):
        dense = data.draw(
            arrays(dtype=np.float32, shape=TILE_SHAPE, elements=finite)
        )
        mask = data.draw(arrays(dtype=bool, shape=TILE_SHAPE))
        if not mask.any():
            mask[0, 0] = True
        if fmt == "bf16":
            tile = CompressedTile.from_dense(dense, fmt, mask)
            out = tile.decompress_reference()
            assert np.array_equal(out[mask], bf16_round(dense)[mask])


class TestMatrixSerializationProperty:
    @given(
        data=st.data(),
        fmt=st.sampled_from(["bf8", "mxfp4", "bf16"]),
        density=st.sampled_from([1.0, 0.5, 0.2]),
    )
    @settings(max_examples=15, deadline=None)
    def test_save_load_identity(self, tmp_path_factory, data, fmt, density):
        dense = data.draw(
            arrays(dtype=np.float32, shape=(32, 64), elements=finite)
        )
        matrix = compress_matrix(dense, fmt, density=density)
        path = tmp_path_factory.mktemp("ser") / "m.npz"
        save_matrix(matrix, path)
        loaded = load_matrix(path)
        assert np.array_equal(
            decompress_matrix(loaded),
            decompress_matrix(matrix),
            equal_nan=True,
        )
        assert loaded.nnz == matrix.nnz


class TestServeRowEscapeProperty:
    """escape_row_line/unescape_row is an identity on every row line.

    The serve wire protocol reserves the ``"serve"`` key for control
    messages; a row that happens to carry it is escaped into a control
    envelope and unwrapped by the client. The composed round trip must
    be the identity for *arbitrary* row payloads — including rows that
    actually use the reserved key and rows whose string values merely
    contain the quoted key as a substring (the fast-path pre-filter
    must not misclassify those).
    """

    _scalar = st.one_of(
        st.integers(min_value=-(10**9), max_value=10**9),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=40),
        st.booleans(),
        st.none(),
        st.just('{"serve": 1}'),  # the reserved key inside a string value
    )
    _key = st.one_of(st.text(max_size=12), st.just("serve"))

    @staticmethod
    def _roundtrip(line):
        from repro.serve.protocol import (
            CONTROL_KEY,
            escape_row_line,
            parse_control,
            unescape_row,
        )

        wire = escape_row_line(line)
        control = parse_control(wire)
        if control is None:
            # Passed through verbatim — and genuinely not control.
            assert wire == line
            return wire
        assert control[CONTROL_KEY] == "row"
        return unescape_row(control)

    @given(row=st.dictionaries(_key, _scalar, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_identity(self, row):
        import json

        line = json.dumps(row)
        assert self._roundtrip(line) == line

    def test_reserved_key_row_is_escaped_and_recovered(self):
        line = '{"serve": "not-a-control", "x": 1}'
        assert self._roundtrip(line) == line

    def test_substring_in_nested_string_passes_unescaped(self):
        from repro.serve.protocol import escape_row_line

        line = '{"note": "{\\"serve\\": 1}", "x": 2}'
        # Contains the quoted key as a substring, but only inside a
        # string value: the parse check must let it through verbatim.
        assert escape_row_line(line) == line
        assert self._roundtrip(line) == line

    def test_plain_row_skips_escape(self):
        from repro.serve.protocol import escape_row_line

        line = '{"scheme": "Q4", "speedup": 1.5}'
        # No quoted reserved key anywhere: the fast path returns the
        # very same object without ever invoking json.loads.
        assert escape_row_line(line) is line
