"""Tests for the AVX recipe model."""

import pytest

from repro.core.schemes import UNCOMPRESSED, parse_scheme
from repro.errors import ConfigurationError
from repro.kernels.avx import (
    AvxRecipe,
    AvxVariant,
    effective_vector_throughput,
    software_recipe,
    software_vops_per_tile,
)


class TestRecipes:
    def test_uncompressed_needs_no_vops(self):
        assert software_vops_per_tile(UNCOMPRESSED) == 0.0

    def test_calibration_sparse_q16(self):
        # Fig 4b calibration target: ~98 vOps for sparse BF16.
        vops = software_vops_per_tile(parse_scheme("Q16_5%"))
        assert 90 <= vops <= 108

    def test_calibration_dense_q8(self):
        # Table 3 calibration target: ~104-120 vOps for dense BF8.
        vops = software_vops_per_tile(parse_scheme("Q8"))
        assert 96 <= vops <= 120

    def test_calibration_sparse_q8(self):
        # Fig 4b calibration target: ~144-150 vOps for sparse BF8.
        vops = software_vops_per_tile(parse_scheme("Q8_20%"))
        assert 138 <= vops <= 158

    def test_calibration_dense_q4(self):
        # Fig 4b calibration target: ~197 vOps for MXFP4.
        vops = software_vops_per_tile(parse_scheme("Q4"))
        assert 188 <= vops <= 208

    def test_sparse_costs_more_than_dense_q8(self):
        assert software_vops_per_tile(
            parse_scheme("Q8_50%")
        ) > software_vops_per_tile(parse_scheme("Q8"))

    def test_loads_scale_with_density(self):
        low = software_recipe(parse_scheme("Q8_5%"))
        high = software_recipe(parse_scheme("Q8_50%"))
        assert high.loads > low.loads

    def test_sparse_q4_supported(self):
        # Not in libxsmm, but the model extrapolates (DECA handles it).
        vops = software_vops_per_tile(parse_scheme("Q4_20%"))
        assert vops > software_vops_per_tile(parse_scheme("Q4"))


class TestWidening:
    def test_compute_shrinks_but_memory_ops_do_not(self):
        recipe = software_recipe(parse_scheme("Q8_20%"))
        wide = recipe.widened(4)
        assert wide.compute == pytest.approx(recipe.compute / 4)
        assert wide.bookkeeping == pytest.approx(recipe.bookkeeping / 4)
        assert wide.loads == recipe.loads
        assert wide.stores == recipe.stores

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            software_recipe(parse_scheme("Q8")).widened(0)

    def test_wider_variant_reduces_vops(self):
        base = software_vops_per_tile(parse_scheme("Q4"))
        wide = software_vops_per_tile(
            parse_scheme("Q4"), AvxVariant.WIDER_UNITS
        )
        assert wide < base
        # ... but not by the full 4x: loads and stores remain.
        assert wide > base / 4


class TestThroughput:
    def test_baseline_two_units(self):
        assert effective_vector_throughput(AvxVariant.BASELINE) == 2.0

    def test_more_units_issue_capped(self):
        # 8 units installed, but only 4 issue slots available.
        assert effective_vector_throughput(AvxVariant.MORE_UNITS) == 4.0

    def test_wider_keeps_unit_count(self):
        assert effective_vector_throughput(AvxVariant.WIDER_UNITS) == 2.0

    def test_total_is_sum_of_categories(self):
        recipe = AvxRecipe(loads=2, stores=3, compute=5, bookkeeping=7)
        assert recipe.total == 17
