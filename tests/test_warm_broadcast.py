"""Tests for the parent→worker warm-start cache broadcast.

The contract (see ``repro/experiments/parallel.py``): on a *reused*
persistent pool, sweep dispatch ships the parent's relevant in-memory
cache entries to every worker, bounded by a byte budget. The broadcast
never changes results — only cache warmth (``CacheStats`` hit counters)
and the ``SweepExecution`` broadcast fields.
"""

import numpy as np
import pytest

from repro.experiments.parallel import (
    fork_available,
    last_sweep_execution,
    parallel_map,
    shutdown_worker_pool,
    stream_map,
    worker_pool_size,
)
from repro.sim.cache import (
    clear_simulation_cache,
    select_simulation_cache_entries,
    simulation_cache_stats,
)
from repro.sim.pipeline import KernelTiming, simulate_tile_stream
from repro.sim.system import ddr_system, hbm_system

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel executor needs the fork start method"
)


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_simulation_cache()
    yield
    clear_simulation_cache()


def _simulate_item(task):
    """Module-level task body so pool workers can unpickle it."""
    system, bytes_per_tile = task
    timing = KernelTiming(bytes_per_tile=bytes_per_tile, dec_cycles=20.0)
    return simulate_tile_stream(system, timing).steady_interval_cycles


def _touch(task):
    """A cache-free warm-up task (spins the pool without simulating)."""
    return task


def _parent_only_entries(system, sizes):
    """Simulate in the parent so the pool's workers have never seen it."""
    for size in sizes:
        timing = KernelTiming(bytes_per_tile=float(size), dec_cycles=20.0)
        simulate_tile_stream(system, timing)


class TestBroadcastWarmth:
    def test_reused_pool_receives_parent_entries(self, hbm):
        shutdown_worker_pool()
        # Spin the pool on cache-free work: the workers fork with an
        # empty simulation cache.
        parallel_map(_touch, [1, 2, 3, 4], jobs=2)
        assert worker_pool_size() == 2
        # Entries computed in the parent after the fork: without the
        # broadcast, the persistent workers could not know them.
        sizes = (100.0, 200.0, 300.0, 400.0)
        _parent_only_entries(hbm, sizes)
        tasks = [(hbm, size) for size in sizes]
        results = parallel_map(_simulate_item, tasks, jobs=2)
        execution = last_sweep_execution()
        assert execution.pool_reused
        assert execution.broadcast_entries >= len(sizes)
        assert execution.broadcast_bytes > 0
        assert execution.broadcast_workers == 2
        # Every worker lookup was served from the broadcast entries.
        assert execution.worker_hits == len(sizes)
        assert execution.worker_misses == 0
        # And the results are the parent's own, bit-for-bit.
        serial = [_simulate_item(task) for task in tasks]
        assert results == serial

    def test_disabled_broadcast_recomputes_but_matches(self, hbm):
        shutdown_worker_pool()
        parallel_map(_touch, [1, 2, 3, 4], jobs=2)
        sizes = (150.0, 250.0, 350.0)
        _parent_only_entries(hbm, sizes)
        tasks = [(hbm, size) for size in sizes]
        results = parallel_map(
            _simulate_item, tasks, jobs=2, warm_budget=0
        )
        execution = last_sweep_execution()
        assert execution.broadcast_entries == 0
        assert execution.broadcast_workers == 0
        # The workers had to compute (or disk-read) every cell...
        assert execution.worker_hits == 0
        assert execution.worker_misses == len(sizes)
        # ...but the results are identical: the broadcast is warmth
        # only, never semantics.
        assert results == [_simulate_item(task) for task in tasks]

    def test_fresh_pool_skips_broadcast(self, hbm):
        shutdown_worker_pool()
        _parent_only_entries(hbm, (111.0, 222.0))
        tasks = [(hbm, 111.0), (hbm, 222.0)]
        results = parallel_map(_simulate_item, tasks, jobs=2)
        execution = last_sweep_execution()
        # Freshly forked workers inherited the parent cache through
        # fork — no broadcast needed, and the entries still hit.
        assert not execution.pool_reused
        assert execution.broadcast_entries == 0
        assert execution.worker_hits == len(tasks)
        assert results == [_simulate_item(task) for task in tasks]

    def test_env_budget_disables(self, hbm, monkeypatch):
        shutdown_worker_pool()
        parallel_map(_touch, [1, 2], jobs=2)
        _parent_only_entries(hbm, (131.0,))
        monkeypatch.setenv("REPRO_WARM_BROADCAST_BYTES", "0")
        parallel_map(_simulate_item, [(hbm, 131.0)], jobs=2)
        assert last_sweep_execution().broadcast_entries == 0


class TestByteBudget:
    def test_budget_caps_payload(self, hbm):
        shutdown_worker_pool()
        parallel_map(_touch, [1, 2, 3, 4], jobs=2)
        sizes = tuple(float(s) for s in range(100, 1000, 100))
        _parent_only_entries(hbm, sizes)
        # One full entry pickles to ~30 KB: a 64 KB budget fits only a
        # couple of the nine parent entries.
        budget = 64 * 1024
        selected, total = select_simulation_cache_entries(max_bytes=budget)
        assert 0 < len(selected) < len(sizes)
        assert total <= budget
        tasks = [(hbm, size) for size in sizes]
        results = parallel_map(
            _simulate_item, tasks, jobs=2, warm_budget=budget
        )
        execution = last_sweep_execution()
        assert execution.broadcast_bytes <= budget
        assert 0 < execution.broadcast_entries < len(sizes)
        # Partial warmth: the shipped entries hit, the rest recompute —
        # and the results are identical either way.
        assert execution.worker_hits == execution.broadcast_entries
        assert execution.worker_misses == len(sizes) - execution.worker_hits
        assert results == [_simulate_item(task) for task in tasks]

    def test_only_hit_counters_change(self, hbm):
        # Same sweep with and without the broadcast: results and cache
        # contents agree; only the hit/miss split differs.
        shutdown_worker_pool()
        parallel_map(_touch, [1, 2], jobs=2)
        _parent_only_entries(hbm, (175.0, 275.0))
        tasks = [(hbm, 175.0), (hbm, 275.0)]
        with_broadcast = parallel_map(_simulate_item, tasks, jobs=2)
        stats_with = simulation_cache_stats()
        clear_simulation_cache()
        shutdown_worker_pool()
        parallel_map(_touch, [1, 2], jobs=2)
        _parent_only_entries(hbm, (175.0, 275.0))
        without_broadcast = parallel_map(
            _simulate_item, tasks, jobs=2, warm_budget=0
        )
        stats_without = simulation_cache_stats()
        assert with_broadcast == without_broadcast
        assert stats_with.size == stats_without.size
        assert stats_with.hits != stats_without.hits  # warmth differs


class TestSelection:
    def test_prefix_filters_by_system(self, hbm, ddr):
        _parent_only_entries(hbm, (100.0, 200.0))
        _parent_only_entries(ddr, (100.0,))
        everything, _ = select_simulation_cache_entries()
        assert len(everything) == 3
        hbm_only, _ = select_simulation_cache_entries(prefix=(hbm,))
        assert len(hbm_only) == 2
        assert all(key[0] == hbm for key, _ in hbm_only)
        ddr_only, _ = select_simulation_cache_entries(prefix=(ddr,))
        assert len(ddr_only) == 1

    def test_oversized_entry_is_skipped_not_a_stop(self, hbm):
        # One entry that exceeds the remaining budget must not starve
        # the smaller entries behind it in MRU order.
        import pickle

        _parent_only_entries(hbm, (100.0, 200.0, 300.0))
        everything, _ = select_simulation_cache_entries()
        sizes = [
            len(pickle.dumps(entry, pickle.HIGHEST_PROTOCOL))
            for entry in everything
        ]
        # Budget admits all but the first (largest slot goes first in
        # MRU order): skipping it should still select the rest.
        budget = sum(sizes) - 1
        selected, total = select_simulation_cache_entries(max_bytes=budget)
        assert len(selected) == len(everything) - 1
        assert total <= budget

    def test_mru_first_order(self, hbm):
        _parent_only_entries(hbm, (100.0, 200.0, 300.0))
        selected, _ = select_simulation_cache_entries()
        # Most recently used first: the 300-byte entry leads.
        timings = [dict(key[1])["bytes_per_tile"] for key, _ in selected]
        assert timings == [300.0, 200.0, 100.0]

    def test_spec_stream_passes_warm_prefix(self, hbm):
        # The speedup spec declares its system as the warm prefix; the
        # stream must hand it to the executor (observable through the
        # broadcast only shipping that system's entries).
        from repro.experiments.speedups import speedup_spec

        spec = speedup_spec(hbm)
        assert spec.warm_prefix == (hbm,)


class TestStreamMapPlumbing:
    def test_serial_path_reports_no_broadcast(self, hbm):
        results = list(
            stream_map(_simulate_item, [(hbm, 120.0)], jobs=1)
        )
        assert len(results) == 1
        execution = last_sweep_execution()
        assert execution.broadcast_entries == 0
        assert execution.broadcast_bytes == 0
