"""Tests for the DECA Loaders."""

import pytest

from repro.deca.loader import Loader, PrefetcherState, TileMetadata
from repro.errors import SimulationError
from repro.sparse.prune import random_mask
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from tests.conftest import random_weights


def _tile(rng, fmt="bf8", density=0.5):
    mask = random_mask(TILE_SHAPE, density, rng=rng)
    return CompressedTile.from_dense(random_weights(rng, *TILE_SHAPE), fmt, mask)


class TestTileMetadata:
    def test_byte_counts_match_tile(self, rng):
        tile = _tile(rng)
        metadata = TileMetadata.for_tile(tile)
        assert metadata.total_bytes == tile.nbytes()
        assert metadata.bitmask_bytes == 64

    def test_dense_tile_has_no_bitmask(self, rng):
        tile = CompressedTile.from_dense(
            random_weights(rng, *TILE_SHAPE), "bf8"
        )
        assert TileMetadata.for_tile(tile).bitmask_bytes == 0

    def test_mxfp4_scale_bytes(self, rng):
        tile = CompressedTile.from_dense(
            random_weights(rng, *TILE_SHAPE), "mxfp4"
        )
        assert TileMetadata.for_tile(tile).scale_bytes == 16


class TestLoader:
    def test_fetch_lifecycle(self, rng):
        loader = Loader(loader_id=0)
        metadata = TileMetadata.for_tile(_tile(rng))
        loader.begin_fetch(metadata)
        assert loader.busy
        assert loader.fetched_bytes == metadata.total_bytes
        loader.complete()
        assert not loader.busy
        assert loader.queues.sqq_bytes == 0

    def test_double_fetch_rejected(self, rng):
        loader = Loader(loader_id=0)
        metadata = TileMetadata.for_tile(_tile(rng))
        loader.begin_fetch(metadata)
        with pytest.raises(SimulationError, match="busy"):
            loader.begin_fetch(metadata)

    def test_complete_without_fetch_rejected(self):
        with pytest.raises(SimulationError):
            Loader(loader_id=0).complete()

    def test_squash_frees_loader(self, rng):
        loader = Loader(loader_id=0)
        loader.begin_fetch(TileMetadata.for_tile(_tile(rng)))
        loader.squash()
        assert not loader.busy
        # After a squash the same fetch may be reissued.
        loader.begin_fetch(TileMetadata.for_tile(_tile(rng)))

    def test_sqq_occupancy_clamped(self, rng):
        loader = Loader(loader_id=0, sqq_capacity=64)
        loader.begin_fetch(TileMetadata.for_tile(_tile(rng, density=1.0)))
        assert loader.queues.sqq_bytes <= 64

    def test_tile_counter(self, rng):
        loader = Loader(loader_id=0)
        for _ in range(3):
            loader.begin_fetch(TileMetadata.for_tile(_tile(rng)))
            loader.complete()
        assert loader.tiles_loaded == 3


class TestPrefetcher:
    def test_locks_after_two_tiles(self, rng):
        pf = PrefetcherState(depth=8)
        first = pf.observe(TileMetadata.for_tile(_tile(rng)))
        second = pf.observe(TileMetadata.for_tile(_tile(rng)))
        assert first == 0
        assert second == 8
        assert pf.locked

    def test_issued_accumulates(self, rng):
        pf = PrefetcherState(depth=4)
        for _ in range(3):
            pf.observe(TileMetadata.for_tile(_tile(rng)))
        assert pf.issued_prefetches == 8
