"""Qualitative reproduction tests: the paper's claims must hold.

These tests assert the *shape* of every reproduced table and figure — who
wins, by roughly what factor, where crossovers fall — with generous
tolerances, exactly as the reproduction scope demands.
"""

import pytest

from repro.core.roofsurface import BoundingFactor
from repro.experiments import (
    area,
    figure4,
    figure5,
    figure6,
    figure12,
    figure13,
    figure14,
    figure16,
    figure17,
    table1,
    table3,
    table4,
)
from repro.experiments.paper_reference import (
    FIGURE4B_TFLOPS,
    TABLE1_FRACTIONS,
    TABLE3_UTILIZATION,
    TABLE4_LATENCY_MS,
)


@pytest.fixture(scope="module")
def fig13():
    return figure13.run()


@pytest.fixture(scope="module")
def fig12():
    return figure12.run()


class TestTable1:
    def test_fractions_close_to_paper(self):
        result = table1.run()
        for key, paper in TABLE1_FRACTIONS.items():
            ours = result.fractions[key] * 100
            assert ours == pytest.approx(paper, abs=2.0), key

    def test_ddr_higher_than_hbm(self):
        result = table1.run()
        for tokens in (32, 128):
            for batch in (1, 4, 16):
                assert (
                    result.fractions[("DDR", tokens, batch)]
                    > result.fractions[("HBM", tokens, batch)]
                )


class TestFigure4b:
    def test_roof_surface_within_10_percent(self):
        result = figure4.run()
        for name, (_rl, paper_rs, _real) in FIGURE4B_TFLOPS.items():
            _ours_rl, ours_rs, _ours_real = result.comparison[name]
            assert ours_rs == pytest.approx(paper_rs, rel=0.10), name

    def test_roof_surface_never_exceeds_roofline(self):
        result = figure4.run()
        for name, (rl, rs, _real) in result.comparison.items():
            assert rs <= rl + 1e-6, name

    def test_real_below_roof_surface(self):
        result = figure4.run()
        for name, (_rl, rs, real) in result.comparison.items():
            assert real <= rs * 1.02, name


class TestFigure5:
    def test_hbm_mostly_vec_bound(self):
        hbm, _ddr = figure5.run()
        assert len(hbm.vec_bound_names()) >= 8

    def test_hbm_mem_bound_trio(self):
        # Paper: BF8, BF16_50% and BF16_30% are MEM-bound on HBM.
        hbm, _ddr = figure5.run()
        mem_bound = {
            p.label for p in hbm.points
            if p.bound is BoundingFactor.MEMORY
        }
        assert mem_bound == {"Q8", "Q16_50%", "Q16_30%"}

    def test_ddr_mostly_mem_bound(self):
        _hbm, ddr = figure5.run()
        mem = [
            p for p in ddr.points if p.bound is BoundingFactor.MEMORY
        ]
        assert len(mem) >= 9

    def test_ddr_mem_region_larger(self):
        hbm, ddr = figure5.run()
        assert (
            ddr.region_fractions[BoundingFactor.MEMORY]
            > hbm.region_fractions[BoundingFactor.MEMORY]
        )


class TestFigure6:
    def test_4x_vos_not_enough(self):
        # Paper: "even a 4x VOS increase is not enough to make all kernels
        # not VEC-bound."
        result = figure6.run()
        assert len(result.still_vec_bound()) >= 1

    def test_vec_region_shrinks(self):
        result = figure6.run()
        assert result.vec_region_scaled < result.vec_region_baseline


class TestFigure12:
    def test_software_reaches_optimal_at_low_cf(self, fig12):
        for row in fig12.speedups[:6]:
            assert row.software == pytest.approx(row.optimal, rel=0.08)

    def test_deca_gain_emerges_at_high_cf(self, fig12):
        assert 1.3 <= fig12.max_deca_over_software <= 2.0

    def test_deca_never_slower(self, fig12):
        for row in fig12.speedups:
            assert row.deca >= row.software * 0.99


class TestFigure13:
    def test_headline_4x(self, fig13):
        assert 3.3 <= fig13.max_deca_over_software <= 4.8

    def test_deca_near_optimal(self, fig13):
        for row in fig13.speedups:
            assert row.deca >= 0.8 * row.optimal

    def test_software_diverges_from_optimal(self, fig13):
        worst = min(r.software / r.optimal for r in fig13.speedups)
        # Paper Section 3.3: optimal/observed reaches 4.94x at Q8_5%.
        assert worst == pytest.approx(1 / 4.94, rel=0.15)

    def test_speedups_grow_with_cf(self, fig13):
        optima = [r.optimal for r in fig13.speedups]
        assert optima == sorted(optima)


class TestFigure14:
    def test_16_deca_cores_beat_56_software_cores(self):
        result = figure14.run(core_counts=(8, 16, 56))
        assert result.deca_tflops[16] >= result.software_tflops[56]

    def test_software_scales_with_cores(self):
        result = figure14.run(core_counts=(8, 56))
        assert result.software_tflops[56] > result.software_tflops[8]


class TestTable3:
    def test_all_cells_within_8_points(self):
        result = table3.run()
        for (density, engine), paper in TABLE3_UTILIZATION.items():
            ours = result.reports[(density, engine)].as_percentages()
            for column in ("MEM", "TMUL", "DEC"):
                assert ours[column] == pytest.approx(
                    paper[column], abs=8
                ), (density, engine, column)

    def test_software_bottleneck_is_avx_when_sparse(self):
        result = table3.run()
        for density in (50, 20, 5):
            assert result.reports[(density, "software")].bottleneck == "DEC"

    def test_deca_bottleneck_is_memory_at_high_density(self):
        result = table3.run()
        for density in (100, 50, 20):
            assert result.reports[(density, "deca")].bottleneck == "MEM"


class TestFigure16:
    def test_dse_picks_paper_design(self):
        result = figure16.run()
        assert (result.dse.best.width, result.dse.best.lut_count) == (32, 8)

    def test_underprovisioned_stays_vec_bound(self):
        result = figure16.run()
        under = result.design_points[(8, 4)]
        vec = [p for p in under if p.bound is BoundingFactor.VECTOR]
        assert len(vec) >= 8

    def test_best_about_2x_over_under(self):
        result = figure16.run()
        assert 1.5 <= result.best_over_under <= 2.5

    def test_overprovisioned_gain_below_3_percent(self):
        result = figure16.run()
        assert result.over_over_best - 1 < 0.03


class TestFigure17:
    def test_each_feature_helps(self):
        result = figure17.run()
        for density, values in result.speedups.items():
            assert values == sorted(values), density

    def test_tepl_benefit_grows_with_sparsity(self):
        result = figure17.run()
        assert result.tepl_gain_at(0.05) > result.tepl_gain_at(1.0)

    def test_tepl_roughly_doubles_at_5_percent(self):
        result = figure17.run()
        assert 1.7 <= result.tepl_gain_at(0.05) <= 2.6


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run()

    def test_batch1_cells_within_10_percent(self, result):
        for (model, batch, scheme, engine), paper in TABLE4_LATENCY_MS.items():
            if batch != 1:
                continue
            ours = result.latencies[(model, batch, scheme, engine)]
            assert ours == pytest.approx(paper, rel=0.10), (model, scheme)

    def test_batch16_cells_within_20_percent(self, result):
        for (model, batch, scheme, engine), paper in TABLE4_LATENCY_MS.items():
            if batch != 16:
                continue
            ours = result.latencies[(model, batch, scheme, engine)]
            assert ours == pytest.approx(paper, rel=0.20), (model, scheme)

    def test_deca_over_sw_headline(self, result):
        # Paper: 1.6x-2.6x over the software-only solution.
        ratios = [
            result.speedup(model, batch, scheme)
            for model in ("Llama2-70B", "OPT-66B")
            for batch in (1, 16)
            for scheme in ("Q4", "Q8_20%", "Q8_5%")
        ]
        assert min(ratios) >= 1.5
        assert max(ratios) <= 2.9

    def test_deca_over_uncompressed_headline(self, result):
        # Paper: 2.5x-5.0x over the uncompressed baseline.
        for model in ("Llama2-70B", "OPT-66B"):
            base = result.latencies[(model, 1, "Q16", "software")]
            best = result.latencies[(model, 1, "Q8_5%", "deca")]
            assert 2.5 <= base / best <= 5.5


class TestArea:
    def test_matches_paper(self):
        result = area.run()
        assert result.breakdown.total == pytest.approx(2.51, rel=0.02)
        assert result.breakdown.die_overhead() < 0.002
