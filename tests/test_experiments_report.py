"""Tests for the report-table renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import Table


class TestTable:
    def test_renders_aligned(self):
        table = Table("title", ["a", "bb"])
        table.add_row(1, "x")
        table.add_row(22, "yy")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "title"
        assert len(set(len(line) for line in lines[1:] if line)) <= 2

    def test_row_length_validated(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add_row(123.456)
        table.add_row(1.23456)
        table.add_row(0.000123)
        table.add_row(0.0)
        text = table.render()
        assert "123" in text
        assert "1.23" in text
        assert "0.0001" in text
