"""Tier-1 hygiene gates: no compiled artifacts tracked in git.

Runs :mod:`scripts.check_no_pyc` as part of the regular suite so a
``git add -A`` that sweeps in ``__pycache__/`` fails fast (it happened
once — PR 2).
"""

import pathlib
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "scripts"))

import check_no_pyc  # noqa: E402


def test_no_compiled_artifacts_tracked():
    paths = check_no_pyc.tracked_files()
    if paths is None:
        pytest.skip("not a git checkout (or git unavailable)")
    offenders = check_no_pyc.compiled_artifacts(paths)
    assert offenders == [], (
        "compiled Python artifacts are tracked in git; remove them with "
        "`git rm -r --cached <path>` (see scripts/check_no_pyc.py)"
    )


def test_gitignore_covers_compiled_artifacts():
    gitignore = (_REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__/" in gitignore
    assert "*.py[cod]" in gitignore or "*.pyc" in gitignore


def test_detector_flags_offenders():
    flagged = check_no_pyc.compiled_artifacts(
        ["src/a.pyc", "pkg/__pycache__/b.cpython-311.pyc", "src/ok.py",
         "docs/__pycache__x/readme.md"]
    )
    assert flagged == ["pkg/__pycache__/b.cpython-311.pyc", "src/a.pyc"]


def test_detector_flags_egg_info():
    flagged = check_no_pyc.compiled_artifacts(
        ["src/repro.egg-info/PKG-INFO", "src/repro.egg-info/SOURCES.txt",
         "nested/thing.egg-info/top_level.txt", "src/egg-info.py",
         "docs/egg-info/readme.md", "src/ok.py"]
    )
    assert flagged == [
        "nested/thing.egg-info/top_level.txt",
        "src/repro.egg-info/PKG-INFO",
        "src/repro.egg-info/SOURCES.txt",
    ]
