"""Tests for the DECA vOp pipeline: functional and cycle-exact."""

import numpy as np
import pytest

from repro.deca.config import DecaConfig
from repro.deca.pipeline import DecaPipeline
from repro.errors import FormatError
from repro.sparse.prune import random_mask
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from tests.conftest import random_weights


def _tile(rng, fmt="bf8", density=1.0):
    dense = random_weights(rng, *TILE_SHAPE)
    mask = None if density >= 1.0 else random_mask(TILE_SHAPE, density, rng=rng)
    return CompressedTile.from_dense(dense, fmt, mask)


class TestFunctional:
    @pytest.mark.parametrize("fmt", ["bf8", "e4m3", "mxfp4", "bf16"])
    @pytest.mark.parametrize("density", [1.0, 0.5, 0.2, 0.05])
    def test_bit_exact_vs_reference(self, rng, fmt, density):
        tile = _tile(rng, fmt, density)
        pipeline = DecaPipeline(DecaConfig())
        pipeline.configure(fmt)
        out, _stats = pipeline.decompress_tile(tile)
        assert np.array_equal(out, tile.decompress_reference())

    def test_unconfigured_rejected(self, rng):
        pipeline = DecaPipeline(DecaConfig())
        with pytest.raises(FormatError):
            pipeline.decompress_tile(_tile(rng))

    def test_format_mismatch_rejected(self, rng):
        pipeline = DecaPipeline(DecaConfig())
        pipeline.configure("mxfp4")
        with pytest.raises(FormatError, match="configured for"):
            pipeline.decompress_tile(_tile(rng, "bf8"))

    def test_different_configs_same_output(self, rng):
        tile = _tile(rng, "bf8", 0.3)
        outs = []
        for config in (DecaConfig(8, 4), DecaConfig(32, 8), DecaConfig(64, 64)):
            pipeline = DecaPipeline(config)
            pipeline.configure("bf8")
            out, _ = pipeline.decompress_tile(tile)
            outs.append(out)
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])


class TestCycleCounting:
    def test_dense_q8_bubbles(self, rng):
        # W=32, L=8, 8-bit dense: every vOp needs 4 dequant cycles.
        pipeline = DecaPipeline(DecaConfig(32, 8))
        pipeline.configure("bf8")
        _out, stats = pipeline.decompress_tile(_tile(rng, "bf8", 1.0))
        assert stats.vops == 16
        assert stats.bubbles == 16 * 3
        assert stats.dequant_cycles == 64

    def test_dense_q4_no_bubbles(self, rng):
        pipeline = DecaPipeline(DecaConfig(32, 8))
        pipeline.configure("mxfp4")
        _out, stats = pipeline.decompress_tile(_tile(rng, "mxfp4", 1.0))
        assert stats.bubbles == 0

    def test_bf16_passthrough_no_bubbles(self, rng):
        pipeline = DecaPipeline(DecaConfig(32, 8))
        pipeline.configure("bf16")
        _out, stats = pipeline.decompress_tile(_tile(rng, "bf16", 0.5))
        assert stats.bubbles == 0

    def test_sparse_fewer_bubbles_than_dense(self, rng):
        pipeline = DecaPipeline(DecaConfig(32, 8))
        pipeline.configure("bf8")
        _o, dense_stats = pipeline.decompress_tile(_tile(rng, "bf8", 1.0))
        _o, sparse_stats = pipeline.decompress_tile(_tile(rng, "bf8", 0.2))
        assert sparse_stats.bubbles < dense_stats.bubbles

    def test_total_cycles_includes_drain(self, rng):
        config = DecaConfig(32, 8, pipeline_stages=3)
        pipeline = DecaPipeline(config)
        pipeline.configure("bf8")
        _out, stats = pipeline.decompress_tile(_tile(rng, "bf8", 1.0))
        assert stats.total_cycles == stats.dequant_cycles + 2

    def test_window_sizes_match_mask(self, rng):
        tile = _tile(rng, "bf8", 0.3)
        pipeline = DecaPipeline(DecaConfig(32, 8))
        pipeline.configure("bf8")
        _out, stats = pipeline.decompress_tile(tile)
        assert sum(stats.window_sizes) == tile.nnz

    def test_bubbles_per_vop_property(self, rng):
        pipeline = DecaPipeline(DecaConfig(32, 8))
        pipeline.configure("bf8")
        _out, stats = pipeline.decompress_tile(_tile(rng, "bf8", 1.0))
        assert stats.bubbles_per_vop == pytest.approx(3.0)


class TestBatchedEquivalence:
    """The batched decompress path must match the per-window loop exactly."""

    @pytest.mark.parametrize("fmt", ["bf8", "e4m3", "mxfp4", "bf16"])
    @pytest.mark.parametrize("density", [1.0, 0.5, 0.2, 0.05])
    def test_output_and_stats_bit_identical(self, rng, fmt, density):
        tile = _tile(rng, fmt, density)
        pipeline = DecaPipeline(DecaConfig())
        pipeline.configure(fmt)
        batched_out, batched_stats = pipeline.decompress_tile(tile)
        loop_out, loop_stats = pipeline._decompress_tile_windowed(tile)
        assert np.array_equal(batched_out, loop_out)
        assert batched_stats == loop_stats

    def test_windowed_reference_checks_configuration(self, rng):
        pipeline = DecaPipeline(DecaConfig())
        with pytest.raises(FormatError):
            pipeline._decompress_tile_windowed(_tile(rng))
