"""Property-based tests on the tile-stream simulator's invariants.

A performance model that violates basic monotonicity (more resources can
never hurt; more work can never help) produces nonsense design guidance.
These tests pin those invariants across the parameter space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.pipeline import InvocationMode, KernelTiming, simulate_tile_stream
from repro.sim.system import hbm_system

_HBM = hbm_system()

bytes_strategy = st.floats(min_value=32.0, max_value=2048.0)
dec_strategy = st.floats(min_value=0.5, max_value=256.0)
modes = st.sampled_from(list(InvocationMode))


def _interval(**kwargs) -> float:
    defaults = dict(
        bytes_per_tile=256.0,
        dec_cycles=32.0,
        handoff_cycles=12.0,
        invoke_cycles=4.0,
        loader_latency_cycles=10.0,
        prefetch_window=8,
    )
    defaults.update(kwargs)
    return simulate_tile_stream(
        _HBM, KernelTiming(**defaults), tiles=120
    ).steady_interval_cycles


class TestMonotonicity:
    @given(nbytes=bytes_strategy, dec=dec_strategy, mode=modes)
    @settings(max_examples=40, deadline=None)
    def test_more_decompress_work_never_faster(self, nbytes, dec, mode):
        base = _interval(bytes_per_tile=nbytes, dec_cycles=dec, mode=mode)
        slower = _interval(
            bytes_per_tile=nbytes, dec_cycles=dec * 1.5, mode=mode
        )
        assert slower >= base - 1e-6

    @given(nbytes=bytes_strategy, dec=dec_strategy, mode=modes)
    @settings(max_examples=40, deadline=None)
    def test_more_bytes_never_faster(self, nbytes, dec, mode):
        base = _interval(bytes_per_tile=nbytes, dec_cycles=dec, mode=mode)
        heavier = _interval(
            bytes_per_tile=nbytes * 1.5, dec_cycles=dec, mode=mode
        )
        assert heavier >= base - 1e-6

    @given(nbytes=bytes_strategy, dec=dec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_interval_at_least_every_resource(self, nbytes, dec):
        interval = _interval(bytes_per_tile=nbytes, dec_cycles=dec)
        from repro.sim.pipeline import DRAM_EFFICIENCY
        mem = nbytes / (_HBM.per_core_bytes_per_cycle() * DRAM_EFFICIENCY)
        assert interval >= mem - 1e-6
        assert interval >= dec - 1e-6
        assert interval >= 16.0 - 1e-6  # the TMUL occupancy

    @given(nbytes=bytes_strategy, dec=dec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_tepl_never_slower_than_serialized(self, nbytes, dec):
        serialized = _interval(
            bytes_per_tile=nbytes, dec_cycles=dec,
            mode=InvocationMode.SERIALIZED,
            invoke_cycles=20.0, fence_cycles=10.0,
        )
        tepl = _interval(
            bytes_per_tile=nbytes, dec_cycles=dec,
            mode=InvocationMode.TEPL, invoke_cycles=2.0,
            prefetch_window=24,
        )
        assert tepl <= serialized + 1e-6

    @given(
        nbytes=bytes_strategy,
        dec=dec_strategy,
        window=st.sampled_from([2, 4, 8, 24]),
    )
    @settings(max_examples=40, deadline=None)
    def test_larger_prefetch_window_never_slower(self, nbytes, dec, window):
        small = _interval(
            bytes_per_tile=nbytes, dec_cycles=dec, prefetch_window=window
        )
        large = _interval(
            bytes_per_tile=nbytes, dec_cycles=dec, prefetch_window=window * 2
        )
        assert large <= small + 1e-6

    @given(nbytes=bytes_strategy, dec=dec_strategy, mode=modes)
    @settings(max_examples=30, deadline=None)
    def test_utilizations_bounded(self, nbytes, dec, mode):
        result = simulate_tile_stream(
            _HBM,
            KernelTiming(
                bytes_per_tile=nbytes, dec_cycles=dec, mode=mode,
                handoff_cycles=12.0, invoke_cycles=4.0,
                loader_latency_cycles=10.0,
            ),
            tiles=120,
        )
        util = result.utilization
        assert 0.0 <= util.memory <= 1.0
        assert 0.0 <= util.matrix <= 1.0
        assert 0.0 <= util.decompress <= 1.0
