"""Fault-injection tests: the serve stack degrades, never corrupts.

Two injected faults, from the satellite checklist:

* a pool worker SIGKILLed mid-sweep — the executor's worker-loss
  recovery re-dispatches the lost cells and de-duplicates receipts, so
  the affected stream completes with no missing and no duplicate rows
  while other clients keep streaming;
* a corrupt/truncated disk-cache entry under the daemon's cache dir —
  the disk tier treats it as a miss, the daemon recomputes, and the
  recomputed stream is bit-identical to the pre-corruption one.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments.parallel import (
    fork_available,
    last_sweep_execution,
    parallel_map,
    shutdown_worker_pool,
    worker_pool_pids,
)
from repro.serve.client import connect
from repro.serve.daemon import ServeDaemon
from repro.serve.inline import _synthetic_cell
from repro.sim.cache import (
    clear_simulation_cache,
    configure_simulation_cache_dir,
    simulation_cache_disk,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)

#: Tight recovery grace so fault tests run in seconds, not the 5 s
#: production default.
FAST_GRACE = {"REPRO_WORKER_LOSS_GRACE_S": "0.4"}


@pytest.fixture
def fast_recovery(monkeypatch):
    for key, value in FAST_GRACE.items():
        monkeypatch.setenv(key, value)


@pytest.fixture
def daemon(tmp_path, fast_recovery):
    clear_simulation_cache()
    shutdown_worker_pool()
    d = ServeDaemon(
        socket_path=str(tmp_path / "serve.sock"), jobs=2, max_active=2
    )
    d.start()
    yield d
    d.drain()
    shutdown_worker_pool()
    clear_simulation_cache()


class TestWorkerLossExecutor:
    """The executor-level recovery the daemon's resilience rests on."""

    def test_killed_worker_cells_redispatch(
        self, fast_recovery, kill_pool_worker
    ):
        shutdown_worker_pool()
        items = [(i, 0.25) for i in range(6)]
        killer = threading.Timer(0.4, kill_pool_worker)
        killer.start()
        try:
            results = parallel_map(_synthetic_cell, items, jobs=2)
        finally:
            killer.cancel()
            shutdown_worker_pool()
        # Complete, ordered, no duplicates — as if nothing happened.
        assert [r["cell"] for r in results] == list(range(6))
        execution = last_sweep_execution()
        assert execution is not None
        assert execution.completed == 6
        assert execution.redispatched_cells >= 1

    def test_pool_respawns_after_kill(self, fast_recovery, kill_pool_worker):
        shutdown_worker_pool()
        parallel_map(_synthetic_cell, [(0, 0.0), (1, 0.0)], jobs=2)
        before = worker_pool_pids()
        victim = kill_pool_worker()
        # The next sweep still completes (the pool replaced the victim).
        results = parallel_map(
            _synthetic_cell, [(i, 0.0) for i in range(4)], jobs=2
        )
        assert [r["cell"] for r in results] == list(range(4))
        assert victim in before
        shutdown_worker_pool()

    def test_suspect_shutdown_survives_result_lock_holder(self):
        """Tearing down a suspect pool can't hang on the result queue.

        A worker SIGKILLed *mid-result-send* dies holding the result
        queue's writer lock; ``Pool._terminate_pool`` then deadlocks on
        its own sentinel ``outqueue.put(None)``. Simulate the dead
        holder by acquiring that lock from the test (a semaphore held
        by a corpse and one held by this thread wedge identically),
        mark the pool suspect, and require the shutdown to complete.
        """
        from repro.experiments import parallel as parallel_mod

        shutdown_worker_pool()
        parallel_map(_synthetic_cell, [(0, 0.0), (1, 0.0)], jobs=2)
        pool = parallel_mod._POOL
        assert pool is not None
        wlock = pool._outqueue._wlock
        assert wlock.acquire(timeout=10)
        parallel_mod._mark_pool_suspect()
        teardown = threading.Thread(target=shutdown_worker_pool)
        teardown.start()
        teardown.join(timeout=30)
        try:
            assert not teardown.is_alive(), (
                "suspect-pool shutdown hung on the orphaned result lock"
            )
        finally:
            # On the failure path unwedge the stuck teardown so the
            # rest of the session isn't poisoned; on success the
            # shutdown already freed the lock and this raises
            # ValueError.
            try:
                wlock.release()
            except ValueError:
                pass


class TestServeWorkerLoss:
    def test_daemon_survives_killed_worker(self, daemon, kill_pool_worker):
        """Kill a worker mid-sweep: the stream completes, no dupes."""
        inline = {"kind": "synthetic", "cells": 8, "cell_s": 0.25,
                  "tag": "kill"}
        rows = []
        first_row = threading.Event()
        failures = []

        def victim_client() -> None:
            try:
                for line in connect(daemon.socket_path).sweep_lines(
                    inline=inline
                ):
                    rows.append(json.loads(line))
                    first_row.set()
            except Exception as error:  # pragma: no cover - assertion aid
                failures.append(error)
                first_row.set()

        reader = threading.Thread(target=victim_client)
        reader.start()
        assert first_row.wait(timeout=30), "sweep never produced a row"
        kill_pool_worker()
        reader.join(timeout=60)
        assert not reader.is_alive(), "stream never completed after the kill"
        assert failures == []

        # Never a partial or duplicate row: all 8 cells, each once, in
        # index order.
        assert [row["cell"] for row in rows] == list(range(8))

        # The daemon is still healthy and serving.
        assert connect(daemon.socket_path).ping()
        snapshot = daemon.status_snapshot()
        assert snapshot["errors"] == 0

    def test_other_clients_keep_streaming_through_a_kill(
        self, daemon, kill_pool_worker
    ):
        slow = {"kind": "synthetic", "cells": 6, "cell_s": 0.25,
                "tag": "slow"}
        outcomes = {}
        first_row = threading.Event()

        def slow_client() -> None:
            stream = connect(daemon.socket_path).sweep_lines(inline=slow)
            collected = []
            for line in stream:
                collected.append(line)
                first_row.set()
            outcomes["slow"] = collected

        thread = threading.Thread(target=slow_client)
        thread.start()
        assert first_row.wait(timeout=30)
        kill_pool_worker()
        # A second client arrives *while* recovery is in progress; its
        # (serial, pool-free) synthetic sweep must be served normally.
        other = list(
            connect(daemon.socket_path).sweep(
                inline={"kind": "synthetic", "cells": 3, "tag": "other"}
            )
        )
        assert [row["cell"] for row in other] == [0, 1, 2]
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert len(outcomes["slow"]) == 6


class TestServeDiskCorruption:
    def test_corrupt_entry_degrades_to_recompute(
        self, daemon, corrupt_disk_entry, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        configure_simulation_cache_dir(str(cache_dir))
        try:
            baseline = list(
                connect(daemon.socket_path).sweep_lines("figure12")
            )
            disk = simulation_cache_disk()
            assert disk is not None and disk.stats().stores > 0

            # Corrupt one spilled entry, then force the next request to
            # go through disk (drop the in-memory tier).
            corrupt_disk_entry(cache_dir)
            clear_simulation_cache()

            replay = list(
                connect(daemon.socket_path).sweep_lines("figure12")
            )
            assert replay == baseline
            assert simulation_cache_disk().stats().errors >= 1
            # Still healthy: another scenario streams fine afterwards.
            assert connect(daemon.socket_path).ping()
            other = list(
                connect(daemon.socket_path).sweep(
                    inline={"kind": "synthetic", "cells": 2, "tag": "after"}
                )
            )
            assert len(other) == 2
            assert daemon.status_snapshot()["errors"] == 0
        finally:
            configure_simulation_cache_dir(None)

    @pytest.mark.parametrize("mode", ["garbage", "truncate"])
    def test_corrupt_index_mid_sweep_degrades_to_rebuild(
        self, daemon, corrupt_cache_index, tmp_path, mode
    ):
        """A damaged manifest under a live daemon never changes results.

        The daemon's disk tier holds an attached in-memory index; when
        the manifest file is garbled between requests the next refresh
        sees the shrunken/foreign file, reloads, and rebuilds from the
        store — the replayed stream stays bit-identical and the daemon
        stays healthy.
        """
        cache_dir = tmp_path / "cache"
        configure_simulation_cache_dir(str(cache_dir))
        try:
            baseline = list(
                connect(daemon.socket_path).sweep_lines("figure12")
            )
            disk = simulation_cache_disk()
            assert disk is not None and disk.stats().stores > 0

            corrupt_cache_index(cache_dir, mode)
            clear_simulation_cache()

            replay = list(
                connect(daemon.socket_path).sweep_lines("figure12")
            )
            assert replay == baseline
            # Served from the store, not recomputed: the manifest is
            # advisory, so losing it costs a rebuild, not the entries.
            assert simulation_cache_disk().stats().hits > 0
            assert connect(daemon.socket_path).ping()
            assert daemon.status_snapshot()["errors"] == 0
        finally:
            configure_simulation_cache_dir(None)