"""Tests for the GPU Roof-Surface presets (Section 10 extension)."""

import pytest

from repro.core.gpu import a100_like, gpu_bord, h100_like
from repro.core.roofsurface import BoundingFactor, RoofSurface
from repro.core.schemes import PAPER_SCHEMES
from repro.kernels.libxsmm import software_aixv


class TestPresets:
    def test_a100_rates(self):
        gpu = a100_like()
        # ~305 G tile ops/s and ~1.2 T vector ops/s.
        assert gpu.matrix_ops_per_second == pytest.approx(304.7e9, rel=0.01)
        assert gpu.vector_ops_per_second == pytest.approx(1.218e12, rel=0.01)

    def test_h100_faster_everywhere(self):
        a100, h100 = a100_like(), h100_like()
        assert h100.memory_bandwidth > a100.memory_bandwidth
        assert h100.matrix_ops_per_second > a100.matrix_ops_per_second

    def test_fractional_tmul_cycles_allowed(self):
        assert 0 < a100_like().tmul_cycles < 1


class TestGpuBord:
    def test_software_decompression_vec_bound_on_gpu_too(self):
        # The paper's Section 10 argument: Flash-LLM-style software
        # decompression leaves most schemes vector-bound on GPUs as well.
        bord = gpu_bord()
        vec_bound = 0
        for scheme in PAPER_SCHEMES:
            bound = bord.classify(scheme.aixm(), software_aixv(scheme))
            if bound is BoundingFactor.VECTOR:
                vec_bound += 1
        assert vec_bound >= 6

    def test_roof_surface_model_composes(self):
        model = RoofSurface(a100_like(), batch_rows=16)
        flops = model.flops(0.002, 0.01)
        assert flops > 0
