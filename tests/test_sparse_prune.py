"""Tests for the pruning utilities."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.sparse.prune import achieved_density, magnitude_mask, random_mask


class TestMagnitudeMask:
    def test_exact_count(self, rng):
        weights = rng.normal(size=(16, 32)).astype(np.float32)
        mask = magnitude_mask(weights, 0.25)
        assert mask.sum() == round(0.25 * weights.size)

    def test_keeps_largest(self, rng):
        weights = rng.normal(size=100).astype(np.float32)
        mask = magnitude_mask(weights, 0.1)
        kept_min = np.abs(weights[mask]).min()
        dropped_max = np.abs(weights[~mask]).max()
        assert kept_min >= dropped_max

    def test_full_density(self, rng):
        weights = rng.normal(size=(4, 4)).astype(np.float32)
        assert magnitude_mask(weights, 1.0).all()

    def test_invalid_density(self):
        with pytest.raises(CompressionError):
            magnitude_mask(np.ones(4, dtype=np.float32), 0.0)
        with pytest.raises(CompressionError):
            magnitude_mask(np.ones(4, dtype=np.float32), 1.5)

    def test_at_least_one_kept(self):
        weights = np.ones(1000, dtype=np.float32)
        mask = magnitude_mask(weights, 0.0001)
        assert mask.sum() == 1

    def test_shape_preserved(self, rng):
        weights = rng.normal(size=(16, 32)).astype(np.float32)
        assert magnitude_mask(weights, 0.5).shape == (16, 32)


class TestRandomMask:
    def test_exact_count(self, rng):
        mask = random_mask((16, 32), 0.2, rng=rng)
        assert mask.sum() == round(0.2 * 512)

    def test_deterministic_with_seed(self):
        a = random_mask((8, 8), 0.5, rng=np.random.default_rng(7))
        b = random_mask((8, 8), 0.5, rng=np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_uniformity(self):
        # Across many draws every position should be selected sometimes.
        rng = np.random.default_rng(3)
        total = np.zeros(64)
        for _ in range(200):
            total += random_mask((64,), 0.5, rng=rng)
        assert total.min() > 50 and total.max() < 150

    def test_invalid_density(self):
        with pytest.raises(CompressionError):
            random_mask((4,), -0.1)


class TestAchievedDensity:
    def test_value(self):
        mask = np.array([True, False, True, False])
        assert achieved_density(mask) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            achieved_density(np.zeros(0, dtype=bool))
