"""Cross-module integration tests: the full compressed-GeMM story."""

import numpy as np
import pytest

from repro.core.schemes import CompressionScheme, parse_scheme
from repro.deca.integration import deca_kernel_timing
from repro.deca.pe import DecaPE
from repro.deca.timing import deca_dec_cycles, exact_dec_cycles
from repro.deca.config import DecaConfig
from repro.isa.program import build_software_gemm, build_tepl_gemm, run_program
from repro.kernels.gemm import compressed_gemm_reference, dense_gemm_reference
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim.pipeline import simulate_tile_stream
from repro.sparse.compress import compress_matrix, decompress_matrix
from tests.conftest import random_weights


class TestFunctionalAgreement:
    """All three execution paths must produce identical numerics."""

    @pytest.mark.parametrize("fmt,density", [
        ("bf16", 1.0), ("bf16", 0.3), ("bf8", 1.0), ("bf8", 0.15),
        ("mxfp4", 1.0), ("e4m3", 0.5),
    ])
    def test_three_paths_agree(self, rng, fmt, density):
        w = random_weights(rng, 64, 96)
        a = rng.normal(size=(8, 96)).astype(np.float32)
        matrix = compress_matrix(w, fmt, density=density)
        reference = compressed_gemm_reference(a, matrix)
        software = run_program(build_software_gemm(a, matrix))
        pe = DecaPE()
        pe.configure(fmt)
        tepl = run_program(build_tepl_gemm(a, matrix), pe)
        assert np.array_equal(software.output, reference)
        assert np.array_equal(tepl.output, reference)

    def test_compression_error_propagates_sensibly(self, rng):
        # Lossy formats change the GeMM result, but boundedly.
        w = random_weights(rng, 64, 128)
        a = rng.normal(size=(4, 128)).astype(np.float32)
        exact = dense_gemm_reference(a, w)
        for fmt, tolerance in (("bf8", 0.15), ("mxfp4", 0.35)):
            matrix = compress_matrix(w, fmt)
            approx = compressed_gemm_reference(a, matrix)
            scale = np.abs(exact).mean() + 1e-6
            assert np.abs(approx - exact).mean() < tolerance * scale

    def test_pruned_gemm_equals_gemm_of_pruned_matrix(self, rng):
        w = random_weights(rng, 32, 64)
        a = rng.normal(size=(4, 64)).astype(np.float32)
        matrix = compress_matrix(w, "bf16", density=0.4)
        pruned = decompress_matrix(matrix)
        assert np.allclose(
            compressed_gemm_reference(a, matrix),
            dense_gemm_reference(a, pruned),
            rtol=1e-6, atol=1e-6,
        )


class TestExactWorkloadTiming:
    """Feeding measured per-tile costs into the simulator."""

    def test_exact_cycles_drive_simulation(self, rng, hbm):
        scheme = parse_scheme("Q8_30%")
        config = DecaConfig()
        w = random_weights(rng, 128, 256)
        matrix = compress_matrix(
            w, "bf8", density=0.3, pruning="random", rng=rng
        )
        per_tile = exact_dec_cycles(config, matrix)
        bytes_per_tile = [float(t.nbytes()) for t in matrix.tiles]
        exact_timing = deca_kernel_timing(
            hbm, scheme, dec_cycles=per_tile, bytes_per_tile=bytes_per_tile
        )
        expected_timing = deca_kernel_timing(hbm, scheme)
        exact = simulate_tile_stream(hbm, exact_timing)
        expected = simulate_tile_stream(hbm, expected_timing)
        assert exact.steady_interval_cycles == pytest.approx(
            expected.steady_interval_cycles, rel=0.05
        )

    def test_magnitude_vs_random_pruning_similar_timing(self, rng, hbm):
        # Magnitude pruning of Gaussian weights is spatially uniform, so
        # the timing should match the binomial expectation too.
        config = DecaConfig()
        w = random_weights(rng, 128, 256)
        matrix = compress_matrix(w, "bf8", density=0.3)
        per_tile = np.array(exact_dec_cycles(config, matrix))
        expected = deca_dec_cycles(config, parse_scheme("Q8_30%"))
        assert per_tile.mean() == pytest.approx(expected, rel=0.05)


class TestSoftwareVsDecaConsistency:
    def test_speedup_direction_matches_bord(self, rng, hbm):
        # Any VEC-bound scheme must benefit from DECA in simulation.
        scheme = CompressionScheme("bf8", 0.1)
        sw = simulate_tile_stream(hbm, software_kernel_timing(hbm, scheme))
        dc = simulate_tile_stream(hbm, deca_kernel_timing(hbm, scheme))
        assert dc.steady_interval_cycles < sw.steady_interval_cycles

    def test_mem_bound_scheme_gains_little_on_ddr(self, ddr):
        scheme = CompressionScheme("bf8", 1.0)
        sw = simulate_tile_stream(ddr, software_kernel_timing(ddr, scheme))
        dc = simulate_tile_stream(ddr, deca_kernel_timing(ddr, scheme))
        ratio = sw.steady_interval_cycles / dc.steady_interval_cycles
        assert ratio == pytest.approx(1.0, abs=0.05)
