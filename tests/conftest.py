"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import pathlib
import signal

import numpy as np
import pytest

from repro.core.schemes import parse_scheme
from repro.sim.system import ddr_system, hbm_system


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def hbm():
    """The paper's HBM-equipped 56-core system."""
    return hbm_system()


@pytest.fixture
def ddr():
    """The paper's DDR-equipped 56-core system."""
    return ddr_system()


@pytest.fixture(
    params=["Q16_50%", "Q8", "Q8_20%", "Q4", "Q8_5%"],
    ids=lambda name: name.replace("%", ""),
)
def scheme(request):
    """A representative slice of the paper's compression schemes."""
    return parse_scheme(request.param)


def random_weights(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Gaussian weights like a trained FC layer's."""
    return (rng.normal(scale=0.05, size=(rows, cols))).astype(np.float32)


# ---------------------------------------------------------------------
# Fault injection (serve-daemon hardening tests)
# ---------------------------------------------------------------------


@pytest.fixture
def kill_pool_worker():
    """Fault injector: SIGKILL one live persistent-pool worker.

    Returns a callable that picks a worker of the process-wide pool
    (the lowest PID by default, or a caller-chosen one) and kills it
    outright, simulating an OOM-killed / crashed worker mid-sweep. The
    pool's maintenance thread respawns a replacement, but any cells the
    victim was running are lost — exercising the executor's worker-loss
    recovery. Returns the victim's PID.
    """
    from repro.experiments.parallel import worker_pool_pids

    def _kill(pid: "int | None" = None) -> int:
        pids = worker_pool_pids()
        assert pids, "no live pool worker to kill"
        victim = pid if pid is not None else pids[0]
        assert victim in pids, f"{victim} is not a pool worker ({pids})"
        os.kill(victim, signal.SIGKILL)
        return victim

    return _kill


@pytest.fixture
def corrupt_disk_entry():
    """Fault injector: garble entries of an on-disk simulation cache.

    Returns a callable taking a cache directory; it overwrites the
    stored pickle payload of ``count`` entries with garbage (keeping
    the files in place, so membership probes still see them). A
    well-behaved reader must treat the entries as misses and recompute.
    Returns the corrupted paths.
    """

    def _corrupt(cache_dir, count: int = 1):
        root = pathlib.Path(cache_dir)
        entries = sorted(root.rglob("*.pkl"))
        assert entries, f"no disk-cache entries under {cache_dir}"
        victims = entries[:count]
        for path in victims:
            path.write_bytes(b"\x00corrupt-truncated-entry")
        return victims

    return _corrupt
