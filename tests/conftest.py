"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schemes import parse_scheme
from repro.sim.system import ddr_system, hbm_system


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def hbm():
    """The paper's HBM-equipped 56-core system."""
    return hbm_system()


@pytest.fixture
def ddr():
    """The paper's DDR-equipped 56-core system."""
    return ddr_system()


@pytest.fixture(
    params=["Q16_50%", "Q8", "Q8_20%", "Q4", "Q8_5%"],
    ids=lambda name: name.replace("%", ""),
)
def scheme(request):
    """A representative slice of the paper's compression schemes."""
    return parse_scheme(request.param)


def random_weights(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Gaussian weights like a trained FC layer's."""
    return (rng.normal(scale=0.05, size=(rows, cols))).astype(np.float32)
