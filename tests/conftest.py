"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import pathlib
import signal

import numpy as np
import pytest

from repro.core.schemes import parse_scheme
from repro.sim.system import ddr_system, hbm_system


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def hbm():
    """The paper's HBM-equipped 56-core system."""
    return hbm_system()


@pytest.fixture
def ddr():
    """The paper's DDR-equipped 56-core system."""
    return ddr_system()


@pytest.fixture(
    params=["Q16_50%", "Q8", "Q8_20%", "Q4", "Q8_5%"],
    ids=lambda name: name.replace("%", ""),
)
def scheme(request):
    """A representative slice of the paper's compression schemes."""
    return parse_scheme(request.param)


def random_weights(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Gaussian weights like a trained FC layer's."""
    return (rng.normal(scale=0.05, size=(rows, cols))).astype(np.float32)


# ---------------------------------------------------------------------
# Fault injection (serve-daemon hardening tests)
# ---------------------------------------------------------------------


@pytest.fixture
def kill_pool_worker():
    """Fault injector: SIGKILL one live persistent-pool worker.

    Returns a callable that picks a worker of the process-wide pool
    (the lowest PID by default, or a caller-chosen one) and kills it
    outright, simulating an OOM-killed / crashed worker mid-sweep. The
    pool's maintenance thread respawns a replacement, but any cells the
    victim was running are lost — exercising the executor's worker-loss
    recovery. Returns the victim's PID.
    """
    from repro.experiments.parallel import worker_pool_pids

    def _kill(pid: "int | None" = None) -> int:
        pids = worker_pool_pids()
        assert pids, "no live pool worker to kill"
        victim = pid if pid is not None else pids[0]
        assert victim in pids, f"{victim} is not a pool worker ({pids})"
        os.kill(victim, signal.SIGKILL)
        return victim

    return _kill


@pytest.fixture
def corrupt_disk_entry():
    """Fault injector: garble entries of an on-disk simulation cache.

    Returns a callable taking a cache directory; it overwrites the
    stored pickle payload of ``count`` entries with garbage — loose
    ``.pkl`` files first, then records inside pack files (group-committed
    deltas land as packs, so a sweep's spill may have no loose entries
    at all). Files and pack records stay in place, so membership probes
    still see them. A well-behaved reader must treat the entries as
    misses and recompute. Returns the corrupted paths.
    """

    def _corrupt(cache_dir, count: int = 1):
        from repro.sim.diskindex import scan_pack

        root = pathlib.Path(cache_dir)
        victims = []
        for path in sorted(root.rglob("*.pkl"))[:count]:
            path.write_bytes(b"\x00corrupt-truncated-entry")
            victims.append(path)
        if len(victims) < count:
            for pack_path in sorted(root.rglob("*.pack")):
                for _digest, offset, length in scan_pack(pack_path):
                    with open(pack_path, "r+b") as handle:
                        handle.seek(offset)
                        handle.write(b"\x00" * length)
                    victims.append(pack_path)
                    if len(victims) >= count:
                        break
                if len(victims) >= count:
                    break
        assert victims, f"no disk-cache entries under {cache_dir}"
        return victims

    return _corrupt


@pytest.fixture
def corrupt_cache_index():
    """Fault injector: damage an on-disk simulation cache's manifest.

    Returns a callable taking a cache directory and a mode:
    ``"garbage"`` overwrites the manifest with non-UTF-8 noise,
    ``"truncate"`` shears it mid-line, ``"stale"`` rewrites the header
    to a foreign schema generation. The store itself is untouched, so a
    well-behaved cache must answer membership identically after a
    rebuild. Returns the manifest path.
    """

    def _corrupt(cache_dir, mode: str = "garbage"):
        from repro.sim.diskindex import INDEX_NAME

        root = pathlib.Path(cache_dir)
        manifests = sorted(root.rglob(INDEX_NAME))
        assert manifests, f"no cache manifest under {cache_dir}"
        path = manifests[0]
        if mode == "garbage":
            path.write_bytes(b"\xff\xfe not a manifest \x00\x01")
        elif mode == "truncate":
            data = path.read_bytes()
            path.write_bytes(data[: max(len(data) * 2 // 3, 1)])
        elif mode == "stale":
            lines = path.read_bytes().splitlines(keepends=True)
            lines[0] = b"repri 1 0000deadbeef\n"
            path.write_bytes(b"".join(lines))
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")
        return path

    return _corrupt
