"""Tests for the AMX functional model."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.formats.bfloat import bf16_round
from repro.isa.amx import (
    TileRegisterFile,
    tile_compute,
    tile_load,
    tile_store,
)


class TestRegisterFile:
    def test_write_read(self, rng):
        regs = TileRegisterFile()
        data = rng.normal(size=(16, 32)).astype(np.float32)
        regs.write(0, data)
        assert np.array_equal(regs.read(0), bf16_round(data))

    def test_unwritten_read_rejected(self):
        with pytest.raises(ProgramError):
            TileRegisterFile().read(3)

    def test_bad_index(self):
        regs = TileRegisterFile()
        with pytest.raises(ProgramError):
            regs.read(8)
        with pytest.raises(ProgramError):
            regs.write(-1, np.zeros((1, 1), dtype=np.float32))

    def test_too_many_rows(self):
        with pytest.raises(ProgramError):
            TileRegisterFile().write(0, np.zeros((17, 32), dtype=np.float32))

    def test_zero(self):
        regs = TileRegisterFile()
        regs.zero(2, 4, 16)
        assert np.all(regs.read(2) == 0.0)
        assert regs.read(2).shape == (4, 16)

    def test_clear(self):
        regs = TileRegisterFile()
        regs.zero(0, 1, 1)
        regs.clear()
        with pytest.raises(ProgramError):
            regs.read(0)


class TestTileOps:
    def test_tload_tstore_roundtrip(self, rng):
        regs = TileRegisterFile()
        data = bf16_round(rng.normal(size=(16, 32)).astype(np.float32))
        tile_load(regs, 1, data)
        assert np.array_equal(tile_store(regs, 1), data)

    def test_tcomp_accumulates(self, rng):
        regs = TileRegisterFile()
        act = bf16_round(rng.normal(size=(4, 32)).astype(np.float32))
        weights = bf16_round(rng.normal(size=(16, 32)).astype(np.float32))
        regs.write(0, act)
        regs.write(1, weights)
        regs.zero(2, 4, 16)
        tile_compute(regs, 2, 0, 1)
        tile_compute(regs, 2, 0, 1)
        assert np.allclose(regs.read(2), 2 * (act @ weights.T), rtol=1e-6)

    def test_tcomp_shape_validation(self, rng):
        regs = TileRegisterFile()
        regs.write(0, np.zeros((4, 16), dtype=np.float32))  # wrong K
        regs.write(1, np.zeros((16, 32), dtype=np.float32))
        regs.zero(2, 4, 16)
        with pytest.raises(ProgramError):
            tile_compute(regs, 2, 0, 1)

    def test_tcomp_accumulator_shape(self, rng):
        regs = TileRegisterFile()
        regs.write(0, np.zeros((4, 32), dtype=np.float32))
        regs.write(1, np.zeros((16, 32), dtype=np.float32))
        regs.zero(2, 8, 16)  # wrong N
        with pytest.raises(ProgramError):
            tile_compute(regs, 2, 0, 1)
