"""Tests for the validation and sensitivity harnesses."""

import pytest

from repro.experiments import sensitivity, validation


class TestValidation:
    @pytest.fixture(scope="class")
    def report(self):
        return validation.run()

    def test_all_claims_pass(self, report):
        failing = [c.claim for c in report.checks if not c.passed]
        assert report.all_passed, failing

    def test_covers_nine_claims(self, report):
        assert len(report.checks) == 9

    def test_table_renders(self, report):
        text = report.format_table()
        assert "9/9 claims reproduced" in text
        assert "PASS" in text


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity.run()

    def test_nine_rows(self, result):
        assert len(result.rows) == 9

    def test_headline_robust_to_20_percent(self, result):
        # The 4x-class headline must not collapse under +-20% calibration
        # error; 25% relative shift is the acceptance bound.
        assert result.max_headline_shift() < 0.25

    def test_dram_efficiency_restored(self, result):
        from repro.sim.pipeline import DRAM_EFFICIENCY
        assert DRAM_EFFICIENCY == 0.93

    def test_table_renders(self, result):
        assert "Sensitivity" in result.format_table()
