"""Tests for the complete DECA PE."""

import numpy as np
import pytest

from repro.deca.config import DecaConfig
from repro.deca.pe import DecaPE
from repro.errors import FormatError, SimulationError
from repro.sparse.prune import random_mask
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from tests.conftest import random_weights


def _tile(rng, fmt="bf8", density=0.4):
    mask = random_mask(TILE_SHAPE, density, rng=rng)
    return CompressedTile.from_dense(random_weights(rng, *TILE_SHAPE), fmt, mask)


class TestProcessTile:
    def test_output_matches_reference(self, rng):
        pe = DecaPE()
        pe.configure("bf8")
        tile = _tile(rng)
        tout, _stats = pe.process_tile(tile)
        assert np.array_equal(pe.read_tout(tout), tile.decompress_reference())

    def test_loaders_alternate(self, rng):
        pe = DecaPE()
        pe.configure("bf8")
        first, _ = pe.process_tile(_tile(rng))
        second, _ = pe.process_tile(_tile(rng))
        assert {first, second} == {0, 1}

    def test_explicit_loader(self, rng):
        pe = DecaPE()
        pe.configure("bf8")
        tout, _ = pe.process_tile(_tile(rng), loader_id=1)
        assert tout == 1

    def test_invalid_loader(self, rng):
        pe = DecaPE()
        pe.configure("bf8")
        with pytest.raises(SimulationError):
            pe.process_tile(_tile(rng), loader_id=5)

    def test_statistics_accumulate(self, rng):
        pe = DecaPE()
        pe.configure("bf8")
        tiles = [_tile(rng) for _ in range(4)]
        for tile in tiles:
            pe.process_tile(tile)
        assert pe.stats.tiles_processed == 4
        assert pe.stats.vops_executed == 4 * 16
        assert pe.stats.bytes_fetched == sum(t.nbytes() for t in tiles)

    def test_format_mismatch_squashes_loader(self, rng):
        pe = DecaPE()
        pe.configure("mxfp4")
        with pytest.raises(FormatError):
            pe.process_tile(_tile(rng, "bf8"))
        # The loader must be free again for the next (correct) tile.
        tile = _tile(rng, "mxfp4")
        pe.process_tile(tile)
        assert pe.stats.squashes == 1


class TestToutRegisters:
    def test_unwritten_register_rejected(self):
        pe = DecaPE()
        with pytest.raises(SimulationError):
            pe.read_tout(0)

    def test_bad_index(self):
        pe = DecaPE()
        with pytest.raises(SimulationError):
            pe.read_tout(7)


class TestContextSwitch:
    def test_state_roundtrip(self, rng):
        pe = DecaPE()
        pe.configure("bf8")
        state = pe.save_state()
        other = DecaPE()
        other.restore_state(state)
        tile = _tile(rng)
        tout, _ = other.process_tile(tile)
        assert np.array_equal(
            other.read_tout(tout), tile.decompress_reference()
        )

    def test_squash_clears_touts(self, rng):
        pe = DecaPE()
        pe.configure("bf8")
        tout, _ = pe.process_tile(_tile(rng))
        pe.squash()
        with pytest.raises(SimulationError):
            pe.read_tout(tout)

    def test_custom_config(self, rng):
        pe = DecaPE(DecaConfig(width=8, lut_count=4))
        pe.configure("bf8")
        _tout, stats = pe.process_tile(_tile(rng))
        assert stats.vops == 64
