"""Tests for the disk-backed simulation cache tier.

The load-bearing invariant (ISSUE 3): entries that round-trip through
the on-disk store must be *bit-identical* to freshly computed results —
for every shape a ``KernelTiming`` field can take — and a damaged entry
file must degrade to a recompute, never a crash or a wrong answer.
"""

import pickle

import numpy as np
import pytest

from repro.sim.cache import (
    SimulationCache,
    clear_simulation_cache,
    configure_simulation_cache_dir,
    results_bit_equal,
    simulation_cache_dir,
    simulation_cache_disk,
    simulation_cache_stats,
    simulation_key,
)
from repro.sim.diskcache import (
    DiskCache,
    key_digest,
    open_disk_cache,
    schema_fingerprint,
)
from repro.sim.pipeline import (
    DRAM_EFFICIENCY,
    InvocationMode,
    KernelTiming,
    simulate_tile_stream,
)
from repro.sim.system import ddr_system, hbm_system


@pytest.fixture(autouse=True)
def _memory_only_after():
    """Detach any disk tier a test attached to the process-wide cache."""
    yield
    configure_simulation_cache_dir(None)
    clear_simulation_cache()


def _timing_cases():
    """One KernelTiming per field shape the cache key must survive."""
    return {
        "scalar": KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0),
        "list": KernelTiming(
            bytes_per_tile=[300.0, 280.0, 310.0], dec_cycles=20.0
        ),
        "ndarray": KernelTiming(
            bytes_per_tile=np.linspace(250.0, 350.0, 16), dec_cycles=20.0
        ),
        "zero_d_array": KernelTiming(
            bytes_per_tile=np.float64(300.0), dec_cycles=np.array(20.0)
        ),
        "enum": KernelTiming(
            bytes_per_tile=300.0, dec_cycles=20.0,
            mode=InvocationMode.SERIALIZED, invoke_cycles=20.0,
            fence_cycles=10.0, handoff_cycles=12.0,
            loader_latency_cycles=10.0,
        ),
        "no_decompress": KernelTiming(bytes_per_tile=300.0, dec_cycles=0.0),
    }


class TestRoundTrip:
    @pytest.mark.parametrize("shape", sorted(_timing_cases()))
    def test_every_field_shape_survives_disk(self, tmp_path, hbm, shape):
        """serialize -> deserialize is bit-exact for each field shape."""
        timing = _timing_cases()[shape]
        configure_simulation_cache_dir(str(tmp_path))
        clear_simulation_cache()
        computed = simulate_tile_stream(hbm, timing, tiles=64)
        # Drop the memory tier; the only way back is through the disk.
        clear_simulation_cache()
        reloaded = simulate_tile_stream(hbm, timing, tiles=64)
        assert results_bit_equal(computed, reloaded)
        stats = simulation_cache_stats()
        assert (stats.misses, stats.disk_hits) == (0, 1)
        assert stats.hit_rate == 1.0

    @pytest.mark.parametrize("shape", sorted(_timing_cases()))
    def test_reloaded_traces_are_frozen(self, tmp_path, hbm, shape):
        timing = _timing_cases()[shape]
        configure_simulation_cache_dir(str(tmp_path))
        clear_simulation_cache()
        simulate_tile_stream(hbm, timing, tiles=64)
        clear_simulation_cache()
        reloaded = simulate_tile_stream(hbm, timing, tiles=64)
        for array in (reloaded.trace.mtx_done, reloaded.trace.fetch_issue):
            assert not array.flags.writeable

    def test_equal_keys_share_one_entry_across_value_kinds(self, tmp_path):
        # The freeze rules make an equal list and array the same key, and
        # two equal systems the same key; the disk digest must agree.
        disk = DiskCache(tmp_path)
        timing_list = KernelTiming(
            bytes_per_tile=[300.0, 280.0], dec_cycles=20.0
        )
        timing_array = KernelTiming(
            bytes_per_tile=np.array([300.0, 280.0]), dec_cycles=20.0
        )
        key_a = simulation_key(hbm_system(), timing_list, 64)
        key_b = simulation_key(hbm_system(), timing_array, 64)
        assert key_a == key_b
        assert key_digest(key_a) == key_digest(key_b)
        assert disk.entry_path(key_a) == disk.entry_path(key_b)

    def test_distinct_keys_get_distinct_paths(self, tmp_path):
        disk = DiskCache(tmp_path)
        base = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        keys = [
            simulation_key(hbm_system(), base, 64),
            simulation_key(ddr_system(), base, 64),
            simulation_key(hbm_system(), base, 65),
            simulation_key(hbm_system(), base, 64, extra=DRAM_EFFICIENCY),
            simulation_key(
                hbm_system(),
                KernelTiming(bytes_per_tile=300.0, dec_cycles=21.0),
                64,
            ),
        ]
        paths = {disk.entry_path(key) for key in keys}
        assert len(paths) == len(keys)

    def test_digest_is_structure_sensitive(self):
        # Length-prefixed serialization: regrouping bytes across fields
        # must not collide.
        assert key_digest(("ab", "c")) != key_digest(("a", "bc"))
        assert key_digest((1.0,)) != key_digest((1,))
        assert key_digest(None) != key_digest((None,))


class TestCorruption:
    def _entry_path(self, hbm, timing, tmp_path):
        configure_simulation_cache_dir(str(tmp_path))
        clear_simulation_cache()
        simulate_tile_stream(hbm, timing, tiles=64)
        disk = simulation_cache_disk()
        key = simulation_key(hbm, timing, 64, extra=DRAM_EFFICIENCY)
        path = disk.entry_path(key)
        assert path.exists()
        return disk, path

    @pytest.mark.parametrize(
        "damage",
        ["garbage", "truncated", "empty", "wrong_payload"],
    )
    def test_damaged_entry_recomputes(self, tmp_path, hbm, damage):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        disk, path = self._entry_path(hbm, timing, tmp_path)
        reference = simulate_tile_stream(hbm, timing, tiles=64)
        if damage == "garbage":
            path.write_bytes(b"\x00not a pickle")
        elif damage == "truncated":
            path.write_bytes(path.read_bytes()[:-20])
        elif damage == "empty":
            path.write_bytes(b"")
        else:
            path.write_bytes(pickle.dumps({"surprise": 1}))
        clear_simulation_cache()
        recomputed = simulate_tile_stream(hbm, timing, tiles=64)
        assert results_bit_equal(reference, recomputed)
        stats = simulation_cache_stats()
        assert (stats.misses, stats.disk_hits) == (1, 0)
        assert disk.stats().errors >= 1

    def test_key_mismatch_is_a_miss(self, tmp_path, hbm):
        # A digest collision (or renamed file) unpickles fine but carries
        # another key; the stored-key check must reject it.
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        other = KernelTiming(bytes_per_tile=301.0, dec_cycles=20.0)
        disk, path = self._entry_path(hbm, timing, tmp_path)
        other_key = simulation_key(hbm, other, 64, extra=DRAM_EFFICIENCY)
        other_path = disk.entry_path(other_key)
        other_path.parent.mkdir(parents=True, exist_ok=True)
        other_path.write_bytes(path.read_bytes())
        assert disk.load(other_key) is None

    def test_undigestable_key_stays_memory_only(self, tmp_path, hbm):
        # `extra` is typed Hashable: a component the canonical
        # serializer doesn't know must degrade to memory-only caching,
        # not crash the sweep.
        configure_simulation_cache_dir(str(tmp_path))
        clear_simulation_cache()
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        from repro.sim.cache import cached_tile_stream

        exotic = frozenset({1.0})
        first = cached_tile_stream(
            hbm, timing, 64,
            lambda: simulate_tile_stream(hbm, timing, 64, use_cache=False),
            extra=exotic,
        )
        again = cached_tile_stream(
            hbm, timing, 64,
            lambda: simulate_tile_stream(hbm, timing, 64, use_cache=False),
            extra=exotic,
        )
        assert results_bit_equal(first, again)
        stats = simulation_cache_stats()
        assert (stats.misses, stats.hits) == (1, 1)  # memory tier works
        assert simulation_cache_disk().entry_count() == 0

    def test_damaged_entry_is_replaced(self, tmp_path, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        disk, path = self._entry_path(hbm, timing, tmp_path)
        path.write_bytes(b"garbage")
        clear_simulation_cache()
        simulate_tile_stream(hbm, timing, tiles=64)
        clear_simulation_cache()
        reloaded = simulate_tile_stream(hbm, timing, tiles=64)
        assert simulation_cache_stats().disk_hits == 1
        assert reloaded.tiles == 64


class TestVersioning:
    def test_schema_directory_embeds_fingerprint(self, tmp_path):
        disk = DiskCache(tmp_path)
        assert disk.schema_dir.name == f"v1-{schema_fingerprint()}"

    def test_foreign_schema_generation_is_ignored(self, tmp_path, hbm):
        # Entries from a hypothetical older code generation live in a
        # sibling directory and are never read.
        stale = tmp_path / "v1-000000000000" / "ab" / ("a" * 64 + ".pkl")
        stale.parent.mkdir(parents=True)
        stale.write_bytes(b"stale generation")
        configure_simulation_cache_dir(str(tmp_path))
        clear_simulation_cache()
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        simulate_tile_stream(hbm, timing, tiles=64)
        assert simulation_cache_stats().misses == 1
        assert stale.exists()  # untouched

    def test_tampered_fingerprint_field_is_rejected(self, tmp_path, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        configure_simulation_cache_dir(str(tmp_path))
        clear_simulation_cache()
        simulate_tile_stream(hbm, timing, tiles=64)
        disk = simulation_cache_disk()
        key = simulation_key(hbm, timing, 64, extra=DRAM_EFFICIENCY)
        path = disk.entry_path(key)
        payload = pickle.loads(path.read_bytes())
        payload["fingerprint"] = "feedfacecafe"
        path.write_bytes(pickle.dumps(payload))
        assert disk.load(key) is None


class TestTiering:
    def test_eviction_falls_back_to_disk(self, tmp_path, hbm):
        # An entry evicted from a tiny LRU is still one disk read away.
        disk = DiskCache(tmp_path)
        cache = SimulationCache(maxsize=1, disk=disk)
        calls = []

        def compute(tag):
            def body():
                calls.append(tag)
                return {"tag": tag}
            return body

        assert cache.get_or_compute("a", compute("a")) == {"tag": "a"}
        assert cache.get_or_compute("b", compute("b")) == {"tag": "b"}
        # "a" was evicted from memory but lives on disk.
        assert cache.get_or_compute("a", compute("a2")) == {"tag": "a"}
        assert calls == ["a", "b"]
        stats = cache.stats()
        assert (stats.misses, stats.disk_hits, stats.size) == (2, 1, 1)

    def test_merge_spills_inserted_entries_to_disk(self, tmp_path):
        disk = DiskCache(tmp_path)
        cache = SimulationCache(maxsize=8, disk=disk)
        cache.merge_entries([("k1", {"v": 1}), ("k2", {"v": 2})])
        assert disk.entry_count() == 2
        assert disk.load("k1") == {"v": 1}

    def test_store_skips_existing_entries(self, tmp_path):
        disk = DiskCache(tmp_path)
        assert disk.store("k", {"v": 1}) is True
        assert disk.store("k", {"v": 1}) is False
        assert disk.stats().skipped_stores == 1
        assert disk.entry_count() == 1

    def test_clear_keeps_disk(self, tmp_path, hbm):
        configure_simulation_cache_dir(str(tmp_path))
        clear_simulation_cache()
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        simulate_tile_stream(hbm, timing, tiles=64)
        disk = simulation_cache_disk()
        clear_simulation_cache()
        assert simulation_cache_stats().size == 0
        assert disk.entry_count() == 1


class TestConfiguration:
    def test_unusable_path_warns_and_degrades(self, tmp_path):
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        with pytest.warns(RuntimeWarning, match="in-memory cache only"):
            disk = open_disk_cache(blocker / "cache")
        assert disk is None

    def test_configure_unusable_path_is_memory_only(self, tmp_path, hbm):
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        with pytest.warns(RuntimeWarning):
            assert configure_simulation_cache_dir(str(blocker)) is None
        assert simulation_cache_dir() is None
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        clear_simulation_cache()
        simulate_tile_stream(hbm, timing, tiles=64)
        assert simulation_cache_stats().misses == 1

    def test_configure_none_detaches(self, tmp_path):
        configure_simulation_cache_dir(str(tmp_path))
        assert simulation_cache_dir() == str(tmp_path)
        assert configure_simulation_cache_dir(None) is None
        assert simulation_cache_dir() is None
