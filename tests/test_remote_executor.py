"""Tests for the socket-transport sweep executor.

The contract (see ``repro/experiments/remote.py``): with hosts
configured — programmatically or via ``REPRO_SWEEP_HOSTS`` — sweeps
dispatch contiguous cell partitions to socket workers and stream
``(index, result, cache delta)`` chunks back through the same
incremental-merge path as the fork pool. The backend never changes
results: every scenario is bit-identical to the serial and fork runs.
Cache state crosses the wire as hash-sharded packed deltas deduped
against the other side's digest set, a dead host's unfinished cells
are recomputed in-parent, and ``shutdown_worker_pool`` reaps the
loopback subprocesses.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import remote
from repro.experiments.parallel import (
    fork_available,
    last_sweep_execution,
    shutdown_worker_pool,
)
from repro.sim.cache import clear_simulation_cache, results_bit_equal

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="the fork-vs-socket comparisons need fork"
)


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_simulation_cache()
    shutdown_worker_pool()
    yield
    remote.configure_sweep_hosts(None)
    shutdown_worker_pool()
    clear_simulation_cache()


def _make_spec(scenario):
    """A small instance of each CLI scenario family."""
    if scenario == "grid":
        from repro.experiments.grid import grid_spec

        return grid_spec(tiles=48)
    if scenario == "figure12":
        from repro.experiments.figure12 import Figure12Result
        from repro.experiments.speedups import speedup_spec
        from repro.sim.system import ddr_system

        return speedup_spec(
            ddr_system(), tiles=64, name="figure12",
            reduce=Figure12Result,
        )
    assert scenario == "dse"
    from repro.experiments.dse import dse_spec

    return dse_spec(widths=(8, 16), lut_counts=(4, 8, 16))


class TestHostConfiguration:
    def test_parse_hosts_validates_and_normalizes(self):
        assert remote.parse_hosts("a:1, b:02,") == ("a:1", "b:2")
        for bad in ("noport", "host:", ":9", "host:abc"):
            with pytest.raises(ConfigurationError):
                remote.parse_hosts(bad)

    def test_configured_hosts_win_over_environment(self, monkeypatch):
        monkeypatch.setenv(remote.SWEEP_HOSTS_ENV, "env-host:7001")
        remote.configure_sweep_hosts(None)
        assert remote.active_sweep_hosts() == ("env-host:7001",)
        remote.configure_sweep_hosts("conf-host:7002")
        assert remote.active_sweep_hosts() == ("conf-host:7002",)
        # Explicit disable beats the environment; None reverts to it.
        remote.configure_sweep_hosts(())
        assert remote.active_sweep_hosts() == ()
        remote.configure_sweep_hosts(None)
        assert remote.active_sweep_hosts() == ("env-host:7001",)

    def test_unreachable_hosts_fail_loudly(self):
        remote.configure_sweep_hosts("127.0.0.1:9")
        from repro.experiments.parallel import stream_map

        with pytest.raises(ConfigurationError):
            list(stream_map(abs, [1, 2, 3, 4]))


class TestBitEquality:
    @pytest.mark.parametrize("scenario", ["grid", "figure12", "dse"])
    def test_socket_matches_fork_and_serial(self, scenario):
        spec = _make_spec(scenario)
        serial = spec.run(jobs=1)
        clear_simulation_cache()
        forked = spec.run(jobs=2)
        clear_simulation_cache()
        shutdown_worker_pool()
        hosts = remote.start_loopback_workers(2)
        remote.configure_sweep_hosts(hosts)
        socketed = spec.run(jobs=2)
        execution = last_sweep_execution()
        assert execution.backend == "socket"
        assert execution.hosts == tuple(hosts)
        assert execution.completed == execution.tasks
        assert sum(n for _, n in execution.host_cells) == execution.tasks
        assert results_bit_equal(serial, forked)
        assert results_bit_equal(serial, socketed)

    def test_deadline_propagates_to_socket_sweeps(self):
        from repro.errors import DeadlineExceededError

        spec = _make_spec("grid")
        hosts = remote.start_loopback_workers(2)
        remote.configure_sweep_hosts(hosts)
        with pytest.raises(DeadlineExceededError):
            list(spec.stream(jobs=1, batch=False, deadline=0.0))


class TestRecovery:
    def test_host_death_mid_stream_recomputes_in_parent(self):
        from repro.experiments.grid import grid_spec

        spec = grid_spec(tiles=300)
        serial_values = [c.value for c in spec.stream(jobs=1, batch=False)]
        clear_simulation_cache()
        hosts = remote.start_loopback_workers(2)
        remote.configure_sweep_hosts(hosts)
        stream = spec.stream(jobs=1, batch=False)
        socket_values = [next(stream).value]
        # Both hosts die mid-sweep: every unfinished cell must be
        # recomputed in-parent, with results indistinguishable from a
        # healthy run.
        for proc in remote.loopback_worker_procs():
            proc.kill()
        socket_values += [c.value for c in stream]
        execution = last_sweep_execution()
        assert execution.backend == "socket"
        assert execution.completed == execution.tasks == len(serial_values)
        assert execution.redispatched_cells > 0
        assert all(
            results_bit_equal(a, b)
            for a, b in zip(serial_values, socket_values)
        )


class TestDeltaDedup:
    def test_warm_replay_ships_no_shard_bytes(self):
        from repro.experiments.grid import grid_spec

        spec = grid_spec(tiles=48)
        hosts = remote.start_loopback_workers(2)
        remote.configure_sweep_hosts(hosts)
        # Cold: the workers compute every cell and ship the entries to
        # the parent (per-cell path, so nothing is pre-seeded).
        cold_rows = sum(1 for _ in spec.stream(jobs=1, batch=False))
        cold = last_sweep_execution()
        assert cold.delta_bytes_received > 0
        # First replay cross-fills each host with the other partition's
        # entries via the warm broadcast (each host computed only its
        # own half cold).
        sum(1 for _ in spec.stream(jobs=1, batch=False))
        # On converged hosts, digest dedup leaves nothing to ship in
        # either direction and every lookup is a worker memory hit.
        warm_rows = sum(1 for _ in spec.stream(jobs=1, batch=False))
        warm = last_sweep_execution()
        assert warm_rows == cold_rows
        assert warm.delta_bytes_sent == 0
        assert warm.delta_bytes_received == 0
        assert warm.worker_misses == 0
        assert warm.worker_hits == warm.tasks


class TestLifecycle:
    def test_shutdown_worker_pool_reaps_loopback_procs(self):
        hosts = remote.start_loopback_workers(2)
        remote.configure_sweep_hosts(hosts)
        procs = remote.loopback_worker_procs()
        assert len(procs) == 2
        from repro.experiments.parallel import stream_map

        assert [r for _, r in stream_map(abs, [-1, -2, -3, -4])] == [
            1, 2, 3, 4,
        ]
        shutdown_worker_pool()
        assert remote.loopback_worker_procs() == []
        assert all(proc.poll() is not None for proc in procs)

    def test_executor_topology_reports_socket_backend(self):
        from repro.experiments.grid import grid_spec

        remote.reset_topology_counters()
        assert remote.executor_topology()["backend"] == "fork"
        hosts = remote.start_loopback_workers(2)
        remote.configure_sweep_hosts(hosts)
        sum(1 for _ in grid_spec(tiles=48).stream(jobs=1, batch=False))
        topology = remote.executor_topology()
        assert topology["backend"] == "socket"
        assert topology["hosts"] == list(hosts)
        assert sum(topology["host_cells"].values()) == 48
        assert topology["delta_bytes_received"] > 0
