"""Tests for the AWQ-style grouped INT4 format (I4 schemes)."""

import numpy as np
import pytest

from repro.core.schemes import parse_scheme
from repro.deca.pe import DecaPE
from repro.formats.quantize import dequantize_tensor, quantize_tensor
from repro.formats.registry import dequant_lut, get_format
from repro.sparse.compress import compress_matrix, decompress_matrix
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from tests.conftest import random_weights


class TestCodec:
    def test_nibble_roundtrip(self):
        fmt = get_format("int4g32")
        values = np.arange(-7, 8, dtype=np.float32)
        assert np.array_equal(fmt.decode(fmt.encode(values)), values)

    def test_clipping(self):
        fmt = get_format("int4g32")
        codes = fmt.encode(np.array([100.0, -100.0], dtype=np.float32))
        assert fmt.decode(codes).tolist() == [7.0, -7.0]

    def test_lut_compatible(self):
        lut = dequant_lut(get_format("int4g32"))
        assert lut.shape == (16,)
        assert lut[1] == 1.0 and lut[15] == -1.0

    def test_grouped_tensor_roundtrip_bounded(self, rng):
        values = rng.normal(size=(4, 32)).astype(np.float32)
        restored = dequantize_tensor(quantize_tensor(values, "int4g32"))
        amax = np.abs(values).max(axis=1, keepdims=True)
        # Error <= half a step (scale/2) plus saturation above 7x scale.
        assert np.all(np.abs(restored - values) <= amax * 0.25 + 1e-6)


class TestScheme:
    def test_parse_i4(self):
        scheme = parse_scheme("I4")
        assert scheme.format_name == "int4g32"
        assert parse_scheme("I4_20%").density == pytest.approx(0.2)

    def test_same_footprint_as_mxfp4(self):
        assert parse_scheme("I4").bytes_per_tile() == (
            parse_scheme("Q4").bytes_per_tile()
        )

    def test_name_roundtrip(self):
        assert parse_scheme("I4_10%").name == "I4_10%"


class TestEndToEnd:
    def test_tile_through_deca(self, rng):
        tile = CompressedTile.from_dense(
            random_weights(rng, *TILE_SHAPE), "int4g32"
        )
        pe = DecaPE()
        pe.configure("int4g32")
        tout, stats = pe.process_tile(tile)
        assert np.array_equal(
            pe.read_tout(tout), tile.decompress_reference()
        )
        # 4-bit codes use the sub-LUTs: no bubbles at {W=32, L=8}.
        assert stats.bubbles == 0

    def test_sparse_matrix_roundtrip(self, rng):
        w = random_weights(rng, 64, 64)
        matrix = compress_matrix(w, "int4g32", density=0.3)
        restored = decompress_matrix(matrix)
        kept = restored != 0
        assert kept.mean() == pytest.approx(0.3, abs=0.02)
