"""Tests for composite sweeps and the figure12+figure13 scenario.

A :class:`repro.experiments.sweepspec.CompositeSweep` chains several
specs into one streamed run sharing the pool and the caches; its
sections must be bit-identical to the standalone runs, its rows must
stay distinguishable per section, and the registered
``figure12+figure13`` scenario must run through the CLI.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments import composite, figure12, figure13
from repro.experiments.sweepspec import (
    CompositeSweep,
    find_scenario,
    scenario_names,
)
from repro.sim.cache import clear_simulation_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_simulation_cache()
    yield
    clear_simulation_cache()


class TestCompositeSweep:
    def test_sections_match_standalone_runs(self):
        result = composite.run()
        assert result.section("figure12") == figure12.run()
        assert result.section("figure13") == figure13.run()

    def test_unknown_section_raises(self):
        result = composite.run()
        with pytest.raises(ConfigurationError):
            result.section("figure99")

    def test_stream_reindexes_and_tags_cells(self):
        sweep = composite.figure12_figure13_sweep()
        cells = list(sweep.stream())
        assert [cell.index for cell in cells] == list(range(sweep.cell_count))
        specs = [cell.coords["spec"] for cell in cells]
        half = len(cells) // 2
        assert set(specs[:half]) == {"figure12"}
        assert set(specs[half:]) == {"figure13"}

    def test_rows_carry_the_section_name(self):
        sweep = composite.figure12_figure13_sweep()
        cells = list(sweep.stream())
        first_rows = list(sweep.rows_for(cells[0]))
        last_rows = list(sweep.rows_for(cells[-1]))
        assert first_rows[0]["spec"] == "figure12"
        assert last_rows[0]["spec"] == "figure13"
        assert "scheme" in first_rows[0]

    def test_progress_spans_the_whole_composite(self):
        sweep = composite.figure12_figure13_sweep()
        seen = []
        sweep.run(progress=lambda done, total: seen.append((done, total)))
        total = sweep.cell_count
        assert all(t == total for _, t in seen)
        assert seen[-1] == (total, total)
        assert len(seen) == total

    def test_executions_recorded_per_section(self):
        sweep = composite.figure12_figure13_sweep()
        sweep.run()
        names = [name for name, _ in sweep.executions]
        assert names == ["figure12", "figure13"]
        for _, execution in sweep.executions:
            assert execution is not None
            assert execution.completed == execution.tasks

    def test_render_contains_both_tables(self):
        sweep = composite.figure12_figure13_sweep()
        text = sweep.render(sweep.run())
        assert "Figure 12" in text
        assert "Figure 13" in text

    def test_empty_composite_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeSweep("empty", ())

    def test_describe_axes_names_sections(self):
        sweep = composite.figure12_figure13_sweep()
        description = sweep.describe_axes()
        assert "figure12[" in description and "figure13[" in description


class TestRegistry:
    def test_registered(self):
        assert "figure12+figure13" in scenario_names()
        scenario = find_scenario("figure12+figure13")
        assert scenario is not None
        built = scenario.build()
        assert built.cell_count == (
            figure12.sweep_spec().cell_count + figure13.sweep_spec().cell_count
        )


class TestCli:
    def test_runs_by_name(self, capsys):
        assert main(["experiments", "figure12+figure13"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out and "Figure 13" in out

    def test_listed(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "figure12+figure13" in capsys.readouterr().out

    def test_out_rows_tag_sections(self, tmp_path, capsys):
        out_path = tmp_path / "composite.jsonl"
        assert main([
            "experiments", "figure12+figure13", "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        rows = [
            json.loads(line)
            for line in out_path.read_text().splitlines() if line
        ]
        sweep = composite.figure12_figure13_sweep()
        assert len(rows) == sweep.cell_count
        assert {row["spec"] for row in rows} == {"figure12", "figure13"}
