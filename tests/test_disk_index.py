"""Tests for the disk tier's persistent index and pack format (v2).

The load-bearing invariants: the manifest is *advisory* — a corrupt,
truncated, stale, or missing index rebuilds from the store and answers
membership identically — and a group-committed pack round-trips
bit-identically to loose per-entry files, in both directions, because
the pack payload *is* the loose pickle. Concurrent pack writers into
one schema directory must never lose or interleave entries.
"""

import os
import threading

import pytest

from repro.sim.cache import (
    clear_simulation_cache,
    configure_simulation_cache_dir,
    results_bit_equal,
    simulation_key,
)
from repro.sim.diskcache import (
    PACK_MIN_ENTRIES,
    DiskCache,
    key_digest,
    schema_fingerprint,
)
from repro.sim.diskindex import (
    INDEX_NAME,
    DiskCacheIndex,
    pack_dir,
    scan_pack,
    write_pack,
)
from repro.sim.pipeline import DRAM_EFFICIENCY, KernelTiming, simulate_tile_stream
from repro.sim.system import hbm_system


@pytest.fixture(autouse=True)
def _memory_only_after():
    yield
    configure_simulation_cache_dir(None)
    clear_simulation_cache()


def _entries(n, tiles=8, tag=100.0):
    """``n`` distinct (key, value) sim entries, cheap to compute."""
    system = hbm_system()
    out = []
    for i in range(n):
        timing = KernelTiming(bytes_per_tile=tag + i, dec_cycles=20.0)
        key = simulation_key(system, timing, tiles, DRAM_EFFICIENCY)
        out.append((key, simulate_tile_stream(system, timing, tiles, use_cache=False)))
    return out


def _store_packed(root, entries):
    disk = DiskCache(root)
    written = disk.store_batch(entries)
    assert written == len(entries)
    assert disk.stats().pack_commits >= 1, "delta did not group-commit"
    return disk


class TestIndexResilience:
    """A damaged manifest degrades to a rebuild, never a wrong answer."""

    @pytest.mark.parametrize("mode", ["garbage", "truncate", "stale"])
    def test_damaged_index_rebuilds_with_identical_answers(
        self, tmp_path, corrupt_cache_index, mode
    ):
        entries = _entries(PACK_MIN_ENTRIES, tag=200.0)
        loose = _entries(2, tag=300.0)
        disk = _store_packed(tmp_path, entries)
        for key, value in loose:
            assert disk.store(key, value)
        keys = [key for key, _ in entries + loose]
        absent = simulation_key(
            hbm_system(),
            KernelTiming(bytes_per_tile=999.0, dec_cycles=20.0),
            8,
            DRAM_EFFICIENCY,
        )
        before = [disk.contains(key) for key in keys] + [disk.contains(absent)]
        assert before == [True] * len(keys) + [False]

        corrupt_cache_index(tmp_path, mode)
        fresh = DiskCache(tmp_path)
        after = [fresh.contains(key) for key in keys] + [fresh.contains(absent)]
        assert after == before
        if mode != "truncate":
            # A truncated manifest only forces a rebuild when packed
            # records were lost; loose records degrade to a stat.
            assert fresh.index.rebuilt
        # The rebuild also restored loads, both formats.
        for key, value in entries + loose:
            assert results_bit_equal(fresh.load(key), value)

    def test_missing_index_rebuilds_from_walk(self, tmp_path):
        entries = _entries(PACK_MIN_ENTRIES, tag=210.0)
        disk = _store_packed(tmp_path, entries)
        (disk.schema_dir / INDEX_NAME).unlink()
        fresh = DiskCache(tmp_path)
        assert fresh.index.rebuilt
        assert all(fresh.contains(key) for key, _ in entries)
        for key, value in entries:
            assert results_bit_equal(fresh.load(key), value)

    def test_torn_manifest_tail_is_not_consumed(self, tmp_path):
        entries = _entries(3, tag=220.0)
        disk = DiskCache(tmp_path)
        for key, value in entries:
            assert disk.store(key, value)
        path = disk.schema_dir / INDEX_NAME
        # Simulate a crashed writer: a record sheared mid-line.
        with open(path, "ab") as handle:
            handle.write(b"E deadbeef")
        fresh = DiskCache(tmp_path)
        assert all(fresh.contains(key) for key, _ in entries)
        # The torn fragment is ignored, and later appends still work.
        extra_key, extra_value = _entries(1, tag=230.0)[0]
        assert fresh.store(extra_key, extra_value)
        assert DiskCache(tmp_path).contains(extra_key)

    def test_delete_record_wins_over_store_record(self, tmp_path):
        index = DiskCacheIndex.attach(tmp_path, schema_fingerprint())
        digest = "ab" * 32
        index.record_store(digest, 10, 1.0)
        assert index.contains(digest)
        index.record_remove(digest)
        assert not index.contains(digest)
        # A second reader replaying the manifest agrees.
        replay = DiskCacheIndex.attach(tmp_path, schema_fingerprint())
        assert not replay.contains(digest)
        assert not replay.rebuilt

    def test_touch_records_advance_recency_across_processes(self, tmp_path):
        index = DiskCacheIndex.attach(tmp_path, schema_fingerprint())
        digest = "cd" * 32
        index.record_store(digest, 10, 1.0)
        index.record_touch(digest, 5000.0)
        replay = DiskCacheIndex.attach(tmp_path, schema_fingerprint())
        assert replay.get(digest).atime == pytest.approx(5000.0)


class TestPackFormat:
    def test_packed_and_loose_loads_are_bit_identical(self, tmp_path):
        entries = _entries(PACK_MIN_ENTRIES, tag=240.0)
        packed = _store_packed(tmp_path / "packed", entries)
        loose = DiskCache(tmp_path / "loose")
        for key, value in entries:
            assert loose.store(key, value)
        assert loose.stats().pack_commits == 0
        for key, value in entries:
            from_pack = packed.load(key)
            from_loose = loose.load(key)
            assert results_bit_equal(from_pack, value)
            assert results_bit_equal(from_loose, value)
            assert results_bit_equal(from_pack, from_loose)

    def test_pack_payload_is_the_loose_pickle(self, tmp_path):
        entries = _entries(PACK_MIN_ENTRIES, tag=250.0)
        disk = _store_packed(tmp_path, entries)
        key, _value = entries[0]
        record = disk.index.get(key_digest(key))
        assert record is not None and record.packed
        loose = DiskCache(tmp_path / "loose")
        assert loose.store(key, entries[0][1])
        from repro.sim.diskindex import read_pack_payload

        payload = read_pack_payload(
            disk.schema_dir, record.pack, record.offset, record.length
        )
        assert payload == loose.entry_path(key).read_bytes()

    def test_small_delta_stays_loose(self, tmp_path):
        entries = _entries(PACK_MIN_ENTRIES - 1, tag=260.0)
        disk = DiskCache(tmp_path)
        assert disk.store_batch(entries) == len(entries)
        assert disk.stats().pack_commits == 0
        assert not list(pack_dir(disk.schema_dir).glob("*.pack"))

    def test_no_pack_env_escape(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PACK", "1")
        entries = _entries(PACK_MIN_ENTRIES, tag=270.0)
        disk = DiskCache(tmp_path)
        assert disk.store_batch(entries) == len(entries)
        assert disk.stats().pack_commits == 0
        for key, value in entries:
            assert results_bit_equal(disk.load(key), value)

    def test_scan_pack_yields_intact_prefix_of_torn_pack(self, tmp_path):
        digests = [f"{i:064x}" for i in range(4)]
        payloads = [(d, os.urandom(64)) for d in digests]
        name, locations = write_pack(tmp_path, payloads)
        path = pack_dir(tmp_path) / name
        assert [d for d, _, _ in scan_pack(path)] == digests
        # Shear the file inside the last record's payload.
        data = path.read_bytes()
        path.write_bytes(data[: locations[-1][1] + 10])
        assert [d for d, _, _ in scan_pack(path)] == digests[:-1]


class TestConcurrentPackWriters:
    def test_two_writers_never_lose_or_interleave_entries(self, tmp_path):
        """Two caches group-committing into one store keep every entry.

        Models two processes (each with its own index handle) racing
        delta commits: pack files are distinct (random names), manifest
        appends are line-granular O_APPEND writes, so a fresh attach
        must see the union and load every entry intact.
        """
        first = _entries(PACK_MIN_ENTRIES, tag=400.0)
        second = _entries(PACK_MIN_ENTRIES, tag=500.0)
        caches = [DiskCache(tmp_path), DiskCache(tmp_path)]
        barrier = threading.Barrier(2)
        failures = []

        def commit(disk, entries):
            try:
                barrier.wait(timeout=10)
                assert disk.store_batch(entries) == len(entries)
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append(error)

        threads = [
            threading.Thread(target=commit, args=(caches[0], first)),
            threading.Thread(target=commit, args=(caches[1], second)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures
        fresh = DiskCache(tmp_path)
        assert fresh.entry_count() == len(first) + len(second)
        for key, value in first + second:
            assert fresh.contains(key)
            assert results_bit_equal(fresh.load(key), value)
