"""Tests for the next-token latency model."""

import pytest

from repro.core.schemes import UNCOMPRESSED, parse_scheme
from repro.errors import ConfigurationError
from repro.llm.inference import (
    EngineKind,
    next_token_latency,
    non_gemm_seconds,
)
from repro.llm.models import llama2_70b, opt_66b


class TestNonGemm:
    def test_grows_with_batch(self):
        model = llama2_70b()
        assert non_gemm_seconds(model, 16, 128) > non_gemm_seconds(model, 1, 128)

    def test_grows_with_tokens(self):
        model = llama2_70b()
        assert non_gemm_seconds(model, 4, 512) > non_gemm_seconds(model, 4, 32)

    def test_scales_with_model_size(self):
        assert non_gemm_seconds(opt_66b(), 1, 128) < non_gemm_seconds(
            llama2_70b(), 1, 128
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            non_gemm_seconds(llama2_70b(), 0, 128)
        with pytest.raises(ConfigurationError):
            non_gemm_seconds(llama2_70b(), 1, 0)


class TestNextTokenLatency:
    def test_uncompressed_baseline_near_paper(self, hbm):
        breakdown = next_token_latency(
            llama2_70b(), hbm, batch=1, input_tokens=128
        )
        # Paper Table 4: 192.3 ms.
        assert breakdown.total_ms == pytest.approx(192.3, rel=0.05)

    def test_gemm_fraction_matches_table1(self, hbm):
        breakdown = next_token_latency(
            llama2_70b(), hbm, batch=1, input_tokens=32
        )
        assert breakdown.gemm_fraction == pytest.approx(0.898, abs=0.01)

    def test_deca_beats_software(self, hbm):
        model = llama2_70b()
        scheme = parse_scheme("Q8_5%")
        sw = next_token_latency(
            model, hbm, scheme, EngineKind.SOFTWARE, batch=1
        )
        deca = next_token_latency(
            model, hbm, scheme, EngineKind.DECA, batch=1
        )
        assert 1.6 <= sw.total_seconds / deca.total_seconds <= 2.8

    def test_deca_vs_uncompressed_headline(self, hbm):
        # Paper: 2.5x-5.0x over the uncompressed base model.
        model = llama2_70b()
        base = next_token_latency(model, hbm, batch=1)
        deca = next_token_latency(
            model, hbm, parse_scheme("Q8_5%"), EngineKind.DECA, batch=1
        )
        assert 2.5 <= base.total_seconds / deca.total_seconds <= 5.5

    def test_uncompressed_requires_bf16(self, hbm):
        with pytest.raises(ConfigurationError):
            next_token_latency(
                llama2_70b(), hbm, parse_scheme("Q8"),
                EngineKind.UNCOMPRESSED,
            )

    def test_breakdown_consistency(self, hbm):
        breakdown = next_token_latency(llama2_70b(), hbm, batch=4)
        assert breakdown.total_seconds == pytest.approx(
            breakdown.gemm_seconds + breakdown.non_gemm_seconds
        )
        assert 0 < breakdown.gemm_fraction < 1

    def test_ddr_much_slower(self, hbm, ddr):
        fast = next_token_latency(llama2_70b(), hbm, batch=1)
        slow = next_token_latency(llama2_70b(), ddr, batch=1)
        assert slow.total_seconds > 2.5 * fast.total_seconds

    def test_opt_faster_than_llama(self, hbm):
        llama = next_token_latency(llama2_70b(), hbm, batch=1)
        opt = next_token_latency(opt_66b(), hbm, batch=1)
        assert opt.total_seconds < llama.total_seconds


class TestLayerBreakdown:
    def test_sums_to_total(self, hbm):
        from repro.llm.inference import fc_gemm_seconds, layer_breakdown
        model = llama2_70b()
        scheme = parse_scheme("Q8_20%")
        rows = layer_breakdown(model, hbm, scheme, EngineKind.DECA)
        total = fc_gemm_seconds(model, hbm, scheme, EngineKind.DECA)
        assert sum(r.seconds for r in rows) == pytest.approx(total, rel=1e-6)

    def test_mlp_dominates_llama(self, hbm):
        from repro.llm.inference import layer_breakdown
        rows = layer_breakdown(
            llama2_70b(), hbm, parse_scheme("Q4"), EngineKind.SOFTWARE
        )
        by_name = {r.layer_name: r.seconds for r in rows}
        mlp = by_name["gate_proj"] + by_name["up_proj"] + by_name["down_proj"]
        attn = (
            by_name["q_proj"] + by_name["k_proj"]
            + by_name["v_proj"] + by_name["o_proj"]
        )
        assert mlp > 4 * attn

    def test_head_counted_once(self, hbm):
        from repro.llm.inference import layer_breakdown
        rows = layer_breakdown(
            opt_66b(), hbm, parse_scheme("Q8"), EngineKind.DECA
        )
        head = next(r for r in rows if r.layer_name == "lm_head")
        assert head.instances == 1
