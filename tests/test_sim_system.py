"""Tests for the simulated-system configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.system import SimSystem, ddr_system, hbm_system


class TestSimSystem:
    def test_memory_latency_default(self):
        system = hbm_system()
        # 130 ns at 2.5 GHz = 325 cycles.
        assert system.memory_latency == pytest.approx(325.0)

    def test_bytes_per_cycle(self):
        assert hbm_system().bytes_per_cycle() == pytest.approx(340.0)
        assert ddr_system().bytes_per_cycle() == pytest.approx(104.0)

    def test_per_core_share(self):
        assert hbm_system().per_core_bytes_per_cycle() == pytest.approx(
            340.0 / 56
        )

    def test_with_cores(self):
        small = hbm_system().with_cores(8)
        assert small.cores == 8
        assert small.per_core_bytes_per_cycle() == pytest.approx(340.0 / 8)

    def test_exposure_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            SimSystem(machine=hbm_system().machine, exposed_latency_l2pf=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            SimSystem(machine=hbm_system().machine, l2_latency=-1.0)

    def test_custom_memory_latency_kept(self):
        system = SimSystem(machine=hbm_system().machine, memory_latency=200.0)
        assert system.memory_latency == 200.0
