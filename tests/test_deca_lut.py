"""Tests for the LUT array."""

import numpy as np
import pytest

from repro.deca.lut import LutArray
from repro.errors import ConfigurationError, FormatError
from repro.formats.registry import dequant_lut, get_format


class TestProgramming:
    def test_starts_unprogrammed(self):
        lut = LutArray(8)
        assert not lut.is_programmed
        with pytest.raises(FormatError):
            lut.lookup(np.array([0], dtype=np.uint8))

    def test_program_bf8(self):
        lut = LutArray(8)
        lut.program(get_format("bf8"))
        assert lut.is_programmed
        assert lut.format_name == "bf8"
        assert lut.bits == 8

    def test_reprogram_switches_format(self):
        lut = LutArray(8)
        lut.program(get_format("bf8"))
        lut.program(get_format("mxfp4"))
        assert lut.format_name == "mxfp4"

    def test_invalidate(self):
        lut = LutArray(8)
        lut.program(get_format("bf8"))
        lut.invalidate()
        assert not lut.is_programmed

    def test_bf16_rejected(self):
        with pytest.raises(FormatError):
            LutArray(8).program(get_format("bf16"))

    def test_invalid_lut_count(self):
        with pytest.raises(ConfigurationError):
            LutArray(0)


class TestLookup:
    def test_matches_decode_table(self):
        lut = LutArray(8)
        fmt = get_format("bf8")
        lut.program(fmt)
        codes = np.arange(256, dtype=np.uint8)
        assert np.array_equal(
            lut.lookup(codes), dequant_lut(fmt), equal_nan=True
        )

    def test_narrow_format_low_entries(self):
        lut = LutArray(8)
        lut.program(get_format("mxfp4"))
        codes = np.arange(16, dtype=np.uint8)
        assert np.array_equal(lut.lookup(codes), dequant_lut(get_format("mxfp4")))

    def test_out_of_range_code_rejected(self):
        lut = LutArray(8)
        lut.program(get_format("mxfp4"))
        with pytest.raises(FormatError):
            lut.lookup(np.array([16], dtype=np.uint8))


class TestPortLimits:
    def test_reads_per_cycle_8bit(self):
        lut = LutArray(8)
        lut.program(get_format("bf8"))
        assert lut.reads_per_cycle() == 8

    def test_reads_per_cycle_4bit(self):
        lut = LutArray(8)
        lut.program(get_format("mxfp4"))
        assert lut.reads_per_cycle() == 32

    def test_read_cycles(self):
        lut = LutArray(8)
        lut.program(get_format("bf8"))
        assert lut.read_cycles(0) == 1
        assert lut.read_cycles(8) == 1
        assert lut.read_cycles(9) == 2
        assert lut.read_cycles(32) == 4

    def test_unprogrammed_rejects_reads(self):
        with pytest.raises(FormatError):
            LutArray(4).reads_per_cycle()
