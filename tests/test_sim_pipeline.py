"""Tests for the tile-stream pipeline simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.pipeline import (
    DRAM_EFFICIENCY,
    InvocationMode,
    KernelTiming,
    simulate_multicore_event,
    simulate_tile_stream,
)
from repro.sim.system import hbm_system
from repro.units import TMUL_CYCLES


def _timing(**kwargs) -> KernelTiming:
    defaults = dict(bytes_per_tile=512.0, dec_cycles=32.0)
    defaults.update(kwargs)
    return KernelTiming(**defaults)


class TestOverlapped:
    def test_memory_bound_interval(self, hbm):
        # Huge tiles: memory is the bottleneck.
        timing = _timing(bytes_per_tile=4096.0, dec_cycles=1.0)
        result = simulate_tile_stream(hbm, timing)
        expected = 4096.0 / (hbm.per_core_bytes_per_cycle() * DRAM_EFFICIENCY)
        assert result.steady_interval_cycles == pytest.approx(expected, rel=0.02)

    def test_dec_bound_interval(self, hbm):
        timing = _timing(bytes_per_tile=64.0, dec_cycles=200.0)
        result = simulate_tile_stream(hbm, timing)
        assert result.steady_interval_cycles == pytest.approx(200.0, rel=0.02)

    def test_mtx_bound_interval(self, hbm):
        timing = _timing(bytes_per_tile=16.0, dec_cycles=1.0)
        result = simulate_tile_stream(hbm, timing)
        assert result.steady_interval_cycles == pytest.approx(
            TMUL_CYCLES, rel=0.05
        )

    def test_zero_dec_is_passthrough(self, hbm):
        timing = _timing(bytes_per_tile=1024.0, dec_cycles=0.0)
        result = simulate_tile_stream(hbm, timing)
        expected = 1024.0 / (hbm.per_core_bytes_per_cycle() * DRAM_EFFICIENCY)
        assert result.steady_interval_cycles == pytest.approx(expected, rel=0.02)
        assert result.utilization.decompress == 0.0

    def test_core_overhead_serialises_with_dec(self, hbm):
        base = simulate_tile_stream(
            hbm, _timing(bytes_per_tile=64.0, dec_cycles=100.0)
        )
        loaded = simulate_tile_stream(
            hbm,
            _timing(
                bytes_per_tile=64.0, dec_cycles=100.0,
                core_overhead_cycles=20.0,
            ),
        )
        assert loaded.steady_interval_cycles == pytest.approx(
            base.steady_interval_cycles + 20.0, rel=0.02
        )

    def test_demand_cap_limits_bandwidth(self, hbm):
        capped = simulate_tile_stream(
            hbm,
            _timing(bytes_per_tile=512.0, dec_cycles=1.0, demand_load_cap=2.0),
        )
        assert capped.steady_interval_cycles == pytest.approx(256.0, rel=0.02)


class TestSerialized:
    def test_communication_exposed(self, hbm):
        overlapped = simulate_tile_stream(
            hbm,
            _timing(bytes_per_tile=64.0, dec_cycles=30.0,
                    mode=InvocationMode.OVERLAPPED),
        )
        serialized = simulate_tile_stream(
            hbm,
            _timing(
                bytes_per_tile=64.0, dec_cycles=30.0,
                mode=InvocationMode.SERIALIZED,
                invoke_cycles=20.0, fence_cycles=10.0, handoff_cycles=12.0,
            ),
        )
        gap = (
            serialized.steady_interval_cycles
            - overlapped.steady_interval_cycles
        )
        # The store, the fence, and part of the handoff/TMUL chain fall on
        # the critical path once the core serializes.
        assert gap >= 25.0

    def test_interval_at_least_comm_plus_mtx(self, hbm):
        timing = _timing(
            bytes_per_tile=16.0, dec_cycles=1.0,
            mode=InvocationMode.SERIALIZED,
            invoke_cycles=20.0, fence_cycles=10.0, handoff_cycles=12.0,
        )
        result = simulate_tile_stream(hbm, timing)
        assert result.steady_interval_cycles >= 20.0 + 10.0 + TMUL_CYCLES


class TestTepl:
    def test_hazard_floor(self, hbm):
        # Tiny decompress time: the two-loader hazard sets the interval at
        # (issue + loader + dec + handoff) / 2.
        timing = _timing(
            bytes_per_tile=16.0, dec_cycles=4.0, mtx_cycles=1.0,
            mode=InvocationMode.TEPL,
            invoke_cycles=2.0, handoff_cycles=12.0,
            loader_latency_cycles=10.0, n_loaders=2, prefetch_window=24,
        )
        result = simulate_tile_stream(hbm, timing)
        assert result.steady_interval_cycles == pytest.approx(
            (2.0 + 4.0 + 12.0 + 10.0) / 2, rel=0.05
        )

    def test_more_loaders_relax_hazard(self, hbm):
        def run(loaders):
            return simulate_tile_stream(
                hbm,
                _timing(
                    bytes_per_tile=16.0, dec_cycles=4.0, mtx_cycles=1.0,
                    mode=InvocationMode.TEPL, invoke_cycles=2.0,
                    handoff_cycles=12.0, loader_latency_cycles=10.0,
                    n_loaders=loaders, prefetch_window=24,
                ),
            ).steady_interval_cycles
        assert run(4) < run(2)

    def test_dec_chain_still_binds(self, hbm):
        timing = _timing(
            bytes_per_tile=16.0, dec_cycles=64.0,
            mode=InvocationMode.TEPL,
            invoke_cycles=2.0, handoff_cycles=12.0,
            loader_latency_cycles=10.0, prefetch_window=24,
        )
        result = simulate_tile_stream(hbm, timing)
        assert result.steady_interval_cycles == pytest.approx(64.0, rel=0.03)

    def test_faster_than_serialized(self, hbm):
        kwargs = dict(
            bytes_per_tile=64.0, dec_cycles=16.0,
            invoke_cycles=20.0, handoff_cycles=12.0,
            loader_latency_cycles=10.0,
        )
        serialized = simulate_tile_stream(
            hbm,
            _timing(mode=InvocationMode.SERIALIZED, fence_cycles=10.0, **kwargs),
        )
        tepl = simulate_tile_stream(
            hbm, _timing(mode=InvocationMode.TEPL, **kwargs)
        )
        assert tepl.steady_interval_cycles < serialized.steady_interval_cycles


class TestPerTileSequences:
    def test_varying_dec_cycles_average_out(self, hbm):
        rng = np.random.default_rng(0)
        per_tile = rng.uniform(10.0, 50.0, size=600)
        varying = simulate_tile_stream(
            hbm, _timing(bytes_per_tile=16.0, dec_cycles=per_tile)
        )
        constant = simulate_tile_stream(
            hbm, _timing(bytes_per_tile=16.0, dec_cycles=float(per_tile.mean()))
        )
        assert varying.steady_interval_cycles == pytest.approx(
            constant.steady_interval_cycles, rel=0.05
        )

    def test_short_sequence_tiled(self, hbm):
        timing = _timing(bytes_per_tile=[100.0, 200.0], dec_cycles=1.0)
        assert timing.tile_bytes(6).tolist() == [100, 200, 100, 200, 100, 200]


class TestResultApi:
    def test_flops_scaling(self, hbm):
        result = simulate_tile_stream(hbm, _timing())
        assert result.flops(4) == pytest.approx(4 * result.flops(1))
        assert result.flops(16) == result.flops(32)

    def test_seconds_for_extrapolates(self, hbm):
        result = simulate_tile_stream(hbm, _timing(), tiles=100)
        short = result.seconds_for(100)
        long = result.seconds_for(1000)
        assert long > short * 8

    def test_minimum_tiles(self, hbm):
        with pytest.raises(ConfigurationError):
            simulate_tile_stream(hbm, _timing(), tiles=4)


class TestEventBackendAgreement:
    def test_matches_fair_share_memory_bound(self, hbm):
        timing = _timing(bytes_per_tile=1024.0, dec_cycles=0.0)
        fair = simulate_tile_stream(hbm, timing, tiles=300)
        event = simulate_multicore_event(hbm, timing, tiles_per_core=300)
        assert event.steady_interval_cycles == pytest.approx(
            fair.steady_interval_cycles, rel=0.02
        )

    def test_matches_fair_share_dec_bound(self, hbm):
        timing = _timing(bytes_per_tile=64.0, dec_cycles=120.0)
        fair = simulate_tile_stream(hbm, timing, tiles=300)
        event = simulate_multicore_event(hbm, timing, tiles_per_core=300)
        assert event.steady_interval_cycles == pytest.approx(
            fair.steady_interval_cycles, rel=0.02
        )

    def test_event_backend_rejects_other_modes(self, hbm):
        timing = _timing(mode=InvocationMode.TEPL)
        with pytest.raises(ConfigurationError):
            simulate_multicore_event(hbm, timing)


class TestValidation:
    def test_bad_mtx_cycles(self):
        with pytest.raises(ConfigurationError):
            KernelTiming(bytes_per_tile=1.0, dec_cycles=1.0, mtx_cycles=0.0)

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            KernelTiming(bytes_per_tile=1.0, dec_cycles=1.0, prefetch_window=0)

    def test_bad_exposure(self):
        with pytest.raises(ConfigurationError):
            KernelTiming(
                bytes_per_tile=1.0, dec_cycles=1.0, exposed_latency=2.0
            )
