"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.sim.cache import (
    clear_simulation_cache,
    configure_simulation_cache_dir,
    simulation_cache_dir,
    simulation_cache_disk,
    simulation_cache_stats,
)


class TestFormats:
    def test_lists_formats(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        for name in ("bf16", "bf8", "mxfp4", "int4g32"):
            assert name in out


class TestSimulate:
    def test_default_run(self, capsys):
        assert main(["simulate", "--scheme", "Q8_20%"]) == 0
        out = capsys.readouterr().out
        assert "cycles/tile" in out
        assert "TFLOPS" in out

    def test_software_engine(self, capsys):
        assert main([
            "simulate", "--scheme", "Q4", "--engine", "software",
            "--memory", "ddr",
        ]) == 0
        assert "SPR-DDR" in capsys.readouterr().out

    def test_gantt(self, capsys):
        assert main(["simulate", "--gantt", "4"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_uncompressed_software(self, capsys):
        assert main([
            "simulate", "--scheme", "Q16", "--engine", "software",
        ]) == 0

    def test_scheme_list_fans_out(self, capsys):
        assert main(["simulate", "--scheme", "Q4,Q8_5%", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Q4 on" in out and "Q8_5% on" in out

    def test_empty_scheme_list_rejected(self, capsys):
        assert main(["simulate", "--scheme", ","]) == 2
        assert "at least one scheme" in capsys.readouterr().err

    def test_scheme_list_matches_individual_runs(self, capsys):
        assert main(["simulate", "--scheme", "Q4"]) == 0
        solo = capsys.readouterr().out
        assert main(["simulate", "--scheme", "Q4,Q8_20%", "--jobs", "2"]) == 0
        combined = capsys.readouterr().out
        assert solo.strip() in combined


class TestLlm:
    def test_llama_deca(self, capsys):
        assert main(["llm", "--scheme", "Q8_5%", "--engine", "deca"]) == 0
        out = capsys.readouterr().out
        assert "Llama2-70B" in out and "next-token latency" in out

    def test_opt_uncompressed(self, capsys):
        assert main([
            "llm", "--model", "opt-66b", "--engine", "uncompressed",
        ]) == 0
        assert "OPT-66B" in capsys.readouterr().out


class TestDse:
    def test_prints_best(self, capsys):
        assert main(["dse"]) == 0
        assert "best: W=32, L=8" in capsys.readouterr().out


class TestArea:
    def test_reference_design(self, capsys):
        assert main(["area"]) == 0
        assert "2.51 mm^2" in capsys.readouterr().out

    def test_custom_design(self, capsys):
        assert main(["area", "--width", "64", "--luts", "64"]) == 0


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "area"]) == 0
        assert "2.51" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "figure99"]) == 2

    def test_fast_subset(self, capsys):
        assert main(["experiments", "table3", "figure17"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Figure 17" in out

    def test_jobs_flag(self, capsys):
        assert main(["experiments", "figure12", "--jobs", "2"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_sweep_harnesses_listed(self, capsys):
        assert main(["experiments", "sensitivity", "--jobs", "2"]) == 0
        assert "Sensitivity" in capsys.readouterr().out


class TestCacheDir:
    """The --cache-dir flag and REPRO_CACHE_DIR env fallback."""

    @pytest.fixture(autouse=True)
    def _memory_only(self, monkeypatch):
        """Isolate each test from ambient cache/env configuration."""
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        clear_simulation_cache()
        yield
        configure_simulation_cache_dir(None)
        clear_simulation_cache()

    def test_simulate_replays_from_warm_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "simcache")
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", cache_dir,
        ]) == 0
        cold_out = capsys.readouterr().out
        disk = simulation_cache_disk()
        assert disk is not None and disk.entry_count() >= 1
        # "Restart": drop the memory tier, keep the directory.
        clear_simulation_cache()
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", cache_dir,
        ]) == 0
        assert capsys.readouterr().out == cold_out
        stats = simulation_cache_stats()
        assert stats.disk_hits >= 1
        assert stats.misses == 0

    def test_experiments_accepts_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "simcache")
        assert main([
            "experiments", "figure17", "--cache-dir", cache_dir,
        ]) == 0
        assert "Figure 17" in capsys.readouterr().out
        assert simulation_cache_dir() == cache_dir
        assert simulation_cache_disk().entry_count() >= 1

    def test_dse_accepts_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "simcache")
        assert main(["dse", "--cache-dir", cache_dir]) == 0
        assert "best:" in capsys.readouterr().out
        assert simulation_cache_dir() == cache_dir

    def test_env_var_fallback(self, tmp_path, capsys, monkeypatch):
        cache_dir = str(tmp_path / "env-simcache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["simulate", "--scheme", "Q4"]) == 0
        assert simulation_cache_dir() == cache_dir
        assert simulation_cache_disk().entry_count() >= 1

    def test_flag_overrides_env_var(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from-env"))
        flag_dir = str(tmp_path / "from-flag")
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", flag_dir,
        ]) == 0
        assert simulation_cache_dir() == flag_dir

    def test_unset_flag_detaches_previous_tier(self, tmp_path, capsys):
        # Programmatic back-to-back invocations: an invocation without
        # --cache-dir must be memory-only even after one that had it.
        assert main([
            "simulate", "--scheme", "Q4",
            "--cache-dir", str(tmp_path / "simcache"),
        ]) == 0
        assert simulation_cache_dir() is not None
        assert main(["simulate", "--scheme", "Q4"]) == 0
        assert simulation_cache_dir() is None

    def test_unusable_dir_warns_and_runs_memory_only(self, tmp_path, capsys):
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", str(blocker),
        ]) == 0
        captured = capsys.readouterr()
        assert "cycles/tile" in captured.out  # the run still happened
        assert "in-memory cache only" in captured.err
        assert simulation_cache_dir() is None

    def test_serial_run_spawns_no_worker_pool(self, tmp_path, capsys):
        from repro.experiments.parallel import (
            shutdown_worker_pool,
            worker_pool_size,
        )

        shutdown_worker_pool()
        assert main([
            "simulate", "--scheme", "Q4,Q8_5%", "--jobs", "1",
            "--cache-dir", str(tmp_path / "simcache"),
        ]) == 0
        assert worker_pool_size() == 0


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestFigures:
    def test_exports_svgs(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["figures", "--output", str(tmp_path)]) == 0
        assert len(list(tmp_path.glob("*.svg"))) == 6
