"""Tests for the command-line interface."""

import pytest

import os

from repro.cli import main
from repro.experiments.parallel import fork_available
from repro.sim.cache import (
    clear_simulation_cache,
    configure_simulation_cache_dir,
    simulation_cache_dir,
    simulation_cache_disk,
    simulation_cache_stats,
)


class TestFormats:
    def test_lists_formats(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        for name in ("bf16", "bf8", "mxfp4", "int4g32"):
            assert name in out


class TestSimulate:
    def test_default_run(self, capsys):
        assert main(["simulate", "--scheme", "Q8_20%"]) == 0
        out = capsys.readouterr().out
        assert "cycles/tile" in out
        assert "TFLOPS" in out

    def test_software_engine(self, capsys):
        assert main([
            "simulate", "--scheme", "Q4", "--engine", "software",
            "--memory", "ddr",
        ]) == 0
        assert "SPR-DDR" in capsys.readouterr().out

    def test_gantt(self, capsys):
        assert main(["simulate", "--gantt", "4"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_uncompressed_software(self, capsys):
        assert main([
            "simulate", "--scheme", "Q16", "--engine", "software",
        ]) == 0

    def test_scheme_list_fans_out(self, capsys):
        assert main(["simulate", "--scheme", "Q4,Q8_5%", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Q4 on" in out and "Q8_5% on" in out

    def test_empty_scheme_list_rejected(self, capsys):
        assert main(["simulate", "--scheme", ","]) == 2
        assert "at least one scheme" in capsys.readouterr().err

    def test_scheme_list_matches_individual_runs(self, capsys):
        assert main(["simulate", "--scheme", "Q4"]) == 0
        solo = capsys.readouterr().out
        assert main(["simulate", "--scheme", "Q4,Q8_20%", "--jobs", "2"]) == 0
        combined = capsys.readouterr().out
        assert solo.strip() in combined


class TestLlm:
    def test_llama_deca(self, capsys):
        assert main(["llm", "--scheme", "Q8_5%", "--engine", "deca"]) == 0
        out = capsys.readouterr().out
        assert "Llama2-70B" in out and "next-token latency" in out

    def test_opt_uncompressed(self, capsys):
        assert main([
            "llm", "--model", "opt-66b", "--engine", "uncompressed",
        ]) == 0
        assert "OPT-66B" in capsys.readouterr().out


class TestDse:
    def test_prints_best(self, capsys):
        assert main(["dse"]) == 0
        assert "best: W=32, L=8" in capsys.readouterr().out


class TestArea:
    def test_reference_design(self, capsys):
        assert main(["area"]) == 0
        assert "2.51 mm^2" in capsys.readouterr().out

    def test_custom_design(self, capsys):
        assert main(["area", "--width", "64", "--luts", "64"]) == 0


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "area"]) == 0
        assert "2.51" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "figure99"]) == 2

    def test_fast_subset(self, capsys):
        assert main(["experiments", "table3", "figure17"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Figure 17" in out

    def test_jobs_flag(self, capsys):
        assert main(["experiments", "figure12", "--jobs", "2"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_sweep_harnesses_listed(self, capsys):
        assert main(["experiments", "sensitivity", "--jobs", "2"]) == 0
        assert "Sensitivity" in capsys.readouterr().out

    def test_negative_jobs_is_a_clean_error(self, capsys):
        assert main(["experiments", "figure12", "--jobs", "-2"]) == 2
        err = capsys.readouterr().err
        assert "jobs must be >= 0" in err


class TestScenarioRegistry:
    """``experiments --list`` and the declarative streaming path."""

    def test_list_enumerates_registered_scenarios(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("grid", "speedups", "figure12", "figure13",
                     "batch_sweep", "sensitivity", "dse"):
            assert name in out

    def test_registry_only_name_runs_through_the_engine(self, capsys):
        # "dse" has no module in _EXPERIMENTS; only the registry knows it.
        assert main(["experiments", "dse"]) == 0
        assert "best: W=32, L=8" in capsys.readouterr().out

    def test_out_writes_one_row_per_cell(self, tmp_path, capsys):
        out_path = tmp_path / "rows.jsonl"
        assert main([
            "experiments", "figure12", "--out", str(out_path),
        ]) == 0
        lines = out_path.read_text().splitlines()
        assert len(lines) == 12  # one per scheme
        import json
        first = json.loads(lines[0])
        assert set(first) == {
            "scheme", "software", "deca", "optimal", "deca_over_software"
        }
        # The reduced table still prints after the stream.
        assert "Figure 12" in capsys.readouterr().out

    def test_out_csv_gets_a_header(self, tmp_path, capsys):
        out_path = tmp_path / "rows.csv"
        assert main(["experiments", "sensitivity", "--out", str(out_path)]) == 0
        lines = out_path.read_text().splitlines()
        assert lines[0].startswith("constant,scale")
        assert len(lines) == 10  # header + 9 perturbations

    def test_stream_prints_rows_then_table(self, capsys):
        assert main(["experiments", "figure13", "--stream"]) == 0
        out = capsys.readouterr().out
        assert out.index('{"scheme"') < out.index("Figure 13")

    def test_progress_reports_each_cell(self, capsys):
        assert main(["experiments", "figure12", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[figure12] 1/12 cells" in err
        assert "[figure12] 12/12 cells" in err

    def test_streaming_flags_on_non_sweep_note_and_run(self, capsys):
        assert main(["experiments", "figure17", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "Figure 17" in captured.out
        assert "not a registered sweep scenario" in captured.err

    def test_typo_with_out_does_not_truncate_existing_file(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "rows.jsonl"
        out_path.write_text('{"precious": "data"}\n')
        assert main([
            "experiments", "figrue12", "--out", str(out_path),
        ]) == 2
        assert "unknown experiment" in capsys.readouterr().err
        assert out_path.read_text() == '{"precious": "data"}\n'

    def test_mixed_scenarios_in_one_csv_fail_cleanly(self, tmp_path, capsys):
        out_path = tmp_path / "rows.csv"
        assert main([
            "experiments", "sensitivity", "figure12", "--out", str(out_path),
        ]) == 2
        assert "jsonl" in capsys.readouterr().err


class TestCacheDir:
    """The --cache-dir flag and REPRO_CACHE_DIR env fallback."""

    @pytest.fixture(autouse=True)
    def _memory_only(self, monkeypatch):
        """Isolate each test from ambient cache/env configuration."""
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        clear_simulation_cache()
        yield
        configure_simulation_cache_dir(None)
        clear_simulation_cache()

    def test_simulate_replays_from_warm_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "simcache")
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", cache_dir,
        ]) == 0
        cold_out = capsys.readouterr().out
        disk = simulation_cache_disk()
        assert disk is not None and disk.entry_count() >= 1
        # "Restart": drop the memory tier, keep the directory.
        clear_simulation_cache()
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", cache_dir,
        ]) == 0
        assert capsys.readouterr().out == cold_out
        stats = simulation_cache_stats()
        assert stats.disk_hits >= 1
        assert stats.misses == 0

    def test_experiments_accepts_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "simcache")
        assert main([
            "experiments", "figure17", "--cache-dir", cache_dir,
        ]) == 0
        assert "Figure 17" in capsys.readouterr().out
        assert simulation_cache_dir() == cache_dir
        assert simulation_cache_disk().entry_count() >= 1

    def test_dse_accepts_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "simcache")
        assert main(["dse", "--cache-dir", cache_dir]) == 0
        assert "best:" in capsys.readouterr().out
        assert simulation_cache_dir() == cache_dir

    def test_env_var_fallback(self, tmp_path, capsys, monkeypatch):
        cache_dir = str(tmp_path / "env-simcache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["simulate", "--scheme", "Q4"]) == 0
        assert simulation_cache_dir() == cache_dir
        assert simulation_cache_disk().entry_count() >= 1

    def test_flag_overrides_env_var(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from-env"))
        flag_dir = str(tmp_path / "from-flag")
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", flag_dir,
        ]) == 0
        assert simulation_cache_dir() == flag_dir

    def test_unset_flag_detaches_previous_tier(self, tmp_path, capsys):
        # Programmatic back-to-back invocations: an invocation without
        # --cache-dir must be memory-only even after one that had it.
        assert main([
            "simulate", "--scheme", "Q4",
            "--cache-dir", str(tmp_path / "simcache"),
        ]) == 0
        assert simulation_cache_dir() is not None
        assert main(["simulate", "--scheme", "Q4"]) == 0
        assert simulation_cache_dir() is None

    def test_unusable_dir_warns_and_runs_memory_only(self, tmp_path, capsys):
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", str(blocker),
        ]) == 0
        captured = capsys.readouterr()
        assert "cycles/tile" in captured.out  # the run still happened
        assert "in-memory cache only" in captured.err
        assert simulation_cache_dir() is None

    def test_serial_run_spawns_no_worker_pool(self, tmp_path, capsys):
        from repro.experiments.parallel import (
            shutdown_worker_pool,
            worker_pool_size,
        )

        shutdown_worker_pool()
        assert main([
            "simulate", "--scheme", "Q4,Q8_5%", "--jobs", "1",
            "--cache-dir", str(tmp_path / "simcache"),
        ]) == 0
        assert worker_pool_size() == 0


class TestCachePrune:
    """The ``cache prune`` subcommand and the env byte budget."""

    @pytest.fixture(autouse=True)
    def _memory_only(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        clear_simulation_cache()
        yield
        configure_simulation_cache_dir(None)
        clear_simulation_cache()

    def _warm_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "simcache")
        assert main([
            "simulate", "--scheme", "Q4,Q8_5%", "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        configure_simulation_cache_dir(None)
        return cache_dir

    def test_prune_to_zero_empties_the_dir(self, tmp_path, capsys):
        import pathlib

        cache_dir = self._warm_dir(tmp_path, capsys)
        assert len(list(pathlib.Path(cache_dir).rglob("*.pkl"))) == 2
        assert main([
            "cache", "prune", "--cache-dir", cache_dir, "--max-bytes", "0",
        ]) == 0
        assert "pruned 2 of 2 entries" in capsys.readouterr().out
        assert list(pathlib.Path(cache_dir).rglob("*.pkl")) == []

    def test_prune_accepts_size_suffix(self, tmp_path, capsys):
        cache_dir = self._warm_dir(tmp_path, capsys)
        assert main([
            "cache", "prune", "--cache-dir", cache_dir, "--max-bytes", "1G",
        ]) == 0
        assert "pruned 0 of 2 entries" in capsys.readouterr().out

    def test_prune_needs_a_directory_and_a_limit(self, capsys):
        assert main(["cache", "prune", "--max-bytes", "0"]) == 2
        assert "--cache-dir" in capsys.readouterr().err
        assert main(["cache", "prune", "--cache-dir", "/tmp/x"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_rejects_malformed_size(self, tmp_path, capsys):
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-bytes", "lots",
        ]) == 2
        assert "byte size" in capsys.readouterr().err

    def test_env_budget_prunes_at_attach_time(
        self, tmp_path, capsys, monkeypatch
    ):
        import pathlib

        cache_dir = self._warm_dir(tmp_path, capsys)
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        clear_simulation_cache()
        # The next cached invocation prunes the stale entries up front,
        # then runs (and re-spills) normally.
        assert main([
            "simulate", "--scheme", "Q4", "--cache-dir", cache_dir,
        ]) == 0
        captured = capsys.readouterr()
        assert "cache budget REPRO_CACHE_MAX_BYTES=0" in captured.err
        assert "cycles/tile" in captured.out
        assert len(list(pathlib.Path(cache_dir).rglob("*.pkl"))) == 1

    def test_env_fallback_for_prune_dir(self, tmp_path, capsys, monkeypatch):
        cache_dir = self._warm_dir(tmp_path, capsys)
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert main(["cache", "prune"]) == 0
        assert "pruned 2 of 2 entries" in capsys.readouterr().out


class TestCacheStats:
    """The ``cache stats`` subcommand (disk-tier v2 observability)."""

    @pytest.fixture(autouse=True)
    def _memory_only(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        clear_simulation_cache()
        yield
        configure_simulation_cache_dir(None)
        clear_simulation_cache()

    def _warm_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "simcache")
        assert main([
            "simulate", "--scheme", "Q4,Q8_5%", "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        configure_simulation_cache_dir(None)
        return cache_dir

    def test_stats_reports_storage_breakdown(self, tmp_path, capsys):
        cache_dir = self._warm_dir(tmp_path, capsys)
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "loose" in out and "packed" in out and "index" in out

    def test_stats_json_is_machine_readable(self, tmp_path, capsys):
        import json

        cache_dir = self._warm_dir(tmp_path, capsys)
        assert main([
            "cache", "stats", "--cache-dir", cache_dir, "--json",
        ]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["loose_entries"] == 2
        assert snapshot["packed_entries"] == 0
        assert snapshot["total_bytes"] > 0
        assert snapshot["index_entries"] == 2

    def test_stats_counts_packed_entries(self, tmp_path, capsys):
        from repro.sim.diskcache import DiskCache

        cache_dir = str(tmp_path / "packedcache")
        disk = DiskCache(cache_dir)
        assert disk.store_batch(
            [(("cli-stats", i), "x" * 50) for i in range(8)]
        ) == 8
        assert main([
            "cache", "stats", "--cache-dir", cache_dir, "--json",
        ]) == 0
        import json

        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["packed_entries"] == 8
        assert snapshot["pack_files"] == 1
        assert snapshot["loose_entries"] == 0

    def test_stats_needs_a_directory(self, capsys):
        assert main(["cache", "stats"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_stats_env_fallback(self, tmp_path, capsys, monkeypatch):
        cache_dir = self._warm_dir(tmp_path, capsys)
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["cache", "stats"]) == 0
        assert "2 entries" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_broken_pipe_exits_like_sigpipe(self):
        """`repro ... | head` must exit 141, never traceback (EPIPE).

        Runs in a subprocess: the handler redirects the real stdout fd
        to devnull, which would clobber pytest's capture in-process.
        """
        import pathlib
        import subprocess
        import sys as _sys

        script = (
            "import sys\n"
            "import repro.cli as cli\n"
            "def boom(args):\n"
            "    raise BrokenPipeError\n"
            "cli._cmd_formats = boom\n"
            "sys.exit(cli.main(['formats']))\n"
        )
        result = subprocess.run(
            [_sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=pathlib.Path(__file__).resolve().parents[1],
            timeout=60,
        )
        assert result.returncode == 141
        assert "Traceback" not in result.stderr


class TestFigures:
    def test_exports_svgs(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["figures", "--output", str(tmp_path)]) == 0
        assert len(list(tmp_path.glob("*.svg"))) == 6


@pytest.mark.skipif(
    not fork_available(),
    reason="the serve daemon's pool needs the fork start method",
)
class TestServe:
    """Lifecycle of the serve daemon, end-to-end over a subprocess."""

    @staticmethod
    def _spawn(tmp_path, *extra):
        import pathlib
        import subprocess
        import sys as _sys

        sock = str(tmp_path / "serve.sock")
        repo_root = pathlib.Path(__file__).resolve().parents[1]
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve",
             "--socket", sock, "--jobs", "2", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, cwd=repo_root,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        ready = proc.stdout.readline()
        assert "listening on" in ready, f"no ready line: {ready!r}"
        return proc, sock

    @staticmethod
    def _stop(proc):
        import signal as _signal

        if proc.poll() is None:
            proc.send_signal(_signal.SIGTERM)
        try:
            return proc.wait(timeout=60), proc.stdout.read()
        except Exception:
            proc.kill()
            raise

    def test_ready_handshake_request_and_drain(self, tmp_path, capsys):
        import json
        import pathlib

        proc, sock = self._spawn(tmp_path)
        try:
            assert main(["serve-request", "--socket", sock, "--ping"]) == 0
            assert "pong" in capsys.readouterr().out

            assert main(["serve-request", "--socket", sock, "--status"]) == 0
            status = json.loads(capsys.readouterr().out)
            assert status["draining"] is False
            assert status["pool"]["width"] == 2

            assert main([
                "serve-request", "--socket", sock, "--inline",
                '{"kind": "synthetic", "cells": 3, "tag": "cli"}',
            ]) == 0
            captured = capsys.readouterr()
            rows = [json.loads(line)
                    for line in captured.out.strip().splitlines()]
            assert [row["cell"] for row in rows] == [0, 1, 2]
            assert "3 rows (computed)" in captured.err
        finally:
            rc, output = self._stop(proc)
        assert rc == 0
        assert "draining" in output and "drained" in output
        assert not pathlib.Path(sock).exists()

    def test_sigterm_finishes_in_flight_then_refuses_new(self, tmp_path):
        import signal as _signal
        import threading

        from repro.serve.client import ServeUnavailableError, connect

        proc, sock = self._spawn(tmp_path)
        rows = []
        first_row = threading.Event()

        def client() -> None:
            inline = {"kind": "synthetic", "cells": 6, "cell_s": 0.25,
                      "tag": "drain"}
            for row in connect(sock).sweep(inline=inline):
                rows.append(row)
                first_row.set()

        thread = threading.Thread(target=client)
        try:
            thread.start()
            assert first_row.wait(timeout=30), "sweep never started"
            proc.send_signal(_signal.SIGTERM)
            # The drain finishes the in-flight sweep for its client...
            thread.join(timeout=60)
            assert not thread.is_alive()
            assert [row["cell"] for row in rows] == list(range(6))
        finally:
            rc, _ = self._stop(proc)
        assert rc == 0
        # ...and afterwards new requests are refused cleanly.
        with pytest.raises(ServeUnavailableError):
            connect(sock).ping()

    def test_stale_socket_is_cleaned_up_on_restart(self, tmp_path, capsys):
        import socket as _socket

        sock = str(tmp_path / "serve.sock")
        stale = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        stale.bind(sock)
        stale.close()  # dead listener: the file stays behind

        proc, sock = self._spawn(tmp_path)
        try:
            assert main(["serve-request", "--socket", sock, "--ping"]) == 0
            assert "pong" in capsys.readouterr().out
        finally:
            rc, _ = self._stop(proc)
        assert rc == 0

    def test_second_daemon_on_live_socket_is_refused(self, tmp_path, capsys):
        proc, sock = self._spawn(tmp_path)
        try:
            import pathlib
            import subprocess
            import sys as _sys

            repo_root = pathlib.Path(__file__).resolve().parents[1]
            second = subprocess.run(
                [_sys.executable, "-m", "repro", "serve", "--socket", sock],
                capture_output=True, text=True, timeout=60, cwd=repo_root,
                env={**os.environ, "PYTHONPATH": "src"},
            )
            assert second.returncode == 2
            assert "already serving" in second.stderr
            # The first daemon is unharmed.
            assert main(["serve-request", "--socket", sock, "--ping"]) == 0
            assert "pong" in capsys.readouterr().out
        finally:
            rc, _ = self._stop(proc)
        assert rc == 0

    def test_serve_request_without_daemon_is_a_clean_error(
        self, tmp_path, capsys
    ):
        sock = str(tmp_path / "nothing-here.sock")
        assert main(["serve-request", "--socket", sock, "--ping"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_request_rejects_ambiguous_request(self, capsys):
        assert main(["serve-request"]) == 2
        assert "exactly one" in capsys.readouterr().err
