"""Tests for the memory-system models."""

import pytest

from repro.errors import SimulationError
from repro.sim.memory import MemoryChannel, SharedMemoryServer


class TestMemoryChannel:
    def test_service_time(self):
        channel = MemoryChannel(bytes_per_cycle=4.0, latency_cycles=100.0)
        done = channel.request(0.0, 400.0, exposed_latency=0.0)
        assert done == pytest.approx(100.0)

    def test_exposed_latency_added(self):
        channel = MemoryChannel(4.0, 100.0)
        done = channel.request(0.0, 400.0, exposed_latency=0.5)
        assert done == pytest.approx(150.0)

    def test_back_to_back_requests_queue(self):
        channel = MemoryChannel(4.0, 0.0)
        first = channel.request(0.0, 400.0)
        second = channel.request(0.0, 400.0)
        assert second == pytest.approx(first + 100.0)

    def test_idle_gap_not_counted_busy(self):
        channel = MemoryChannel(4.0, 0.0)
        channel.request(0.0, 40.0)
        channel.request(1000.0, 40.0)
        assert channel.busy_cycles == pytest.approx(20.0)

    def test_utilization(self):
        channel = MemoryChannel(4.0, 0.0)
        channel.request(0.0, 400.0)
        assert channel.utilization(200.0) == pytest.approx(0.5)

    def test_reset(self):
        channel = MemoryChannel(4.0, 0.0)
        channel.request(0.0, 400.0)
        channel.reset()
        assert channel.busy_cycles == 0.0
        assert channel.request(0.0, 4.0) == pytest.approx(1.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(SimulationError):
            MemoryChannel(0.0, 10.0)

    def test_invalid_exposure(self):
        channel = MemoryChannel(4.0, 10.0)
        with pytest.raises(SimulationError):
            channel.request(0.0, 4.0, exposed_latency=1.5)


class TestSharedMemoryServer:
    def test_fifo_by_issue_time(self):
        server = SharedMemoryServer(4.0, 0.0)
        late = server.enqueue(50.0, 400.0)
        early = server.enqueue(0.0, 400.0)
        done = server.drain()
        assert done[early] == pytest.approx(100.0)
        assert done[late] == pytest.approx(200.0)

    def test_aggregate_bandwidth_shared(self):
        server = SharedMemoryServer(10.0, 0.0)
        tickets = [server.enqueue(0.0, 100.0) for _ in range(5)]
        done = server.drain()
        assert max(done[t] for t in tickets) == pytest.approx(50.0)

    def test_busy_accounting(self):
        server = SharedMemoryServer(10.0, 0.0)
        server.enqueue(0.0, 100.0)
        server.drain()
        assert server.busy_cycles == pytest.approx(10.0)
        assert server.utilization(20.0) == pytest.approx(0.5)
