"""Tier-1 gate: the recorded perf report obeys the harness's schema.

Runs :mod:`scripts.check_bench_schema` against the checked-in
``BENCH_perf.json`` (a malformed or stale entry would quietly corrupt
the opt-in regression gate) and pins the validator's own behaviour on
synthetic bad documents.
"""

import json
import pathlib
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "scripts"))

import check_bench_schema  # noqa: E402


def _valid_document():
    """A minimal well-formed report covering every known anchor."""
    sys.path.insert(0, str(_REPO_ROOT))
    from benchmarks.perf.run_bench import KNOWN_BENCHMARKS

    benchmarks = {}
    for name in KNOWN_BENCHMARKS:
        entry = {"after_s": 1e-4}
        for field in check_bench_schema.ANCHOR_REQUIRED_FIELDS.get(name, ()):
            entry[field] = 1.0
        benchmarks[name] = entry
    return {
        "schema_version": 1,
        "generated_unix": 1.0,
        "host": {"python": "3", "numpy": "2", "machine": "x"},
        "protocol": "test",
        "benchmarks": benchmarks,
    }


def test_checked_in_report_is_valid():
    report = _REPO_ROOT / "BENCH_perf.json"
    if not report.exists():
        pytest.skip("no BENCH_perf.json recorded in this checkout")
    assert check_bench_schema.validate_report(report) == []


def test_valid_synthetic_document_passes():
    assert check_bench_schema.validate_document(_valid_document()) == []


def test_missing_top_level_key_flagged():
    document = _valid_document()
    del document["protocol"]
    problems = check_bench_schema.validate_document(document)
    assert any("protocol" in p for p in problems)


def test_nan_timing_flagged():
    document = _valid_document()
    document["benchmarks"]["figure12_sweep"]["after_s"] = float("nan")
    problems = check_bench_schema.validate_document(document)
    assert any("non-finite" in p for p in problems)


def test_negative_timing_flagged():
    document = _valid_document()
    document["benchmarks"]["figure12_sweep"]["before_s"] = -1.0
    problems = check_bench_schema.validate_document(document)
    assert any("negative" in p for p in problems)


def test_zero_after_s_flagged():
    document = _valid_document()
    document["benchmarks"]["figure12_sweep"]["after_s"] = 0.0
    problems = check_bench_schema.validate_document(document)
    assert any("must be positive" in p for p in problems)


def test_unknown_and_missing_anchors_flagged():
    document = _valid_document()
    entry = document["benchmarks"].pop("figure12_sweep")
    document["benchmarks"]["renamed_anchor"] = entry
    problems = check_bench_schema.validate_document(document)
    assert any(p.startswith("renamed_anchor:") for p in problems)
    assert any(p.startswith("figure12_sweep:") for p in problems)


def test_non_numeric_field_flagged():
    document = _valid_document()
    document["benchmarks"]["figure12_sweep"]["after_s"] = "fast"
    problems = check_bench_schema.validate_document(document)
    assert any("must be a number" in p for p in problems)


def test_anchor_specific_required_field_flagged():
    document = _valid_document()
    del document["benchmarks"]["serve_coalesced_8x"]["coalesced_hit_rate"]
    problems = check_bench_schema.validate_document(document)
    assert any(
        "serve_coalesced_8x" in p and "coalesced_hit_rate" in p
        for p in problems
    )


def test_hit_rate_above_one_flagged():
    document = _valid_document()
    document["benchmarks"]["serve_coalesced_8x"]["coalesced_hit_rate"] = 1.5
    problems = check_bench_schema.validate_document(document)
    assert any("above 1.0" in p for p in problems)


def test_main_exit_codes(tmp_path):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_valid_document()))
    assert check_bench_schema.main([str(good)]) == 0
    bad = tmp_path / "bad.json"
    document = _valid_document()
    document["benchmarks"]["figure12_sweep"]["after_s"] = float("inf")
    bad.write_text(json.dumps(document))
    assert check_bench_schema.main([str(bad)]) == 1
    assert check_bench_schema.main([str(tmp_path / "absent.json")]) == 2
