"""Tests for the Bounding Region Diagram."""

import pytest

from repro.core.bord import Bord
from repro.core.machine import SPR_DDR, SPR_HBM
from repro.core.roofsurface import BoundingFactor
from repro.errors import ConfigurationError


class TestLines:
    def test_boundary_line_parameters(self):
        lines = Bord(SPR_HBM).lines
        assert lines.mem_vec_slope == pytest.approx(850e9 / 280e9)
        assert lines.mem_mtx_x == pytest.approx(8.75e9 / 850e9)
        assert lines.vec_mtx_y == pytest.approx(8.75e9 / 280e9)

    def test_classification_matches_lines(self):
        bord = Bord(SPR_HBM)
        lines = bord.lines
        # A point just below the MEM/VEC line (y < slope*x) is VEC-bound.
        x = lines.mem_mtx_x / 2
        assert bord.classify(x, lines.mem_vec_slope * x * 0.9) is (
            BoundingFactor.VECTOR
        )
        assert bord.classify(x, lines.mem_vec_slope * x * 1.1) is (
            BoundingFactor.MEMORY
        )


class TestRegions:
    def test_fractions_sum_to_one(self):
        fractions = Bord(SPR_HBM).region_fractions(0.012, 0.012, samples=50)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_ddr_grows_mem_region(self):
        window = (0.012, 0.012)
        hbm = Bord(SPR_HBM).region_fractions(*window, samples=60)
        ddr = Bord(SPR_DDR).region_fractions(*window, samples=60)
        assert ddr[BoundingFactor.MEMORY] > hbm[BoundingFactor.MEMORY]

    def test_ddr_mtx_region_vanishes_in_window(self):
        # Figure 5b: the MTX region is no longer visible for DDR.
        ddr = Bord(SPR_DDR).region_fractions(0.012, 0.012, samples=60)
        assert ddr[BoundingFactor.MATRIX] < 0.02

    def test_vos_scaling_shrinks_vec_region(self):
        base = Bord(SPR_HBM).region_fractions(0.012, 0.012, samples=60)
        scaled = Bord(SPR_HBM.with_vector_scale(4)).region_fractions(
            0.012, 0.012, samples=60
        )
        assert (
            scaled[BoundingFactor.VECTOR] < base[BoundingFactor.VECTOR]
        )

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            Bord(SPR_HBM).region_fractions(0.0, 0.01)


class TestAscii:
    def test_contains_all_regions_for_hbm(self):
        bord = Bord(SPR_HBM)
        art = bord.render_ascii([], 0.012, 0.012)
        assert "m" in art and "v" in art and "x" in art

    def test_points_plotted(self):
        bord = Bord(SPR_HBM)
        point = bord.place("Q8", 0.002, 0.002)
        art = bord.render_ascii([point], 0.012, 0.012)
        assert "*" in art

    def test_too_small_canvas(self):
        with pytest.raises(ConfigurationError):
            Bord(SPR_HBM).render_ascii([], 0.01, 0.01, width=4, height=2)

    def test_place_all(self):
        bord = Bord(SPR_HBM)
        points = bord.place_all([("a", 0.001, 0.001), ("b", 0.01, 0.01)])
        assert [p.label for p in points] == ["a", "b"]
