"""Equivalence tests for the window-blocked multi-core event engine.

The blocked engine (:func:`repro.sim.pipeline.simulate_multicore_event`)
must match the retained per-wave reference loop
(:func:`repro.sim.pipeline.simulate_multicore_event_reference`)
*exactly* — same bits, not just close — across window sizes, core
counts, demand-cap settings, and dec-cycle patterns. Also covers the
``WaveBlockScan`` partition-independence property the equivalence rides
on, and the degenerate-config guards of the result builder.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.memory import MemoryChannel
from repro.sim.pipeline import (
    InvocationMode,
    KernelTiming,
    _multicore_blocked_matrices,
    _multicore_reference_matrices,
    simulate_multicore_event,
    simulate_multicore_event_reference,
)
from repro.sim.system import ddr_system, hbm_system

_MATRIX_NAMES = ("mem_done", "dec_start", "dec_done", "done")


def _assert_engines_bit_identical(system, timing, tiles, cores):
    blocked = _multicore_blocked_matrices(system, timing, tiles, cores, full=True)
    reference = _multicore_reference_matrices(
        system, timing, tiles, cores, full=True
    )
    for got, want, name in zip(blocked[3:], reference[3:], _MATRIX_NAMES):
        np.testing.assert_array_equal(
            got, want,
            err_msg=(
                f"{name} diverged from the per-wave reference "
                f"(tiles={tiles}, cores={cores}, "
                f"window={timing.prefetch_window})"
            ),
        )
    fast = simulate_multicore_event(system, timing, tiles, cores)
    slow = simulate_multicore_event_reference(system, timing, tiles, cores)
    assert fast.makespan_cycles == slow.makespan_cycles
    assert fast.steady_interval_cycles == slow.steady_interval_cycles
    assert fast.utilization == slow.utilization


class TestBlockedEquivalence:
    #: Window sizes: degenerate (1), prime not dividing the tile count,
    #: the default, a window larger than the whole stream.
    @pytest.mark.parametrize("window", [1, 7, 8, 256])
    @pytest.mark.parametrize("cores", [1, 3, 56])
    def test_windows_and_core_counts(self, hbm, window, cores):
        timing = KernelTiming(
            bytes_per_tile=300.0, dec_cycles=20.0,
            prefetch_window=window, core_overhead_cycles=5.0,
        )
        _assert_engines_bit_identical(hbm, timing, 60, cores)

    @pytest.mark.parametrize("cap", [None, 2.5])
    @pytest.mark.parametrize("system_factory", [hbm_system, ddr_system])
    def test_demand_load_cap(self, system_factory, cap):
        timing = KernelTiming(
            bytes_per_tile=300.0, dec_cycles=20.0, demand_load_cap=cap,
        )
        _assert_engines_bit_identical(system_factory(), timing, 50, 8)

    def test_zero_dec_fast_path(self, hbm):
        # dec_cycles == 0 everywhere: tiles pass straight from memory to
        # the TMUL chain (the BF16 baseline shape).
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=0.0)
        _assert_engines_bit_identical(hbm, timing, 50, 8)

    def test_mixed_dec_subsequence(self, hbm, rng):
        # A mix of zero-dec and decompressed waves exercises the
        # subsequence chain through partial blocks.
        tiles = 75
        nbytes = rng.uniform(40.0, 900.0, size=tiles)
        dec = np.where(
            rng.random(tiles) < 0.3, 0.0, rng.uniform(1.0, 90.0, tiles)
        )
        timing = KernelTiming(
            bytes_per_tile=nbytes, dec_cycles=dec,
            prefetch_window=7, core_overhead_cycles=5.0,
        )
        _assert_engines_bit_identical(hbm, timing, tiles, 5)

    def test_unsorted_issue_rows_take_the_permutation_path(self, hbm, rng):
        # Per-tile byte/dec variation makes cores diverge enough that
        # some wave's issue row is out of order, covering the
        # argsort/put_along_axis branch.
        tiles = 64
        timing = KernelTiming(
            bytes_per_tile=rng.uniform(10.0, 2000.0, size=tiles),
            dec_cycles=rng.uniform(0.5, 200.0, size=tiles),
            prefetch_window=4,
        )
        _assert_engines_bit_identical(hbm, timing, tiles, 7)

    def test_force_reference_engine_routes_to_reference(self, hbm):
        from repro.sim import pipeline as pipeline_module

        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        pipeline_module.FORCE_REFERENCE_ENGINE = True
        try:
            forced = simulate_multicore_event(hbm, timing, 40)
        finally:
            pipeline_module.FORCE_REFERENCE_ENGINE = False
        assert forced == simulate_multicore_event_reference(hbm, timing, 40)


class TestDegenerateConfigs:
    def test_single_wave_rejected(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        with pytest.raises(ConfigurationError):
            simulate_multicore_event(hbm, timing, tiles_per_core=1)
        with pytest.raises(ConfigurationError):
            simulate_multicore_event_reference(hbm, timing, tiles_per_core=1)

    def test_two_waves_produce_finite_utilization(self, hbm):
        # Two waves used to divide by a zero steady window; now the
        # report is finite and in range.
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        result = simulate_multicore_event(hbm, timing, tiles_per_core=2)
        for value in (
            result.utilization.memory,
            result.utilization.matrix,
            result.utilization.decompress,
        ):
            assert np.isfinite(value)
            assert 0.0 <= value <= 1.0
        assert result.steady_interval_cycles > 0.0

    def test_zero_cores_rejected(self, hbm):
        timing = KernelTiming(bytes_per_tile=300.0, dec_cycles=20.0)
        with pytest.raises(ConfigurationError):
            simulate_multicore_event(hbm, timing, 40, cores=0)

    def test_non_overlapped_modes_still_rejected(self, hbm):
        timing = KernelTiming(
            bytes_per_tile=300.0, dec_cycles=20.0,
            mode=InvocationMode.TEPL,
        )
        with pytest.raises(ConfigurationError):
            simulate_multicore_event(hbm, timing, 40)
        with pytest.raises(ConfigurationError):
            simulate_multicore_event_reference(hbm, timing, 40)


class TestWaveBlockScan:
    def _streams(self, rng, waves=30, lanes=5):
        nbytes = rng.uniform(10.0, 900.0, size=waves)
        issue = rng.uniform(0.0, 50.0, size=(waves, lanes))
        issue.sort(axis=1)
        np.maximum.accumulate(issue, axis=0, out=issue)
        return nbytes, issue

    @pytest.mark.parametrize("block", [1, 3, 7, 30])
    def test_partition_independent_bits(self, rng, block):
        # Draining one wave at a time and draining whole blocks must
        # produce bit-identical completion times — the property the
        # engine equivalence rides on.
        nbytes, issue = self._streams(rng)
        whole = MemoryChannel(3.7, 220.0).wave_scan(nbytes, 5, 0.08)
        expected = whole.drain(issue)
        scan = MemoryChannel(3.7, 220.0).wave_scan(nbytes, 5, 0.08)
        got = np.vstack([
            scan.drain(issue[lo:lo + block])
            for lo in range(0, len(nbytes), block)
        ])
        np.testing.assert_array_equal(got, expected)

    def test_matches_request_many_closely(self, rng):
        # Same FIFO recurrence in a different relative coordinate
        # system: equal up to reassociation rounding.
        nbytes, issue = self._streams(rng, waves=20, lanes=3)
        scan_channel = MemoryChannel(2.9, 180.0)
        scan = scan_channel.wave_scan(nbytes, 3, 0.25)
        got = scan.drain(issue)
        batch = MemoryChannel(2.9, 180.0)
        want = np.vstack([
            batch.request_many(issue[w], np.full(3, nbytes[w]), 0.25)
            for w in range(len(nbytes))
        ])
        np.testing.assert_allclose(got, want, rtol=1e-12)
        assert scan_channel.busy_cycles == pytest.approx(
            batch.busy_cycles, rel=1e-12
        )

    def test_uniform_stream_matches_general_path(self):
        # The uniform-service fast path (exact multiples) must agree
        # with itself wave-by-wave; the general path with equal values
        # routes through the same branch, so force the general one by
        # perturbing a single wave.
        uniform = MemoryChannel(2.0, 50.0).wave_scan(np.full(8, 64.0), 4)
        nearly = np.full(8, 64.0)
        nearly[3] = 64.0000001
        general = MemoryChannel(2.0, 50.0).wave_scan(nearly, 4)
        issue = np.zeros((8, 4))
        np.testing.assert_allclose(
            uniform.drain(issue), general.drain(issue), rtol=1e-9
        )

    def test_validation(self):
        channel = MemoryChannel(1.0, 10.0)
        with pytest.raises(SimulationError):
            channel.wave_scan(np.array([1.0, -2.0]), 4)
        with pytest.raises(SimulationError):
            channel.wave_scan(np.ones(4), 0)
        with pytest.raises(SimulationError):
            channel.wave_scan(np.ones(4), 2, exposed_latency=1.5)
        scan = channel.wave_scan(np.ones(4), 2)
        with pytest.raises(SimulationError):
            scan.drain(np.zeros((1, 3)))  # wrong lane count
        assert scan.waves_remaining == 4
        scan.drain(np.zeros((4, 2)))
        assert scan.waves_remaining == 0
        with pytest.raises(SimulationError):
            scan.drain(np.zeros((1, 2)))  # past the end of the stream

    def test_continues_after_prior_channel_traffic(self):
        # A scan opened on a busy channel inherits its free time.
        channel = MemoryChannel(1.0, 0.0)
        channel.request(0.0, 10.0)
        scan = channel.wave_scan(np.array([5.0, 5.0]), 1)
        served = scan.drain(np.zeros((2, 1)))
        assert served[0, 0] == pytest.approx(15.0)
        assert served[1, 0] == pytest.approx(20.0)

    def test_interleaved_channel_traffic_rejected(self):
        # The scan's precomputed cumsum assumes exclusive channel use:
        # foreign requests between drains must error, not silently
        # mis-time both streams.
        channel = MemoryChannel(1.0, 0.0)
        scan = channel.wave_scan(np.array([5.0, 5.0]), 1)
        scan.drain(np.zeros((1, 1)))
        channel.request(0.0, 10.0)
        with pytest.raises(SimulationError):
            scan.drain(np.zeros((1, 1)))
