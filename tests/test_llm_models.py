"""Tests for the LLM model inventories."""

import pytest

from repro.errors import ConfigurationError
from repro.llm.models import FcLayer, llama2_70b, opt_66b


class TestLlama2:
    def test_fc_param_count(self):
        # ~68.7B FC weights (the 70B headline includes embeddings/norms).
        model = llama2_70b()
        assert model.fc_params == pytest.approx(68.7e9, rel=0.01)

    def test_block_structure(self):
        model = llama2_70b()
        names = [layer.name for layer in model.block_layers]
        assert names == [
            "q_proj", "k_proj", "v_proj", "o_proj",
            "gate_proj", "up_proj", "down_proj",
        ]

    def test_gqa_kv_projections(self):
        model = llama2_70b()
        k_proj = model.block_layers[1]
        assert k_proj.out_features == 1024  # 8 KV heads x 128

    def test_tiles_per_token(self):
        model = llama2_70b()
        assert model.fc_tiles == model.fc_params // 512

    def test_bf16_footprint(self):
        model = llama2_70b()
        assert model.fc_bytes_bf16() == model.fc_params * 2


class TestOpt:
    def test_fc_param_count(self):
        assert opt_66b().fc_params == pytest.approx(65.7e9, rel=0.01)

    def test_four_x_mlp(self):
        model = opt_66b()
        fc1 = next(l for l in model.block_layers if l.name == "fc1")
        assert fc1.out_features == 4 * model.hidden

    def test_smaller_than_llama(self):
        assert opt_66b().fc_params < llama2_70b().fc_params


class TestFcLayer:
    def test_params(self):
        layer = FcLayer("x", 64, 32)
        assert layer.params == 2048
        assert layer.tiles == 4 * 1

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            FcLayer("bad", 0, 32)
