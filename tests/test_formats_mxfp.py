"""Tests for the MXFP4 (E2M1 + E8M0) codec."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.mxfp import (
    E2M1_VALUES,
    MX_GROUP_SIZE,
    decode_shared_scale,
    e2m1_bits_to_float32,
    encode_shared_scale,
    float32_to_e2m1_bits,
    mx_group_dequantize,
    mx_group_quantize,
)


class TestE2M1:
    def test_value_table(self):
        expected = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]
        assert list(E2M1_VALUES[:8]) == expected

    def test_decode_all_codes(self):
        codes = np.arange(16, dtype=np.uint8)
        decoded = e2m1_bits_to_float32(codes)
        assert decoded[8] == 0.0  # negative zero
        assert decoded[15] == -6.0

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            e2m1_bits_to_float32(np.array([16], dtype=np.uint8))

    def test_exact_roundtrip(self):
        values = E2M1_VALUES[np.array([0, 1, 2, 3, 4, 5, 6, 7, 9, 15])]
        codes = float32_to_e2m1_bits(values)
        assert np.array_equal(e2m1_bits_to_float32(codes), values)

    def test_saturation_at_six(self):
        codes = float32_to_e2m1_bits(np.array([100.0, -100.0], dtype=np.float32))
        decoded = e2m1_bits_to_float32(codes)
        assert decoded[0] == 6.0 and decoded[1] == -6.0

    def test_nearest_rounding(self):
        # 2.4 is nearer to 2 than 3; 2.6 nearer to 3.
        codes = float32_to_e2m1_bits(np.array([2.4, 2.6], dtype=np.float32))
        decoded = e2m1_bits_to_float32(codes)
        assert decoded[0] == 2.0 and decoded[1] == 3.0

    def test_tie_to_even_code(self):
        # 2.5 is halfway between 2 (code 4, even) and 3 (code 5, odd).
        codes = float32_to_e2m1_bits(np.array([2.5], dtype=np.float32))
        assert e2m1_bits_to_float32(codes)[0] == 2.0

    def test_nan_rejected(self):
        with pytest.raises(FormatError):
            float32_to_e2m1_bits(np.array([np.nan], dtype=np.float32))


class TestSharedScale:
    def test_power_of_two_scales(self):
        bits = encode_shared_scale(np.array([4.0]))
        # amax 4.0 -> floor(log2) = 2, minus emax 2 -> exponent 0 -> 1.0.
        assert decode_shared_scale(bits)[0] == 1.0

    def test_zero_group_gets_smallest_scale(self):
        bits = encode_shared_scale(np.array([0.0]))
        assert decode_shared_scale(bits)[0] == np.float32(2.0**-127)

    def test_negative_amax_rejected(self):
        with pytest.raises(FormatError):
            encode_shared_scale(np.array([-1.0]))

    def test_scale_clamped(self):
        bits = encode_shared_scale(np.array([1e38]))
        assert decode_shared_scale(bits)[0] <= np.float32(2.0**127)


class TestGroupQuantize:
    def test_roundtrip_error_bounded(self, rng):
        values = rng.normal(size=4 * MX_GROUP_SIZE).astype(np.float32)
        codes, scales = mx_group_quantize(values)
        restored = mx_group_dequantize(codes, scales)
        # The E2M1 grid's widest gap is 2, and the OCP floor-based shared
        # exponent lets amax/scale reach just under 8, so elements in
        # (6, 8) x scale saturate to 6 x scale: error < 2 scale units.
        scale_values = decode_shared_scale(scales)
        bound = np.repeat(scale_values, MX_GROUP_SIZE) * 2.0 + 1e-7
        assert np.all(np.abs(restored - values) < bound)

    def test_amax_element_is_representable(self, rng):
        values = rng.normal(size=MX_GROUP_SIZE).astype(np.float32)
        codes, scales = mx_group_quantize(values)
        restored = mx_group_dequantize(codes, scales)
        peak = np.argmax(np.abs(values))
        # The group's largest element must not saturate badly.
        assert abs(restored[peak]) >= abs(values[peak]) * 0.66

    def test_group_count_validation(self):
        with pytest.raises(FormatError):
            mx_group_quantize(np.zeros(MX_GROUP_SIZE + 1, dtype=np.float32))

    def test_scale_count_validation(self):
        codes = np.zeros(MX_GROUP_SIZE, dtype=np.uint8)
        with pytest.raises(FormatError):
            mx_group_dequantize(codes, np.array([127, 127], dtype=np.uint8))

    def test_all_zero_group(self):
        values = np.zeros(MX_GROUP_SIZE, dtype=np.float32)
        codes, scales = mx_group_quantize(values)
        assert np.all(mx_group_dequantize(codes, scales) == 0.0)

    def test_2d_input_rejected(self):
        with pytest.raises(FormatError):
            mx_group_quantize(np.zeros((2, MX_GROUP_SIZE), dtype=np.float32))

    def test_multiple_groups_use_independent_scales(self):
        values = np.concatenate([
            np.full(MX_GROUP_SIZE, 100.0, dtype=np.float32),
            np.full(MX_GROUP_SIZE, 0.01, dtype=np.float32),
        ])
        codes, scales = mx_group_quantize(values)
        assert scales[0] != scales[1]
        restored = mx_group_dequantize(codes, scales)
        # Constant groups land exactly on representable values x scale.
        assert np.all(np.abs(restored - values) <= np.abs(values) * 0.35)
