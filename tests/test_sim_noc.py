"""Tests for the mesh NoC latency model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.noc import MeshNoc, spr_mesh
from repro.sim.system import hbm_system


class TestMeshGeometry:
    def test_average_hops_line_formula(self):
        # For a 1xN line, mean pairwise distance is (N^2-1)/(3N).
        mesh = MeshNoc(rows=1, cols=8)
        assert mesh.average_hops_to_random_tile() == pytest.approx(
            (64 - 1) / 24
        )

    def test_single_tile_zero_hops(self):
        mesh = MeshNoc(rows=1, cols=1)
        assert mesh.average_hops_to_random_tile() == 0.0
        assert mesh.average_hops_to_edge() == 0.0

    def test_bigger_mesh_longer_hops(self):
        small = spr_mesh(16)
        large = spr_mesh(56)
        assert (
            large.average_hops_to_random_tile()
            > small.average_hops_to_random_tile()
        )

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            MeshNoc(rows=0, cols=4)


class TestDerivedLatencies:
    def test_llc_latency_near_system_default(self):
        # The 56-core mesh should land near the flat 80-cycle default.
        mesh = spr_mesh(56)
        assert mesh.llc_latency() == pytest.approx(
            hbm_system().llc_latency, rel=0.2
        )

    def test_memory_latency_near_system_default(self):
        mesh = spr_mesh(56)
        assert mesh.memory_latency() == pytest.approx(
            hbm_system().memory_latency, rel=0.2
        )

    def test_memory_beyond_llc(self):
        mesh = spr_mesh(56)
        assert mesh.memory_latency() > mesh.llc_latency()

    def test_tiles_cover_cores(self):
        assert spr_mesh(56).tiles >= 56
