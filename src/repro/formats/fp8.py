"""FP8 E4M3 codec (the OCP "FN" variant: no infinities, max 448).

E4M3 is included because DECA's LUT-based dequantization supports *any*
8-bit-or-narrower format (Section 6.1: "by changing the values in its LUT
array ... without redesigning the hardware"). Encoding uses value-space
round-to-nearest with ties-to-even-code, implemented against the exact
256-entry decode table.
"""

from __future__ import annotations

import numpy as np

_EXP_BITS = 4
_MAN_BITS = 3
_BIAS = 7


def _build_decode_table() -> np.ndarray:
    """Exact float32 value of every E4M3FN code (NaN for 0x7F/0xFF)."""
    codes = np.arange(256, dtype=np.uint32)
    sign = np.where(codes & 0x80, -1.0, 1.0).astype(np.float64)
    exp = (codes >> _MAN_BITS) & 0xF
    man = codes & 0x7
    normal = (1.0 + man / 8.0) * np.power(2.0, exp.astype(np.float64) - _BIAS)
    subnormal = (man / 8.0) * 2.0 ** (1 - _BIAS)
    values = np.where(exp > 0, normal, subnormal) * sign
    # E4M3FN: exponent 15 with mantissa 7 is NaN; everything else is finite.
    values[(exp == 15) & (man == 7)] = np.nan
    return values.astype(np.float32)


_DECODE_TABLE = _build_decode_table()
# Positive finite codes sorted by value, used for nearest-value encoding.
_POS_CODES = np.array(
    sorted(
        (code for code in range(0x80) if not np.isnan(_DECODE_TABLE[code])),
        key=lambda code: float(_DECODE_TABLE[code]),
    ),
    dtype=np.uint8,
)
_POS_VALUES = _DECODE_TABLE[_POS_CODES].astype(np.float64)
_MAX_FINITE = float(_POS_VALUES[-1])  # 448.0


def e4m3_bits_to_float32(bits: np.ndarray) -> np.ndarray:
    """Decode E4M3FN bit patterns (uint8) into float32 values (exact)."""
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    return _DECODE_TABLE[bits]


def float32_to_e4m3_bits(values: np.ndarray) -> np.ndarray:
    """Encode float32 values into E4M3FN bit patterns (uint8).

    Magnitudes are rounded to the nearest representable value (ties to the
    even code) and saturated to +-448. NaN encodes to the NaN pattern.
    """
    values = np.ascontiguousarray(values, dtype=np.float32)
    flat = values.ravel().astype(np.float64)
    magnitude = np.abs(flat)
    clipped = np.minimum(magnitude, _MAX_FINITE)
    # Nearest neighbour among the sorted positive representable values.
    idx = np.searchsorted(_POS_VALUES, clipped)
    idx = np.clip(idx, 1, len(_POS_VALUES) - 1)
    lower = _POS_VALUES[idx - 1]
    upper = _POS_VALUES[idx]
    below = clipped - lower
    above = upper - clipped
    pick_upper = above < below
    tie = above == below
    # Ties go to the code with an even low bit, mirroring IEEE RNE.
    upper_even = (_POS_CODES[idx] & 1) == 0
    choice = np.where(pick_upper | (tie & upper_even), idx, idx - 1)
    codes = _POS_CODES[choice]
    codes = np.where(clipped == 0.0, np.uint8(0), codes)
    sign_bit = np.where(np.signbit(flat), np.uint8(0x80), np.uint8(0))
    encoded = (codes | sign_bit).astype(np.uint8)
    nan_mask = np.isnan(flat)
    if np.any(nan_mask):
        encoded[nan_mask] = np.uint8(0x7F) | sign_bit[nan_mask]
    return encoded.reshape(values.shape)
