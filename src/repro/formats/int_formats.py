"""Symmetric integer quantization codecs (INT8 and INT4).

The paper notes that DECA's Q4 performance "is also representative of INT4
compression schemes with scaling factors such as AWQ" (Section 8). These
codecs implement symmetric per-group integer quantization so that the
library can express such schemes end to end.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError

INT8_QMAX = 127
INT4_QMAX = 7


def _symmetric_encode(
    values: np.ndarray, group_size: int, qmax: int
) -> Tuple[np.ndarray, np.ndarray]:
    values = np.ascontiguousarray(values, dtype=np.float32)
    if values.ndim != 1:
        raise FormatError(f"expected a 1-D array, got shape {values.shape}")
    if group_size < 1:
        raise FormatError(f"group_size must be >= 1, got {group_size}")
    if values.size % group_size != 0:
        raise FormatError(
            f"array length {values.size} is not a multiple of group {group_size}"
        )
    groups = values.reshape(-1, group_size).astype(np.float64)
    amax = np.max(np.abs(groups), axis=1)
    scales = np.where(amax > 0, amax / qmax, 1.0)
    quantized = np.rint(groups / scales[:, None])
    quantized = np.clip(quantized, -qmax, qmax).astype(np.int8)
    return quantized.reshape(values.shape), scales.astype(np.float32)


def _symmetric_decode(
    codes: np.ndarray, scales: np.ndarray, group_size: int
) -> np.ndarray:
    codes = np.ascontiguousarray(codes, dtype=np.int8)
    if codes.size % group_size != 0:
        raise FormatError(
            f"code length {codes.size} is not a multiple of group {group_size}"
        )
    scales = np.ascontiguousarray(scales, dtype=np.float32)
    if scales.size != codes.size // group_size:
        raise FormatError(
            f"expected {codes.size // group_size} scales, got {scales.size}"
        )
    groups = codes.reshape(-1, group_size).astype(np.float32)
    return (groups * scales[:, None]).reshape(codes.shape)


def int8_encode(
    values: np.ndarray, group_size: int = 128
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize float32 values into symmetric INT8 codes plus group scales."""
    return _symmetric_encode(values, group_size, INT8_QMAX)


def int8_decode(codes: np.ndarray, scales: np.ndarray, group_size: int = 128) -> np.ndarray:
    """Reconstruct float32 values from INT8 codes and group scales."""
    return _symmetric_decode(codes, scales, group_size)


def int4_encode(
    values: np.ndarray, group_size: int = 32
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize float32 values into symmetric INT4 codes (in int8 storage)."""
    return _symmetric_encode(values, group_size, INT4_QMAX)


def int4_decode(codes: np.ndarray, scales: np.ndarray, group_size: int = 32) -> np.ndarray:
    """Reconstruct float32 values from INT4 codes and group scales."""
    codes = np.ascontiguousarray(codes, dtype=np.int8)
    if codes.size and (int(codes.max()) > INT4_QMAX or int(codes.min()) < -INT4_QMAX):
        raise FormatError("INT4 codes must lie in [-7, 7]")
    return _symmetric_decode(codes, scales, group_size)


def int4_pack(codes: np.ndarray) -> np.ndarray:
    """Pack INT4 codes (int8 in [-7, 7]) two per byte (low nibble first)."""
    codes = np.ascontiguousarray(codes, dtype=np.int8)
    if codes.size % 2 != 0:
        raise FormatError("INT4 packing requires an even number of codes")
    unsigned = (codes.astype(np.int16) & 0xF).astype(np.uint8)
    pairs = unsigned.reshape(-1, 2)
    return (pairs[:, 0] | (pairs[:, 1] << np.uint8(4))).astype(np.uint8)


def int4_unpack(packed: np.ndarray) -> np.ndarray:
    """Unpack bytes into INT4 codes (int8 in [-8, 7]), low nibble first."""
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    low = (packed & np.uint8(0xF)).astype(np.uint8)
    high = (packed >> np.uint8(4)).astype(np.uint8)
    nibbles = np.empty(packed.size * 2, dtype=np.uint8)
    nibbles[0::2] = low
    nibbles[1::2] = high
    signed = nibbles.astype(np.int8)
    signed[signed > 7] -= 16
    return signed
