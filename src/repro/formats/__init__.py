"""Bit-exact number-format codecs used by the compression pipeline.

The paper's compression schemes store weights in low-bit formats (BF16,
BF8/E5M2, E4M3, MXFP4, INT8, INT4) and DECA dequantizes them through a
look-up table of BF16 values (Section 6.1). This package provides:

* scalar/array codecs for each format (``bfloat``, ``fp8``, ``mxfp``,
  ``int_formats``),
* a :class:`~repro.formats.registry.QuantFormat` descriptor plus a registry
  keyed by name, and
* tensor-level quantization entry points (``quantize``).
"""

from repro.formats.bfloat import (
    bf16_bits_to_float32,
    bf16_round,
    e5m2_bits_to_float32,
    float32_to_bf16_bits,
    float32_to_e5m2_bits,
)
from repro.formats.fp8 import e4m3_bits_to_float32, float32_to_e4m3_bits
from repro.formats.mxfp import (
    E2M1_VALUES,
    decode_shared_scale,
    e2m1_bits_to_float32,
    encode_shared_scale,
    float32_to_e2m1_bits,
    mx_group_dequantize,
    mx_group_quantize,
)
from repro.formats.int_formats import (
    int4_decode,
    int4_encode,
    int8_decode,
    int8_encode,
)
from repro.formats.registry import (
    QuantFormat,
    available_formats,
    dequant_lut,
    get_format,
    register_format,
)
from repro.formats.quantize import QuantizedTensor, dequantize_tensor, quantize_tensor

__all__ = [
    "bf16_bits_to_float32",
    "bf16_round",
    "e5m2_bits_to_float32",
    "float32_to_bf16_bits",
    "float32_to_e5m2_bits",
    "e4m3_bits_to_float32",
    "float32_to_e4m3_bits",
    "E2M1_VALUES",
    "decode_shared_scale",
    "e2m1_bits_to_float32",
    "encode_shared_scale",
    "float32_to_e2m1_bits",
    "mx_group_dequantize",
    "mx_group_quantize",
    "int4_decode",
    "int4_encode",
    "int8_decode",
    "int8_encode",
    "QuantFormat",
    "available_formats",
    "dequant_lut",
    "get_format",
    "register_format",
    "QuantizedTensor",
    "dequantize_tensor",
    "quantize_tensor",
]
