"""Bit-exact BF16 and BF8 (FP8 E5M2) codecs.

BF16 is the upper 16 bits of an IEEE-754 float32 with round-to-nearest-even
(RNE). BF8, as used by libxsmm and the paper, is FP8 E5M2 — the upper 8 bits
of an IEEE-754 float16 with RNE. Both conversions are therefore pure bit
manipulations, implemented here on numpy arrays so they are fast and exactly
reproducible.
"""

from __future__ import annotations

import numpy as np

_F32_QNAN_BF16 = np.uint16(0x7FC0)
_F16_QNAN_E5M2 = np.uint8(0x7E)


def float32_to_bf16_bits(values: np.ndarray) -> np.ndarray:
    """Encode float32 values into BF16 bit patterns (uint16), using RNE.

    NaNs are canonicalised to the quiet-NaN pattern ``0x7FC0`` with the
    input's sign preserved.
    """
    values = np.ascontiguousarray(values, dtype=np.float32)
    bits = values.view(np.uint32)
    # Round-to-nearest-even on the truncated low 16 bits.
    rounding_bias = np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
    rounded = ((bits + rounding_bias) >> np.uint32(16)).astype(np.uint16)
    nan_mask = np.isnan(values)
    if np.any(nan_mask):
        sign = (bits[nan_mask] >> np.uint32(16)).astype(np.uint16) & np.uint16(0x8000)
        rounded[nan_mask] = sign | _F32_QNAN_BF16
    return rounded


def bf16_bits_to_float32(bits: np.ndarray) -> np.ndarray:
    """Decode BF16 bit patterns (uint16) into float32 values (exact)."""
    bits = np.ascontiguousarray(bits, dtype=np.uint16)
    widened = bits.astype(np.uint32) << np.uint32(16)
    return widened.view(np.float32)


def bf16_round(values: np.ndarray) -> np.ndarray:
    """Round float32 values to the nearest BF16-representable float32.

    This is the reference "store as BF16, read back" operation used to
    validate DECA's BF16 output tiles.
    """
    return bf16_bits_to_float32(float32_to_bf16_bits(values))


def float32_to_e5m2_bits(values: np.ndarray) -> np.ndarray:
    """Encode float32 values into FP8 E5M2 (BF8) bit patterns (uint8).

    The conversion goes through float16 (numpy's cast performs RNE) and then
    rounds the low 8 mantissa bits with RNE. Values above the float16 range
    become infinities, matching hardware truncation behaviour. NaNs are
    canonicalised to ``0x7E`` with sign preserved.
    """
    values = np.ascontiguousarray(values, dtype=np.float32)
    with np.errstate(over="ignore"):  # out-of-range floats become inf
        half_bits = values.astype(np.float16).view(np.uint16)
    rounding_bias = np.uint16(0x7F) + ((half_bits >> np.uint16(8)) & np.uint16(1))
    # Widen before adding so the carry out of bit 15 is not lost.
    rounded32 = (half_bits.astype(np.uint32) + rounding_bias) >> np.uint32(8)
    encoded = np.minimum(rounded32, np.uint32(0xFF)).astype(np.uint8)
    # Rounding a large-magnitude finite up past the exponent field yields the
    # infinity pattern, which is the desired saturate-to-inf behaviour. NaN
    # inputs need explicit canonicalisation.
    nan_mask = np.isnan(values)
    if np.any(nan_mask):
        sign = (half_bits[nan_mask] >> np.uint16(8)).astype(np.uint8) & np.uint8(0x80)
        encoded[nan_mask] = sign | _F16_QNAN_E5M2
    return encoded


def e5m2_bits_to_float32(bits: np.ndarray) -> np.ndarray:
    """Decode FP8 E5M2 (BF8) bit patterns (uint8) into float32 (exact)."""
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    half = (bits.astype(np.uint16) << np.uint16(8)).view(np.float16)
    return half.astype(np.float32)
