"""Quantization-format descriptors and the format registry.

A :class:`QuantFormat` captures everything the rest of the library needs to
know about a storage format: element bit-width, optional group quantization
(group size + scale bits), and the element codec. Formats with 8 bits or
fewer also expose a dequantization look-up table — exactly the table a DECA
PE's LUT array would be programmed with (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats import bfloat, fp8, mxfp

EncodeFn = Callable[[np.ndarray], np.ndarray]
DecodeFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class QuantFormat:
    """Describes one weight storage format.

    Attributes:
        name: Registry key, e.g. ``"bf8"``.
        bits: Bits per stored element (1-16).
        group_size: Elements sharing one scale factor, or ``None`` when the
            format has no group quantization.
        scale_bits: Bits per group scale factor (0 when ``group_size`` is
            ``None``).
        encode: Elementwise encoder float32 -> codes (uint8/uint16).
        decode: Elementwise decoder codes -> float32.
        description: One-line human description.
    """

    name: str
    bits: int
    group_size: Optional[int]
    scale_bits: int
    encode: EncodeFn
    decode: DecodeFn
    description: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise FormatError(f"element bits must be in [1, 16], got {self.bits}")
        if self.group_size is not None and self.group_size < 1:
            raise FormatError(f"group_size must be positive, got {self.group_size}")
        if (self.group_size is None) != (self.scale_bits == 0):
            raise FormatError(
                "scale_bits must be zero exactly when group_size is None"
            )

    @property
    def is_grouped(self) -> bool:
        """Whether this format uses group quantization with shared scales."""
        return self.group_size is not None

    @property
    def lut_supported(self) -> bool:
        """Whether a DECA LUT (<= 8-bit addressing) can dequantize elements."""
        return self.bits <= 8

    def bits_per_weight(self, include_scale: bool = True) -> float:
        """Average stored bits per weight, optionally amortising the scale."""
        extra = 0.0
        if include_scale and self.is_grouped:
            assert self.group_size is not None
            extra = self.scale_bits / self.group_size
        return self.bits + extra


_REGISTRY: Dict[str, QuantFormat] = {}


def register_format(fmt: QuantFormat) -> QuantFormat:
    """Add a format to the registry; re-registering a name is an error."""
    if fmt.name in _REGISTRY:
        raise FormatError(f"format {fmt.name!r} is already registered")
    _REGISTRY[fmt.name] = fmt
    return fmt


def get_format(name: str) -> QuantFormat:
    """Look up a registered format by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise FormatError(f"unknown format {name!r}; known formats: {known}")
    return _REGISTRY[key]


def available_formats() -> Tuple[str, ...]:
    """Names of every registered format, sorted alphabetically."""
    return tuple(sorted(_REGISTRY))


def dequant_lut(fmt: QuantFormat) -> np.ndarray:
    """Build the BF16-valued dequantization LUT for a <= 8-bit format.

    The returned array has ``2**fmt.bits`` float32 entries, each rounded to a
    BF16-representable value — exactly what would be loaded into a DECA LUT.
    """
    if not fmt.lut_supported:
        raise FormatError(
            f"format {fmt.name!r} has {fmt.bits} bits; LUTs address at most 8"
        )
    codes = np.arange(2**fmt.bits, dtype=np.uint8)
    return bfloat.bf16_round(fmt.decode(codes))


def _bf16_encode(values: np.ndarray) -> np.ndarray:
    return bfloat.float32_to_bf16_bits(values)


def _bf16_decode(codes: np.ndarray) -> np.ndarray:
    return bfloat.bf16_bits_to_float32(codes)


BF16 = register_format(
    QuantFormat(
        name="bf16",
        bits=16,
        group_size=None,
        scale_bits=0,
        encode=_bf16_encode,
        decode=_bf16_decode,
        description="bfloat16: upper half of float32 (uncompressed baseline)",
    )
)

BF8 = register_format(
    QuantFormat(
        name="bf8",
        bits=8,
        group_size=None,
        scale_bits=0,
        encode=bfloat.float32_to_e5m2_bits,
        decode=bfloat.e5m2_bits_to_float32,
        description="8-bit brain float (FP8 E5M2), the paper's BF8/Q8",
    )
)

E4M3 = register_format(
    QuantFormat(
        name="e4m3",
        bits=8,
        group_size=None,
        scale_bits=0,
        encode=fp8.float32_to_e4m3_bits,
        decode=fp8.e4m3_bits_to_float32,
        description="FP8 E4M3FN (saturating, no infinities)",
    )
)

MXFP4 = register_format(
    QuantFormat(
        name="mxfp4",
        bits=4,
        group_size=mxfp.MX_GROUP_SIZE,
        scale_bits=8,
        encode=mxfp.float32_to_e2m1_bits,
        decode=mxfp.e2m1_bits_to_float32,
        description="OCP MXFP4: E2M1 elements, shared E8M0 scale per 32",
    )
)


def _int4_nibble_encode(values: np.ndarray) -> np.ndarray:
    """Round scaled values to [-7, 7] stored as two's-complement nibbles."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    clipped = np.clip(np.rint(values), -7, 7).astype(np.int8)
    return (clipped.astype(np.int16) & 0xF).astype(np.uint8)


def _int4_nibble_decode(codes: np.ndarray) -> np.ndarray:
    """Decode two's-complement nibbles into float32 integers."""
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    signed = codes.astype(np.int8)
    signed = np.where(signed > 7, signed - 16, signed)
    return signed.astype(np.float32)


INT4G32 = register_format(
    QuantFormat(
        name="int4g32",
        bits=4,
        group_size=32,
        scale_bits=8,
        encode=_int4_nibble_encode,
        decode=_int4_nibble_decode,
        description=(
            "AWQ-style grouped INT4: symmetric nibbles with a shared "
            "power-of-two scale per 32 weights (Section 8: 'Q4 performance "
            "is also representative of INT4 compression schemes with "
            "scaling factors such as AWQ')"
        ),
    )
)
