"""MXFP4 codec: FP4 E2M1 elements with a shared E8M0 scale per 32 weights.

This follows the OCP Microscaling (MX) specification referenced by the paper
[7]: a group of 32 elements shares one power-of-two scale stored as a biased
8-bit exponent (E8M0), and each element is a 4-bit E2M1 float. The eight
positive representable E2M1 magnitudes are {0, 0.5, 1, 1.5, 2, 3, 4, 6}.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError

MX_GROUP_SIZE = 32
_E8M0_BIAS = 127
_E2M1_EMAX = 2  # exponent of the largest E2M1 binade (4.0 <= |x| <= 6.0)

# Exact decode values of the 16 E2M1 codes (sign bit is code bit 3).
E2M1_VALUES = np.array(
    [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0,
     -0.0, -0.5, -1.0, -1.5, -2.0, -3.0, -4.0, -6.0],
    dtype=np.float32,
)
_POS_MAGNITUDES = E2M1_VALUES[:8].astype(np.float64)


def e2m1_bits_to_float32(bits: np.ndarray) -> np.ndarray:
    """Decode E2M1 codes (uint8 in [0, 15]) into float32 values (exact)."""
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    if bits.size and int(bits.max()) > 15:
        raise FormatError("E2M1 codes must be 4-bit values in [0, 15]")
    return E2M1_VALUES[bits]


def float32_to_e2m1_bits(values: np.ndarray) -> np.ndarray:
    """Encode float32 values into E2M1 codes (uint8 in [0, 15]).

    Magnitudes round to the nearest representable value with ties away from
    the smaller code resolved to the even code (matching RNE); magnitudes
    above 6 saturate to 6. NaN raises :class:`FormatError` — MX element NaN
    is signalled through the scale, not the element codes.
    """
    values = np.ascontiguousarray(values, dtype=np.float32)
    if np.any(np.isnan(values)):
        raise FormatError("cannot encode NaN as an E2M1 element")
    flat = values.ravel().astype(np.float64)
    magnitude = np.minimum(np.abs(flat), _POS_MAGNITUDES[-1])
    idx = np.searchsorted(_POS_MAGNITUDES, magnitude)
    idx = np.clip(idx, 1, len(_POS_MAGNITUDES) - 1)
    lower = _POS_MAGNITUDES[idx - 1]
    upper = _POS_MAGNITUDES[idx]
    below = magnitude - lower
    above = upper - magnitude
    pick_upper = above < below
    tie = above == below
    upper_even = (idx & 1) == 0
    codes = np.where(pick_upper | (tie & upper_even), idx, idx - 1).astype(np.uint8)
    codes = np.where(magnitude == 0.0, np.uint8(0), codes)
    sign = np.where(np.signbit(flat), np.uint8(8), np.uint8(0))
    return (codes | sign).reshape(values.shape)


def encode_shared_scale(group_amax: np.ndarray) -> np.ndarray:
    """Compute the biased E8M0 shared exponent for each group's amax.

    Per the MX spec: ``shared_exp = floor(log2(amax)) - emax_elem`` clamped to
    the representable E8M0 range; an all-zero group gets the smallest scale.
    """
    group_amax = np.ascontiguousarray(group_amax, dtype=np.float64)
    if np.any(group_amax < 0):
        raise FormatError("group amax values must be non-negative")
    exponents = np.full(group_amax.shape, -_E8M0_BIAS, dtype=np.int32)
    positive = group_amax > 0
    exponents[positive] = (
        np.floor(np.log2(group_amax[positive])).astype(np.int32) - _E2M1_EMAX
    )
    exponents = np.clip(exponents, -_E8M0_BIAS, _E8M0_BIAS)
    return (exponents + _E8M0_BIAS).astype(np.uint8)


def decode_shared_scale(scale_bits: np.ndarray) -> np.ndarray:
    """Decode biased E8M0 exponents into float32 power-of-two scales."""
    scale_bits = np.ascontiguousarray(scale_bits, dtype=np.uint8)
    if scale_bits.size and int(scale_bits.max()) == 255:
        raise FormatError("E8M0 code 255 is NaN and is not produced here")
    exponents = scale_bits.astype(np.int32) - _E8M0_BIAS
    return np.power(2.0, exponents).astype(np.float32)


def mx_group_quantize(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize a 1-D float32 array into (E2M1 codes, E8M0 scale bits).

    The array length must be a multiple of :data:`MX_GROUP_SIZE`. Returns the
    element codes (same shape as the input) and one scale byte per group.
    """
    values = np.ascontiguousarray(values, dtype=np.float32)
    if values.ndim != 1:
        raise FormatError(f"expected a 1-D array, got shape {values.shape}")
    if values.size % MX_GROUP_SIZE != 0:
        raise FormatError(
            f"array length {values.size} is not a multiple of {MX_GROUP_SIZE}"
        )
    groups = values.reshape(-1, MX_GROUP_SIZE)
    amax = np.max(np.abs(groups), axis=1)
    scale_bits = encode_shared_scale(amax)
    scales = decode_shared_scale(scale_bits)
    scaled = groups / scales[:, None]
    codes = float32_to_e2m1_bits(scaled.astype(np.float32))
    return codes.reshape(values.shape), scale_bits


def mx_group_dequantize(codes: np.ndarray, scale_bits: np.ndarray) -> np.ndarray:
    """Reconstruct float32 values from E2M1 codes and E8M0 scale bits."""
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    if codes.size % MX_GROUP_SIZE != 0:
        raise FormatError(
            f"code array length {codes.size} is not a multiple of {MX_GROUP_SIZE}"
        )
    scales = decode_shared_scale(scale_bits)
    if scales.size != codes.size // MX_GROUP_SIZE:
        raise FormatError(
            f"expected {codes.size // MX_GROUP_SIZE} scales, got {scales.size}"
        )
    elements = e2m1_bits_to_float32(codes).reshape(-1, MX_GROUP_SIZE)
    return (elements * scales[:, None]).reshape(codes.shape).astype(np.float32)
