"""Tensor-level quantization built on the elementwise codecs.

This is the "offline" half of Figure 1 in the paper: a dense float tensor is
converted into storage codes plus (for grouped formats) shared scale bits.
Groups are formed along the last axis, matching how weight-matrix rows are
laid out in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.mxfp import decode_shared_scale, encode_shared_scale
from repro.formats.registry import QuantFormat, get_format


@dataclass(frozen=True)
class QuantizedTensor:
    """A quantized tensor: codes, optional scale bits, and bookkeeping.

    Attributes:
        format_name: Registry name of the storage format.
        codes: Element codes with the original tensor shape (uint8/uint16).
        scale_bits: For grouped formats, one uint8 scale code per group
            (groups along the flattened last axis); ``None`` otherwise.
        shape: Original tensor shape.
    """

    format_name: str
    codes: np.ndarray
    scale_bits: Optional[np.ndarray]
    shape: Tuple[int, ...]

    @property
    def fmt(self) -> QuantFormat:
        """The format descriptor for this tensor."""
        return get_format(self.format_name)

    def storage_bits(self) -> int:
        """Total bits occupied by codes plus scale factors."""
        fmt = self.fmt
        total = self.codes.size * fmt.bits
        if self.scale_bits is not None:
            total += self.scale_bits.size * fmt.scale_bits
        return total


def quantize_tensor(values: np.ndarray, format_name: str) -> QuantizedTensor:
    """Quantize a float tensor into the named storage format.

    For grouped formats the last axis must be a multiple of the group size.
    """
    fmt = get_format(format_name)
    values = np.ascontiguousarray(values, dtype=np.float32)
    if not fmt.is_grouped:
        codes = fmt.encode(values)
        return QuantizedTensor(fmt.name, codes, None, values.shape)
    assert fmt.group_size is not None
    if values.shape[-1] % fmt.group_size != 0:
        raise FormatError(
            f"last axis {values.shape[-1]} is not a multiple of "
            f"group size {fmt.group_size} for format {fmt.name!r}"
        )
    # Generic group quantization: a shared power-of-two (E8M0) scale per
    # group, elements encoded from the scaled values. This covers MXFP4
    # and AWQ-style INT4 alike.
    groups = values.reshape(-1, fmt.group_size)
    amax = np.max(np.abs(groups), axis=1)
    scale_bits = encode_shared_scale(amax)
    scales = decode_shared_scale(scale_bits)
    scaled = (groups / scales[:, None]).astype(np.float32)
    codes = fmt.encode(scaled).reshape(values.shape)
    return QuantizedTensor(fmt.name, codes, scale_bits, values.shape)


def dequantize_tensor(tensor: QuantizedTensor) -> np.ndarray:
    """Reconstruct float32 values from a :class:`QuantizedTensor`."""
    fmt = tensor.fmt
    if not fmt.is_grouped:
        return fmt.decode(tensor.codes)
    if tensor.scale_bits is None:
        raise FormatError(f"grouped format {fmt.name!r} requires scale bits")
    assert fmt.group_size is not None
    scales = decode_shared_scale(tensor.scale_bits)
    elements = fmt.decode(tensor.codes.ravel()).reshape(-1, fmt.group_size)
    flat = (elements * scales[:, None]).astype(np.float32)
    return flat.reshape(tensor.shape)
