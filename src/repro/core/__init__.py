"""The paper's analytical core: the Roof-Surface performance model.

This package implements Section 4 (the 3D Roof-Surface equation and its 2D
BORD projection), Section 6.2 (the binomial bubble model used to dimension
DECA), and the analytical design-space exploration of Section 9.2. It also
defines the machine descriptions and compression-scheme "signatures"
(AI_XM, AI_XV) every other subsystem consumes.
"""

from repro.core.machine import (
    MachineSpec,
    SPR_DDR,
    SPR_HBM,
    spr_ddr,
    spr_hbm,
)
from repro.core.schemes import (
    CompressionScheme,
    PAPER_SCHEMES,
    UNCOMPRESSED,
    parse_scheme,
)
from repro.core.roofline import (
    Roofline,
    RooflinePoint,
)
from repro.core.roofsurface import (
    BoundingFactor,
    RoofSurface,
    RoofSurfacePoint,
)
from repro.core.bord import Bord, BordLines
from repro.core.bubbles import (
    bubbles_per_vop_dense,
    bubbles_per_vop_sparse,
    deca_vops_per_tile,
    lut_reads_per_cycle,
)
from repro.core.dse import DesignPoint, DseResult, explore_deca_designs
from repro.core.gpu import a100_like, gpu_bord, h100_like

__all__ = [
    "MachineSpec",
    "SPR_DDR",
    "SPR_HBM",
    "spr_ddr",
    "spr_hbm",
    "CompressionScheme",
    "PAPER_SCHEMES",
    "UNCOMPRESSED",
    "parse_scheme",
    "Roofline",
    "RooflinePoint",
    "BoundingFactor",
    "RoofSurface",
    "RoofSurfacePoint",
    "Bord",
    "BordLines",
    "bubbles_per_vop_dense",
    "bubbles_per_vop_sparse",
    "deca_vops_per_tile",
    "lut_reads_per_cycle",
    "DesignPoint",
    "DseResult",
    "explore_deca_designs",
    "a100_like",
    "gpu_bord",
    "h100_like",
]
