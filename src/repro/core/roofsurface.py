"""The 3-D Roof-Surface performance model (Section 4.1).

The model bounds the tile-processing rate of a compressed GeMM by the
slowest of three resources::

    TPS   = min(MBW * AI_XM,  VOS * AI_XV,  MOS)          (Equation 1)
    FLOPS = 512 * N * TPS                                  (Equation 2)

A kernel's *signature* is the pair (AI_XM, AI_XV); together with the three
machine rates it fully determines the predicted performance and which
resource bounds it. :meth:`RoofSurface.surface_grid` samples the bounding
surface for 3-D visualisation (Figure 4a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.machine import MachineSpec
from repro.errors import ConfigurationError
from repro.units import flops_per_tile


class BoundingFactor(enum.Enum):
    """Which Roof-Surface term is the smallest for a kernel."""

    MEMORY = "MEM"
    VECTOR = "VEC"
    MATRIX = "MTX"


@dataclass(frozen=True)
class RoofSurfacePoint:
    """A kernel evaluated under the Roof-Surface model."""

    label: str
    aixm: float
    aixv: float
    tiles_per_second: float
    flops: float
    bound: BoundingFactor

    def summary(self) -> str:
        """One-line description used by the experiment reports."""
        return (
            f"{self.label}: AIXM={self.aixm:.5f} AIXV={self.aixv:.5f} "
            f"{self.flops / 1e12:.2f} TFLOPS [{self.bound.value}-bound]"
        )


class RoofSurface:
    """Roof-Surface model for one machine and batch size."""

    def __init__(self, machine: MachineSpec, batch_rows: int = 4) -> None:
        if batch_rows < 1:
            raise ConfigurationError(f"batch_rows must be >= 1, got {batch_rows}")
        self.machine = machine
        self.batch_rows = batch_rows

    # ------------------------------------------------------------------
    # The three resource rates (tiles/second).
    # ------------------------------------------------------------------
    def memory_rate(self, aixm: float) -> float:
        """MEM term: how fast memory can deliver compressed tiles."""
        if aixm <= 0:
            raise ConfigurationError("AI_XM must be positive")
        return self.machine.memory_bandwidth * aixm

    def vector_rate(self, aixv: float) -> float:
        """VEC term: how fast vector hardware can decompress tiles."""
        if aixv <= 0:
            raise ConfigurationError("AI_XV must be positive")
        return self.machine.vector_ops_per_second * aixv

    def matrix_rate(self) -> float:
        """MTX term: how fast matrix hardware can multiply tiles."""
        return self.machine.matrix_ops_per_second

    # ------------------------------------------------------------------
    # The Roof-Surface equation.
    # ------------------------------------------------------------------
    def tiles_per_second(self, aixm: float, aixv: float) -> float:
        """Equation 1: the bounding tile-processing rate."""
        return min(self.memory_rate(aixm), self.vector_rate(aixv), self.matrix_rate())

    def flops(self, aixm: float, aixv: float) -> float:
        """Equation 2: the attainable FMAs/second."""
        return flops_per_tile(self.batch_rows) * self.tiles_per_second(aixm, aixv)

    def bounding_factor(self, aixm: float, aixv: float) -> BoundingFactor:
        """Which resource bounds a kernel with this signature.

        Ties resolve in the order MEM, MTX, VEC: a kernel whose vector rate
        exactly matches the memory or matrix rate has "escaped" the
        VEC-bound region in the paper's sense (vector hardware is no longer
        the unique bottleneck), so ties never report VECTOR.
        """
        rates: Dict[BoundingFactor, float] = {
            BoundingFactor.MEMORY: self.memory_rate(aixm),
            BoundingFactor.MATRIX: self.matrix_rate(),
            BoundingFactor.VECTOR: self.vector_rate(aixv),
        }
        return min(rates, key=lambda factor: rates[factor])

    def evaluate(self, label: str, aixm: float, aixv: float) -> RoofSurfacePoint:
        """Evaluate a kernel signature into a full model point."""
        tps = self.tiles_per_second(aixm, aixv)
        return RoofSurfacePoint(
            label=label,
            aixm=aixm,
            aixv=aixv,
            tiles_per_second=tps,
            flops=flops_per_tile(self.batch_rows) * tps,
            bound=self.bounding_factor(aixm, aixv),
        )

    # ------------------------------------------------------------------
    # Surface sampling for Figure 4a.
    # ------------------------------------------------------------------
    def surface_grid(
        self,
        aixm_max: float,
        aixv_max: float,
        points: int = 33,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample the bounding surface z = FLOPS(x=AI_XM, y=AI_XV).

        Returns (X, Y, Z) mesh arrays suitable for 3-D plotting or textual
        inspection; Z is in FMAs/second.
        """
        if aixm_max <= 0 or aixv_max <= 0:
            raise ConfigurationError("surface extents must be positive")
        x = np.linspace(aixm_max / points, aixm_max, points)
        y = np.linspace(aixv_max / points, aixv_max, points)
        grid_x, grid_y = np.meshgrid(x, y)
        mem = self.machine.memory_bandwidth * grid_x
        vec = self.machine.vector_ops_per_second * grid_y
        mtx = np.full_like(mem, self.machine.matrix_ops_per_second)
        tps = np.minimum(np.minimum(mem, vec), mtx)
        return grid_x, grid_y, flops_per_tile(self.batch_rows) * tps
