"""Compression schemes: the kernel side of the Roof-Surface signature.

A scheme pairs a storage format with an unstructured-sparsity density. Its
matriX-to-Memory arithmetic intensity AI_XM = 1 / bytes-per-compressed-tile
(Section 4.1) depends only on the scheme; the matriX-to-Vector intensity
AI_XV additionally depends on *who* decompresses (software AVX recipes or a
DECA design) and therefore lives with the respective kernel models.

Naming follows the paper: ``Q16``/``Q8``/``Q4`` are BF16/BF8/MXFP4, and a
``_d%`` suffix gives the density (``Q8_20%`` = BF8 at 20% nonzeros).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.formats.registry import QuantFormat, get_format
from repro.sparse.compress import expected_tile_bytes
from repro.units import TILE_ELEMS

_FORMAT_BY_Q = {"q16": "bf16", "q8": "bf8", "q4": "mxfp4", "i4": "int4g32"}
_Q_BY_FORMAT = {value: key.upper() for key, value in _FORMAT_BY_Q.items()}
_SCHEME_RE = re.compile(r"^([QI]\d+)(?:_(\d+(?:\.\d+)?)%)?$", re.IGNORECASE)


@dataclass(frozen=True)
class CompressionScheme:
    """A (format, density) pair with its analytical memory signature."""

    format_name: str
    density: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.density <= 1.0:
            raise ConfigurationError(
                f"density must be in (0, 1], got {self.density}"
            )
        get_format(self.format_name)  # validate the name eagerly

    @property
    def fmt(self) -> QuantFormat:
        """The storage format descriptor."""
        return get_format(self.format_name)

    @property
    def is_sparse(self) -> bool:
        """Whether weights are stored in the bitmask sparse format."""
        return self.density < 1.0

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``Q8_20%`` or ``Q4``."""
        prefix = _Q_BY_FORMAT.get(self.format_name, self.format_name.upper())
        if not self.is_sparse:
            return prefix
        percent = self.density * 100
        text = f"{percent:.10g}"
        return f"{prefix}_{text}%"

    def bytes_per_tile(self) -> float:
        """Expected compressed bytes per 512-weight tile."""
        fmt = self.fmt
        return expected_tile_bytes(
            bits=fmt.bits,
            density=self.density,
            sparse=self.is_sparse,
            scale_bits_per_group=fmt.scale_bits,
            group_size=fmt.group_size or 0,
        )

    def aixm(self) -> float:
        """MatriX-to-Memory arithmetic intensity: tile ops per byte loaded."""
        return 1.0 / self.bytes_per_tile()

    def compression_factor(self) -> float:
        """Model-size reduction versus dense BF16 (2 bytes per weight)."""
        return (TILE_ELEMS * 2.0) / self.bytes_per_tile()

    def traditional_ai(self, batch_rows: int) -> float:
        """Classic roofline arithmetic intensity in FMAs per byte.

        One tile op performs ``512 * min(N, 16)`` FMAs; only weight bytes
        count, per the paper's small-batch assumption (Section 3.2).
        """
        effective = min(batch_rows, 16)
        return (512.0 * effective) / self.bytes_per_tile()


def parse_scheme(name: str) -> CompressionScheme:
    """Parse a paper-style scheme name such as ``"Q8_20%"`` or ``"Q4"``."""
    match = _SCHEME_RE.match(name.strip())
    if not match:
        raise ConfigurationError(
            f"cannot parse scheme name {name!r}; expected e.g. 'Q8_20%'"
        )
    q_name = match.group(1).lower()
    if q_name not in _FORMAT_BY_Q:
        raise ConfigurationError(
            f"unknown quantization {match.group(1)!r}; known: Q16, Q8, Q4, I4"
        )
    density = 1.0
    if match.group(2) is not None:
        density = float(match.group(2)) / 100.0
    return CompressionScheme(_FORMAT_BY_Q[q_name], density)


#: The uncompressed BF16 baseline every speedup in the paper is measured
#: against.
UNCOMPRESSED = CompressionScheme("bf16", 1.0)

#: The twelve compressed schemes of Figures 12/13, in increasing
#: compression-factor order as plotted by the paper.
PAPER_SCHEMES: Tuple[CompressionScheme, ...] = tuple(
    parse_scheme(name)
    for name in (
        "Q16_50%",
        "Q8",
        "Q16_30%",
        "Q8_50%",
        "Q4",
        "Q16_20%",
        "Q8_30%",
        "Q16_10%",
        "Q8_20%",
        "Q16_5%",
        "Q8_10%",
        "Q8_5%",
    )
)
