"""DECA pipeline-bubble analytics (Section 6.2).

A DECA vOp produces W output elements per cycle, but the dequantization
stage can only look up ``Lq`` elements per cycle (``Lq`` depends on the LUT
count L and the element bit-width). When a vOp's input *window* — the
number of nonzeros it must dequantize — exceeds ``Lq``, the vOp occupies
the stage for extra cycles, injecting bubbles.

For dense schemes the window is always W, so ``bpv = ceil(W / Lq) - 1``.
For unstructured sparsity with uniformly distributed nonzeros the window is
Binomial(W, d) and the expected bubbles follow the paper's formula::

    bpv = sum_{k=0}^{W/Lq - 1} k * [F((k+1) Lq; W, d) - F(k Lq; W, d)]

where F is the binomial CDF.
"""

from __future__ import annotations

import math

from scipy.stats import binom

from repro.errors import ConfigurationError
from repro.units import TILE_ELEMS


def lut_reads_per_cycle(lut_count: int, bits: int) -> int:
    """Lq: elements dequantizable per cycle for a given LUT array and width.

    Each of the L "big" LUTs holds 256 entries split into four 64-entry
    sub-LUTs with independent read ports (Section 6.1). 8-bit codes need the
    whole big LUT (Lq = L); 7-bit codes can pair sub-LUTs (Lq = 2L); 6-bit
    and narrower codes use sub-LUTs independently (Lq = 4L).
    """
    if lut_count < 1:
        raise ConfigurationError(f"lut_count must be >= 1, got {lut_count}")
    if not 1 <= bits <= 8:
        raise ConfigurationError(
            f"LUT dequantization supports 1-8 bit codes, got {bits}"
        )
    if bits == 8:
        return lut_count
    if bits == 7:
        return 2 * lut_count
    return 4 * lut_count


def bubbles_per_vop_dense(width: int, lq: int) -> int:
    """Bubbles per vOp when every window holds exactly W elements."""
    if width < 1 or lq < 1:
        raise ConfigurationError("width and lq must be >= 1")
    return math.ceil(width / lq) - 1


def bubbles_per_vop_sparse(width: int, lq: int, density: float) -> float:
    """Expected bubbles per vOp for uniform unstructured sparsity.

    Implements the binomial-CDF expectation of Section 6.2. ``density`` is
    the fraction of nonzeros d; the window size is Binomial(W, d).
    """
    if width < 1 or lq < 1:
        raise ConfigurationError("width and lq must be >= 1")
    if not 0.0 < density <= 1.0:
        raise ConfigurationError(f"density must be in (0, 1], got {density}")
    max_extra = math.ceil(width / lq) - 1
    if max_extra <= 0:
        return 0.0
    expected = 0.0
    for extra in range(max_extra + 1):
        upper = binom.cdf(min((extra + 1) * lq, width), width, density)
        lower = binom.cdf(extra * lq, width, density)
        expected += extra * (upper - lower)
    return float(expected)


def bubbles_per_vop(
    width: int, lq: int, density: float, sparse: bool
) -> float:
    """Bubbles per vOp for a scheme: exact when dense, expected when sparse.

    A *dense* scheme always presents full-W windows; a sparse one presents
    binomially distributed windows (smaller windows -> fewer bubbles, which
    is how DECA "naturally achieves higher throughput for sparse schemes").
    """
    if sparse:
        return bubbles_per_vop_sparse(width, lq, density)
    return float(bubbles_per_vop_dense(width, lq))


def deca_vops_per_tile(
    width: int,
    lut_count: int,
    bits: int,
    density: float,
    sparse: bool,
    dequant_needed: bool = True,
) -> float:
    """Effective vOp slots (vOps + bubbles) a DECA spends per 512-elem tile.

    ``#vOps = 512 / W`` chunks, each expanded by ``1 + bpv`` cycles. When a
    scheme needs no dequantization (16-bit storage bypasses the LUT stage)
    no bubbles can form regardless of L.
    """
    if width < 1 or TILE_ELEMS % width != 0:
        raise ConfigurationError(
            f"vOp width must divide {TILE_ELEMS}, got {width}"
        )
    vops = TILE_ELEMS / width
    if not dequant_needed:
        return vops
    lq = lut_reads_per_cycle(lut_count, bits)
    return vops * (1.0 + bubbles_per_vop(width, lq, density, sparse))


def deca_aixv(
    width: int,
    lut_count: int,
    bits: int,
    density: float,
    sparse: bool,
    dequant_needed: bool = True,
) -> float:
    """AI_XV of a DECA design for a scheme: 1 / (#vOps * (1 + bpv))."""
    return 1.0 / deca_vops_per_tile(
        width, lut_count, bits, density, sparse, dequant_needed
    )
