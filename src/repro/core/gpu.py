"""Roof-Surface analysis of GPU-style machines (Section 10).

The paper observes that GPUs have the same structural problem: Tensor
Cores only consume dense, well-formed tiles, so kernels like Flash-LLM
decompress with SIMT vector instructions and "put pressure on the L1/
shared memory of the SMs, preventing full TensorCore/HBM utilization".
The Roof-Surface model is machine-agnostic — it only needs the three
rates — so this module expresses an A100-like GPU in the same vocabulary
and shows that most compressed schemes are VEC-bound there too, which is
exactly the paper's argument for a DECA-style engine inside the TMA.

Unit conventions: one "vector op" processes 64 bytes (an AVX-512 op or
half a 32-lane warp op), so the AVX recipes of ``repro.kernels.avx``
transfer unchanged. One "matrix op" is a 512-weight tile operation.
"""

from __future__ import annotations

from repro.core.machine import MachineSpec
from repro.core.bord import Bord
from repro.units import gb_per_s, ghz

#: FMAs per 512-weight tile operation at N=16 (the dense GPU case).
_FMAS_PER_TILE = 512 * 16


def a100_like() -> MachineSpec:
    """An NVIDIA A100-like machine in Roof-Surface terms.

    108 SMs at 1.41 GHz; each SM's four schedulers sustain four 32-lane
    (128-byte) vector instructions per cycle = eight 64-byte vector ops,
    so VOS ~ 1.2 T vOps/s. Tensor cores deliver ~156 T BF16 FMA/s, i.e.
    ~305 G tile-ops/s (tmul_cycles ~ 0.5 per SM). HBM2e: ~2 TB/s.
    """
    sms = 108
    frequency = ghz(1.41)
    tensor_fmas = 156e12
    tile_rate = tensor_fmas / 512  # tile ops/second at one row... see note
    # MachineSpec derives MOS = f * cores / tmul_cycles.
    tmul_cycles = frequency * sms / tile_rate
    return MachineSpec(
        name="A100-like",
        cores=sms,
        frequency_hz=frequency,
        avx_units_per_core=8,
        memory_bandwidth=gb_per_s(2039),
        tmul_cycles=tmul_cycles,
    )


def h100_like() -> MachineSpec:
    """An H100-SXM-like machine: ~990 T BF16 FMA/s halved to FMA units,
    3.35 TB/s HBM3, 132 SMs at 1.83 GHz."""
    sms = 132
    frequency = ghz(1.83)
    tile_rate = (989e12 / 2) / 512
    return MachineSpec(
        name="H100-like",
        cores=sms,
        frequency_hz=frequency,
        avx_units_per_core=8,
        memory_bandwidth=gb_per_s(3350),
        tmul_cycles=frequency * sms / tile_rate,
    )


def gpu_bord(machine: MachineSpec | None = None) -> Bord:
    """The Bounding Region Diagram of a GPU-style machine."""
    return Bord(machine if machine is not None else a100_like())
