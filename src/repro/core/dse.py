"""Analytical design-space exploration over DECA's (W, L) parameters.

Section 9.2: "we pick the smallest {W, L} pair for which the predicted
performance saturates (i.e., all the kernels are predicted not to be
VEC-bound anymore)". This module reproduces that methodology: for each
candidate design it derives every scheme's DECA AI_XV from the bubble model,
classifies the schemes on the machine's BORD (with DECA's own VOS of one
vOp per cycle per PE), and ranks saturating designs by hardware cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bord import Bord
from repro.core.bubbles import deca_aixv
from repro.core.machine import MachineSpec
from repro.core.roofsurface import BoundingFactor
from repro.core.schemes import CompressionScheme
from repro.errors import ConfigurationError

#: Paper baseline and the Figure 16 comparison points.
BASELINE_DESIGN = (32, 8)
UNDERPROVISIONED_DESIGN = (8, 4)
OVERPROVISIONED_DESIGN = (64, 64)


def deca_machine_view(machine: MachineSpec) -> MachineSpec:
    """The machine as DECA sees it: one vOp per cycle per core's PE.

    DECA's VOS is ``frequency * cores * 1`` (Section 6.2), so the view is
    the same machine with a single "SIMD unit" per core.
    """
    return replace(
        machine, name=f"{machine.name}+DECA", avx_units_per_core=1
    )


def scheme_deca_signature(
    scheme: CompressionScheme, width: int, lut_count: int
) -> Tuple[float, float]:
    """(AI_XM, AI_XV) of a scheme decompressed by a (W, L) DECA design.

    16-bit storage bypasses the LUT stage entirely (nothing to dequantize),
    so it can never form dequantization bubbles.
    """
    fmt = scheme.fmt
    dequant_needed = fmt.bits <= 8
    aixv = deca_aixv(
        width=width,
        lut_count=lut_count,
        bits=min(fmt.bits, 8),
        density=scheme.density,
        sparse=scheme.is_sparse,
        dequant_needed=dequant_needed,
    )
    return scheme.aixm(), aixv


@dataclass(frozen=True)
class DesignPoint:
    """One candidate (W, L) DECA design evaluated against a scheme set."""

    width: int
    lut_count: int
    bounds: Dict[str, BoundingFactor]
    cost: float

    @property
    def vec_bound_schemes(self) -> Tuple[str, ...]:
        """Names of schemes this design leaves VEC-bound."""
        return tuple(
            name
            for name, bound in self.bounds.items()
            if bound is BoundingFactor.VECTOR
        )

    @property
    def saturates(self) -> bool:
        """Whether no scheme remains VEC-bound (the selection criterion)."""
        return not self.vec_bound_schemes


@dataclass(frozen=True)
class DseResult:
    """Outcome of a design-space exploration."""

    designs: Tuple[DesignPoint, ...]
    best: Optional[DesignPoint]

    def design(self, width: int, lut_count: int) -> DesignPoint:
        """Look up a specific evaluated design."""
        for point in self.designs:
            if point.width == width and point.lut_count == lut_count:
                return point
        raise ConfigurationError(
            f"design (W={width}, L={lut_count}) was not part of the sweep"
        )


def design_cost(width: int, lut_count: int) -> float:
    """Relative hardware cost of a (W, L) design.

    The dominant area contributors scale as: LUT storage linearly in L
    (256 BF16 entries per big LUT) and the expansion crossbar roughly
    quadratically in W (Section 8's area breakdown). The constants are
    relative weights, not mm^2 — only the ordering matters for the DSE.
    """
    lut_bytes = lut_count * 256 * 2
    crossbar = width * width
    registers = width * 8
    return lut_bytes + crossbar + registers


def candidate_designs(
    widths: Sequence[int] = (8, 16, 32, 64),
    lut_counts: Sequence[int] = (4, 8, 16, 32, 64),
) -> List[Tuple[int, int]]:
    """The ordered (W, L) candidate list the exploration sweeps.

    More big LUTs than output lanes is never useful: ``Lq >= W``
    already guarantees zero bubbles at ``L = W``, so those candidates
    are pruned up front.
    """
    return [
        (width, lut_count)
        for width in widths
        for lut_count in lut_counts
        if lut_count <= width
    ]


def evaluate_design(task) -> DesignPoint:
    """Classify every scheme on one (W, L) candidate (picklable task)."""
    deca_machine, width, lut_count, schemes, vec_tolerance = task
    bord = Bord(deca_machine)
    bounds: Dict[str, BoundingFactor] = {}
    for scheme in schemes:
        aixm, aixv = scheme_deca_signature(scheme, width, lut_count)
        bound = bord.classify(aixm, aixv)
        if bound is BoundingFactor.VECTOR:
            vec_rate = deca_machine.vector_ops_per_second * aixv
            others = min(
                deca_machine.memory_bandwidth * aixm,
                deca_machine.matrix_ops_per_second,
            )
            if vec_rate >= (1.0 - vec_tolerance) * others:
                bound = (
                    BoundingFactor.MEMORY
                    if deca_machine.memory_bandwidth * aixm <= others
                    else BoundingFactor.MATRIX
                )
        bounds[scheme.name] = bound
    return DesignPoint(
        width=width,
        lut_count=lut_count,
        bounds=bounds,
        cost=design_cost(width, lut_count),
    )


#: Backward-compatible alias (cells already pickled by reference, tests).
_evaluate_design = evaluate_design


def assemble_dse_result(designs: Sequence[DesignPoint]) -> DseResult:
    """Fold ordered design points into a :class:`DseResult`.

    The selection criterion of Section 9.2: among saturating designs
    (no scheme left VEC-bound), the cheapest wins.
    """
    designs = tuple(designs)
    saturating = [point for point in designs if point.saturates]
    best = min(saturating, key=lambda p: p.cost) if saturating else None
    return DseResult(designs=designs, best=best)


def explore_deca_designs(
    machine: MachineSpec,
    schemes: Sequence[CompressionScheme],
    widths: Sequence[int] = (8, 16, 32, 64),
    lut_counts: Sequence[int] = (4, 8, 16, 32, 64),
    vec_tolerance: float = 0.01,
    mapper: Optional[Callable[[Callable, list], list]] = None,
) -> DseResult:
    """Sweep (W, L) pairs and pick the cheapest saturating design.

    Mirrors the paper's procedure, which lands on {W=32, L=8} for the HBM
    SPR machine and the evaluated scheme set. A scheme only counts as
    VEC-bound when its vector rate trails the next-slowest resource by more
    than ``vec_tolerance`` — kernels sitting *on* the region boundary (e.g.
    Q8_5%, whose expected bubble rate at {32, 8} is a fraction of a percent)
    have escaped the vector bottleneck for dimensioning purposes.

    ``mapper`` applies :func:`evaluate_design` over the candidate list
    (default: the serial builtin ``map``). Candidates are independent,
    so callers above this layer can inject a parallel executor — the
    CLI's ``dse --jobs`` routes through the declarative sweep spec in
    :mod:`repro.experiments.dse`, which reuses this module's
    :func:`candidate_designs` / :func:`evaluate_design` /
    :func:`assemble_dse_result` pieces — without core depending upward
    on the experiments package. Any mapper must preserve input order;
    the result is identical either way.
    """
    if not schemes:
        raise ConfigurationError("the DSE needs at least one scheme")
    deca_machine = deca_machine_view(machine)
    tasks = [
        (deca_machine, width, lut_count, tuple(schemes), vec_tolerance)
        for width, lut_count in candidate_designs(widths, lut_counts)
    ]
    if mapper is None:
        designs: List[DesignPoint] = [evaluate_design(t) for t in tasks]
    else:
        designs = list(mapper(evaluate_design, tasks))
    return assemble_dse_result(designs)
