"""The Bounding Region Diagram — the 2-D projection of the Roof-Surface.

A BORD (Section 4.2, Figure 5) projects the roof-surface onto the
(AI_XM, AI_XV) plane. Three straight lines separate the plane into the
MEM-, VEC- and MTX-bound regions::

    y = (MBW / VOS) * x      MEM | VEC boundary
    x =  MOS / MBW           MEM | MTX boundary
    y =  MOS / VOS           VEC | MTX boundary

The BORD carries no FLOPS information but instantly identifies which
resource bounds each plotted kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.machine import MachineSpec
from repro.core.roofsurface import BoundingFactor, RoofSurface
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BordLines:
    """The three boundary-line parameters of a BORD."""

    mem_vec_slope: float  # y = slope * x separates MEM (above) from VEC
    mem_mtx_x: float  # vertical line x = MOS / MBW
    vec_mtx_y: float  # horizontal line y = MOS / VOS


@dataclass(frozen=True)
class BordPoint:
    """A kernel placed on a BORD."""

    label: str
    aixm: float
    aixv: float
    bound: BoundingFactor


class Bord:
    """Bounding Region Diagram for one machine."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine
        # The regions do not depend on N; batch_rows=1 is arbitrary here.
        self._surface = RoofSurface(machine, batch_rows=1)

    @property
    def lines(self) -> BordLines:
        """The boundary lines of Figure 5."""
        m = self.machine
        return BordLines(
            mem_vec_slope=m.memory_bandwidth / m.vector_ops_per_second,
            mem_mtx_x=m.matrix_ops_per_second / m.memory_bandwidth,
            vec_mtx_y=m.matrix_ops_per_second / m.vector_ops_per_second,
        )

    def classify(self, aixm: float, aixv: float) -> BoundingFactor:
        """Region of a kernel signature."""
        return self._surface.bounding_factor(aixm, aixv)

    def place(self, label: str, aixm: float, aixv: float) -> BordPoint:
        """Place a labelled kernel on the diagram."""
        return BordPoint(label, aixm, aixv, self.classify(aixm, aixv))

    def place_all(
        self, signatures: Sequence[Tuple[str, float, float]]
    ) -> List[BordPoint]:
        """Place several (label, aixm, aixv) kernels at once."""
        return [self.place(label, x, y) for label, x, y in signatures]

    def region_fractions(
        self, aixm_max: float, aixv_max: float, samples: int = 200
    ) -> Dict[BoundingFactor, float]:
        """Fraction of the plot window covered by each bounding region.

        This quantifies statements like "the MEM-bound region increases"
        (Figure 5b) and "the VEC-bound area decreases" (Figure 6).
        """
        if aixm_max <= 0 or aixv_max <= 0:
            raise ConfigurationError("window extents must be positive")
        counts = {factor: 0 for factor in BoundingFactor}
        step_x = aixm_max / samples
        step_y = aixv_max / samples
        for i in range(samples):
            x = (i + 0.5) * step_x
            for j in range(samples):
                y = (j + 0.5) * step_y
                counts[self.classify(x, y)] += 1
        total = samples * samples
        return {factor: counts[factor] / total for factor in BoundingFactor}

    def render_ascii(
        self,
        points: Sequence[BordPoint],
        aixm_max: float,
        aixv_max: float,
        width: int = 64,
        height: int = 20,
    ) -> str:
        """Text rendering of the BORD: region letters plus '*' kernels.

        'm' marks MEM-bound cells, 'v' VEC-bound, 'x' MTX-bound; plotted
        kernels overwrite their cell with '*'. The y axis grows upward.
        """
        if width < 8 or height < 4:
            raise ConfigurationError("ascii canvas too small to be readable")
        letters = {
            BoundingFactor.MEMORY: "m",
            BoundingFactor.VECTOR: "v",
            BoundingFactor.MATRIX: "x",
        }
        rows: List[List[str]] = []
        for j in range(height):
            y = (height - j - 0.5) / height * aixv_max
            row = []
            for i in range(width):
                x = (i + 0.5) / width * aixm_max
                row.append(letters[self.classify(x, y)])
            rows.append(row)
        for point in points:
            col = int(point.aixm / aixm_max * width)
            row = height - 1 - int(point.aixv / aixv_max * height)
            if 0 <= row < height and 0 <= col < width:
                rows[row][col] = "*"
        header = (
            f"BORD {self.machine.name}: x=AI_XM (max {aixm_max:g}), "
            f"y=AI_XV (max {aixv_max:g})"
        )
        return "\n".join([header] + ["".join(row) for row in rows])
