"""Machine descriptions consumed by the analytical models.

A :class:`MachineSpec` carries the three architecture-dependent rates of the
Roof-Surface equation (Section 4.1):

* ``memory_bandwidth`` — MBW, bytes/second;
* ``vector_ops_per_second`` — VOS = frequency x cores x SIMD units/core;
* ``matrix_ops_per_second`` — MOS = frequency x cores / 16 (one TMUL per
  core, 16 cycles per tile multiplication).

The presets mirror the paper's evaluation platform: a 56-core Sapphire
Rapids server at 2.5 GHz with either ~260 GB/s DDR5 or ~850 GB/s HBM
(Section 8).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import TMUL_CYCLES, gb_per_s, ghz


@dataclass(frozen=True)
class MachineSpec:
    """An SPR-like CPU platform for the analytical models.

    Attributes:
        name: Human-readable identifier.
        cores: Active core count.
        frequency_hz: Core (and DECA PE) clock.
        avx_units_per_core: SIMD execution units per core.
        memory_bandwidth: Achievable memory bandwidth in bytes/second.
        tmul_cycles: Cycles per matrix-engine tile multiplication (may
            be fractional for engines that retire several tile operations
            per cycle, e.g. GPU tensor cores).
    """

    name: str
    cores: int
    frequency_hz: float
    avx_units_per_core: int
    memory_bandwidth: float
    tmul_cycles: float = TMUL_CYCLES

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.avx_units_per_core < 1:
            raise ConfigurationError("need at least one AVX unit per core")
        if self.memory_bandwidth <= 0:
            raise ConfigurationError("memory bandwidth must be positive")
        if self.tmul_cycles <= 0:
            raise ConfigurationError("tmul_cycles must be positive")

    @property
    def vector_ops_per_second(self) -> float:
        """VOS: vector operations per second across all cores."""
        return self.frequency_hz * self.cores * self.avx_units_per_core

    @property
    def matrix_ops_per_second(self) -> float:
        """MOS: TMUL tile operations per second across all cores."""
        return self.frequency_hz * self.cores / self.tmul_cycles

    def with_cores(self, cores: int) -> "MachineSpec":
        """A copy of this machine with a different active core count."""
        return replace(self, name=f"{self.name}-{cores}c", cores=cores)

    def with_vector_scale(self, factor: float) -> "MachineSpec":
        """A copy with the per-core SIMD unit count scaled by ``factor``.

        Used to evaluate the "what if we scaled VOS by 4x" question of
        Figure 6 and Section 7.
        """
        scaled = int(round(self.avx_units_per_core * factor))
        if scaled < 1:
            raise ConfigurationError(
                f"vector scale {factor} would leave no SIMD units"
            )
        return replace(
            self,
            name=f"{self.name}-vos{factor:g}x",
            avx_units_per_core=scaled,
        )

    def with_bandwidth(self, bytes_per_second: float) -> "MachineSpec":
        """A copy with a different memory bandwidth."""
        return replace(self, memory_bandwidth=bytes_per_second)


def spr_hbm(cores: int = 56) -> MachineSpec:
    """The paper's HBM-equipped SPR: ~850 GB/s achievable bandwidth."""
    return MachineSpec(
        name="SPR-HBM",
        cores=cores,
        frequency_hz=ghz(2.5),
        avx_units_per_core=2,
        memory_bandwidth=gb_per_s(850),
    )


def spr_ddr(cores: int = 56) -> MachineSpec:
    """The paper's DDR5-equipped SPR: ~260 GB/s achievable bandwidth."""
    return MachineSpec(
        name="SPR-DDR",
        cores=cores,
        frequency_hz=ghz(2.5),
        avx_units_per_core=2,
        memory_bandwidth=gb_per_s(260),
    )


SPR_HBM = spr_hbm()
SPR_DDR = spr_ddr()
