"""The traditional 2-D roofline model (Section 3.2, Figure 3).

The roofline bounds FLOPS by ``min(MBW * AI, peak_flops)`` where AI is the
classic FLOPs-per-byte arithmetic intensity. The paper uses it as the
"Optimal" reference that software decompression fails to reach, motivating
the 3-D Roof-Surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.machine import MachineSpec
from repro.core.schemes import CompressionScheme
from repro.errors import ConfigurationError
from repro.units import flops_per_tile


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel plotted on a roofline: its AI and an observed FLOPS."""

    label: str
    arithmetic_intensity: float
    observed_flops: float
    optimal_flops: float

    @property
    def efficiency(self) -> float:
        """Observed / optimal — 1.0 means the kernel sits on the roofline."""
        return self.observed_flops / self.optimal_flops


class Roofline:
    """A 2-D roofline for a machine and batch size.

    Peak FLOPS is the TMUL limit (512 * min(N, 16) FMAs per tile op times
    MOS), and the bandwidth slope is MBW * AI.
    """

    def __init__(self, machine: MachineSpec, batch_rows: int = 4) -> None:
        if batch_rows < 1:
            raise ConfigurationError(f"batch_rows must be >= 1, got {batch_rows}")
        self.machine = machine
        self.batch_rows = batch_rows

    @property
    def peak_flops(self) -> float:
        """Compute-bound ceiling in FMAs/second."""
        return flops_per_tile(self.batch_rows) * self.machine.matrix_ops_per_second

    @property
    def ridge_intensity(self) -> float:
        """AI at which the bandwidth slope meets the compute ceiling."""
        return self.peak_flops / self.machine.memory_bandwidth

    def attainable_flops(self, arithmetic_intensity: float) -> float:
        """Roofline bound for a kernel with the given FLOPs-per-byte AI."""
        if arithmetic_intensity <= 0:
            raise ConfigurationError("arithmetic intensity must be positive")
        return min(
            self.machine.memory_bandwidth * arithmetic_intensity, self.peak_flops
        )

    def is_memory_bound(self, arithmetic_intensity: float) -> bool:
        """Whether the kernel sits left of the ridge point."""
        return arithmetic_intensity < self.ridge_intensity

    def scheme_point(
        self, scheme: CompressionScheme, observed_flops: float
    ) -> RooflinePoint:
        """Build the (observed, optimal) point pair of Figure 3."""
        ai = scheme.traditional_ai(self.batch_rows)
        return RooflinePoint(
            label=scheme.name,
            arithmetic_intensity=ai,
            observed_flops=observed_flops,
            optimal_flops=self.attainable_flops(ai),
        )

    def series(
        self, intensities: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """Sample the roofline curve at the given AIs (for plotting)."""
        return [(ai, self.attainable_flops(ai)) for ai in intensities]

    def default_intensity_grid(self, points: int = 64) -> np.ndarray:
        """A log-spaced AI grid spanning well past the ridge point."""
        lo = self.ridge_intensity / 64.0
        hi = self.ridge_intensity * 8.0
        return np.geomspace(lo, hi, points)
