"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [NAME ...]`` — regenerate paper tables/figures (default:
  all of them) and print the comparison tables.
* ``simulate`` — simulate compressed GeMM kernels and report interval,
  TFLOPS, utilisation, and optionally an ASCII Gantt window.
* ``llm`` — next-token latency for Llama2-70B or OPT-66B.
* ``dse`` — the (W, L) design-space exploration of Section 9.2.
* ``area`` — the DECA area model for a given (W, L).
* ``formats`` — list the registered quantization formats.

Repeated simulations are served from the process-wide LRU cache
(``repro.sim.cache``), and the sweep-shaped commands (``experiments``,
``simulate`` with several schemes, ``dse``) accept ``--jobs N`` to fan
independent configurations out across a persistent pool of forked
worker processes whose caches are merged on join (``--jobs 0`` = one
worker per CPU; the pool is reused by every sweep in the invocation).
The same commands accept ``--cache-dir PATH`` (or the
``REPRO_CACHE_DIR`` environment variable) to spill simulation results
to a disk-backed cache that survives process restarts: a re-run of the
same sweep against a warm directory replays from disk instead of
simulating. An unusable directory degrades to memory-only with a
warning.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from typing import List, Optional

from repro.core.dse import explore_deca_designs
from repro.core.schemes import PAPER_SCHEMES, UNCOMPRESSED, parse_scheme
from repro.deca.area import deca_area
from repro.deca.config import DecaConfig
from repro.deca.integration import deca_kernel_timing
from repro.formats.registry import available_formats, get_format
from repro.kernels.libxsmm import (
    software_kernel_timing,
    uncompressed_kernel_timing,
)
from repro.llm.inference import EngineKind, next_token_latency
from repro.llm.models import llama2_70b, opt_66b
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import SimSystem, ddr_system, hbm_system
from repro.sim.trace import render_gantt

_EXPERIMENTS = (
    "table1", "figure3", "figure4", "figure5", "figure6", "figure12",
    "figure13", "figure14", "figure15", "figure16", "figure17",
    "table3", "table4", "area", "batch_sweep", "sensitivity",
)


def _system_for(name: str, cores: int) -> SimSystem:
    if name == "hbm":
        return hbm_system(cores)
    return ddr_system(cores)


def _configure_cache(args: argparse.Namespace) -> None:
    """Attach the disk cache tier named by ``--cache-dir``/env, if any.

    Runs before any sweep (and before the worker pool forks, so workers
    inherit the configuration). An unusable directory prints a note and
    leaves the run memory-only rather than failing it.
    """
    from repro.sim.cache import configure_simulation_cache_dir

    path = getattr(args, "cache_dir", None) or os.environ.get(
        "REPRO_CACHE_DIR"
    )
    if not path:
        # Unset means memory-only — including for programmatic callers
        # invoking main() repeatedly in one process after an earlier
        # invocation attached a tier.
        configure_simulation_cache_dir(None)
        return
    with warnings.catch_warnings():
        # open_disk_cache warns for library callers; the CLI prints its
        # own single-line note instead.
        warnings.simplefilter("ignore", RuntimeWarning)
        disk = configure_simulation_cache_dir(path)
    if disk is None:
        print(
            f"warning: cache dir {path!r} is not usable; running with "
            "the in-memory cache only",
            file=sys.stderr,
        )


def _cmd_experiments(args: argparse.Namespace) -> int:
    import inspect

    from repro import experiments as exp

    _configure_cache(args)
    names = args.names or list(_EXPERIMENTS)
    for name in names:
        if name not in _EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(_EXPERIMENTS)}", file=sys.stderr)
            return 2
        module = getattr(exp, name)
        # Sweep-shaped harnesses accept a worker count; the rest run as-is.
        kwargs = {}
        if "jobs" in inspect.signature(module.run).parameters:
            kwargs["jobs"] = args.jobs
        result = module.run(**kwargs)
        if isinstance(result, tuple):
            for part in result:
                print(part.format_table())
                print()
        else:
            print(result.format_table())
            print()
    return 0


def _simulate_report(task) -> str:
    """Simulate one scheme and render its report block (picklable task)."""
    system, scheme, engine, width, luts, batch, gantt = task
    if engine == "software":
        if scheme.name == UNCOMPRESSED.name:
            timing = uncompressed_kernel_timing(system)
        else:
            timing = software_kernel_timing(system, scheme)
    else:
        timing = deca_kernel_timing(
            system, scheme, config=DecaConfig(width=width, lut_count=luts),
        )
    result = simulate_tile_stream(system, timing)
    pct = result.utilization.as_percentages()
    lines = [
        f"{scheme.name} on {system.machine.name} with {engine}:",
        f"  interval: {result.steady_interval_cycles:.1f} cycles/tile",
        f"  rate:     {result.tiles_per_second / 1e9:.2f} G tiles/s",
        f"  FLOPS:    {result.flops(batch) / 1e12:.2f} TFLOPS "
        f"(N={batch})",
        f"  util:     MEM {pct['MEM']}%  TMUL {pct['TMUL']}%  "
        f"DEC {pct['DEC']}%  (bottleneck: "
        f"{result.utilization.bottleneck})",
    ]
    if gantt:
        lines.append("")
        lines.append(render_gantt(result, first_tile=40, tiles=gantt))
    return "\n".join(lines)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import parallel_map

    _configure_cache(args)
    system = _system_for(args.memory, args.cores)
    names = [name.strip() for name in args.scheme.split(",") if name.strip()]
    if not names:
        print(f"--scheme needs at least one scheme name, got "
              f"{args.scheme!r}", file=sys.stderr)
        return 2
    schemes = [parse_scheme(name) for name in names]
    tasks = [
        (system, scheme, args.engine, args.width, args.luts, args.batch,
         args.gantt)
        for scheme in schemes
    ]
    reports = parallel_map(_simulate_report, tasks, jobs=args.jobs)
    print("\n\n".join(reports))
    return 0


def _cmd_llm(args: argparse.Namespace) -> int:
    system = _system_for(args.memory, args.cores)
    model = llama2_70b() if args.model == "llama2-70b" else opt_66b()
    scheme = parse_scheme(args.scheme)
    engine = {
        "software": EngineKind.SOFTWARE,
        "deca": EngineKind.DECA,
        "uncompressed": EngineKind.UNCOMPRESSED,
    }[args.engine]
    if engine is EngineKind.UNCOMPRESSED:
        scheme = UNCOMPRESSED
    breakdown = next_token_latency(
        model, system, scheme, engine,
        batch=args.batch, input_tokens=args.tokens,
    )
    print(f"{model.name} / {breakdown.scheme_name} / {args.engine} "
          f"(batch {args.batch}, {args.tokens} input tokens, "
          f"{system.machine.name}):")
    print(f"  next-token latency: {breakdown.total_ms:.1f} ms")
    print(f"  FC GeMMs: {breakdown.gemm_seconds * 1e3:.1f} ms "
          f"({breakdown.gemm_fraction:.0%})")
    print(f"  non-GeMM: {breakdown.non_gemm_seconds * 1e3:.1f} ms")
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    import functools

    from repro.experiments.parallel import parallel_map

    _configure_cache(args)
    machine = _system_for(args.memory, args.cores).machine
    result = explore_deca_designs(
        machine, PAPER_SCHEMES,
        mapper=functools.partial(parallel_map, jobs=args.jobs),
    )
    for point in result.designs:
        status = "saturates" if point.saturates else (
            f"VEC-bound: {', '.join(point.vec_bound_schemes)}"
        )
        print(f"W={point.width:3d} L={point.lut_count:3d} "
              f"cost={point.cost:8.0f}  {status}")
    if result.best is not None:
        print(f"best: W={result.best.width}, L={result.best.lut_count}")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    breakdown = deca_area(
        DecaConfig(width=args.width, lut_count=args.luts), pes=args.pes
    )
    print(f"{args.pes} PEs at W={args.width}, L={args.luts}: "
          f"{breakdown.total:.2f} mm^2 "
          f"({breakdown.die_overhead():.3%} of a 1600 mm^2 die)")
    for name, value in breakdown.fractions().items():
        print(f"  {name}: {value:.0%}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import pathlib

    from repro.core.bord import Bord
    from repro.core.roofsurface import RoofSurface
    from repro.experiments import figure3, figure4, figure5, figure13
    from repro.report.figures import (
        bord_svg,
        roofline_svg,
        speedup_bars_svg,
    )
    from repro.report.surface3d import roofsurface_svg

    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    ddr3, hbm3 = figure3.run()
    for result in (ddr3, hbm3):
        svg = roofline_svg(
            result.curve, result.points, f"Figure 3 ({result.memory})"
        )
        (out / f"figure3_{result.memory.lower()}.svg").write_text(svg)
    fig4 = figure4.run()
    model = RoofSurface(hbm_system().machine, batch_rows=4)
    max_m = max(p.aixm for p in fig4.points) * 1.2
    max_v = max(p.aixv for p in fig4.points) * 1.2
    (out / "figure4a.svg").write_text(
        roofsurface_svg(model, fig4.points, max_m, max_v)
    )
    hbm5, ddr5 = figure5.run()
    for result, system in ((hbm5, hbm_system()), (ddr5, ddr_system())):
        svg = bord_svg(
            Bord(system.machine), result.points, 0.012, 0.012,
            f"Figure 5 ({result.memory})",
        )
        (out / f"figure5_{result.memory.lower()}.svg").write_text(svg)
    fig13 = figure13.run()
    labels = [row.scheme.name for row in fig13.speedups]
    (out / "figure13.svg").write_text(
        speedup_bars_svg(
            labels,
            {
                "software": [r.software for r in fig13.speedups],
                "DECA": [r.deca for r in fig13.speedups],
                "optimal": [r.optimal for r in fig13.speedups],
            },
            "Figure 13 (HBM, N=1)",
        )
    )
    written = sorted(p.name for p in out.glob("*.svg"))
    print(f"wrote {len(written)} figures into {out}/: {', '.join(written)}")
    return 0


def _cmd_validate(_args: argparse.Namespace) -> int:
    from repro.experiments import validation

    report = validation.run()
    print(report.format_table())
    return 0 if report.all_passed else 1


def _cmd_formats(_args: argparse.Namespace) -> int:
    for name in available_formats():
        fmt = get_format(name)
        group = (
            f"group {fmt.group_size} (+{fmt.scale_bits}b scale)"
            if fmt.is_grouped
            else "no groups"
        )
        print(f"{name:8s} {fmt.bits:2d} bits  {group:26s} {fmt.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DECA reproduction toolkit (MICRO 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="fork N workers for independent configurations and merge "
                 "their simulation caches on join (default: 1 = serial, "
                 "0 = one worker per CPU); the pool persists across "
                 "sweeps within one invocation",
        )

    def add_cache_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="spill simulation results to a disk cache at PATH "
                 "(created if missing) and replay them on later runs; "
                 "defaults to $REPRO_CACHE_DIR, unset = memory-only",
        )

    p_exp = sub.add_parser(
        "experiments",
        help="regenerate paper results (simulations are cached; sweeps "
             "accept --jobs)",
    )
    p_exp.add_argument("names", nargs="*", metavar="NAME",
                       help=f"one of: {', '.join(_EXPERIMENTS)}")
    add_jobs(p_exp)
    add_cache_dir(p_exp)
    p_exp.set_defaults(func=_cmd_experiments)

    p_sim = sub.add_parser(
        "simulate",
        help="simulate compressed GeMM kernels (results are memoized; "
             "comma-separated schemes fan out with --jobs)",
    )
    p_sim.add_argument(
        "--scheme", default="Q8_20%",
        help="scheme name, or a comma-separated list (e.g. 'Q4,Q8_5%%') "
             "simulated in one cached sweep (default: %(default)s)",
    )
    p_sim.add_argument("--memory", choices=("hbm", "ddr"), default="hbm")
    p_sim.add_argument("--engine", choices=("software", "deca"),
                       default="deca")
    p_sim.add_argument("--cores", type=int, default=56)
    p_sim.add_argument("--batch", type=int, default=1)
    p_sim.add_argument("--width", type=int, default=32)
    p_sim.add_argument("--luts", type=int, default=8)
    p_sim.add_argument("--gantt", type=int, default=0, metavar="TILES",
                       help="render an ASCII Gantt window of TILES tiles")
    add_jobs(p_sim)
    add_cache_dir(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_llm = sub.add_parser("llm", help="LLM next-token latency")
    p_llm.add_argument("--model", choices=("llama2-70b", "opt-66b"),
                       default="llama2-70b")
    p_llm.add_argument("--scheme", default="Q4")
    p_llm.add_argument("--engine",
                       choices=("software", "deca", "uncompressed"),
                       default="deca")
    p_llm.add_argument("--memory", choices=("hbm", "ddr"), default="hbm")
    p_llm.add_argument("--cores", type=int, default=56)
    p_llm.add_argument("--batch", type=int, default=1)
    p_llm.add_argument("--tokens", type=int, default=128)
    p_llm.set_defaults(func=_cmd_llm)

    p_dse = sub.add_parser(
        "dse",
        help="DECA (W, L) design exploration (candidates fan out with "
             "--jobs)",
    )
    p_dse.add_argument("--memory", choices=("hbm", "ddr"), default="hbm")
    p_dse.add_argument("--cores", type=int, default=56)
    add_jobs(p_dse)
    add_cache_dir(p_dse)
    p_dse.set_defaults(func=_cmd_dse)

    p_area = sub.add_parser("area", help="DECA area model")
    p_area.add_argument("--width", type=int, default=32)
    p_area.add_argument("--luts", type=int, default=8)
    p_area.add_argument("--pes", type=int, default=56)
    p_area.set_defaults(func=_cmd_area)

    p_fmt = sub.add_parser("formats", help="list quantization formats")
    p_fmt.set_defaults(func=_cmd_formats)

    p_val = sub.add_parser(
        "validate", help="check every headline claim of the paper"
    )
    p_val.set_defaults(func=_cmd_validate)

    p_fig = sub.add_parser("figures", help="export key figures as SVG")
    p_fig.add_argument("--output", default="figures")
    p_fig.set_defaults(func=_cmd_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
