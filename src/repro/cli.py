"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [NAME ...]`` — regenerate paper tables/figures (default:
  all of them) and print the comparison tables. ``--list`` enumerates
  the registered sweep scenarios; any registered name runs through the
  declarative sweep engine, with ``--out results.jsonl`` /
  ``--out results.csv`` emitting per-cell rows *incrementally* as
  workers finish (``--stream`` additionally prints each row to stdout,
  ``--progress`` reports per-cell completion on stderr).
* ``simulate`` — simulate compressed GeMM kernels and report interval,
  TFLOPS, utilisation, and optionally an ASCII Gantt window.
* ``llm`` — next-token latency for Llama2-70B or OPT-66B.
* ``dse`` — the (W, L) design-space exploration of Section 9.2.
* ``area`` — the DECA area model for a given (W, L).
* ``formats`` — list the registered quantization formats.
* ``cache prune`` — trim a disk cache directory to a byte budget
  and/or maximum entry age (LRU by last use).
* ``serve`` — run the sweep-serving daemon on a local UNIX socket: one
  shared persistent pool and cache serving many clients, identical
  in-flight requests coalesced onto a single compute, SIGTERM drains
  gracefully (see ``docs/SERVING.md``).
* ``serve-request`` — send one request (a scenario name, ``--inline``
  JSON, ``--status``, or ``--ping``) to a running daemon and stream
  its JSONL rows to stdout.
* ``worker`` — run one socket sweep worker: bind a TCP port (loopback
  by default) and serve cell partitions dispatched by a parent's
  ``--hosts`` / ``REPRO_SWEEP_HOSTS`` sweep (see
  ``docs/DISTRIBUTED.md`` for the operator guide and trust model).

Repeated simulations are served from the process-wide LRU cache
(``repro.sim.cache``), and the sweep-shaped commands (``experiments``,
``simulate`` with several schemes, ``dse``) accept ``--jobs N`` to fan
independent configurations out across a persistent pool of forked
worker processes whose caches are merged incrementally as cells finish
(``--jobs 0`` = one worker per CPU; the pool is reused by every sweep
in the invocation). When a later sweep reuses the pool, the parent
broadcasts its warm in-memory entries back out to the workers first
(bounded by ``REPRO_WARM_BROADCAST_BYTES``, default 8 MiB, ``0``
disables), so back-to-back sweeps — e.g. the registered
``figure12+figure13`` composite scenario — hit memory in the workers
instead of recomputing. The same commands accept ``--cache-dir PATH``
(or the ``REPRO_CACHE_DIR`` environment variable) to spill simulation
results to a disk-backed cache that survives process restarts: a
re-run of the same sweep against a warm directory replays from disk
instead of simulating. An unusable directory degrades to memory-only
with a warning, and ``REPRO_CACHE_MAX_BYTES`` bounds the directory
(pruned least-recently-used-first at attach time).
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from typing import List, Optional

from repro.core.schemes import PAPER_SCHEMES, UNCOMPRESSED, parse_scheme
from repro.errors import ConfigurationError
from repro.deca.area import deca_area
from repro.deca.config import DecaConfig
from repro.deca.integration import deca_kernel_timing
from repro.formats.registry import available_formats, get_format
from repro.kernels.libxsmm import (
    software_kernel_timing,
    uncompressed_kernel_timing,
)
from repro.llm.inference import EngineKind, next_token_latency
from repro.llm.models import llama2_70b, opt_66b
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import SimSystem, ddr_system, hbm_system
from repro.sim.trace import render_gantt

_EXPERIMENTS = (
    "table1", "figure3", "figure4", "figure5", "figure6", "figure12",
    "figure13", "figure14", "figure15", "figure16", "figure17",
    "table3", "table4", "area", "batch_sweep", "sensitivity",
)


def _system_for(name: str, cores: int) -> SimSystem:
    if name == "hbm":
        return hbm_system(cores)
    return ddr_system(cores)


def _parse_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (``"256M"``)."""
    text = text.strip()
    multiplier = 1
    suffixes = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
    if text and text[-1].lower() in suffixes:
        multiplier = suffixes[text[-1].lower()]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError(
            f"cannot parse byte size {text!r}; use an integer with an "
            "optional K/M/G suffix (e.g. 512M)"
        )
    if value < 0:
        raise ConfigurationError(f"byte size must be >= 0, got {value}")
    return value * multiplier


def _configure_cache(args: argparse.Namespace) -> None:
    """Attach the disk cache tier named by ``--cache-dir``/env, if any.

    Runs before any sweep (and before the worker pool forks, so workers
    inherit the configuration). An unusable directory prints a note and
    leaves the run memory-only rather than failing it. With
    ``REPRO_CACHE_MAX_BYTES`` set, the directory is pruned to that
    budget (least-recently-used entries first) at attach time, so the
    disk tier stays bounded across invocations.
    """
    from repro.sim.cache import configure_simulation_cache_dir
    from repro.sim.diskcache import prune_cache_dir

    path = getattr(args, "cache_dir", None) or os.environ.get(
        "REPRO_CACHE_DIR"
    )
    if not path:
        # Unset means memory-only — including for programmatic callers
        # invoking main() repeatedly in one process after an earlier
        # invocation attached a tier.
        configure_simulation_cache_dir(None)
        return
    budget = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if budget:
        report = prune_cache_dir(path, max_bytes=_parse_size(budget))
        if report.removed_entries or report.removed_tmp_files:
            print(
                f"cache budget REPRO_CACHE_MAX_BYTES={budget}: "
                f"{report.describe()}",
                file=sys.stderr,
            )
    with warnings.catch_warnings():
        # open_disk_cache warns for library callers; the CLI prints its
        # own single-line note instead.
        warnings.simplefilter("ignore", RuntimeWarning)
        disk = configure_simulation_cache_dir(path)
    if disk is None:
        print(
            f"warning: cache dir {path!r} is not usable; running with "
            "the in-memory cache only",
            file=sys.stderr,
        )


def _configure_hosts(args: argparse.Namespace) -> None:
    """Apply ``--hosts`` (or revert to ``REPRO_SWEEP_HOSTS``) for sweeps.

    An explicit flag wins over the environment; omitting it leaves the
    environment in charge. Runs before any sweep so every execution
    path (including the serve daemon's runner threads) sees the same
    executor configuration.
    """
    from repro.experiments.remote import configure_sweep_hosts

    configure_sweep_hosts(getattr(args, "hosts", None))


def _print_scenarios() -> None:
    """The ``experiments --list`` table: every registered sweep."""
    from repro.experiments import sweepspec
    from repro.experiments.remote import executor_topology

    scenarios = sweepspec.iter_scenarios()
    width = max(len(s.name) for s in scenarios)
    print("registered sweep scenarios (run with `repro experiments NAME`; "
          "stream rows with --out/--stream):")
    for scenario in sorted(scenarios, key=lambda s: s.name):
        print(f"  {scenario.name:<{width}}  {scenario.summary}")
    topology = executor_topology()
    line = f"executor backend: {topology['backend']}"
    if topology["hosts"]:
        line += " (" + ", ".join(topology["hosts"]) + ")"
    print(line)
    for host, cells in sorted(topology["host_cells"].items()):
        print(f"  {host}: {cells} cells completed")
    if topology["host_cells"]:
        print(f"  delta bytes: {topology['delta_bytes_sent']} sent, "
              f"{topology['delta_bytes_received']} received")


def _run_scenario(name: str, args: argparse.Namespace, emitter) -> None:
    """Run one registered scenario through the streaming sweep engine."""
    from repro.experiments import sweepspec

    scenario = sweepspec.get_scenario(name)
    spec = scenario.build()
    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"[{name}] {done}/{total} cells", file=sys.stderr,
                  flush=True)

    on_cell = None
    if args.stream:
        def on_cell(cell) -> None:
            for row in spec.rows_for(cell):
                print(sweepspec.jsonl_line(row), flush=True)

    output = sweepspec.stream_to_emitter(
        spec, emitter, jobs=args.jobs, progress=progress, on_cell=on_cell,
    )
    print(spec.render(output))
    print()


def _cmd_experiments(args: argparse.Namespace) -> int:
    import inspect

    from repro import experiments as exp
    from repro.experiments import sweepspec

    _configure_hosts(args)
    if args.list:
        _print_scenarios()
        return 0
    names = args.names or list(_EXPERIMENTS)
    # Validate every name before touching anything — in particular
    # before --out truncates an existing results file on a typo.
    unknown = [
        name for name in names
        if name not in _EXPERIMENTS and sweepspec.find_scenario(name) is None
    ]
    if unknown:
        known = sorted(set(_EXPERIMENTS) | set(sweepspec.scenario_names()))
        print(f"unknown experiment {unknown[0]!r}; choose from "
              f"{', '.join(known)}", file=sys.stderr)
        return 2
    _configure_cache(args)
    streaming = args.stream or args.out or args.progress
    # One emitter across every streamed scenario in the invocation
    # (prefer .jsonl when mixing scenarios — CSV keeps one header).
    emitter = sweepspec.open_emitter(args.out) if args.out else None
    # --no-batch flips the process-wide default so buffered harnesses
    # (which call the sweep entry points internally) honour it too.
    previous_batching = (
        sweepspec.set_batching_enabled(False) if args.no_batch else None
    )
    try:
        for name in names:
            scenario = sweepspec.find_scenario(name)
            if scenario is not None and (streaming or name not in _EXPERIMENTS):
                # The declarative path: stream cells, emit rows as they
                # land, then print the reduced table.
                _run_scenario(name, args, emitter)
                continue
            if streaming and scenario is None:
                print(f"note: {name!r} is not a registered sweep scenario; "
                      "running buffered (no per-cell rows)", file=sys.stderr)
            module = getattr(exp, name)
            # Sweep-shaped harnesses accept a worker count; the rest run
            # as-is.
            kwargs = {}
            if "jobs" in inspect.signature(module.run).parameters:
                kwargs["jobs"] = args.jobs
            result = module.run(**kwargs)
            if isinstance(result, tuple):
                for part in result:
                    print(part.format_table())
                    print()
            else:
                print(result.format_table())
                print()
    finally:
        if previous_batching is not None:
            sweepspec.set_batching_enabled(previous_batching)
        if emitter is not None:
            emitter.close()
    return 0


def _simulate_timing(task):
    """The kernel timing one ``simulate`` task will request.

    Shared between the report body and the cross-scheme batch seeding,
    so the batched stack lands under exactly the keys the reports look
    up.
    """
    system, scheme, engine, width, luts, _batch, _gantt = task
    if engine == "software":
        if scheme.name == UNCOMPRESSED.name:
            return uncompressed_kernel_timing(system)
        return software_kernel_timing(system, scheme)
    return deca_kernel_timing(
        system, scheme, config=DecaConfig(width=width, lut_count=luts),
    )


def _simulate_report(task) -> str:
    """Simulate one scheme and render its report block (picklable task)."""
    system, scheme, engine, width, luts, batch, gantt = task
    timing = _simulate_timing(task)
    result = simulate_tile_stream(system, timing)
    pct = result.utilization.as_percentages()
    lines = [
        f"{scheme.name} on {system.machine.name} with {engine}:",
        f"  interval: {result.steady_interval_cycles:.1f} cycles/tile",
        f"  rate:     {result.tiles_per_second / 1e9:.2f} G tiles/s",
        f"  FLOPS:    {result.flops(batch) / 1e12:.2f} TFLOPS "
        f"(N={batch})",
        f"  util:     MEM {pct['MEM']}%  TMUL {pct['TMUL']}%  "
        f"DEC {pct['DEC']}%  (bottleneck: "
        f"{result.utilization.bottleneck})",
    ]
    if gantt:
        lines.append("")
        lines.append(render_gantt(result, first_tile=40, tiles=gantt))
    return "\n".join(lines)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import parallel_map
    from repro.experiments.sweepspec import batching_enabled

    _configure_cache(args)
    _configure_hosts(args)
    system = _system_for(args.memory, args.cores)
    names = [name.strip() for name in args.scheme.split(",") if name.strip()]
    if not names:
        print(f"--scheme needs at least one scheme name, got "
              f"{args.scheme!r}", file=sys.stderr)
        return 2
    schemes = [parse_scheme(name) for name in names]
    tasks = [
        (system, scheme, args.engine, args.width, args.luts, args.batch,
         args.gantt)
        for scheme in schemes
    ]
    if (
        len(tasks) > 1
        and batching_enabled(False if args.no_batch else None)
    ):
        # Seed the cache with one stacked scan across the schemes; the
        # per-task lookups below (and in forked workers, which inherit
        # the parent cache) then hit warm.
        from repro.sim.pipeline import simulate_tile_stream_batch

        simulate_tile_stream_batch(
            [(system, _simulate_timing(task), 600) for task in tasks],
            resolve_cached=False,
        )
    reports = parallel_map(_simulate_report, tasks, jobs=args.jobs)
    print("\n\n".join(reports))
    return 0


def _cmd_llm(args: argparse.Namespace) -> int:
    system = _system_for(args.memory, args.cores)
    model = llama2_70b() if args.model == "llama2-70b" else opt_66b()
    scheme = parse_scheme(args.scheme)
    engine = {
        "software": EngineKind.SOFTWARE,
        "deca": EngineKind.DECA,
        "uncompressed": EngineKind.UNCOMPRESSED,
    }[args.engine]
    if engine is EngineKind.UNCOMPRESSED:
        scheme = UNCOMPRESSED
    breakdown = next_token_latency(
        model, system, scheme, engine,
        batch=args.batch, input_tokens=args.tokens,
    )
    print(f"{model.name} / {breakdown.scheme_name} / {args.engine} "
          f"(batch {args.batch}, {args.tokens} input tokens, "
          f"{system.machine.name}):")
    print(f"  next-token latency: {breakdown.total_ms:.1f} ms")
    print(f"  FC GeMMs: {breakdown.gemm_seconds * 1e3:.1f} ms "
          f"({breakdown.gemm_fraction:.0%})")
    print(f"  non-GeMM: {breakdown.non_gemm_seconds * 1e3:.1f} ms")
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.experiments.dse import dse_spec

    _configure_cache(args)
    _configure_hosts(args)
    machine = _system_for(args.memory, args.cores).machine
    spec = dse_spec(machine, PAPER_SCHEMES)
    print(spec.render(spec.run(jobs=args.jobs)))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sim.diskcache import prune_cache_dir

    path = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not path:
        print("cache prune needs --cache-dir (or REPRO_CACHE_DIR)",
              file=sys.stderr)
        return 2
    max_bytes = None
    raw_bytes = (
        args.max_bytes
        if args.max_bytes is not None
        else os.environ.get("REPRO_CACHE_MAX_BYTES")
    )
    if raw_bytes is not None:
        max_bytes = _parse_size(str(raw_bytes))
    max_age = args.max_age
    if max_bytes is None and max_age is None:
        print("cache prune needs --max-bytes and/or --max-age (or "
              "REPRO_CACHE_MAX_BYTES)", file=sys.stderr)
        return 2
    report = prune_cache_dir(path, max_bytes=max_bytes, max_age_s=max_age)
    print(f"{path}: {report.describe()}")
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    import json as _json
    import warnings

    from repro.sim.diskcache import open_disk_cache

    path = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not path:
        print("cache stats needs --cache-dir (or REPRO_CACHE_DIR)",
              file=sys.stderr)
        return 2
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        disk = open_disk_cache(path)
    if disk is None:
        print(f"cache dir {path!r} is not usable", file=sys.stderr)
        return 2
    snapshot = disk.storage_snapshot()
    if args.json:
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    entries = snapshot["loose_entries"] + snapshot["packed_entries"]
    print(f"{snapshot['root']}: {entries} entries, "
          f"{snapshot['total_bytes']} bytes")
    print(f"  schema generation: {snapshot['schema_dir']}")
    print(f"  loose entries: {snapshot['loose_entries']} "
          f"({snapshot['loose_bytes']} bytes)")
    print(f"  packed entries: {snapshot['packed_entries']} in "
          f"{snapshot['pack_files']} pack(s) "
          f"({snapshot['pack_bytes']} bytes)")
    print(f"  index: {snapshot['index_entries']} entries "
          f"({snapshot['index_bytes']} bytes)")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    breakdown = deca_area(
        DecaConfig(width=args.width, lut_count=args.luts), pes=args.pes
    )
    print(f"{args.pes} PEs at W={args.width}, L={args.luts}: "
          f"{breakdown.total:.2f} mm^2 "
          f"({breakdown.die_overhead():.3%} of a 1600 mm^2 die)")
    for name, value in breakdown.fractions().items():
        print(f"  {name}: {value:.0%}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import pathlib

    from repro.core.bord import Bord
    from repro.core.roofsurface import RoofSurface
    from repro.experiments import figure3, figure4, figure5, figure13
    from repro.report.figures import (
        bord_svg,
        roofline_svg,
        speedup_bars_svg,
    )
    from repro.report.surface3d import roofsurface_svg

    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    ddr3, hbm3 = figure3.run()
    for result in (ddr3, hbm3):
        svg = roofline_svg(
            result.curve, result.points, f"Figure 3 ({result.memory})"
        )
        (out / f"figure3_{result.memory.lower()}.svg").write_text(svg)
    fig4 = figure4.run()
    model = RoofSurface(hbm_system().machine, batch_rows=4)
    max_m = max(p.aixm for p in fig4.points) * 1.2
    max_v = max(p.aixv for p in fig4.points) * 1.2
    (out / "figure4a.svg").write_text(
        roofsurface_svg(model, fig4.points, max_m, max_v)
    )
    hbm5, ddr5 = figure5.run()
    for result, system in ((hbm5, hbm_system()), (ddr5, ddr_system())):
        svg = bord_svg(
            Bord(system.machine), result.points, 0.012, 0.012,
            f"Figure 5 ({result.memory})",
        )
        (out / f"figure5_{result.memory.lower()}.svg").write_text(svg)
    fig13 = figure13.run()
    labels = [row.scheme.name for row in fig13.speedups]
    (out / "figure13.svg").write_text(
        speedup_bars_svg(
            labels,
            {
                "software": [r.software for r in fig13.speedups],
                "DECA": [r.deca for r in fig13.speedups],
                "optimal": [r.optimal for r in fig13.speedups],
            },
            "Figure 13 (HBM, N=1)",
        )
    )
    written = sorted(p.name for p in out.glob("*.svg"))
    print(f"wrote {len(written)} figures into {out}/: {', '.join(written)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep-serving daemon until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from repro.serve.daemon import ServeDaemon

    _configure_cache(args)
    _configure_hosts(args)
    daemon = ServeDaemon(
        socket_path=args.socket,
        jobs=args.jobs,
        max_active=args.max_active,
        rate_limit=args.rate_limit,
        preload=args.preload,
    )
    stop = threading.Event()

    def _request_stop(_signum, _frame) -> None:
        stop.set()

    # Handlers go in *before* the ready line is printed: a supervisor
    # that reacts to the ready line by signalling immediately must hit
    # the drain path, never the default-action kill.
    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    daemon.start()
    frontend = None
    if args.http_port is not None:
        from repro.serve.http import ServeHttpFrontend

        frontend = ServeHttpFrontend(daemon, port=args.http_port)
        try:
            frontend.start()
        except ConfigurationError:
            daemon.drain()
            raise
    print(
        f"repro serve: listening on {daemon.socket_path} "
        + (f"and {frontend.url} " if frontend is not None else "")
        + f"(pool={daemon.status_snapshot()['pool']['width']}, "
        f"max-active={args.max_active})",
        flush=True,
    )
    stop.wait()
    print("repro serve: draining (finishing in-flight sweeps)", flush=True)
    if frontend is not None:
        frontend.close()
    daemon.drain()
    print("repro serve: drained", flush=True)
    return 0


def _cmd_serve_request(args: argparse.Namespace) -> int:
    """One client request against a running daemon; rows to stdout."""
    import json as _json

    from repro.serve.client import (
        ServeRequestError,
        ServeUnavailableError,
        connect,
    )

    client = connect(args.socket, timeout=args.timeout)
    try:
        if args.ping:
            if not client.ping():
                print("error: daemon did not answer the ping",
                      file=sys.stderr)
                return 2
            print("pong")
            return 0
        if args.status:
            print(_json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.cancel:
            found = client.cancel(args.cancel)
            if not found:
                print(
                    f"error: no admitted sweep with key {args.cancel}",
                    file=sys.stderr,
                )
                return 2
            print(f"cancelled {args.cancel}")
            return 0
        inline = None
        if args.inline:
            try:
                inline = _json.loads(args.inline)
            except ValueError as error:
                raise ConfigurationError(
                    f"--inline must be a JSON object: {error}"
                )
        if (args.scenario is None) == (inline is None):
            raise ConfigurationError(
                "name a scenario or pass --inline (exactly one of the two)"
            )
        rows = 0
        for line in client.sweep_lines(
            args.scenario, inline=inline, priority=args.priority,
            deadline_s=args.deadline,
        ):
            print(line, flush=True)
            rows += 1
        summary = client.last_summary or {}
        ack = client.last_ack or {}
        served = (
            "cache fast path" if summary.get("fast_path")
            else "coalesced onto a running sweep" if ack.get("coalesced")
            else "computed"
        )
        print(f"{rows} rows ({served})", file=sys.stderr)
        return 0
    except (ServeUnavailableError, ServeRequestError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one socket sweep worker until SIGTERM/SIGINT.

    Binds ``--host:--port`` (``--port 0`` picks a free port) and prints
    the ready line parents and supervisors parse; then serves cell
    partitions until signalled. The worker uses its *own* cache
    configuration (``--cache-dir`` / ``REPRO_CACHE_DIR``) — parents
    exchange cache state with it only as hash-sharded deltas.
    """
    import signal
    import threading

    from repro.experiments.remote import run_worker_server

    _configure_cache(args)
    stop = threading.Event()

    def _request_stop(_signum, _frame) -> None:
        stop.set()

    # Handlers go in before the ready line, same as `repro serve`: a
    # supervisor reacting to the line by signalling immediately must
    # hit the graceful stop, never the default-action kill.
    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)

    def _ready(host: str, port: int) -> None:
        print(f"repro worker: listening on {host}:{port}", flush=True)

    run_worker_server(
        host=args.host, port=args.port, ready=_ready, stop_event=stop,
    )
    print("repro worker: stopped", flush=True)
    return 0


def _cmd_validate(_args: argparse.Namespace) -> int:
    from repro.experiments import validation

    report = validation.run()
    print(report.format_table())
    return 0 if report.all_passed else 1


def _cmd_formats(_args: argparse.Namespace) -> int:
    for name in available_formats():
        fmt = get_format(name)
        group = (
            f"group {fmt.group_size} (+{fmt.scale_bits}b scale)"
            if fmt.is_grouped
            else "no groups"
        )
        print(f"{name:8s} {fmt.bits:2d} bits  {group:26s} {fmt.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DECA reproduction toolkit (MICRO 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="fork N workers for independent configurations and merge "
                 "their simulation caches on join (default: 1 = serial, "
                 "0 = one worker per CPU); the pool persists across "
                 "sweeps within one invocation, and later sweeps "
                 "broadcast the parent's warm cache entries back to it "
                 "(bounded by REPRO_WARM_BROADCAST_BYTES, 0 disables)",
        )

    def add_cache_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="spill simulation results to a disk cache at PATH "
                 "(created if missing) and replay them on later runs; "
                 "defaults to $REPRO_CACHE_DIR, unset = memory-only",
        )

    def add_hosts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--hosts", default=None, metavar="HOST:PORT,...",
            help="dispatch sweep cells to these `repro worker` socket "
                 "workers instead of the local fork pool (comma-"
                 "separated; overrides $REPRO_SWEEP_HOSTS, '' disables); "
                 "the host list replaces --jobs as the parallelism",
        )

    def add_no_batch(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--no-batch", action="store_true",
            help="disable cross-cell batched simulation and run every "
                 "configuration through the per-cell scan (results are "
                 "bit-identical either way; REPRO_NO_BATCH=1 is the "
                 "environment equivalent)",
        )

    p_exp = sub.add_parser(
        "experiments",
        help="regenerate paper results (simulations are cached; sweeps "
             "accept --jobs and stream with --out/--stream)",
    )
    p_exp.add_argument("names", nargs="*", metavar="NAME",
                       help=f"one of: {', '.join(_EXPERIMENTS)} — or any "
                            "registered sweep scenario (see --list)")
    p_exp.add_argument(
        "--list", action="store_true",
        help="list the registered sweep scenarios and exit",
    )
    p_exp.add_argument(
        "--out", default=None, metavar="PATH",
        help="write per-cell result rows to PATH incrementally as cells "
             "finish (.csv = CSV, anything else = JSONL); sweeps only",
    )
    p_exp.add_argument(
        "--stream", action="store_true",
        help="print each cell's result rows (JSONL) to stdout as they "
             "complete, ahead of the final table",
    )
    p_exp.add_argument(
        "--progress", action="store_true",
        help="report per-cell completion progress on stderr",
    )
    add_jobs(p_exp)
    add_cache_dir(p_exp)
    add_no_batch(p_exp)
    add_hosts(p_exp)
    p_exp.set_defaults(func=_cmd_experiments)

    p_sim = sub.add_parser(
        "simulate",
        help="simulate compressed GeMM kernels (results are memoized; "
             "comma-separated schemes fan out with --jobs)",
    )
    p_sim.add_argument(
        "--scheme", default="Q8_20%",
        help="scheme name, or a comma-separated list (e.g. 'Q4,Q8_5%%') "
             "simulated in one cached sweep (default: %(default)s)",
    )
    p_sim.add_argument("--memory", choices=("hbm", "ddr"), default="hbm")
    p_sim.add_argument("--engine", choices=("software", "deca"),
                       default="deca")
    p_sim.add_argument("--cores", type=int, default=56)
    p_sim.add_argument("--batch", type=int, default=1)
    p_sim.add_argument("--width", type=int, default=32)
    p_sim.add_argument("--luts", type=int, default=8)
    p_sim.add_argument("--gantt", type=int, default=0, metavar="TILES",
                       help="render an ASCII Gantt window of TILES tiles")
    add_jobs(p_sim)
    add_cache_dir(p_sim)
    add_no_batch(p_sim)
    add_hosts(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_llm = sub.add_parser("llm", help="LLM next-token latency")
    p_llm.add_argument("--model", choices=("llama2-70b", "opt-66b"),
                       default="llama2-70b")
    p_llm.add_argument("--scheme", default="Q4")
    p_llm.add_argument("--engine",
                       choices=("software", "deca", "uncompressed"),
                       default="deca")
    p_llm.add_argument("--memory", choices=("hbm", "ddr"), default="hbm")
    p_llm.add_argument("--cores", type=int, default=56)
    p_llm.add_argument("--batch", type=int, default=1)
    p_llm.add_argument("--tokens", type=int, default=128)
    p_llm.set_defaults(func=_cmd_llm)

    p_dse = sub.add_parser(
        "dse",
        help="DECA (W, L) design exploration (candidates fan out with "
             "--jobs)",
    )
    p_dse.add_argument("--memory", choices=("hbm", "ddr"), default="hbm")
    p_dse.add_argument("--cores", type=int, default=56)
    add_jobs(p_dse)
    add_cache_dir(p_dse)
    add_hosts(p_dse)
    p_dse.set_defaults(func=_cmd_dse)

    p_area = sub.add_parser("area", help="DECA area model")
    p_area.add_argument("--width", type=int, default=32)
    p_area.add_argument("--luts", type=int, default=8)
    p_area.add_argument("--pes", type=int, default=56)
    p_area.set_defaults(func=_cmd_area)

    p_fmt = sub.add_parser("formats", help="list quantization formats")
    p_fmt.set_defaults(func=_cmd_formats)

    p_cache = sub.add_parser(
        "cache", help="manage the on-disk simulation cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_prune = cache_sub.add_parser(
        "prune",
        help="trim a cache directory to a byte budget / maximum age "
             "(least-recently-used entries evicted first)",
    )
    p_prune.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache directory to prune (default: $REPRO_CACHE_DIR)",
    )
    p_prune.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="byte budget, with optional K/M/G suffix (default: "
             "$REPRO_CACHE_MAX_BYTES)",
    )
    p_prune.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="evict entries not used for more than SECONDS",
    )
    p_prune.set_defaults(func=_cmd_cache)
    p_stats = cache_sub.add_parser(
        "stats",
        help="print a cache directory's on-disk shape (loose/packed "
             "entry counts, pack and index sizes, total bytes)",
    )
    p_stats.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache directory to inspect (default: $REPRO_CACHE_DIR)",
    )
    p_stats.add_argument(
        "--json", action="store_true",
        help="emit the snapshot as JSON instead of human-readable lines",
    )
    p_stats.set_defaults(func=_cmd_cache_stats)

    p_serve = sub.add_parser(
        "serve",
        help="run the sweep-serving daemon on a local UNIX socket "
             "(coalesces identical in-flight requests onto one shared "
             "pool; SIGTERM drains gracefully)",
    )
    p_serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="UNIX socket path to listen on (default: "
             "$REPRO_SERVE_SOCKET, else a per-user path under "
             "$XDG_RUNTIME_DIR or /tmp)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="width of the daemon-owned persistent worker pool, shared "
             "by every request (default: %(default)s, 0 = one per CPU)",
    )
    p_serve.add_argument(
        "--max-active", type=int, default=2, metavar="N",
        help="how many admitted sweeps may run concurrently on the "
             "shared pool (default: %(default)s)",
    )
    p_serve.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="also serve HTTP/SSE on 127.0.0.1:PORT (GET /sweep, "
             "/status, /ping, /cancel; 0 = pick a free port)",
    )
    p_serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="SWEEPS_PER_S",
        help="per-client token-bucket admission limit in sweeps/s, "
             "covering both transports (default: unlimited)",
    )
    p_serve.add_argument(
        "--preload", action="append", default=None, metavar="SCENARIO",
        help="prefetch this scenario's simulations from the disk cache "
             "into memory at startup (repeatable; needs --cache-dir)",
    )
    add_cache_dir(p_serve)
    add_hosts(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="run one socket sweep worker serving cell partitions "
             "dispatched by a --hosts/REPRO_SWEEP_HOSTS parent "
             "(loopback by default; SIGTERM stops gracefully)",
    )
    p_worker.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default: %(default)s; binding a "
             "routable address is for trusted networks only — the "
             "transport executes pickled payloads by design)",
    )
    p_worker.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="TCP port to bind (default: 0 = pick a free port; the "
             "ready line on stdout reports the actual one)",
    )
    add_cache_dir(p_worker)
    p_worker.set_defaults(func=_cmd_worker)

    p_req = sub.add_parser(
        "serve-request",
        help="send one request to a running serve daemon and stream "
             "its JSONL rows to stdout",
    )
    p_req.add_argument(
        "scenario", nargs="?", default=None,
        help="registered sweep scenario to request "
             "(see `repro experiments --list`)",
    )
    p_req.add_argument(
        "--socket", default=None, metavar="PATH",
        help="daemon socket path (default: $REPRO_SERVE_SOCKET)",
    )
    p_req.add_argument(
        "--inline", default=None, metavar="JSON",
        help="inline sweep parameterization instead of a scenario name "
             "(e.g. '{\"kind\": \"speedups\", \"memory\": \"ddr\"}')",
    )
    p_req.add_argument(
        "--priority", type=int, default=0, metavar="N",
        help="admission priority; lower runs first (default: 0)",
    )
    p_req.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="socket timeout per read (default: %(default)s)",
    )
    p_req.add_argument(
        "--status", action="store_true",
        help="print the daemon's health/stats document and exit",
    )
    p_req.add_argument(
        "--ping", action="store_true",
        help="round-trip a ping and exit",
    )
    p_req.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="daemon-side deadline for this sweep: a queued request "
             "past it errors without computing, a running one stops "
             "within one cell (default: none)",
    )
    p_req.add_argument(
        "--cancel", default=None, metavar="KEY",
        help="force-cancel the admitted sweep with this request key "
             "(keys appear in acks and --status) and exit",
    )
    p_req.set_defaults(func=_cmd_serve_request)

    p_val = sub.add_parser(
        "validate", help="check every headline claim of the paper"
    )
    p_val.set_defaults(func=_cmd_validate)

    p_fig = sub.add_parser("figures", help="export key figures as SVG")
    p_fig.add_argument("--output", default="figures")
    p_fig.set_defaults(func=_cmd_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Configuration mistakes (an unknown scheme, a negative ``--jobs``, a
    malformed byte size) surface as a one-line error and exit status 2
    — never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed early (`repro serve-request ... | head`).
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time, and exit like a SIGPIPE'd tool.
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError):
            pass  # stdout is not a real fd (captured/redirected in-process)
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
