"""Mesh network-on-chip latency model (the fabric of Figure 7).

SPR cores sit on a 2-D mesh; every L2 miss crosses the NoC to an LLC
slice (address-hashed across all tiles) and possibly onward to a memory
controller at the mesh edge. This module derives the *average* LLC and
memory access latencies from the floorplan, providing a principled origin
for the flat `llc_latency` / `memory_latency` numbers in
:class:`~repro.sim.system.SimSystem` and letting experiments scale
latency with core count (bigger mesh -> longer average hop distance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MeshNoc:
    """A rows x cols mesh of core tiles with edge memory controllers.

    Attributes:
        rows: Mesh rows.
        cols: Mesh columns.
        hop_cycles: Per-hop router+link traversal latency.
        l2_cycles: L2 lookup before a request enters the mesh.
        llc_slice_cycles: LLC slice lookup at the destination tile.
        controller_cycles: Memory-controller queue plus DRAM access.
    """

    rows: int
    cols: int
    hop_cycles: float = 4.0
    l2_cycles: float = 26.0
    llc_slice_cycles: float = 28.0
    controller_cycles: float = 230.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("mesh dimensions must be >= 1")
        if min(
            self.hop_cycles, self.l2_cycles,
            self.llc_slice_cycles, self.controller_cycles,
        ) < 0:
            raise ConfigurationError("latencies must be non-negative")

    @property
    def tiles(self) -> int:
        """Number of mesh tiles."""
        return self.rows * self.cols

    def average_hops_to_random_tile(self) -> float:
        """Mean Manhattan distance between two uniform random tiles.

        LLC slices are address-hashed over all tiles, so a miss travels to
        a uniformly random slice. For a uniform pair on an n-point line the
        mean distance is (n^2 - 1) / (3n); rows and columns separate.
        """
        def line_mean(n: int) -> float:
            return (n * n - 1) / (3 * n)

        return line_mean(self.rows) + line_mean(self.cols)

    def average_hops_to_edge(self) -> float:
        """Mean hops from a random tile to its nearest mesh-edge column.

        Memory controllers sit on the left/right edges (as on SPR); a tile
        in column c is min(c, cols - 1 - c) hops from the nearer edge.
        """
        total = sum(min(c, self.cols - 1 - c) for c in range(self.cols))
        return total / self.cols

    def llc_latency(self) -> float:
        """Average L2-miss-to-LLC-hit latency."""
        return (
            self.l2_cycles
            + self.average_hops_to_random_tile() * self.hop_cycles
            + self.llc_slice_cycles
        )

    def memory_latency(self) -> float:
        """Average L2-miss-to-DRAM latency (LLC miss path)."""
        extra_hops = self.average_hops_to_edge()
        return (
            self.llc_latency()
            + extra_hops * self.hop_cycles
            + self.controller_cycles
        )


def spr_mesh(cores: int = 56) -> MeshNoc:
    """An SPR-like mesh sized for ``cores`` tiles (near-square)."""
    if cores < 1:
        raise ConfigurationError(f"cores must be >= 1, got {cores}")
    rows = max(1, int(math.floor(math.sqrt(cores))))
    cols = math.ceil(cores / rows)
    return MeshNoc(rows=rows, cols=cols)
