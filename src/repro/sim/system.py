"""Simulated-system configuration: machine parameters plus latencies.

A :class:`SimSystem` extends the analytical :class:`~repro.core.machine.
MachineSpec` with the microarchitectural latencies that the Roof-Surface
model deliberately ignores but that the simulation needs: cache and memory
access latencies, core<->DECA communication costs, and how much of the
memory latency each prefetching discipline leaves exposed.

The default latency values follow public SPR characteristics (L2 ~26
cycles, LLC ~80 cycles, loaded memory latency in the 110-140 ns range) and
are deliberately round numbers — the experiments depend on their relative
magnitudes, not their third significant digit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.machine import MachineSpec, spr_ddr, spr_hbm
from repro.errors import ConfigurationError
from repro.units import ns_to_cycles


@dataclass(frozen=True)
class SimSystem:
    """A simulated SPR-like server.

    Attributes:
        machine: The analytical machine description (cores, rates).
        l2_latency: Cycles for an L2 hit.
        llc_latency: Cycles for an LLC hit.
        memory_latency: Cycles for a loaded main-memory access.
        tout_read_latency: Core reading a DECA TOut register (adjacent).
        mmio_store_latency: Core store to a DECA memory-mapped register.
        tepl_issue_latency: Issue overhead of one TEPL instruction.
        fence_drain_cycles: Pipeline-drain cost of a memory fence.
        loader_fill_latency: Invocation-to-first-dequant turnaround inside
            a DECA Loader (LDQ read of a prefetched L2 line streaming into
            the SQQ).
        exposed_latency_none: Fraction of memory latency exposed per tile
            fetch with no prefetching (base DECA config reads via LLC).
        exposed_latency_l2pf: Same, with the stock L2 hardware prefetcher.
        exposed_latency_decapf: Same, with DECA's own aggressive prefetcher.
        sw_prefetch_exposure: Exposure for the software kernel (stock L1/L2
            prefetchers streaming into the core).
    """

    machine: MachineSpec
    l2_latency: float = 26.0
    llc_latency: float = 80.0
    memory_latency: float = field(default=0.0)  # filled by __post_init__
    tout_read_latency: float = 12.0
    mmio_store_latency: float = 20.0
    tepl_issue_latency: float = 2.0
    fence_drain_cycles: float = 10.0
    loader_fill_latency: float = 10.0
    exposed_latency_none: float = 1.0
    exposed_latency_l2pf: float = 0.25
    exposed_latency_decapf: float = 0.04
    sw_prefetch_exposure: float = 0.08

    def __post_init__(self) -> None:
        if self.memory_latency == 0.0:
            object.__setattr__(
                self,
                "memory_latency",
                ns_to_cycles(130.0, self.machine.frequency_hz),
            )
        for name in (
            "l2_latency",
            "llc_latency",
            "memory_latency",
            "tout_read_latency",
            "mmio_store_latency",
            "tepl_issue_latency",
            "fence_drain_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        for name in (
            "exposed_latency_none",
            "exposed_latency_l2pf",
            "exposed_latency_decapf",
            "sw_prefetch_exposure",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    @property
    def cores(self) -> int:
        """Active core count."""
        return self.machine.cores

    @property
    def frequency_hz(self) -> float:
        """Core clock frequency."""
        return self.machine.frequency_hz

    def bytes_per_cycle(self) -> float:
        """Aggregate memory bandwidth expressed in bytes per core cycle."""
        return self.machine.memory_bandwidth / self.machine.frequency_hz

    def per_core_bytes_per_cycle(self) -> float:
        """Fair-share bandwidth of one core, bytes per cycle."""
        return self.bytes_per_cycle() / self.machine.cores

    def with_machine(self, machine: MachineSpec) -> "SimSystem":
        """A copy of this system with a different machine description."""
        return replace(self, machine=machine)

    def with_cores(self, cores: int) -> "SimSystem":
        """A copy with a different active core count (Figure 14 sweeps)."""
        return replace(self, machine=self.machine.with_cores(cores))


def hbm_system(cores: int = 56) -> SimSystem:
    """The paper's HBM-equipped 56-core SPR simulation target."""
    return SimSystem(machine=spr_hbm(cores))


def ddr_system(cores: int = 56) -> SimSystem:
    """The paper's DDR5-equipped 56-core SPR simulation target."""
    return SimSystem(machine=spr_ddr(cores))
