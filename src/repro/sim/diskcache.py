"""Disk-backed spill store for the simulation cache.

The in-memory LRU in :mod:`repro.sim.cache` dies with the process, so
every CLI invocation starts cold and a thousand-configuration DSE sweep
re-pays every simulation after a restart. This module is the second
tier: a content-addressed, versioned, on-disk store of ``SimResult``
entries keyed by the very same :func:`repro.sim.cache.simulation_key`.

Layout and entry format
-----------------------

A cache directory is sharded two levels deep::

    <root>/
      v1-<fingerprint>/          one schema generation (see below)
        ab/                      first two hex chars of the key digest
          ab3f...e1.pkl          one pickled entry
          .ab3f...e1.<pid>.tmp   in-flight write (never read)

Each ``.pkl`` file is a pickle of ``{"format", "fingerprint", "key",
"value"}``. The key is stored alongside the value and compared on load,
so a (vanishingly unlikely) digest collision — or a corrupted file that
still unpickles — degrades to a miss, never a wrong result.

Keys are hashed with :func:`key_digest`: a canonical, process-stable
serialization of the nested key tuple (dataclasses by qualified name
and field values, floats by ``float.hex()``, arrays by dtype + shape +
raw buffer) fed through SHA-256. Unlike ``hash()``, the digest is
stable across interpreter runs (no ``PYTHONHASHSEED`` dependence), so
two processes — or two runs a week apart — address the same entry file.

Versioning contract
-------------------

The schema directory name embeds :data:`ENTRY_FORMAT_VERSION` plus a
fingerprint of the dataclass shapes an entry transitively contains
(``SimResult``, ``PipelineTrace``, ``UtilizationReport``, ``SimSystem``,
``MachineSpec``). Changing any of those fields — or bumping the format
version — changes the directory name, so stale entries from an older
code generation are simply never looked at; they are invalidated by
construction rather than by deserialization failure.

Concurrency
-----------

Writers are safe against each other and against readers: an entry is
written to a unique temporary file in its final directory and published
with :func:`os.replace` (atomic on POSIX), so a reader only ever sees
absent or complete files. Two processes racing on the same key both
write the same bytes and the second rename wins harmlessly — entries
are content-addressed and simulations are pure. Truncated or otherwise
corrupted files (e.g. a copy of a crashed run's directory) are treated
as misses and cleaned up best-effort.

Garbage collection
------------------

The store is no longer append-only: :func:`prune_cache_dir` trims a
cache directory to a byte budget and/or a maximum entry age, evicting
least-recently-*used* entries first. "Used" is tracked through the
entry file's mtime — :meth:`DiskCache.load` touches the file on every
hit (best-effort), so a warm entry that keeps serving sweeps outlives
a colder, older one even if it was written first. Stale in-flight
``.tmp`` files (crashed writers) and entries from *older schema
generations* (whose directory name no longer matches the running code)
are reclaimed as part of any prune. The CLI front doors are
``repro cache prune`` and the ``REPRO_CACHE_MAX_BYTES`` environment
variable, which bounds the directory at attach time on every cached
invocation.

Trust boundary
--------------

Entries are pickled Python objects, and unpickling executes code by
design — the corruption handling above protects against *accidents*,
not adversaries. Point the cache directory only at paths you trust as
much as the code itself (a directory under your home, a project-local
path): a world-writable location shared with untrusted users would let
them plant a pickle that runs arbitrary code in your next sweep.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.diskindex import (
    INDEX_NAME,
    DiskCacheIndex,
    pack_dir,
    read_pack_payload,
    scan_pack,
    write_pack,
)

#: Bump when the on-disk entry layout itself changes (the pickle payload
#: shape, the digest algorithm, the shard scheme). Field-level changes to
#: the cached dataclasses are caught by the schema fingerprint instead.
ENTRY_FORMAT_VERSION = 1

#: Pickle protocol for entries. Protocol 4 is the newest one supported by
#: every Python this package targets; pinning it keeps an entry written
#: by a newer interpreter readable by an older one.
_PICKLE_PROTOCOL = 4

#: :meth:`DiskCache.store_batch` group-commits into a pack only when at
#: least this many *new* entries are in the delta; smaller deltas take
#: the per-entry path (a pack per two entries would fragment the store
#: without amortizing anything).
PACK_MIN_ENTRIES = 8

#: Environment escape hatch: any value other than empty or ``"0"``
#: routes every delta commit through the per-entry path (mirrors
#: ``REPRO_NO_BATCH`` / ``REPRO_NO_PREFETCH``).
PACK_DISABLE_ENV = "REPRO_NO_PACK"


def packing_enabled() -> bool:
    """Whether delta commits may use the pack format."""
    env = os.environ.get(PACK_DISABLE_ENV, "")
    return not env or env == "0"


def _update_hash(hasher: "hashlib._Hash", value: Any) -> None:
    """Feed one key component into ``hasher``, canonically.

    Every branch writes a distinct tag byte plus a length-prefixed or
    fixed-width payload, so structurally different keys can never
    serialize to the same byte stream (``("ab", "c")`` vs ``("a", "bc")``).
    """
    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        data = str(value).encode()
        hasher.update(b"I%d:" % len(data) + data)
    elif isinstance(value, float):
        # float.hex() is exact and round-trippable, and spells nan/inf
        # deterministically (-0.0 and 0.0 also differ, as wanted).
        data = value.hex().encode()
        hasher.update(b"F%d:" % len(data) + data)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        hasher.update(b"S%d:" % len(data) + data)
    elif isinstance(value, bytes):
        hasher.update(b"Y%d:" % len(value) + value)
    elif isinstance(value, enum.Enum):
        hasher.update(b"E")
        _update_hash(hasher, type(value).__qualname__)
        _update_hash(hasher, value.value)
    elif is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        hasher.update(b"D")
        _update_hash(hasher, f"{cls.__module__}.{cls.__qualname__}")
        for field in fields(value):
            _update_hash(hasher, field.name)
            _update_hash(hasher, getattr(value, field.name))
    elif isinstance(value, (tuple, list)):
        hasher.update(b"T%d:" % len(value))
        for item in value:
            _update_hash(hasher, item)
    elif isinstance(value, np.ndarray):
        hasher.update(b"A")
        _update_hash(hasher, value.dtype.str)
        _update_hash(hasher, list(value.shape))
        hasher.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, np.generic):
        _update_hash(hasher, value.item())
    else:
        raise TypeError(
            f"cannot canonically serialize {type(value)!r} for a disk "
            "cache digest"
        )


def _compute_digest(key: Hashable) -> str:
    hasher = hashlib.sha256()
    _update_hash(hasher, key)
    return hasher.hexdigest()


#: Digest memo keyed by object identity, NOT equality: Python collapses
#: ``1 == 1.0 == True`` but their canonical serializations differ, so an
#: equality-keyed cache would hand back the wrong digest. Entries hold a
#: strong reference to the key, so an id can't be recycled while its
#: memo entry is alive.
_DIGEST_MEMO_MAX = 4096
_digest_memo: Dict[int, Tuple[Any, str]] = {}
_digest_memo_lock = threading.Lock()


def key_digest(key: Hashable) -> str:
    """SHA-256 hex digest of a simulation key, stable across processes.

    The canonical serialization walks the whole key structure, which is
    the dominant cost of a containment probe, so digests are memoized by
    key identity (sweeps probe the same key objects many times: cache
    dicts and entry batches keep them alive). An unserializable key
    raises ``TypeError``, which callers treat as memory-only.
    """
    memo = _digest_memo.get(id(key))
    if memo is not None and memo[0] is key:
        return memo[1]
    digest = _compute_digest(key)
    with _digest_memo_lock:
        if len(_digest_memo) >= _DIGEST_MEMO_MAX:
            _digest_memo.clear()
        _digest_memo[id(key)] = (key, digest)
    return digest


_SCHEMA_FINGERPRINT: Optional[str] = None


def schema_fingerprint() -> str:
    """A short fingerprint of the dataclass shapes a cached entry holds.

    Hashes every field name and annotation of ``SimResult`` and the
    types it transitively embeds. Adding, removing, renaming, or
    re-typing a field changes the fingerprint — and with it the schema
    directory name — so old entries are invalidated wholesale without
    ever being read. (Imports are local to dodge the import cycle:
    ``pipeline`` imports ``cache`` which imports this module.)
    """
    global _SCHEMA_FINGERPRINT
    if _SCHEMA_FINGERPRINT is None:
        from repro.core.machine import MachineSpec
        from repro.sim.pipeline import PipelineTrace, SimResult
        from repro.sim.stats import UtilizationReport
        from repro.sim.system import SimSystem

        parts = []
        for cls in (
            SimResult, PipelineTrace, UtilizationReport, SimSystem,
            MachineSpec,
        ):
            shape = ",".join(
                f"{field.name}:{field.type}" for field in fields(cls)
            )
            parts.append(f"{cls.__qualname__}({shape})")
        blob = ";".join(parts).encode("utf-8")
        _SCHEMA_FINGERPRINT = hashlib.sha256(blob).hexdigest()[:12]
    return _SCHEMA_FINGERPRINT


def encode_entry_payload(key: Hashable, value: Any) -> bytes:
    """One entry serialized in the exact on-disk payload format.

    These bytes are what :meth:`DiskCache.store_batch` writes into pack
    files and what :meth:`DiskCache.store` pickles into loose ``.pkl``
    entries — so they can travel over any transport (the socket
    executor ships them verbatim as hash-sharded deltas) and land on a
    remote host's disk tier without re-encoding. Raises
    ``pickle.PicklingError`` for unpicklable values.
    """
    return pickle.dumps(
        {
            "format": ENTRY_FORMAT_VERSION,
            "fingerprint": schema_fingerprint(),
            "key": key,
            "value": value,
        },
        protocol=_PICKLE_PROTOCOL,
    )


def decode_entry_payload(payload: bytes) -> Tuple[Hashable, Any]:
    """The ``(key, value)`` inside one encoded entry payload.

    Validates the same invariants :meth:`DiskCache.load` checks —
    payload shape, format version, schema fingerprint — and raises
    ``ValueError`` on any mismatch, so a foreign or stale shard
    received over the wire degrades to recompute instead of poisoning
    the cache.
    """
    obj = pickle.loads(payload)
    if (
        not isinstance(obj, dict)
        or obj.get("format") != ENTRY_FORMAT_VERSION
        or obj.get("fingerprint") != schema_fingerprint()
        or "key" not in obj
        or "value" not in obj
    ):
        raise ValueError("unrecognized entry payload")
    return obj["key"], obj["value"]


@dataclass(frozen=True)
class DiskCacheStats:
    """Counters of one :class:`DiskCache` instance (this process only).

    ``stores`` counts every persisted entry regardless of route;
    ``pack_commits`` counts group commits (one per pack file written)
    and ``packed_stores`` the entries that travelled inside them, so
    ``stores - packed_stores`` is the per-entry ``tmp+rename`` traffic.
    """

    hits: int
    misses: int
    errors: int
    stores: int
    skipped_stores: int
    pack_commits: int = 0
    packed_stores: int = 0

    def since(self, before: "DiskCacheStats") -> "DiskCacheStats":
        """The counter movement between ``before`` and this snapshot
        (every field is a counter; per-request reporting in the serve
        daemon)."""
        return DiskCacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            errors=self.errors - before.errors,
            stores=self.stores - before.stores,
            skipped_stores=self.skipped_stores - before.skipped_stores,
            pack_commits=self.pack_commits - before.pack_commits,
            packed_stores=self.packed_stores - before.packed_stores,
        )


class DiskCache:
    """One directory of content-addressed simulation entries.

    Raises ``OSError`` if the directory cannot be created or written
    (callers wanting the warn-and-degrade behavior use
    :func:`open_disk_cache`).
    """

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)
        self._dir = (
            self.root / f"v{ENTRY_FORMAT_VERSION}-{schema_fingerprint()}"
        )
        self._dir.mkdir(parents=True, exist_ok=True)
        # Probe writability up front so an unwritable mount degrades at
        # configuration time, not in the middle of a sweep.
        probe_fd, probe_path = tempfile.mkstemp(
            prefix=".probe.", suffix=".tmp", dir=self._dir
        )
        os.close(probe_fd)
        os.unlink(probe_path)
        # Counter lock only: file operations themselves are safe via
        # atomic rename, but SimulationCache calls load()/store()
        # outside its own lock, so the diagnostics need their own.
        self._counter_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._errors = 0
        self._stores = 0
        self._skipped_stores = 0
        self._pack_commits = 0
        self._packed_stores = 0
        # The persistent manifest: loaded once here instead of stat-ing
        # per entry, appended on store, rebuilt from a directory walk
        # when absent or corrupt. Advisory throughout — every consumer
        # below falls back to the directory when it disagrees.
        self._index = DiskCacheIndex.attach(self._dir, schema_fingerprint())

    def _count(self, counter: str) -> None:
        with self._counter_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    @property
    def schema_dir(self) -> Path:
        """The versioned directory current-generation entries live in."""
        return self._dir

    @property
    def index(self) -> DiskCacheIndex:
        """The persistent manifest (advisory; the store is the truth)."""
        return self._index

    def entry_path(self, key: Hashable) -> Path:
        """Where ``key``'s *loose* entry lives (whether or not it exists
        yet; the entry may instead live inside a pack — see
        :meth:`store_batch`)."""
        digest = key_digest(key)
        return self._dir / digest[:2] / f"{digest}.pkl"

    def contains(self, key: Hashable) -> bool:
        """Whether an entry for ``key`` exists (no load, no counters).

        Resolved against the in-memory index first (a dictionary probe,
        no I/O); a negative answer re-reads the manifest tail once (a
        concurrent process may have stored since) and finally falls
        back to the loose-file ``stat`` the pre-index code used, so a
        lost index record degrades to the old cost, never to a wrong
        ``False`` for a loose entry. A stale ``True`` (e.g. a corrupt
        file behind an index record) is harmless: the excluded cell
        simply takes the normal per-cell lookup path, which detects the
        corruption and recomputes.
        """
        try:
            digest = key_digest(key)
        except TypeError:
            # Same contract as load(): a key the canonical serializer
            # can't digest lives memory-only.
            return False
        return self._contains_digest(digest)

    def _contains_digest(self, digest: str) -> bool:
        if self._index.contains(digest):
            return True
        self._index.refresh()
        if self._index.contains(digest):
            return True
        return (self._dir / digest[:2] / f"{digest}.pkl").is_file()

    def load(self, key: Hashable, count: bool = True) -> Optional[Any]:
        """The stored value for ``key``, or ``None``.

        Packed entries are read straight out of their pack segment (one
        seek + read); loose entries from their ``.pkl`` file. Any
        failure mode — missing file, truncated pickle, foreign payload,
        key mismatch after a digest collision — is a miss; corrupt
        loose files are removed best-effort, corrupt pack records are
        dropped from the index, and a packed read that fails falls back
        to the loose path before giving up. ``count=False`` performs
        the same load without moving the hit/miss counters — the
        prefetch path, which warms entries *ahead* of lookups and must
        not make one lookup count twice.
        """
        try:
            digest = key_digest(key)
        except TypeError:
            # A hashable key component the canonical serializer doesn't
            # know (possible through the public `extra` slot): such keys
            # live memory-only rather than failing the lookup.
            if count:
                self._count("_misses")
            return None
        record = self._index.get(digest)
        if record is not None and record.packed:
            try:
                payload = pickle.loads(
                    read_pack_payload(
                        self._dir, record.pack, record.offset, record.length
                    )
                )
                value = self._validate_payload(payload, key)
            except Exception:
                # Damaged pack region (or a pack another process
                # compacted away): drop the record and try loose.
                if count:
                    self._count("_errors")
                self._index.record_remove(digest)
            else:
                self._index.record_touch(digest, time.time())
                if count:
                    self._count("_hits")
                return value
        path = self._dir / digest[:2] / f"{digest}.pkl"
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            value = self._validate_payload(payload, key)
        except FileNotFoundError:
            if record is not None and not record.packed:
                self._index.record_remove(digest)  # stale manifest line
            if count:
                self._count("_misses")
            return None
        except Exception:
            # A torn copy, a truncated write from a crashed run, or a
            # hand-edited file: recompute rather than crash the sweep.
            if count:
                self._count("_errors")
            try:
                os.unlink(path)
            except OSError:
                pass
            self._index.record_remove(digest)
            return None
        try:
            # LRU bookkeeping for prune_cache_dir: a hit refreshes the
            # entry's mtime so recently *used* entries outlive recently
            # *written* ones under a byte budget. Best-effort — a
            # read-only directory still serves hits, it just ages.
            os.utime(path, None)
        except OSError:
            pass
        self._index.record_touch(digest, time.time())
        if count:
            self._count("_hits")
        return value

    @staticmethod
    def _validate_payload(payload: Any, key: Hashable) -> Any:
        """The value inside one unpickled entry payload (or raise)."""
        if (
            not isinstance(payload, dict)
            or payload.get("format") != ENTRY_FORMAT_VERSION
            or payload.get("fingerprint") != schema_fingerprint()
        ):
            raise ValueError("unrecognized entry payload")
        if payload["key"] != key:
            raise ValueError("entry key does not match its digest")
        return payload["value"]

    def store(self, key: Hashable, value: Any) -> bool:
        """Persist ``value`` under ``key``; returns whether bytes moved.

        Entries are immutable (pure-function results), so an existing
        entry — loose or packed — is left alone. The write lands in a
        unique temp file next to its final path and is published with
        an atomic rename, so concurrent writers and readers never
        observe partial entries; the manifest learns about it with one
        appended line.
        """
        try:
            digest = key_digest(key)
        except TypeError:
            # Same contract as load(): a key the canonical serializer
            # can't digest stays memory-only.
            self._count("_errors")
            return False
        if self._contains_digest(digest):
            self._count("_skipped_stores")
            return False
        path = self._dir / digest[:2] / f"{digest}.pkl"
        payload = {
            "format": ENTRY_FORMAT_VERSION,
            "fingerprint": schema_fingerprint(),
            "key": key,
            "value": value,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=f".{path.stem}.{os.getpid()}.", suffix=".tmp",
                dir=path.parent,
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=_PICKLE_PROTOCOL)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # A full disk or an unpicklable stowaway must not kill the
            # sweep; the entry simply stays memory-only.
            self._count("_errors")
            return False
        try:
            stat = path.stat()
            self._index.record_store(digest, stat.st_size, stat.st_mtime)
        except OSError:
            pass  # advisory — the next attach rebuilds from the walk
        self._count("_stores")
        return True

    def store_batch(self, items: Sequence[Tuple[Hashable, Any]]) -> int:
        """Group-commit a delta of ``(key, value)`` pairs; entries written.

        Entries already on disk (either format) are skipped exactly as
        :meth:`store` skips them. When enough new entries remain
        (:data:`PACK_MIN_ENTRIES`) and packing is not disabled
        (:data:`PACK_DISABLE_ENV`), the whole delta lands as **one**
        pack file — one buffered write, one ``fsync``, one rename, one
        manifest append — instead of N ``tmp+rename`` round-trips.
        Small deltas, disabled packing, or a pack-write failure fall
        back to the per-entry path; either way the loaded-back bytes
        are identical (the pack payload *is* the loose pickle).
        """
        fresh: List[Tuple[str, Hashable, Any]] = []
        seen: set = set()
        for key, value in items:
            try:
                digest = key_digest(key)
            except TypeError:
                self._count("_errors")
                continue
            if digest in seen:
                continue
            seen.add(digest)
            if self._contains_digest(digest):
                self._count("_skipped_stores")
                continue
            fresh.append((digest, key, value))
        if not fresh:
            return 0
        if len(fresh) < PACK_MIN_ENTRIES or not packing_enabled():
            return sum(
                1 for _digest, key, value in fresh if self.store(key, value)
            )
        try:
            payloads = [
                (digest, encode_entry_payload(key, value))
                for digest, key, value in fresh
            ]
            pack_name, locations = write_pack(self._dir, payloads)
        except (OSError, pickle.PicklingError):
            # Same degradation as store(): a failed group commit must
            # not lose the delta — retry entry by entry.
            return sum(
                1 for _digest, key, value in fresh if self.store(key, value)
            )
        self._index.record_pack(pack_name, locations, time.time())
        with self._counter_lock:
            self._stores += len(fresh)
            self._packed_stores += len(fresh)
            self._pack_commits += 1
        return len(fresh)

    def entry_count(self) -> int:
        """Number of complete entries in the current schema generation
        (loose and packed; resolved through the manifest)."""
        self._index.refresh()
        return self._index.entry_count()

    def storage_snapshot(self) -> Dict[str, Any]:
        """On-disk shape of the current schema generation (one walk).

        The observability surface behind ``repro cache stats`` and the
        serve daemon's status report: loose/packed entry counts, pack
        and index file counts and sizes, and total bytes. Counts come
        from the directory (the truth), not the manifest — the
        ``index_entries`` field lets the two be compared.
        """
        self._index.refresh()
        loose_entries = loose_bytes = 0
        for path in self._dir.glob("*/*.pkl"):
            try:
                loose_bytes += path.stat().st_size
            except OSError:
                continue
            loose_entries += 1
        pack_files = pack_bytes = packed_entries = 0
        packs = pack_dir(self._dir)
        if packs.is_dir():
            for path in packs.glob("*.pack"):
                try:
                    pack_bytes += path.stat().st_size
                except OSError:
                    continue
                pack_files += 1
                packed_entries += sum(1 for _ in scan_pack(path))
        try:
            index_bytes = self._index.path.stat().st_size
        except OSError:
            index_bytes = 0
        return {
            "root": str(self.root),
            "schema_dir": str(self._dir),
            "loose_entries": loose_entries,
            "loose_bytes": loose_bytes,
            "pack_files": pack_files,
            "packed_entries": packed_entries,
            "pack_bytes": pack_bytes,
            "index_entries": self._index.entry_count(),
            "index_bytes": index_bytes,
            "total_bytes": loose_bytes + pack_bytes + index_bytes,
        }

    def stats(self) -> DiskCacheStats:
        """A snapshot of this instance's counters."""
        return DiskCacheStats(
            hits=self._hits,
            misses=self._misses,
            errors=self._errors,
            stores=self._stores,
            skipped_stores=self._skipped_stores,
            pack_commits=self._pack_commits,
            packed_stores=self._packed_stores,
        )


#: In-flight writes live seconds; a ``.tmp`` file older than this is a
#: crashed writer's leftover and safe to reclaim.
STALE_TMP_AGE_S = 3600.0


@dataclass(frozen=True)
class PruneReport:
    """What one :func:`prune_cache_dir` pass scanned and removed."""

    scanned_entries: int
    scanned_bytes: int
    removed_entries: int
    removed_bytes: int
    removed_tmp_files: int
    kept_entries: int
    kept_bytes: int
    #: Pack files rewritten to drop evicted entries (a pack whose every
    #: entry was evicted is simply unlinked and not counted here).
    compacted_packs: int = 0

    def describe(self) -> str:
        """One human-readable summary line."""
        return (
            f"pruned {self.removed_entries} of {self.scanned_entries} "
            f"entries ({self.removed_bytes} of {self.scanned_bytes} bytes)"
            f"{f' + {self.removed_tmp_files} stale tmp file(s)' if self.removed_tmp_files else ''}"
            f"{f' + {self.compacted_packs} pack(s) compacted' if self.compacted_packs else ''}; "
            f"{self.kept_entries} entries / {self.kept_bytes} bytes kept"
        )


def _remove_empty_dirs(root: Path) -> None:
    """Best-effort removal of shard/schema dirs a prune emptied out."""
    for directory in sorted(
        (d for d in root.rglob("*") if d.is_dir()),
        key=lambda d: len(d.parts),
        reverse=True,
    ):
        try:
            directory.rmdir()  # fails (harmlessly) unless empty
        except OSError:
            pass


def _schema_fingerprint_of(directory: Path) -> str:
    """The fingerprint embedded in a schema directory's name."""
    name = directory.name
    return name.split("-", 1)[1] if "-" in name else ""


def prune_cache_dir(
    root: "Path | str",
    max_bytes: Optional[int] = None,
    max_age_s: Optional[float] = None,
    now: Optional[float] = None,
) -> PruneReport:
    """Trim a cache directory to a byte budget and/or a maximum age.

    Eviction is LRU by last use, never by write order: entries older
    than ``max_age_s`` go first unconditionally, then the oldest
    remaining entries are removed until the directory fits
    ``max_bytes``. The recency signal is the entry file's mtime for
    loose entries (loads refresh it) and the index's last-access time
    for packed entries (pack reads cannot touch a per-entry file — the
    manifest's touch records stand in). All schema generations under
    ``root`` are considered — entries from an older code generation are
    unreachable anyway and age out naturally (their recency stops
    refreshing). Stale in-flight ``.tmp`` files are always reclaimed.

    Packs participate entry-by-entry: a pack whose every entry is
    evicted is unlinked whole; a partially evicted pack is *compacted*
    — its surviving entries are rewritten into a fresh pack and the old
    file removed — so the byte budget is actually honored, not merely
    promised. Each touched schema generation's manifest is rebuilt
    afterwards (and deleted when the generation empties out).

    Every removal is best-effort: a file that vanishes mid-prune (a
    concurrent prune, a cleanup) is skipped, and a nonexistent ``root``
    yields an all-zero report. Returns a :class:`PruneReport`; the
    directory itself is never deleted, so a pruned cache keeps
    accepting new entries.
    """
    if max_bytes is not None and max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    if max_age_s is not None and max_age_s < 0:
        raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
    root = Path(root)
    if now is None:
        now = time.time()
    removed_tmp = 0
    # One work item per entry: (recency, size, descriptor); a
    # descriptor is ("loose", path) or ("packed", schema_dir, pack
    # name, offset, length).
    entries: List[Tuple[float, int, Tuple]] = []
    indexes: Dict[Path, DiskCacheIndex] = {}
    if root.is_dir():
        for path in root.rglob("*"):
            try:
                if not path.is_file():
                    continue
                stat = path.stat()
            except OSError:
                continue
            if path.name.endswith(".tmp"):
                if now - stat.st_mtime > STALE_TMP_AGE_S:
                    try:
                        path.unlink()
                        removed_tmp += 1
                    except OSError:
                        pass
                continue
            if path.suffix == ".pkl":
                entries.append(
                    (stat.st_mtime, stat.st_size, ("loose", path))
                )
        for schema_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            packs = pack_dir(schema_dir)
            if not packs.is_dir():
                continue
            index = DiskCacheIndex(
                schema_dir, _schema_fingerprint_of(schema_dir)
            )
            index.load()  # best-effort; atimes default to pack mtime
            indexes[schema_dir] = index
            for path in sorted(packs.glob("*.pack")):
                try:
                    pack_mtime = path.stat().st_mtime
                except OSError:
                    continue
                for digest, offset, length in scan_pack(path):
                    record = index.get(digest)
                    atime = (
                        record.atime
                        if record is not None and record.atime > pack_mtime
                        else pack_mtime
                    )
                    entries.append(
                        (
                            atime,
                            length,
                            ("packed", schema_dir, path.name, offset, length),
                        )
                    )
    entries.sort(key=lambda item: item[0])  # oldest (least recent) first
    scanned = len(entries)
    scanned_bytes = sum(size for _, size, _ in entries)
    victims = []
    survivors = []
    for recency, size, descriptor in entries:
        if max_age_s is not None and now - recency > max_age_s:
            victims.append((size, descriptor))
        else:
            survivors.append((size, descriptor))
    if max_bytes is not None:
        kept_bytes = sum(size for size, _ in survivors)
        index_pos = 0  # survivors are still oldest-first
        while kept_bytes > max_bytes and index_pos < len(survivors):
            size, descriptor = survivors[index_pos]
            victims.append((size, descriptor))
            kept_bytes -= size
            index_pos += 1
        survivors = survivors[index_pos:]
    removed = removed_bytes = 0
    touched_dirs: set = set()
    # Loose victims: plain unlinks.
    packed_victims: Dict[Tuple[Path, str], set] = {}
    for size, descriptor in victims:
        if descriptor[0] == "loose":
            _kind, path = descriptor
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            removed_bytes += size
            # .../<schema_dir>/<shard>/<digest>.pkl
            touched_dirs.add(path.parent.parent)
        else:
            _kind, schema_dir, pack_name, offset, _length = descriptor
            packed_victims.setdefault((schema_dir, pack_name), set()).add(
                offset
            )
    # Packed victims: unlink fully dead packs, compact the rest.
    compacted = 0
    for (schema_dir, pack_name), dead_offsets in packed_victims.items():
        path = pack_dir(schema_dir) / pack_name
        records = list(scan_pack(path))
        dead = [r for r in records if r[1] in dead_offsets]
        keep = [r for r in records if r[1] not in dead_offsets]
        try:
            if keep:
                payloads = [
                    (
                        digest,
                        read_pack_payload(schema_dir, pack_name, offset, length),
                    )
                    for digest, offset, length in keep
                ]
                write_pack(schema_dir, payloads)
                compacted += 1
            path.unlink()
        except OSError:
            continue  # pack left whole; its entries simply survive
        removed += len(dead)
        removed_bytes += sum(length for _, _, length in dead)
        touched_dirs.add(schema_dir)
    # Rebuild each touched generation's manifest from the new on-disk
    # truth (preserving known access times); an emptied generation
    # drops its manifest so the directory tree can be cleaned fully.
    for schema_dir in sorted(touched_dirs):
        index = indexes.get(schema_dir)
        if index is None:
            if not (schema_dir / INDEX_NAME).is_file():
                continue  # pre-index legacy dir: nothing to maintain
            index = DiskCacheIndex(
                schema_dir, _schema_fingerprint_of(schema_dir)
            )
            index.load()
        if index.rebuild() == 0:
            try:
                index.path.unlink()
            except OSError:
                pass
    if removed or removed_tmp:
        _remove_empty_dirs(root)
    return PruneReport(
        scanned_entries=scanned,
        scanned_bytes=scanned_bytes,
        removed_entries=removed,
        removed_bytes=removed_bytes,
        removed_tmp_files=removed_tmp,
        kept_entries=scanned - removed,
        kept_bytes=scanned_bytes - removed_bytes,
        compacted_packs=compacted,
    )


def open_disk_cache(root: "Path | str") -> Optional[DiskCache]:
    """Open (creating if needed) a disk cache, degrading to ``None``.

    An unusable directory — unwritable, a file in the way, a read-only
    mount — emits a ``RuntimeWarning`` and returns ``None`` so callers
    fall back to memory-only caching instead of failing the run.
    """
    try:
        return DiskCache(root)
    except OSError as error:
        warnings.warn(
            f"simulation cache directory {str(root)!r} is not usable "
            f"({error}); continuing with the in-memory cache only",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
