"""Disk-backed spill store for the simulation cache.

The in-memory LRU in :mod:`repro.sim.cache` dies with the process, so
every CLI invocation starts cold and a thousand-configuration DSE sweep
re-pays every simulation after a restart. This module is the second
tier: a content-addressed, versioned, on-disk store of ``SimResult``
entries keyed by the very same :func:`repro.sim.cache.simulation_key`.

Layout and entry format
-----------------------

A cache directory is sharded two levels deep::

    <root>/
      v1-<fingerprint>/          one schema generation (see below)
        ab/                      first two hex chars of the key digest
          ab3f...e1.pkl          one pickled entry
          .ab3f...e1.<pid>.tmp   in-flight write (never read)

Each ``.pkl`` file is a pickle of ``{"format", "fingerprint", "key",
"value"}``. The key is stored alongside the value and compared on load,
so a (vanishingly unlikely) digest collision — or a corrupted file that
still unpickles — degrades to a miss, never a wrong result.

Keys are hashed with :func:`key_digest`: a canonical, process-stable
serialization of the nested key tuple (dataclasses by qualified name
and field values, floats by ``float.hex()``, arrays by dtype + shape +
raw buffer) fed through SHA-256. Unlike ``hash()``, the digest is
stable across interpreter runs (no ``PYTHONHASHSEED`` dependence), so
two processes — or two runs a week apart — address the same entry file.

Versioning contract
-------------------

The schema directory name embeds :data:`ENTRY_FORMAT_VERSION` plus a
fingerprint of the dataclass shapes an entry transitively contains
(``SimResult``, ``PipelineTrace``, ``UtilizationReport``, ``SimSystem``,
``MachineSpec``). Changing any of those fields — or bumping the format
version — changes the directory name, so stale entries from an older
code generation are simply never looked at; they are invalidated by
construction rather than by deserialization failure.

Concurrency
-----------

Writers are safe against each other and against readers: an entry is
written to a unique temporary file in its final directory and published
with :func:`os.replace` (atomic on POSIX), so a reader only ever sees
absent or complete files. Two processes racing on the same key both
write the same bytes and the second rename wins harmlessly — entries
are content-addressed and simulations are pure. Truncated or otherwise
corrupted files (e.g. a copy of a crashed run's directory) are treated
as misses and cleaned up best-effort.

Garbage collection
------------------

The store is no longer append-only: :func:`prune_cache_dir` trims a
cache directory to a byte budget and/or a maximum entry age, evicting
least-recently-*used* entries first. "Used" is tracked through the
entry file's mtime — :meth:`DiskCache.load` touches the file on every
hit (best-effort), so a warm entry that keeps serving sweeps outlives
a colder, older one even if it was written first. Stale in-flight
``.tmp`` files (crashed writers) and entries from *older schema
generations* (whose directory name no longer matches the running code)
are reclaimed as part of any prune. The CLI front doors are
``repro cache prune`` and the ``REPRO_CACHE_MAX_BYTES`` environment
variable, which bounds the directory at attach time on every cached
invocation.

Trust boundary
--------------

Entries are pickled Python objects, and unpickling executes code by
design — the corruption handling above protects against *accidents*,
not adversaries. Point the cache directory only at paths you trust as
much as the code itself (a directory under your home, a project-local
path): a world-writable location shared with untrusted users would let
them plant a pickle that runs arbitrary code in your next sweep.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Hashable, Optional

import numpy as np

#: Bump when the on-disk entry layout itself changes (the pickle payload
#: shape, the digest algorithm, the shard scheme). Field-level changes to
#: the cached dataclasses are caught by the schema fingerprint instead.
ENTRY_FORMAT_VERSION = 1

#: Pickle protocol for entries. Protocol 4 is the newest one supported by
#: every Python this package targets; pinning it keeps an entry written
#: by a newer interpreter readable by an older one.
_PICKLE_PROTOCOL = 4


def _update_hash(hasher: "hashlib._Hash", value: Any) -> None:
    """Feed one key component into ``hasher``, canonically.

    Every branch writes a distinct tag byte plus a length-prefixed or
    fixed-width payload, so structurally different keys can never
    serialize to the same byte stream (``("ab", "c")`` vs ``("a", "bc")``).
    """
    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        data = str(value).encode()
        hasher.update(b"I%d:" % len(data) + data)
    elif isinstance(value, float):
        # float.hex() is exact and round-trippable, and spells nan/inf
        # deterministically (-0.0 and 0.0 also differ, as wanted).
        data = value.hex().encode()
        hasher.update(b"F%d:" % len(data) + data)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        hasher.update(b"S%d:" % len(data) + data)
    elif isinstance(value, bytes):
        hasher.update(b"Y%d:" % len(value) + value)
    elif isinstance(value, enum.Enum):
        hasher.update(b"E")
        _update_hash(hasher, type(value).__qualname__)
        _update_hash(hasher, value.value)
    elif is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        hasher.update(b"D")
        _update_hash(hasher, f"{cls.__module__}.{cls.__qualname__}")
        for field in fields(value):
            _update_hash(hasher, field.name)
            _update_hash(hasher, getattr(value, field.name))
    elif isinstance(value, (tuple, list)):
        hasher.update(b"T%d:" % len(value))
        for item in value:
            _update_hash(hasher, item)
    elif isinstance(value, np.ndarray):
        hasher.update(b"A")
        _update_hash(hasher, value.dtype.str)
        _update_hash(hasher, list(value.shape))
        hasher.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, np.generic):
        _update_hash(hasher, value.item())
    else:
        raise TypeError(
            f"cannot canonically serialize {type(value)!r} for a disk "
            "cache digest"
        )


def key_digest(key: Hashable) -> str:
    """SHA-256 hex digest of a simulation key, stable across processes."""
    hasher = hashlib.sha256()
    _update_hash(hasher, key)
    return hasher.hexdigest()


_SCHEMA_FINGERPRINT: Optional[str] = None


def schema_fingerprint() -> str:
    """A short fingerprint of the dataclass shapes a cached entry holds.

    Hashes every field name and annotation of ``SimResult`` and the
    types it transitively embeds. Adding, removing, renaming, or
    re-typing a field changes the fingerprint — and with it the schema
    directory name — so old entries are invalidated wholesale without
    ever being read. (Imports are local to dodge the import cycle:
    ``pipeline`` imports ``cache`` which imports this module.)
    """
    global _SCHEMA_FINGERPRINT
    if _SCHEMA_FINGERPRINT is None:
        from repro.core.machine import MachineSpec
        from repro.sim.pipeline import PipelineTrace, SimResult
        from repro.sim.stats import UtilizationReport
        from repro.sim.system import SimSystem

        parts = []
        for cls in (
            SimResult, PipelineTrace, UtilizationReport, SimSystem,
            MachineSpec,
        ):
            shape = ",".join(
                f"{field.name}:{field.type}" for field in fields(cls)
            )
            parts.append(f"{cls.__qualname__}({shape})")
        blob = ";".join(parts).encode("utf-8")
        _SCHEMA_FINGERPRINT = hashlib.sha256(blob).hexdigest()[:12]
    return _SCHEMA_FINGERPRINT


@dataclass(frozen=True)
class DiskCacheStats:
    """Counters of one :class:`DiskCache` instance (this process only)."""

    hits: int
    misses: int
    errors: int
    stores: int
    skipped_stores: int

    def since(self, before: "DiskCacheStats") -> "DiskCacheStats":
        """The counter movement between ``before`` and this snapshot
        (every field is a counter; per-request reporting in the serve
        daemon)."""
        return DiskCacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            errors=self.errors - before.errors,
            stores=self.stores - before.stores,
            skipped_stores=self.skipped_stores - before.skipped_stores,
        )


class DiskCache:
    """One directory of content-addressed simulation entries.

    Raises ``OSError`` if the directory cannot be created or written
    (callers wanting the warn-and-degrade behavior use
    :func:`open_disk_cache`).
    """

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)
        self._dir = (
            self.root / f"v{ENTRY_FORMAT_VERSION}-{schema_fingerprint()}"
        )
        self._dir.mkdir(parents=True, exist_ok=True)
        # Probe writability up front so an unwritable mount degrades at
        # configuration time, not in the middle of a sweep.
        probe_fd, probe_path = tempfile.mkstemp(
            prefix=".probe.", suffix=".tmp", dir=self._dir
        )
        os.close(probe_fd)
        os.unlink(probe_path)
        # Counter lock only: file operations themselves are safe via
        # atomic rename, but SimulationCache calls load()/store()
        # outside its own lock, so the diagnostics need their own.
        self._counter_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._errors = 0
        self._stores = 0
        self._skipped_stores = 0

    def _count(self, counter: str) -> None:
        with self._counter_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    @property
    def schema_dir(self) -> Path:
        """The versioned directory current-generation entries live in."""
        return self._dir

    def entry_path(self, key: Hashable) -> Path:
        """Where ``key``'s entry lives (whether or not it exists yet)."""
        digest = key_digest(key)
        return self._dir / digest[:2] / f"{digest}.pkl"

    def contains(self, key: Hashable) -> bool:
        """Whether an entry file for ``key`` exists (no load, no counters).

        A pure stat-level probe used to exclude already-persisted cells
        from a batched stack. A ``True`` from a corrupt file is harmless:
        the excluded cell simply takes the normal per-cell lookup path,
        which detects the corruption and recomputes.
        """
        try:
            return self.entry_path(key).is_file()
        except TypeError:
            # Same contract as load(): a key the canonical serializer
            # can't digest lives memory-only.
            return False

    def load(self, key: Hashable) -> Optional[Any]:
        """The stored value for ``key``, or ``None``.

        Any failure mode — missing file, truncated pickle, foreign
        payload, key mismatch after a digest collision — is a miss;
        corrupt files are additionally removed best-effort so the next
        writer replaces them.
        """
        try:
            path = self.entry_path(key)
        except TypeError:
            # A hashable key component the canonical serializer doesn't
            # know (possible through the public `extra` slot): such keys
            # live memory-only rather than failing the lookup.
            self._count("_misses")
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("format") != ENTRY_FORMAT_VERSION
                or payload.get("fingerprint") != schema_fingerprint()
            ):
                raise ValueError("unrecognized entry payload")
            if payload["key"] != key:
                raise ValueError("entry key does not match its digest")
            value = payload["value"]
        except FileNotFoundError:
            self._count("_misses")
            return None
        except Exception:
            # A torn copy, a truncated write from a crashed run, or a
            # hand-edited file: recompute rather than crash the sweep.
            self._count("_errors")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            # LRU bookkeeping for prune_cache_dir: a hit refreshes the
            # entry's mtime so recently *used* entries outlive recently
            # *written* ones under a byte budget. Best-effort — a
            # read-only directory still serves hits, it just ages.
            os.utime(path, None)
        except OSError:
            pass
        self._count("_hits")
        return value

    def store(self, key: Hashable, value: Any) -> bool:
        """Persist ``value`` under ``key``; returns whether bytes moved.

        Entries are immutable (pure-function results), so an existing
        file is left alone. The write lands in a unique temp file next
        to its final path and is published with an atomic rename, so
        concurrent writers and readers never observe partial entries.
        """
        try:
            path = self.entry_path(key)
        except TypeError:
            # Same contract as load(): a key the canonical serializer
            # can't digest stays memory-only.
            self._count("_errors")
            return False
        if path.exists():
            self._count("_skipped_stores")
            return False
        payload = {
            "format": ENTRY_FORMAT_VERSION,
            "fingerprint": schema_fingerprint(),
            "key": key,
            "value": value,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=f".{path.stem}.{os.getpid()}.", suffix=".tmp",
                dir=path.parent,
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=_PICKLE_PROTOCOL)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # A full disk or an unpicklable stowaway must not kill the
            # sweep; the entry simply stays memory-only.
            self._count("_errors")
            return False
        self._count("_stores")
        return True

    def entry_count(self) -> int:
        """Number of complete entries in the current schema generation."""
        return sum(1 for _ in self._dir.glob("*/*.pkl"))

    def stats(self) -> DiskCacheStats:
        """A snapshot of this instance's counters."""
        return DiskCacheStats(
            hits=self._hits,
            misses=self._misses,
            errors=self._errors,
            stores=self._stores,
            skipped_stores=self._skipped_stores,
        )


#: In-flight writes live seconds; a ``.tmp`` file older than this is a
#: crashed writer's leftover and safe to reclaim.
STALE_TMP_AGE_S = 3600.0


@dataclass(frozen=True)
class PruneReport:
    """What one :func:`prune_cache_dir` pass scanned and removed."""

    scanned_entries: int
    scanned_bytes: int
    removed_entries: int
    removed_bytes: int
    removed_tmp_files: int
    kept_entries: int
    kept_bytes: int

    def describe(self) -> str:
        """One human-readable summary line."""
        return (
            f"pruned {self.removed_entries} of {self.scanned_entries} "
            f"entries ({self.removed_bytes} of {self.scanned_bytes} bytes)"
            f"{f' + {self.removed_tmp_files} stale tmp file(s)' if self.removed_tmp_files else ''}; "
            f"{self.kept_entries} entries / {self.kept_bytes} bytes kept"
        )


def _remove_empty_dirs(root: Path) -> None:
    """Best-effort removal of shard/schema dirs a prune emptied out."""
    for directory in sorted(
        (d for d in root.rglob("*") if d.is_dir()),
        key=lambda d: len(d.parts),
        reverse=True,
    ):
        try:
            directory.rmdir()  # fails (harmlessly) unless empty
        except OSError:
            pass


def prune_cache_dir(
    root: "Path | str",
    max_bytes: Optional[int] = None,
    max_age_s: Optional[float] = None,
    now: Optional[float] = None,
) -> PruneReport:
    """Trim a cache directory to a byte budget and/or a maximum age.

    Eviction is LRU by mtime (loads refresh mtime, so "least recently
    used", not "least recently written"): entries older than
    ``max_age_s`` go first unconditionally, then the oldest remaining
    entries are removed until the directory fits ``max_bytes``. All
    schema generations under ``root`` are considered — entries from an
    older code generation are unreachable anyway and age out naturally
    (their mtimes stop refreshing). Stale in-flight ``.tmp`` files are
    always reclaimed. Every removal is best-effort: a file that
    vanishes mid-prune (a concurrent prune, a cleanup) is skipped, and
    a nonexistent ``root`` yields an all-zero report.

    Returns a :class:`PruneReport`; the directory itself is never
    deleted, so a pruned cache keeps accepting new entries.
    """
    if max_bytes is not None and max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    if max_age_s is not None and max_age_s < 0:
        raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
    root = Path(root)
    if now is None:
        now = time.time()
    removed_tmp = 0
    entries = []  # (mtime, size, path)
    if root.is_dir():
        for path in root.rglob("*"):
            try:
                if not path.is_file():
                    continue
                stat = path.stat()
            except OSError:
                continue
            if path.name.endswith(".tmp"):
                if now - stat.st_mtime > STALE_TMP_AGE_S:
                    try:
                        path.unlink()
                        removed_tmp += 1
                    except OSError:
                        pass
                continue
            if path.suffix == ".pkl":
                entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort(key=lambda item: item[0])  # oldest (least recent) first
    scanned = len(entries)
    scanned_bytes = sum(size for _, size, _ in entries)
    victims = []
    survivors = []
    for mtime, size, path in entries:
        if max_age_s is not None and now - mtime > max_age_s:
            victims.append((size, path))
        else:
            survivors.append((size, path))
    if max_bytes is not None:
        kept_bytes = sum(size for size, _ in survivors)
        index = 0  # survivors are still oldest-first
        while kept_bytes > max_bytes and index < len(survivors):
            size, path = survivors[index]
            victims.append((size, path))
            kept_bytes -= size
            index += 1
        survivors = survivors[index:]
    removed = removed_bytes = 0
    for size, path in victims:
        try:
            path.unlink()
        except OSError:
            continue
        removed += 1
        removed_bytes += size
    if removed or removed_tmp:
        _remove_empty_dirs(root)
    return PruneReport(
        scanned_entries=scanned,
        scanned_bytes=scanned_bytes,
        removed_entries=removed,
        removed_bytes=removed_bytes,
        removed_tmp_files=removed_tmp,
        kept_entries=scanned - removed,
        kept_bytes=scanned_bytes - removed_bytes,
    )


def open_disk_cache(root: "Path | str") -> Optional[DiskCache]:
    """Open (creating if needed) a disk cache, degrading to ``None``.

    An unusable directory — unwritable, a file in the way, a read-only
    mount — emits a ``RuntimeWarning`` and returns ``None`` so callers
    fall back to memory-only caching instead of failing the run.
    """
    try:
        return DiskCache(root)
    except OSError as error:
        warnings.warn(
            f"simulation cache directory {str(root)!r} is not usable "
            f"({error}); continuing with the in-memory cache only",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
