"""A minimal discrete-event engine.

Used by the exact multi-core simulation backend: each core is a coroutine-
like state machine that schedules its next step, and the engine advances
global time in event order. Kept deliberately small — the heavy lifting in
this library happens in the tile-stream recurrences.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class EventEngine:
    """A heap-ordered discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callback]] = []

    @property
    def now(self) -> float:
        """Current simulation time (cycles)."""
        return self._now

    def schedule_at(self, when: float, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self._now}"
            )
        heapq.heappush(self._queue, (when, self._sequence, callback))
        self._sequence += 1

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self._now + delay, callback)

    def run(self, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains; returns the final time."""
        processed = 0
        while self._queue:
            when, _seq, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"event budget of {max_events} exceeded; likely a "
                    "scheduling loop"
                )
        return self._now

    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)
