"""Memoization for tile-stream simulations.

Every figure and table harness funnels through
:func:`repro.sim.pipeline.simulate_tile_stream`, and experiment sweeps
re-invoke it with identical ``(system, timing, tiles)`` inputs dozens of
times (the same kernel timing appears in a speedup sweep, a utilization
table, and an ablation). This module provides the transparent LRU front
door that makes every repeat a dictionary lookup.

Keying rules
------------

A cache key is built by value, not identity:

* ``SimSystem`` is a frozen dataclass of floats (plus the frozen
  ``MachineSpec``) and is hashed directly — two equal systems share an
  entry regardless of which object the caller constructed.
* ``KernelTiming`` cannot be hashed as-is because ``bytes_per_tile`` /
  ``dec_cycles`` may be NumPy arrays; every field is frozen with
  :func:`_freeze` (arrays and sequences become value tuples, enums become
  their value). The *raw* field value is keyed — a scalar ``300.0`` and a
  600-element array of 300s are distinct keys even though they broadcast
  to the same stream.
* ``tiles`` participates as an int, so the same timing at a different
  stream length recomputes.

Entries are :class:`repro.sim.pipeline.SimResult` objects; their trace
arrays are frozen read-only by the simulator, so sharing one result
object between callers is safe. The cache is bounded LRU
(``maxsize`` results, ~30 KB each with a 600-tile trace) and
thread-safe.
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Hashable, Tuple

import numpy as np


def _freeze(value: Any) -> Hashable:
    """A hashable, value-based stand-in for one field value."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (np.ndarray, list, tuple)):
        # Normalize to a float64 buffer: a list and an equal array freeze
        # to the same key, and hashing the raw bytes keeps a cache hit on
        # a 600-element per-tile timing ~100x cheaper than a value tuple.
        array = np.ascontiguousarray(value, dtype=float).ravel()
        return ("array", array.tobytes())
    if isinstance(value, np.generic):
        return value.item()
    return value


def timing_key(timing: Any) -> Tuple[Hashable, ...]:
    """Freeze a ``KernelTiming`` (any frozen dataclass) into a hashable key."""
    if not is_dataclass(timing):
        raise TypeError(f"expected a dataclass timing, got {type(timing)!r}")
    return tuple(
        (field.name, _freeze(getattr(timing, field.name)))
        for field in fields(timing)
    )


def simulation_key(
    system: Any, timing: Any, tiles: int, extra: Hashable = None
) -> Hashable:
    """The full cache key for one tile-stream simulation.

    ``extra`` carries ambient inputs that feed the simulation without
    living on the system/timing objects — the pipeline passes its
    module-level calibration constants here so transient perturbations
    (e.g. the sensitivity study patching ``DRAM_EFFICIENCY``) key their
    own entries instead of aliasing the nominal ones.
    """
    return (system, timing_key(timing), int(tiles), extra)


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of the process-wide simulation cache."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SimulationCache:
    """A bounded, thread-safe LRU mapping simulation keys to results."""

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
        # Compute outside the lock: simulations are slow and pure, and a
        # rare duplicate computation is cheaper than serializing them all.
        value = compute()
        with self._lock:
            if key not in self._entries:
                self._misses += 1
                self._entries[key] = value
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
            else:
                self._hits += 1
                self._entries.move_to_end(key)
            return self._entries[key]

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def stats(self) -> CacheStats:
        """A snapshot of the cache's counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self.maxsize,
            )


#: The process-wide cache behind ``simulate_tile_stream``.
_GLOBAL_CACHE = SimulationCache(maxsize=512)


def cached_tile_stream(
    system: Any,
    timing: Any,
    tiles: int,
    compute: Callable[[], Any],
    extra: Hashable = None,
) -> Any:
    """Front door used by :func:`repro.sim.pipeline.simulate_tile_stream`."""
    return _GLOBAL_CACHE.get_or_compute(
        simulation_key(system, timing, tiles, extra), compute
    )


def clear_simulation_cache() -> None:
    """Empty the process-wide simulation cache (tests, benchmarks)."""
    _GLOBAL_CACHE.clear()


def simulation_cache_stats() -> CacheStats:
    """Counters of the process-wide simulation cache."""
    return _GLOBAL_CACHE.stats()
