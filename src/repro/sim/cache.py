"""Memoization for tile-stream simulations.

Every figure and table harness funnels through
:func:`repro.sim.pipeline.simulate_tile_stream`, and experiment sweeps
re-invoke it with identical ``(system, timing, tiles)`` inputs dozens of
times (the same kernel timing appears in a speedup sweep, a utilization
table, and an ablation). This module provides the transparent LRU front
door that makes every repeat a dictionary lookup.

Keying rules
------------

A cache key is built by value, not identity:

* ``SimSystem`` is a frozen dataclass of floats (plus the frozen
  ``MachineSpec``) and is hashed directly — two equal systems share an
  entry regardless of which object the caller constructed.
* ``KernelTiming`` cannot be hashed as-is because ``bytes_per_tile`` /
  ``dec_cycles`` may be NumPy arrays; every field is frozen with
  :func:`_freeze` (arrays and sequences become value tuples, enums become
  their value). The *raw* field value is keyed — a scalar ``300.0`` and a
  600-element array of 300s are distinct keys even though they broadcast
  to the same stream.
* ``tiles`` participates as an int, so the same timing at a different
  stream length recomputes.

Entries are :class:`repro.sim.pipeline.SimResult` objects; their trace
arrays are frozen read-only by the simulator, so sharing one result
object between callers is safe. The cache is bounded LRU
(``maxsize`` results, ~30 KB each with a 600-tile trace) and
thread-safe.

Two tiers
---------

The LRU is the first tier; an optional second, disk-backed tier
(:mod:`repro.sim.diskcache`) survives process restarts. With a cache
directory configured (:func:`configure_simulation_cache_dir`, or the
CLI's ``--cache-dir`` / ``REPRO_CACHE_DIR``), ``get_or_compute`` walks
memory → disk → compute: a disk hit is promoted into the LRU (and
counted in ``CacheStats.disk_hits``), and a computed miss is spilled to
disk on the way out. The disk tier is transparent — entries loaded from
it are re-frozen and bit-identical to freshly computed ones — and
unbounded; only the in-memory tier evicts.

Merging
-------

The parallel sweep executor (:mod:`repro.experiments.parallel`) keeps a
persistent pool of forked worker processes, each of which populates its
own copy of the process-wide cache (kept in sync with the parent's
clear generation and disk configuration). On join the workers' *new*
entries (and their hit/miss/disk-hit deltas) are folded back into the
parent via :func:`merge_simulation_cache`, keyed by the very same
:func:`simulation_key`. Two workers may legitimately compute the same
key (e.g. both partitions contain the shared baseline configuration);
because simulations are pure, the duplicates must be bit-identical —
:func:`results_bit_equal` asserts exactly that in debug mode before the
duplicate is dropped.
"""

from __future__ import annotations

import enum
import pickle
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.diskcache import DiskCache, open_disk_cache


def _freeze(value: Any) -> Hashable:
    """A hashable, value-based stand-in for one field value."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (np.ndarray, list, tuple)):
        # Normalize to a float64 buffer: a list and an equal array freeze
        # to the same key, and hashing the raw bytes keeps a cache hit on
        # a 600-element per-tile timing ~100x cheaper than a value tuple.
        array = np.ascontiguousarray(value, dtype=float).ravel()
        return ("array", array.tobytes())
    if isinstance(value, np.generic):
        return value.item()
    return value


# timing_key is hot (every cache lookup freezes every timing field); a
# weak memo keyed on the timing object itself makes repeat lookups of
# the same frozen timing a single hash. Timings carrying NumPy arrays
# are unhashable and bypass the memo — they pay the full freeze, which
# hashes the array buffer anyway.
_TIMING_KEY_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def timing_key(timing: Any) -> Tuple[Hashable, ...]:
    """Freeze a ``KernelTiming`` (any frozen dataclass) into a hashable key."""
    if not is_dataclass(timing):
        raise TypeError(f"expected a dataclass timing, got {type(timing)!r}")
    try:
        cached = _TIMING_KEY_MEMO.get(timing)
        memoizable = True
    except TypeError:
        cached = None
        memoizable = False
    if cached is not None:
        return cached
    key = tuple(
        (field.name, _freeze(getattr(timing, field.name)))
        for field in fields(timing)
    )
    if memoizable:
        try:
            _TIMING_KEY_MEMO[timing] = key
        except TypeError:
            pass
    return key


def simulation_key(
    system: Any, timing: Any, tiles: int, extra: Hashable = None
) -> Hashable:
    """The full cache key for one tile-stream simulation.

    ``extra`` carries ambient inputs that feed the simulation without
    living on the system/timing objects — the pipeline passes its
    module-level calibration constants here so transient perturbations
    (e.g. the sensitivity study patching ``DRAM_EFFICIENCY``) key their
    own entries instead of aliasing the nominal ones.
    """
    return (system, timing_key(timing), int(tiles), extra)


def _refreeze_arrays(value: Any) -> None:
    """Re-apply the read-only freeze to every array inside a cached value.

    Cached ``SimResult`` trace arrays are frozen by the simulator, but
    NumPy pickling drops the writeable flag — so entries arriving from a
    forked worker would be silently mutable where the serial path's are
    not. Restore the invariant before the entry becomes shared.
    """
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif is_dataclass(value) and not isinstance(value, type):
        for field in fields(value):
            _refreeze_arrays(getattr(value, field.name))


def results_bit_equal(a: Any, b: Any) -> bool:
    """Structural bit-equality of two cached values.

    Recurses through dataclasses, compares NumPy arrays on their raw
    buffers (so ``-0.0`` vs ``0.0`` or differing NaN payloads count as
    different), and falls back to ``==`` for plain scalars. Used to
    verify that duplicate keys produced by independent workers carry
    identical results — the pure-function contract of the simulator.
    """
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and a.dtype == b.dtype
            and a.tobytes() == b.tobytes()
        )
    if is_dataclass(a) and is_dataclass(b) and type(a) is type(b):
        return all(
            results_bit_equal(getattr(a, f.name), getattr(b, f.name))
            for f in fields(a)
        )
    return bool(a == b)


@dataclass(frozen=True)
class CacheMergeStats:
    """Outcome of folding one batch of worker entries into a cache."""

    inserted: int
    duplicates: int


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of the process-wide simulation cache.

    ``hits`` counts in-memory LRU hits; ``disk_hits`` counts lookups
    served from the disk tier (zero when no cache directory is
    configured); ``misses`` counts genuinely computed simulations.
    """

    hits: int
    misses: int
    size: int
    maxsize: int
    disk_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either cache tier."""
        served = self.hits + self.disk_hits
        total = served + self.misses
        return served / total if total else 0.0

    def since(self, before: "CacheStats") -> "CacheStats":
        """The counter movement between ``before`` and this snapshot.

        Hit/miss/disk-hit are counters and subtract; ``size``/``maxsize``
        are levels and carry over from the later snapshot. The serve
        daemon reports one of these per request, so a client can see
        what *its* sweep cost rather than the daemon's lifetime totals.
        """
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            size=self.size,
            maxsize=self.maxsize,
            disk_hits=self.disk_hits - before.disk_hits,
        )


class SimulationCache:
    """A bounded, thread-safe LRU mapping simulation keys to results."""

    def __init__(
        self, maxsize: int = 512, disk: Optional[DiskCache] = None
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._disk = disk
        # Bumped on clear(); lets long-lived worker processes detect that
        # the parent reset its cache and drop their own copies in sync
        # (see repro.experiments.parallel).
        self._generation = 0

    @property
    def disk(self) -> Optional[DiskCache]:
        """The disk tier, if one is configured."""
        return self._disk

    def set_disk(self, disk: Optional[DiskCache]) -> None:
        """Attach (or detach, with ``None``) the disk tier."""
        with self._lock:
            self._disk = disk

    def generation(self) -> int:
        """The clear-generation counter (monotonic per process)."""
        with self._lock:
            return self._generation

    def sync_generation(self, generation: int) -> None:
        """Adopt another process's clear generation.

        If it differs from ours, the in-memory entries and counters are
        dropped — the owning process cleared since we last synced, so
        our inherited entries are exactly the ones it discarded. The
        disk tier is untouched (clearing never reaches disk).
        """
        with self._lock:
            if self._generation != generation:
                self._entries.clear()
                self._hits = 0
                self._misses = 0
                self._disk_hits = 0
                self._generation = generation

    def _evict_over_capacity(self) -> None:
        # Caller holds the lock.
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """The value for ``key``: memory, else disk, else computed."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            disk = self._disk
        # Disk probe and compute both run outside the lock: simulations
        # are slow and pure, and a rare duplicate computation is cheaper
        # than serializing them all.
        if disk is not None:
            value = disk.load(key)
            if value is not None:
                # Pickling drops NumPy's read-only flag; restore the
                # shared-result invariant before the entry is visible.
                _refreeze_arrays(value)
                with self._lock:
                    if key not in self._entries:
                        self._disk_hits += 1
                        self._entries[key] = value
                        self._evict_over_capacity()
                    else:
                        self._hits += 1
                        self._entries.move_to_end(key)
                    return self._entries[key]
        value = compute()
        with self._lock:
            if key not in self._entries:
                self._misses += 1
                self._entries[key] = value
                self._evict_over_capacity()
                computed = True
            else:
                self._hits += 1
                self._entries.move_to_end(key)
                computed = False
            result = self._entries[key]
            disk = self._disk
        if computed and disk is not None:
            disk.store(key, result)
        return result

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` is resident in memory or present on disk.

        A pure membership probe: no counters move, no disk payload is
        read, and nothing is promoted into the LRU — so probing a cell
        and then looking it up through :meth:`get_or_compute` counts
        exactly one hit, the same as an unprobed lookup. The batched
        simulation entry uses this to exclude already-cached cells from
        a stack without perturbing hit-rate accounting.
        """
        with self._lock:
            if key in self._entries:
                return True
            disk = self._disk
        return disk is not None and disk.contains(key)

    def prefetch(self, key: Hashable) -> bool:
        """Warm ``key`` from the disk tier without moving any counter.

        The pipelined-prefetch seam: a background thread calls this for
        keys a sweep is *about* to need, so the later
        :meth:`get_or_compute` lands as a plain memory hit. Counter
        neutrality is the contract — the prefetched entry must be
        indistinguishable from one that was already resident, so
        neither ``disk_hits`` nor the :class:`DiskCacheStats` counters
        move and the LRU position of existing entries is untouched.
        Returns whether an entry was newly promoted into memory.
        """
        with self._lock:
            if key in self._entries:
                return False
            disk = self._disk
        if disk is None:
            return False
        value = disk.load(key, count=False)
        if value is None:
            return False
        _refreeze_arrays(value)
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = value
            self._evict_over_capacity()
            return True

    def insert_results(
        self, items: Sequence[Tuple[Hashable, Any]]
    ) -> List[Any]:
        """Fan a batch of freshly computed results in under one lock.

        Equivalent to calling ``get_or_compute(key, lambda: value)`` per
        pair — each fresh key counts one miss and is spilled to the disk
        tier; a key that landed in memory since the caller probed it
        counts one hit and the resident value wins (simulations are
        pure, so the two are bit-identical). Returns the cached value
        per pair, in order — callers must use these, not their inputs.
        """
        out: List[Any] = []
        spill: List[Tuple[Hashable, Any]] = []
        with self._lock:
            for key, value in items:
                if key in self._entries:
                    self._hits += 1
                    self._entries.move_to_end(key)
                else:
                    self._misses += 1
                    self._entries[key] = value
                    self._evict_over_capacity()
                    spill.append((key, value))
                out.append(self._entries.get(key, value))
            disk = self._disk
        if disk is not None:
            # One group commit for the whole batch: a large delta lands
            # as a single pack append instead of N tmp+rename cycles.
            disk.store_batch(spill)
        return out

    def snapshot(self) -> "list[Tuple[Hashable, Any]]":
        """The current ``(key, value)`` entries, oldest first."""
        with self._lock:
            return list(self._entries.items())

    def select_entries(
        self,
        prefix: Optional[Tuple[Any, ...]] = None,
        max_bytes: Optional[int] = None,
    ) -> Tuple[List[Tuple[Hashable, Any]], int]:
        """Entries matching a key prefix, most-recently-used first, bounded.

        ``prefix`` filters on the leading components of the cache key
        (``simulation_key`` is ``(system, timing_key, tiles, extra)``,
        so ``(system,)`` selects every entry simulated on that system);
        ``None`` matches everything. ``max_bytes`` caps the *pickled*
        size of the selection: entries are taken MRU-first, and one
        that would overflow the remaining budget is skipped — not a
        stop, so a single oversized entry cannot starve the smaller
        ones behind it. Returns ``(entries, total_bytes)``. This is
        the selection behind the parallel executor's warm-start
        broadcast to persistent workers.
        """
        with self._lock:
            candidates = list(reversed(self._entries.items()))
        selected: List[Tuple[Hashable, Any]] = []
        total = 0
        for key, value in candidates:
            if prefix is not None:
                if not isinstance(key, tuple) or len(key) < len(prefix):
                    continue
                if any(key[i] != prefix[i] for i in range(len(prefix))):
                    continue
            if max_bytes is not None:
                size = len(
                    pickle.dumps((key, value), pickle.HIGHEST_PROTOCOL)
                )
                if total + size > max_bytes:
                    continue
                total += size
            selected.append((key, value))
        return selected, total

    def keys(self) -> "set[Hashable]":
        """The current key set (a copy)."""
        with self._lock:
            return set(self._entries)

    def merge_entries(
        self,
        entries: "Sequence[Tuple[Hashable, Any]]",
        hits: int = 0,
        misses: int = 0,
        disk_hits: int = 0,
    ) -> CacheMergeStats:
        """Fold another cache's entries (and counter deltas) into this one.

        Keys already present are kept (both sides computed the same pure
        simulation; in debug mode the duplicate is asserted bit-identical
        via :func:`results_bit_equal` before being dropped). ``hits`` /
        ``misses`` / ``disk_hits`` accumulate a worker's lookup counters
        so the merged stats reflect the whole sweep's cache traffic.
        Freshly inserted entries are also spilled to the disk tier (a
        no-op for entries the worker already wrote — the store is
        content-addressed and skips existing files).
        """
        inserted = 0
        duplicates = 0
        new_entries: List[Tuple[Hashable, Any]] = []
        with self._lock:
            for key, value in entries:
                if key in self._entries:
                    duplicates += 1
                    assert results_bit_equal(self._entries[key], value), (
                        "duplicate simulation key resolved to different "
                        f"results during cache merge: {key!r}"
                    )
                    self._entries.move_to_end(key)
                else:
                    inserted += 1
                    _refreeze_arrays(value)
                    self._entries[key] = value
                    new_entries.append((key, value))
                    self._evict_over_capacity()
            self._hits += hits
            self._misses += misses
            self._disk_hits += disk_hits
            disk = self._disk
        if disk is not None:
            disk.store_batch(new_entries)
        return CacheMergeStats(inserted=inserted, duplicates=duplicates)

    def clear(self) -> None:
        """Drop every in-memory entry and reset the counters.

        The disk tier (if any) is deliberately untouched: clearing
        resets this process's view, not the persistent store. The clear
        generation is bumped so cooperating worker processes drop their
        inherited copies too.
        """
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0
            self._generation += 1

    def stats(self) -> CacheStats:
        """A snapshot of the cache's counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self.maxsize,
                disk_hits=self._disk_hits,
            )

    def flush_to_disk(self) -> int:
        """Spill every in-memory entry to the disk tier; entries written.

        A no-op (0) without a disk tier. The store is content-addressed
        and skips files that already exist, so flushing after sweeps
        whose entries spilled as they computed writes nothing new; what
        it catches are entries that only ever lived in memory — e.g.
        merged from workers before the tier was attached, or computed
        while the disk was temporarily unwritable. The serve daemon
        calls this on drain so a restart finds them.
        """
        with self._lock:
            disk = self._disk
            entries = list(self._entries.items())
        if disk is None:
            return 0
        return disk.store_batch(entries)


#: The process-wide cache behind ``simulate_tile_stream``.
_GLOBAL_CACHE = SimulationCache(maxsize=512)


def cached_tile_stream(
    system: Any,
    timing: Any,
    tiles: int,
    compute: Callable[[], Any],
    extra: Hashable = None,
) -> Any:
    """Front door used by :func:`repro.sim.pipeline.simulate_tile_stream`."""
    return _GLOBAL_CACHE.get_or_compute(
        simulation_key(system, timing, tiles, extra), compute
    )


def cached_simulation(key: Hashable, compute: Callable[[], Any]) -> Any:
    """Keyed variant of :func:`cached_tile_stream`.

    The batched engine builds each cell's :func:`simulation_key` once to
    decide stack membership; this front door reuses that key for the
    fan-in instead of freezing the timing a second time. Identical
    lookup/miss/spill behaviour to :func:`cached_tile_stream`.
    """
    return _GLOBAL_CACHE.get_or_compute(key, compute)


def insert_simulation_results(
    items: Sequence[Tuple[Hashable, Any]]
) -> List[Any]:
    """Bulk fan-in into the process-wide cache (one lock acquisition).

    See :meth:`SimulationCache.insert_results`.
    """
    return _GLOBAL_CACHE.insert_results(items)


def prefetch_simulation_keys(
    keys: Sequence[Hashable],
    should_stop: Optional[Callable[[], bool]] = None,
) -> int:
    """Warm the process-wide LRU from disk for a batch of keys.

    Counter-neutral (see :meth:`SimulationCache.prefetch`): the later
    real lookups account for themselves as ordinary memory hits.
    ``should_stop`` is polled between keys so a cancelled or expired
    sweep stops prefetching within one entry. Returns how many entries
    were newly promoted into memory.
    """
    warmed = 0
    for key in keys:
        if should_stop is not None and should_stop():
            break
        if _GLOBAL_CACHE.prefetch(key):
            warmed += 1
    return warmed


def simulation_cache_contains(key: Hashable) -> bool:
    """Whether the process-wide cache already holds ``key`` (either tier).

    See :meth:`SimulationCache.contains` — a counter-neutral probe used
    by :func:`repro.sim.pipeline.simulate_tile_stream_batch` to keep
    cached cells out of the stacked engine pass.
    """
    return _GLOBAL_CACHE.contains(key)


def clear_simulation_cache() -> None:
    """Empty the process-wide simulation cache (tests, benchmarks)."""
    _GLOBAL_CACHE.clear()


def simulation_cache_stats() -> CacheStats:
    """Counters of the process-wide simulation cache."""
    return _GLOBAL_CACHE.stats()


def export_simulation_cache() -> List[Tuple[Hashable, Any]]:
    """The process-wide cache's ``(key, value)`` entries, oldest first."""
    return _GLOBAL_CACHE.snapshot()


def simulation_cache_keys() -> "set[Hashable]":
    """The process-wide cache's current key set (a copy)."""
    return _GLOBAL_CACHE.keys()


def select_simulation_cache_entries(
    prefix: Optional[Tuple[Any, ...]] = None,
    max_bytes: Optional[int] = None,
) -> Tuple[List[Tuple[Hashable, Any]], int]:
    """Process-wide cache entries for a warm-start broadcast.

    MRU-first, filtered by a ``simulation_key`` prefix (e.g.
    ``(system,)``) and capped by ``max_bytes`` of pickled payload; see
    :meth:`SimulationCache.select_entries`. Used by
    :mod:`repro.experiments.parallel` to ship the parent's warm entries
    to persistent pool workers at sweep dispatch time.
    """
    return _GLOBAL_CACHE.select_entries(prefix=prefix, max_bytes=max_bytes)


def merge_simulation_cache(
    entries: Sequence[Tuple[Hashable, Any]],
    hits: int = 0,
    misses: int = 0,
    disk_hits: int = 0,
) -> CacheMergeStats:
    """Fold worker-produced entries into the process-wide cache.

    Used by :mod:`repro.experiments.parallel` when joining a process
    pool: each worker ships back the entries it computed (plus its
    hit/miss/disk-hit deltas), and the parent merges them so follow-up
    sweeps in the parent hit warm results. Duplicate keys are asserted
    bit-identical in debug mode; inserted entries are spilled to the
    disk tier when one is configured.
    """
    return _GLOBAL_CACHE.merge_entries(
        entries, hits=hits, misses=misses, disk_hits=disk_hits
    )


def configure_simulation_cache_dir(
    path: "Optional[str]",
) -> Optional[DiskCache]:
    """Attach a disk tier at ``path`` to the process-wide cache.

    ``None`` detaches the disk tier (memory-only, the default). An
    unusable directory warns (``RuntimeWarning``) and leaves the cache
    memory-only — a degraded run, never a failed one. Returns the
    attached :class:`DiskCache`, or ``None``.
    """
    if path is None:
        _GLOBAL_CACHE.set_disk(None)
        return None
    disk = open_disk_cache(path)
    _GLOBAL_CACHE.set_disk(disk)
    return disk


def flush_simulation_cache_to_disk() -> int:
    """Spill the process-wide cache to its disk tier; entries written.

    The serve daemon's drain hook ("persist deltas to disk"); see
    :meth:`SimulationCache.flush_to_disk`.
    """
    return _GLOBAL_CACHE.flush_to_disk()


def simulation_cache_disk() -> Optional[DiskCache]:
    """The process-wide cache's disk tier, if configured."""
    return _GLOBAL_CACHE.disk


def simulation_cache_dir() -> Optional[str]:
    """The configured cache directory as a string, or ``None``."""
    disk = _GLOBAL_CACHE.disk
    return str(disk.root) if disk is not None else None


def simulation_cache_generation() -> int:
    """The process-wide cache's clear-generation counter."""
    return _GLOBAL_CACHE.generation()


def sync_simulation_cache_generation(generation: int) -> None:
    """Adopt a parent process's clear generation (worker-side hook)."""
    _GLOBAL_CACHE.sync_generation(generation)
