"""Memory-system models: a per-core fair-share channel and a shared server.

Two levels of fidelity are provided:

* :class:`MemoryChannel` — the fast path. All cores in the evaluated
  workloads are symmetric, so each one sees ``MBW / cores`` of bandwidth in
  steady state; a single-core simulation against this channel is exact for
  throughput and far cheaper than a full multi-core event simulation. Its
  batched :meth:`MemoryChannel.request_many` scan services ad-hoc request
  batches, and its :meth:`MemoryChannel.wave_scan` block-scan API services
  the exact multi-core backend's 2-D ``(wave, core)`` request matrices —
  any number of interleaved waves per call — in one vectorized pass.
* :class:`SharedMemoryServer` — an event-ordered FIFO bandwidth server that
  resolves arbitrarily ordered cross-core requests with a heap. Retained as
  the reference formulation the batched wave scan is validated against in
  the tests.

Both track busy cycles so memory utilization (Table 3) can be reported.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from repro.errors import SimulationError


class MemoryChannel:
    """Fair-share bandwidth channel with latency exposure.

    A request of ``nbytes`` occupies the channel for ``nbytes /
    bytes_per_cycle`` cycles starting no earlier than the previous request
    finished service. Its completion additionally waits for the *exposed*
    part of the access latency: prefetchers overlap most of the latency
    with earlier transfers, so only a configurable fraction remains visible
    (Section 9.3's +Reads L2 / +DECA prefetcher ladder).
    """

    def __init__(self, bytes_per_cycle: float, latency_cycles: float) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError("bytes_per_cycle must be positive")
        if latency_cycles < 0:
            raise SimulationError("latency_cycles must be non-negative")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        self._free_at = 0.0
        self._busy_cycles = 0.0

    def request(
        self, issue_cycle: float, nbytes: float, exposed_latency: float = 0.0
    ) -> float:
        """Issue a read; returns the cycle at which the data is usable.

        ``exposed_latency`` is the fraction of the access latency not
        hidden by prefetching (0 = perfectly prefetched, 1 = fully
        demand-fetched).
        """
        if nbytes < 0:
            raise SimulationError("request size must be non-negative")
        if not 0.0 <= exposed_latency <= 1.0:
            raise SimulationError("exposed_latency must be in [0, 1]")
        start = max(issue_cycle, self._free_at)
        service = nbytes / self.bytes_per_cycle
        self._free_at = start + service
        self._busy_cycles += service
        return self._free_at + exposed_latency * self.latency_cycles

    def request_many(
        self,
        issue_cycles: np.ndarray,
        nbytes: np.ndarray,
        exposed_latency: float = 0.0,
    ) -> np.ndarray:
        """Issue a batch of reads in order; returns per-request data-ready cycles.

        Equivalent to calling :meth:`request` once per element, but computed
        as one array scan. The FIFO recurrence

            free[i] = max(issue[i], free[i-1]) + service[i]

        is evaluated in relative coordinates: with ``C`` the running cumsum
        of service times, ``free[i] = C[i] + max_{j<=i}(issue[j] - C[j-1])``
        (clamped below by the channel's current ``free_at``). The scan is a
        single ``np.maximum.accumulate`` pass. Results match the scalar path
        to within reassociation rounding (identical when the recurrence is
        evaluated in the same relative coordinates).
        """
        issue_cycles = np.asarray(issue_cycles, dtype=float)
        nbytes = np.asarray(nbytes, dtype=float)
        if issue_cycles.shape != nbytes.shape:
            raise SimulationError("issue_cycles and nbytes must align")
        if nbytes.size == 0:
            return np.zeros(0)
        if np.any(nbytes < 0):
            raise SimulationError("request size must be non-negative")
        if not 0.0 <= exposed_latency <= 1.0:
            raise SimulationError("exposed_latency must be in [0, 1]")
        service = nbytes / self.bytes_per_cycle
        cum = np.cumsum(service)
        cum_prev = np.concatenate(([0.0], cum[:-1]))
        peak = np.maximum.accumulate(
            np.maximum(issue_cycles - cum_prev, self._free_at)
        )
        free = peak + cum
        self._free_at = float(free[-1])
        self._busy_cycles += float(cum[-1])
        return free + exposed_latency * self.latency_cycles

    def wave_scan(
        self,
        nbytes_per_wave: np.ndarray,
        lanes: int,
        exposed_latency: float = 0.0,
    ) -> "WaveBlockScan":
        """Open a block-scan cursor over a wave-interleaved request stream.

        The multi-core event backend issues fetches in *waves* — one
        request per core (lane), all waves of one stream sharing the
        wave's byte count. :class:`WaveBlockScan` services that stream
        through this channel in FIFO order, any number of waves per
        :meth:`WaveBlockScan.drain` call, and its relative-coordinate
        algebra is *partition-independent*: draining one wave at a time
        and draining whole window-blocks produce bit-identical
        completion times (the service cumsum is precomputed once here,
        and the running peak is carried through exact ``max`` ops).
        """
        return WaveBlockScan(self, nbytes_per_wave, lanes, exposed_latency)

    @property
    def busy_cycles(self) -> float:
        """Total cycles the channel spent transferring data."""
        return self._busy_cycles

    def utilization(self, makespan_cycles: float) -> float:
        """Fraction of the makespan the channel was busy."""
        if makespan_cycles <= 0:
            raise SimulationError("makespan must be positive")
        return min(1.0, self._busy_cycles / makespan_cycles)

    def reset(self) -> None:
        """Forget all previous requests."""
        self._free_at = 0.0
        self._busy_cycles = 0.0


class WaveBlockScan:
    """A stateful FIFO scan over a 2-D ``(wave, core)`` request stream.

    One instance serves one simulation: ``nbytes_per_wave[w]`` is the
    byte count every lane fetches in wave ``w``, and successive
    :meth:`drain` calls consume consecutive waves. The FIFO recurrence

        ``free[r] = max(issue[r], free[r-1]) + service[r]``

    is evaluated in *global* relative coordinates: ``C`` is the cumsum
    of service times over the whole stream (precomputed once, so it is
    identical no matter how the stream is partitioned into drains), and

        ``free[r] = C[r] + max_{q<=r}(max(issue[q] - C[q-1], peak0))``

    where the running peak carries across drains through exact ``max``
    operations. Because every float op on a given request is identical
    regardless of block boundaries, a per-wave drain loop and a blocked
    drain produce bit-identical completion times — the property the
    multi-core engine equivalence tests assert.
    """

    def __init__(
        self,
        channel: MemoryChannel,
        nbytes_per_wave: np.ndarray,
        lanes: int,
        exposed_latency: float = 0.0,
    ) -> None:
        if lanes < 1:
            raise SimulationError("wave scan needs at least one lane")
        if not 0.0 <= exposed_latency <= 1.0:
            raise SimulationError("exposed_latency must be in [0, 1]")
        nbytes_per_wave = np.asarray(nbytes_per_wave, dtype=float).ravel()
        if np.any(nbytes_per_wave < 0):
            raise SimulationError("request size must be non-negative")
        self._channel = channel
        self._lanes = int(lanes)
        self._exposed = exposed_latency * channel.latency_cycles
        service = nbytes_per_wave / channel.bytes_per_cycle
        n = service.size * self._lanes
        if service.size and np.all(service == service[0]):
            # Uniform stream (scalar bytes_per_tile): the cumsum is an
            # exact multiple of one service time. Used by both the
            # blocked and the per-wave engine, so they stay
            # bit-identical to each other.
            self._cum = np.arange(1, n + 1) * float(service[0])
            self._cum_prev = np.arange(n) * float(service[0])
        else:
            flat = np.repeat(service, self._lanes)
            self._cum = np.cumsum(flat)
            self._cum_prev = np.concatenate(([0.0], self._cum[:-1]))
        # Completion = peak + cum + exposed; the last two are constants
        # per request, pre-added so a drain is one add, not two.
        self._cum_exposed = self._cum + self._exposed
        self._cursor = 0
        # The peak starts at the channel's current free time: in relative
        # coordinates the floor `issue >= free_at` is `peak >= free_at`.
        self._peak = channel._free_at
        # The scan owns the channel between drains: interleaved traffic
        # would invalidate the precomputed cumsum (guarded in drain()).
        self._channel_free = channel._free_at

    @property
    def waves_remaining(self) -> int:
        """Waves not yet drained."""
        return (self._cum.size - self._cursor) // self._lanes

    def drain(self, issue_matrix: np.ndarray) -> np.ndarray:
        """Service the next ``issue_matrix.shape[0]`` waves; data-ready times.

        ``issue_matrix`` is ``(waves, lanes)``, each row one wave's
        per-lane issue times *already ordered the way the FIFO should
        see them* (the engine orders within a wave by issue time). The
        return has the same shape: per-request data-ready cycles.
        """
        issue_matrix = np.asarray(issue_matrix, dtype=float)
        if issue_matrix.ndim != 2 or issue_matrix.shape[1] != self._lanes:
            raise SimulationError(
                f"issue matrix must be (waves, {self._lanes}), got "
                f"{issue_matrix.shape}"
            )
        n = issue_matrix.size
        if self._cursor + n > self._cum.size:
            raise SimulationError(
                "wave scan drained past the end of its request stream"
            )
        if self._channel._free_at != self._channel_free:
            raise SimulationError(
                "the channel serviced other requests while this wave scan "
                "was active; a WaveBlockScan needs exclusive use of its "
                "channel between drains"
            )
        window = slice(self._cursor, self._cursor + n)
        # peak[r] = max(peak_carry, max_{q<=r}(issue[q] - cum_prev[q])),
        # computed in place; completion = peak + (cum + exposed).
        slack = issue_matrix.reshape(-1) - self._cum_prev[window]
        np.maximum(slack, self._peak, out=slack)
        np.maximum.accumulate(slack, out=slack)
        self._peak = float(slack[-1])
        ready = slack + self._cum_exposed[window]
        start_cum = self._cum_prev[self._cursor]
        self._cursor += n
        self._channel._free_at = self._peak + float(self._cum[self._cursor - 1])
        self._channel._busy_cycles += float(self._cum[self._cursor - 1] - start_cum)
        self._channel_free = self._channel._free_at
        return ready.reshape(issue_matrix.shape)


class BatchWaveScan:
    """A stack of independent :class:`WaveBlockScan` FIFOs, one per row.

    The batched multi-core engine simulates many shape-compatible sweep
    cells at once; each cell has its *own* shared memory server (cells
    never exchange traffic), so the stacked scan is simply ``rows``
    per-cell scans evaluated in one NumPy pass per drain, with the wave
    axis as axis 1. Every row's service cumsum is built with exactly the
    per-cell constructor's arithmetic — including the uniform-stream
    fast path — and every drain applies the per-cell relative-coordinate
    algebra along its row, so row ``r`` of a drain is bit-identical to
    the same drain through a dedicated :class:`WaveBlockScan`.

    Unlike the per-cell scan this one does not wrap live
    :class:`MemoryChannel` objects: nothing downstream of the batched
    engine reads channel state, so the per-row ``bytes_per_cycle`` /
    ``latency_cycles`` scalars are carried directly.
    """

    def __init__(
        self,
        bytes_per_cycle: np.ndarray,
        latency_cycles: np.ndarray,
        nbytes_per_wave: np.ndarray,
        lanes: int,
        exposed_latency: np.ndarray,
    ) -> None:
        if lanes < 1:
            raise SimulationError("wave scan needs at least one lane")
        bytes_per_cycle = np.asarray(bytes_per_cycle, dtype=float).ravel()
        latency_cycles = np.asarray(latency_cycles, dtype=float).ravel()
        exposed_latency = np.asarray(exposed_latency, dtype=float).ravel()
        nbytes_per_wave = np.asarray(nbytes_per_wave, dtype=float)
        if nbytes_per_wave.ndim != 2:
            raise SimulationError("stacked wave bytes must be (rows, waves)")
        rows = nbytes_per_wave.shape[0]
        if not (
            bytes_per_cycle.size == latency_cycles.size
            == exposed_latency.size == rows
        ):
            raise SimulationError("per-row channel parameters must align")
        if np.any(bytes_per_cycle <= 0):
            raise SimulationError("bytes_per_cycle must be positive")
        if np.any(latency_cycles < 0):
            raise SimulationError("latency_cycles must be non-negative")
        if np.any(nbytes_per_wave < 0):
            raise SimulationError("request size must be non-negative")
        if np.any((exposed_latency < 0.0) | (exposed_latency > 1.0)):
            raise SimulationError("exposed_latency must be in [0, 1]")
        self._lanes = int(lanes)
        cums = []
        cum_prevs = []
        for r in range(rows):
            # Exactly the per-cell WaveBlockScan construction, row by
            # row: a row that would take the uniform fast path alone
            # takes it here too, so the cumsum floats are identical.
            service = nbytes_per_wave[r] / bytes_per_cycle[r]
            n = service.size * self._lanes
            if service.size and np.all(service == service[0]):
                cums.append(np.arange(1, n + 1) * float(service[0]))
                cum_prevs.append(np.arange(n) * float(service[0]))
            else:
                flat = np.repeat(service, self._lanes)
                cum = np.cumsum(flat)
                cums.append(cum)
                cum_prevs.append(np.concatenate(([0.0], cum[:-1])))
        self._cum = np.stack(cums) if rows else np.zeros((0, 0))
        self._cum_prev = np.stack(cum_prevs) if rows else np.zeros((0, 0))
        self._cum_exposed = (
            self._cum + (exposed_latency * latency_cycles)[:, None]
        )
        self._rows = rows
        self._cursor = 0
        self._peak = np.zeros(rows)

    @property
    def waves_remaining(self) -> int:
        """Waves not yet drained (identical across rows)."""
        return (self._cum.shape[1] - self._cursor) // self._lanes

    def drain(self, issue_matrix: np.ndarray) -> np.ndarray:
        """Service the next waves on every row; per-request ready times.

        ``issue_matrix`` is ``(rows, waves, lanes)``, each row's waves
        already ordered the way its FIFO should see them. Returns the
        same shape.
        """
        issue_matrix = np.asarray(issue_matrix, dtype=float)
        if (
            issue_matrix.ndim != 3
            or issue_matrix.shape[0] != self._rows
            or issue_matrix.shape[2] != self._lanes
        ):
            raise SimulationError(
                f"issue matrix must be ({self._rows}, waves, {self._lanes})"
                f", got {issue_matrix.shape}"
            )
        n = issue_matrix.shape[1] * self._lanes
        if self._cursor + n > self._cum.shape[1]:
            raise SimulationError(
                "wave scan drained past the end of its request stream"
            )
        window = slice(self._cursor, self._cursor + n)
        slack = issue_matrix.reshape(self._rows, -1) - self._cum_prev[:, window]
        np.maximum(slack, self._peak[:, None], out=slack)
        np.maximum.accumulate(slack, axis=1, out=slack)
        self._peak = slack[:, -1].copy()
        ready = slack + self._cum_exposed[:, window]
        self._cursor += n
        return ready.reshape(issue_matrix.shape)


class SharedMemoryServer:
    """Event-ordered FIFO bandwidth server shared by many cores.

    Requests are serviced in arrival order at the aggregate bandwidth.
    Because completion times feed back into future issue times, callers
    must issue requests in nondecreasing ``issue_cycle`` order *per core*;
    cross-core ordering is resolved with an internal heap.
    """

    def __init__(self, bytes_per_cycle: float, latency_cycles: float) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError("bytes_per_cycle must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        self._free_at = 0.0
        self._busy_cycles = 0.0
        self._pending: List[Tuple[float, int, float, float]] = []
        self._sequence = 0

    def enqueue(
        self, issue_cycle: float, nbytes: float, exposed_latency: float = 0.0
    ) -> int:
        """Queue a request; returns a ticket used to read the completion."""
        ticket = self._sequence
        self._sequence += 1
        heapq.heappush(
            self._pending, (issue_cycle, ticket, nbytes, exposed_latency)
        )
        return ticket

    def drain(self) -> dict:
        """Service every queued request in issue order.

        Returns a dict mapping tickets to completion cycles. Draining in
        batches is exact as long as no future request could have been
        issued earlier than the latest queued one — the tile-stream
        simulator guarantees this by draining once per simulation.
        """
        completions = {}
        while self._pending:
            issue, ticket, nbytes, exposed = heapq.heappop(self._pending)
            start = max(issue, self._free_at)
            service = nbytes / self.bytes_per_cycle
            self._free_at = start + service
            self._busy_cycles += service
            completions[ticket] = self._free_at + exposed * self.latency_cycles
        return completions

    @property
    def busy_cycles(self) -> float:
        """Total cycles spent transferring data."""
        return self._busy_cycles

    def utilization(self, makespan_cycles: float) -> float:
        """Fraction of the makespan the server was busy."""
        if makespan_cycles <= 0:
            raise SimulationError("makespan must be positive")
        return min(1.0, self._busy_cycles / makespan_cycles)
