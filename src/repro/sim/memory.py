"""Memory-system models: a per-core fair-share channel and a shared server.

Two levels of fidelity are provided:

* :class:`MemoryChannel` — the fast path. All cores in the evaluated
  workloads are symmetric, so each one sees ``MBW / cores`` of bandwidth in
  steady state; a single-core simulation against this channel is exact for
  throughput and far cheaper than a full multi-core event simulation. Its
  batched :meth:`MemoryChannel.request_many` scan also services the exact
  multi-core backend, one interleaved wave of per-core fetches at a time.
* :class:`SharedMemoryServer` — an event-ordered FIFO bandwidth server that
  resolves arbitrarily ordered cross-core requests with a heap. Retained as
  the reference formulation the batched wave scan is validated against in
  the tests.

Both track busy cycles so memory utilization (Table 3) can be reported.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from repro.errors import SimulationError


class MemoryChannel:
    """Fair-share bandwidth channel with latency exposure.

    A request of ``nbytes`` occupies the channel for ``nbytes /
    bytes_per_cycle`` cycles starting no earlier than the previous request
    finished service. Its completion additionally waits for the *exposed*
    part of the access latency: prefetchers overlap most of the latency
    with earlier transfers, so only a configurable fraction remains visible
    (Section 9.3's +Reads L2 / +DECA prefetcher ladder).
    """

    def __init__(self, bytes_per_cycle: float, latency_cycles: float) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError("bytes_per_cycle must be positive")
        if latency_cycles < 0:
            raise SimulationError("latency_cycles must be non-negative")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        self._free_at = 0.0
        self._busy_cycles = 0.0

    def request(
        self, issue_cycle: float, nbytes: float, exposed_latency: float = 0.0
    ) -> float:
        """Issue a read; returns the cycle at which the data is usable.

        ``exposed_latency`` is the fraction of the access latency not
        hidden by prefetching (0 = perfectly prefetched, 1 = fully
        demand-fetched).
        """
        if nbytes < 0:
            raise SimulationError("request size must be non-negative")
        if not 0.0 <= exposed_latency <= 1.0:
            raise SimulationError("exposed_latency must be in [0, 1]")
        start = max(issue_cycle, self._free_at)
        service = nbytes / self.bytes_per_cycle
        self._free_at = start + service
        self._busy_cycles += service
        return self._free_at + exposed_latency * self.latency_cycles

    def request_many(
        self,
        issue_cycles: np.ndarray,
        nbytes: np.ndarray,
        exposed_latency: float = 0.0,
    ) -> np.ndarray:
        """Issue a batch of reads in order; returns per-request data-ready cycles.

        Equivalent to calling :meth:`request` once per element, but computed
        as one array scan. The FIFO recurrence

            free[i] = max(issue[i], free[i-1]) + service[i]

        is evaluated in relative coordinates: with ``C`` the running cumsum
        of service times, ``free[i] = C[i] + max_{j<=i}(issue[j] - C[j-1])``
        (clamped below by the channel's current ``free_at``). The scan is a
        single ``np.maximum.accumulate`` pass. Results match the scalar path
        to within reassociation rounding (identical when the recurrence is
        evaluated in the same relative coordinates).
        """
        issue_cycles = np.asarray(issue_cycles, dtype=float)
        nbytes = np.asarray(nbytes, dtype=float)
        if issue_cycles.shape != nbytes.shape:
            raise SimulationError("issue_cycles and nbytes must align")
        if nbytes.size == 0:
            return np.zeros(0)
        if np.any(nbytes < 0):
            raise SimulationError("request size must be non-negative")
        if not 0.0 <= exposed_latency <= 1.0:
            raise SimulationError("exposed_latency must be in [0, 1]")
        service = nbytes / self.bytes_per_cycle
        cum = np.cumsum(service)
        cum_prev = np.concatenate(([0.0], cum[:-1]))
        peak = np.maximum.accumulate(
            np.maximum(issue_cycles - cum_prev, self._free_at)
        )
        free = peak + cum
        self._free_at = float(free[-1])
        self._busy_cycles += float(cum[-1])
        return free + exposed_latency * self.latency_cycles

    @property
    def busy_cycles(self) -> float:
        """Total cycles the channel spent transferring data."""
        return self._busy_cycles

    def utilization(self, makespan_cycles: float) -> float:
        """Fraction of the makespan the channel was busy."""
        if makespan_cycles <= 0:
            raise SimulationError("makespan must be positive")
        return min(1.0, self._busy_cycles / makespan_cycles)

    def reset(self) -> None:
        """Forget all previous requests."""
        self._free_at = 0.0
        self._busy_cycles = 0.0


class SharedMemoryServer:
    """Event-ordered FIFO bandwidth server shared by many cores.

    Requests are serviced in arrival order at the aggregate bandwidth.
    Because completion times feed back into future issue times, callers
    must issue requests in nondecreasing ``issue_cycle`` order *per core*;
    cross-core ordering is resolved with an internal heap.
    """

    def __init__(self, bytes_per_cycle: float, latency_cycles: float) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError("bytes_per_cycle must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        self._free_at = 0.0
        self._busy_cycles = 0.0
        self._pending: List[Tuple[float, int, float, float]] = []
        self._sequence = 0

    def enqueue(
        self, issue_cycle: float, nbytes: float, exposed_latency: float = 0.0
    ) -> int:
        """Queue a request; returns a ticket used to read the completion."""
        ticket = self._sequence
        self._sequence += 1
        heapq.heappush(
            self._pending, (issue_cycle, ticket, nbytes, exposed_latency)
        )
        return ticket

    def drain(self) -> dict:
        """Service every queued request in issue order.

        Returns a dict mapping tickets to completion cycles. Draining in
        batches is exact as long as no future request could have been
        issued earlier than the latest queued one — the tile-stream
        simulator guarantees this by draining once per simulation.
        """
        completions = {}
        while self._pending:
            issue, ticket, nbytes, exposed = heapq.heappop(self._pending)
            start = max(issue, self._free_at)
            service = nbytes / self.bytes_per_cycle
            self._free_at = start + service
            self._busy_cycles += service
            completions[ticket] = self._free_at + exposed * self.latency_cycles
        return completions

    @property
    def busy_cycles(self) -> float:
        """Total cycles spent transferring data."""
        return self._busy_cycles

    def utilization(self, makespan_cycles: float) -> float:
        """Fraction of the makespan the server was busy."""
        if makespan_cycles <= 0:
            raise SimulationError("makespan must be positive")
        return min(1.0, self._busy_cycles / makespan_cycles)
