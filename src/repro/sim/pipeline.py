"""Tile-stream pipeline simulation: the timing engine behind Figures 12-17.

A compressed GeMM is a stream of tiles flowing through up to four
resources: the memory system, a decompression engine (core AVX units or a
DECA PE), the core<->engine communication path, and the TMUL. This module
simulates one core's stream against its fair bandwidth share (exact for
the symmetric workloads evaluated) under three invocation disciplines:

* ``OVERLAPPED`` — the libxsmm software kernel (Figure 2): AVX
  decompression double-buffered against AMX on the same core, and also the
  idealised DECA pipeline when communication costs are zero.
* ``SERIALIZED`` — store+fence DECA invocation (Figure 9): every iteration
  exposes the MMIO store, the fence drain, and the TOut/L2 read latency.
* ``TEPL`` — out-of-order TEPL invocation (Figure 10): communication
  overlaps computation, but at most ``n_loaders`` TEPLs are in flight
  (the structural hazard), so the per-tile interval can never drop below
  (exposed latency + decompress + handoff + issue) / n_loaders.

Calibrated second-order effects (see DESIGN.md section 5):

* DRAM efficiency: streams achieve ~93% of nominal bandwidth
  (``SimSystem``-independent constant ``DRAM_EFFICIENCY``), matching the
  paper's 91-93% memory utilisation for memory-bound DECA runs (Table 3).
* The software kernel's demand loads go through the core's load queue and
  MSHRs; a core can sustain only ``SW_DEMAND_LOAD_BYTES_PER_CYCLE`` of
  demand-load traffic. On DDR the fair share sits below this cap (software
  reaches the roofline, Figure 12); on HBM the cap binds and is exactly
  the paper's observed 74% memory utilisation for dense Q8 (Table 3).
  DECA's dedicated loaders/prefetcher at the L2 are not subject to it.

Performance architecture (docs/PERFORMANCE.md):

* The OVERLAPPED engine evaluates the stage recurrences as NumPy max-plus
  scans in *relative coordinates*: every chained resource recurrence
  ``free[i] = max(ready[i], free[i-1]) + cost[i]`` becomes
  ``cumsum(cost)[i] + maximum.accumulate(ready - cumsum_prev)[i]``. The
  only genuinely sequential dependency — the prefetch feedback
  ``issue[i] = dec_start[i - prefetch_window]`` — is resolved by a
  monotone fixed-point iteration that converges in two array passes for
  every bandwidth-, decompress-, or TMUL-bound regime; a retained
  per-tile reference loop (``_run_overlapped_reference``) is the exact
  fallback for the rare window-limited regime and the golden model for
  the equivalence tests.
* SERIALIZED and TEPL carry a cycle-by-cycle feedback through the core's
  program order (lag 1-2 tiles), so exactness requires a per-tile loop;
  those loops are kept, but tightened to pure-float arithmetic with all
  service times and latency products precomputed (no per-tile NumPy
  scalar churn or channel method calls).
* ``simulate_tile_stream`` memoizes results through
  :mod:`repro.sim.cache`, so sweeps that revisit identical
  ``(system, timing, tiles)`` configurations cost one dict lookup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim import cache as _simcache
from repro.sim.memory import BatchWaveScan, MemoryChannel
from repro.sim.stats import UtilizationReport
from repro.sim.system import SimSystem
from repro.units import TMUL_CYCLES, flops_per_tile

#: Fraction of nominal bandwidth a well-formed stream actually achieves.
DRAM_EFFICIENCY = 0.93

#: Per-core demand-load bandwidth cap for the software kernel (bytes per
#: cycle). 4.5 B/cycle at 2.5 GHz is ~11 GB/s per core.
SW_DEMAND_LOAD_BYTES_PER_CYCLE = 4.5

#: Fixed-point iteration budget for the vectorized OVERLAPPED engine. Every
#: realistic regime converges in two passes; the window-limited corner
#: (tiles so small the channel idles between fetches) propagates only one
#: prefetch window per pass, so after this many passes the engine falls
#: back to the exact per-tile reference loop instead of iterating on.
_OVERLAPPED_MAX_ROUNDS = 8

#: Testing/benchmark hook: force every simulation through the retained
#: per-tile reference loops (and bypass the cache). Used by
#: ``benchmarks/perf`` to measure the loop-vs-vectorized speedup.
FORCE_REFERENCE_ENGINE = False


class InvocationMode(enum.Enum):
    """How the decompression engine is driven (Section 5)."""

    OVERLAPPED = "overlapped"
    SERIALIZED = "serialized"
    TEPL = "tepl"


@dataclass(frozen=True)
class KernelTiming:
    """Per-tile resource costs and pipeline discipline of one kernel.

    Attributes:
        bytes_per_tile: Compressed bytes fetched per tile (scalar or one
            value per simulated tile).
        dec_cycles: Decompression-engine occupancy per tile (scalar or per
            tile). Zero means the tile needs no decompression (BF16
            baseline: tload straight from memory).
        mtx_cycles: TMUL occupancy per tile operation.
        mode: Invocation discipline.
        handoff_cycles: Latency from decompressed data to the tile
            register (TOut read, or the longer L2 round trip).
        invoke_cycles: Core cost to trigger one tile (MMIO store or TEPL
            issue).
        fence_cycles: Pipeline-drain cost per iteration (store+fence mode).
        exposed_latency: Fraction of memory latency left visible per fetch
            (prefetching discipline).
        prefetch_window: Outstanding tile fetches the fetch engine keeps.
        n_loaders: In-flight limit for TEPL (DECA has two Loaders).
        core_overhead_cycles: Serial per-tile core work that cannot overlap
            the AVX sequence (loop control, AMX issue) — software only.
        loader_latency_cycles: Turnaround from an invocation reaching a
            DECA Loader to the first codes entering the pipeline (the
            LDQ's L2 read of an already-prefetched line, streaming into
            the SQQ).
        demand_load_cap: Per-core demand-load bandwidth cap in
            bytes/cycle, or ``None`` for dedicated-loader paths.
        dec_is_avx: Whether decompression runs on the core's AVX units
            (affects which utilisation column the busy time lands in).
    """

    bytes_per_tile: Union[float, Sequence[float]]
    dec_cycles: Union[float, Sequence[float]]
    mtx_cycles: float = float(TMUL_CYCLES)
    mode: InvocationMode = InvocationMode.OVERLAPPED
    handoff_cycles: float = 0.0
    invoke_cycles: float = 0.0
    fence_cycles: float = 0.0
    exposed_latency: float = 0.08
    prefetch_window: int = 8
    n_loaders: int = 2
    core_overhead_cycles: float = 0.0
    loader_latency_cycles: float = 0.0
    demand_load_cap: Optional[float] = None
    dec_is_avx: bool = True

    def __post_init__(self) -> None:
        if self.mtx_cycles <= 0:
            raise ConfigurationError("mtx_cycles must be positive")
        if self.prefetch_window < 1:
            raise ConfigurationError("prefetch_window must be >= 1")
        if self.n_loaders < 1:
            raise ConfigurationError("n_loaders must be >= 1")
        if not 0.0 <= self.exposed_latency <= 1.0:
            raise ConfigurationError("exposed_latency must be in [0, 1]")

    def tile_bytes(self, tiles: int) -> np.ndarray:
        """Per-tile byte counts as an array of length ``tiles``."""
        return _broadcast(self.bytes_per_tile, tiles, "bytes_per_tile")

    def tile_dec_cycles(self, tiles: int) -> np.ndarray:
        """Per-tile decompression occupancy as an array."""
        return _broadcast(self.dec_cycles, tiles, "dec_cycles")


def _broadcast(
    value: Union[float, Sequence[float]], tiles: int, name: str
) -> np.ndarray:
    # np.ndim treats Python numbers, NumPy scalar types, *and* 0-d arrays
    # uniformly (np.isscalar does not: it is False for 0-d arrays, which
    # would route them down the sequence path below).
    if np.ndim(value) == 0:
        return np.full(tiles, float(value))
    array = np.asarray(value, dtype=float).ravel()
    if array.size == 0:
        raise ConfigurationError(f"{name} sequence must not be empty")
    if array.size >= tiles:
        return array[:tiles]
    repeats = int(np.ceil(tiles / array.size))
    return np.tile(array, repeats)[:tiles]


@dataclass(frozen=True)
class PipelineTrace:
    """Per-tile stage timestamps of a simulated stream (cycles).

    Every array has one entry per tile: when its fetch was issued, when
    its data arrived, when decompression started/finished, and when the
    TMUL consumed it. ``repro.sim.trace`` renders these as a Gantt chart.
    """

    fetch_issue: np.ndarray
    mem_done: np.ndarray
    dec_start: np.ndarray
    dec_done: np.ndarray
    mtx_start: np.ndarray
    mtx_done: np.ndarray

    def stage_spans(self, index: int) -> dict:
        """(start, end) spans per stage for one tile."""
        if not 0 <= index < len(self.mtx_done):
            raise SimulationError(f"no tile {index} in this trace")
        return {
            "fetch": (float(self.fetch_issue[index]), float(self.mem_done[index])),
            "decompress": (
                float(self.dec_start[index]), float(self.dec_done[index])
            ),
            "matrix": (
                float(self.mtx_start[index]), float(self.mtx_done[index])
            ),
        }


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one core's tile stream."""

    system: SimSystem
    tiles: int
    makespan_cycles: float
    steady_interval_cycles: float
    utilization: UtilizationReport
    trace: Optional[PipelineTrace] = None

    @property
    def tiles_per_second(self) -> float:
        """Machine-wide steady-state tile rate (all cores)."""
        return (
            self.system.cores
            * self.system.frequency_hz
            / self.steady_interval_cycles
        )

    def flops(self, batch_rows: int) -> float:
        """Machine-wide FMAs/second for a given activation batch."""
        return flops_per_tile(batch_rows) * self.tiles_per_second

    def seconds_for(self, total_tiles_per_core: int) -> float:
        """Extrapolated wall-clock time for a longer stream on one core."""
        if total_tiles_per_core < self.tiles:
            scale = total_tiles_per_core / self.tiles
            return self.makespan_cycles * scale / self.system.frequency_hz
        extra = total_tiles_per_core - self.tiles
        cycles = self.makespan_cycles + extra * self.steady_interval_cycles
        return cycles / self.system.frequency_hz


def _effective_bytes_per_cycle(system: SimSystem, timing: KernelTiming) -> float:
    share = system.per_core_bytes_per_cycle() * DRAM_EFFICIENCY
    if timing.demand_load_cap is not None:
        return min(share, timing.demand_load_cap)
    return share


def simulate_tile_stream(
    system: SimSystem,
    timing: KernelTiming,
    tiles: int = 600,
    use_cache: bool = True,
) -> SimResult:
    """Simulate one core's compressed-GeMM tile stream.

    All cores run identical streams, so one core against its fair
    bandwidth share reproduces machine throughput exactly in steady state
    (validated against :func:`simulate_multicore_event` in the tests).

    Results are memoized on the ``(system, timing, tiles)`` value (see
    :mod:`repro.sim.cache`): repeated identical invocations across figure
    and table harnesses return the same :class:`SimResult` object from an
    LRU cache. Pass ``use_cache=False`` to force a fresh simulation.
    """
    if tiles < 8:
        raise ConfigurationError("need at least 8 tiles for a steady state")
    if use_cache and not FORCE_REFERENCE_ENGINE:
        # DRAM_EFFICIENCY is a module global that studies patch
        # transiently (the sensitivity sweep scales it), and it feeds the
        # simulation outside the (system, timing) objects — it must
        # participate in the key so a perturbed run neither reuses
        # nominal entries nor pollutes them.
        return _simcache.cached_tile_stream(
            system,
            timing,
            tiles,
            lambda: _simulate_tile_stream_uncached(system, timing, tiles),
            extra=DRAM_EFFICIENCY,
        )
    return _simulate_tile_stream_uncached(system, timing, tiles)


def _simulate_tile_stream_uncached(
    system: SimSystem,
    timing: KernelTiming,
    tiles: int,
) -> SimResult:
    nbytes = timing.tile_bytes(tiles)
    dec = timing.tile_dec_cycles(tiles)
    if np.any(nbytes < 0):
        raise SimulationError("request size must be non-negative")
    channel = MemoryChannel(
        _effective_bytes_per_cycle(system, timing), system.memory_latency
    )
    runner = _ENGINES[timing.mode]
    if FORCE_REFERENCE_ENGINE:
        runner = _REFERENCE_ENGINES[timing.mode]
    trace = runner(channel, timing, nbytes, dec)
    return _build_result(system, timing, channel, nbytes, dec, trace)


def simulate_tile_stream_reference(
    system: SimSystem,
    timing: KernelTiming,
    tiles: int = 600,
) -> SimResult:
    """Run the retained per-tile reference loops (uncached).

    The golden model for the vectorized engines: used by the equivalence
    tests and by ``benchmarks/perf`` as the "before" measurement.
    """
    if tiles < 8:
        raise ConfigurationError("need at least 8 tiles for a steady state")
    nbytes = timing.tile_bytes(tiles)
    dec = timing.tile_dec_cycles(tiles)
    if np.any(nbytes < 0):
        raise SimulationError("request size must be non-negative")
    channel = MemoryChannel(
        _effective_bytes_per_cycle(system, timing), system.memory_latency
    )
    trace = _REFERENCE_ENGINES[timing.mode](channel, timing, nbytes, dec)
    return _build_result(system, timing, channel, nbytes, dec, trace)


def _build_result(
    system: SimSystem,
    timing: KernelTiming,
    channel: MemoryChannel,
    nbytes: np.ndarray,
    dec: np.ndarray,
    trace: PipelineTrace,
) -> SimResult:
    done = trace.mtx_done
    tiles = len(done)
    makespan = float(done[-1])
    half = tiles // 2
    steady = float(done[-1] - done[half]) / (tiles - 1 - half)
    if steady <= 0:
        raise SimulationError("non-positive steady-state interval")
    # Utilization over the steady half of the run. Memory busy time is the
    # raw transfer time at nominal bandwidth, so a DRAM_EFFICIENCY-limited
    # stream reports ~93%, matching the paper's accounting.
    window = makespan - float(done[half])
    raw_bpc = system.per_core_bytes_per_cycle()
    mem_busy = float(np.sum(nbytes[half + 1:])) / raw_bpc
    mtx_busy = timing.mtx_cycles * (tiles - 1 - half)
    dec_busy = float(np.sum(dec[half + 1:]))
    report = UtilizationReport(
        memory=min(1.0, mem_busy / window),
        matrix=min(1.0, mtx_busy / window),
        decompress=min(1.0, dec_busy / window),
    )
    # Results may be shared through the simulation cache; freeze the trace
    # so one consumer cannot mutate another's arrays.
    for array in (
        trace.fetch_issue, trace.mem_done, trace.dec_start,
        trace.dec_done, trace.mtx_start, trace.mtx_done,
    ):
        array.setflags(write=False)
    return SimResult(
        system=system,
        tiles=tiles,
        makespan_cycles=makespan,
        steady_interval_cycles=steady,
        utilization=report,
        trace=trace,
    )


def _shifted(cum: np.ndarray) -> np.ndarray:
    """Exclusive prefix view of an inclusive cumsum (exact prefix values)."""
    return np.concatenate(([0.0], cum[:-1]))


def _run_overlapped(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """Double-buffered software pipeline (Figure 2), vectorized.

    Three max-plus recurrences chain the stages:

    * memory channel:  ``free[i] = max(issue[i], free[i-1]) + service[i]``
    * decompress unit: ``dfree[i] = max(mem_done[i], dfree[i-1]) + cost[i]``
      (over the subsequence of tiles that need decompression)
    * TMUL:            ``mfree[i] = max(ready[i], mfree[i-1]) + mtx``

    Each is one cumsum plus one ``np.maximum.accumulate`` in relative
    coordinates. The prefetch feedback ``issue[i] = dec_start[i - window]``
    is the only cross-recurrence cycle; it is resolved by iterating the
    three scans to their (unique, causal) fixed point. Starting from
    ``issue = 0`` every iterate is a lower bound, so the iteration is
    monotone and terminates; all bandwidth-, decompress- and TMUL-bound
    regimes converge in two passes. If the budget is exhausted (possible
    only in the window-limited corner where the channel idles between
    fetches), the exact per-tile reference loop finishes the job — the
    two paths compute bit-identical timestamps.
    """
    tiles = len(nbytes)
    window = timing.prefetch_window
    dec_idx = np.flatnonzero(dec > 0.0)
    all_dec = dec_idx.size == tiles
    no_dec = dec_idx.size == 0
    dec_cost = (dec if all_dec else dec[dec_idx]) + timing.core_overhead_cycles
    dec_cum = np.cumsum(dec_cost)
    dec_cum_prev = _shifted(dec_cum)
    exposed = timing.exposed_latency * channel.latency_cycles
    mem_cum = np.cumsum(nbytes / channel.bytes_per_cycle)
    mem_cum_prev = _shifted(mem_cum)
    issue = np.zeros(tiles)
    mem_done = dec_start = dec_done = None
    converged = False
    for round_index in range(_OVERLAPPED_MAX_ROUNDS):
        if round_index == 0:
            # issue == 0 everywhere: the channel scan's peak term is
            # floored at zero, so the FIFO is simply back-to-back busy.
            mem_done = mem_cum + exposed
        else:
            peak = np.maximum.accumulate(
                np.maximum(issue - mem_cum_prev, 0.0)
            )
            mem_done = (peak + mem_cum) + exposed
        if no_dec:
            dec_start = mem_done
            dec_done = mem_done
        elif all_dec:
            peak = np.maximum.accumulate(
                np.maximum(mem_done - dec_cum_prev, 0.0)
            )
            dec_start = peak + dec_cum_prev
            dec_done = peak + dec_cum
        else:
            dec_start = mem_done.copy()
            dec_done = mem_done.copy()
            peak = np.maximum.accumulate(
                np.maximum(mem_done[dec_idx] - dec_cum_prev, 0.0)
            )
            dec_start[dec_idx] = peak + dec_cum_prev
            dec_done[dec_idx] = peak + dec_cum
        new_issue = np.zeros(tiles)
        if tiles > window:
            new_issue[window:] = dec_start[:-window]
        if np.array_equal(new_issue, issue):
            converged = True
            break
        issue = new_issue
    if not converged:
        return _run_overlapped_reference(channel, timing, nbytes, dec)
    mtx_cum_prev = np.arange(tiles) * timing.mtx_cycles
    mtx_cum = np.arange(1, tiles + 1) * timing.mtx_cycles
    ready = dec_done + timing.handoff_cycles
    peak = np.maximum.accumulate(np.maximum(ready - mtx_cum_prev, 0.0))
    mtx_start = peak + mtx_cum_prev
    mtx_done = peak + mtx_cum
    return PipelineTrace(
        issue, mem_done, dec_start, dec_done, mtx_start, mtx_done,
    )


def _run_overlapped_reference(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """Per-tile reference for the OVERLAPPED discipline (Figure 2).

    Evaluates the same recurrences as :func:`_run_overlapped`, one tile at
    a time, in the same relative-coordinate algebra (running cumsums plus
    running peaks), so the two implementations produce bit-identical
    timestamps — the equivalence the tests assert exactly.
    """
    tiles = len(nbytes)
    window = timing.prefetch_window
    bpc = channel.bytes_per_cycle
    exposed = timing.exposed_latency * channel.latency_cycles
    overhead = timing.core_overhead_cycles
    mtx = timing.mtx_cycles
    handoff = timing.handoff_cycles
    fetch_issue = np.zeros(tiles)
    mem_done_arr = np.zeros(tiles)
    dec_start = np.zeros(tiles)
    dec_done_arr = np.zeros(tiles)
    mtx_start_arr = np.zeros(tiles)
    done = np.zeros(tiles)
    mem_cum = mem_peak = 0.0
    dec_cum = dec_peak = 0.0
    mtx_peak = 0.0
    for i in range(tiles):
        issue = 0.0 if i < window else dec_start[i - window]
        mem_cum_prev = mem_cum
        mem_cum = mem_cum + nbytes[i] / bpc
        slack = issue - mem_cum_prev
        if slack > mem_peak:
            mem_peak = slack
        mem_done = (mem_peak + mem_cum) + exposed
        if dec[i] > 0.0:
            # The AVX sequence plus its serial loop overhead occupy the core.
            dec_cum_prev = dec_cum
            dec_cum = dec_cum + (dec[i] + overhead)
            slack = mem_done - dec_cum_prev
            if slack > dec_peak:
                dec_peak = slack
            dec_start[i] = dec_peak + dec_cum_prev
            dec_done = dec_peak + dec_cum
        else:
            dec_start[i] = mem_done
            dec_done = mem_done
        mtx_cum_prev = i * mtx
        mtx_cum = (i + 1) * mtx
        slack = (dec_done + handoff) - mtx_cum_prev
        if slack > mtx_peak:
            mtx_peak = slack
        fetch_issue[i] = issue
        mem_done_arr[i] = mem_done
        dec_done_arr[i] = dec_done
        mtx_start_arr[i] = mtx_peak + mtx_cum_prev
        done[i] = mtx_peak + mtx_cum
    return PipelineTrace(
        fetch_issue, mem_done_arr, dec_start, dec_done_arr,
        mtx_start_arr, done,
    )


def _run_serialized(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """Store+fence invocation (Figure 9): the core never overlaps.

    Iteration i: the core stores the metadata of tile i+1 (triggering its
    fetch), executes a fence, waits for tile i's decompressed data, and
    runs the TMUL. DECA's two loaders still let fetch/decompress of tile i
    overlap the previous iteration — it is the core that serializes.

    Every store lands ``invoke + fence + mtx`` plus the decompress wait
    after the previous one, so the memory/decompress chains feed the next
    tile's invocation with a one-tile lag: exactness requires the per-tile
    loop. It is kept tight — precomputed service times, plain-float
    arithmetic, no per-tile channel calls — and is bit-identical to the
    retained :func:`_run_serialized_reference`.
    """
    tiles = len(nbytes)
    service = (nbytes / channel.bytes_per_cycle).tolist()
    dec_list = dec.tolist()
    exposed = timing.exposed_latency * channel.latency_cycles
    invoke = timing.invoke_cycles
    fence = timing.fence_cycles
    loader = timing.loader_latency_cycles
    handoff = timing.handoff_cycles
    mtx = timing.mtx_cycles
    done = [0.0] * tiles
    dec_done = [0.0] * tiles
    store_time = [0.0] * tiles
    mem_done_arr = [0.0] * tiles
    dec_start_arr = [0.0] * tiles
    mtx_start_arr = [0.0] * tiles
    mem_free = 0.0
    dec_free = 0.0
    # Priming store for tile 0 before the loop begins.
    now = invoke
    store_time[0] = now
    start = now if now > mem_free else mem_free
    mem_free = start + service[0]
    mem_done = mem_free + exposed
    mem_done_arr[0] = mem_done
    turnaround = now + loader
    ready = mem_done if mem_done > turnaround else turnaround
    dec_start = ready if ready > dec_free else dec_free
    dec_start_arr[0] = dec_start
    dec_free = dec_start + dec_list[0]
    dec_done[0] = dec_free
    for i in range(tiles):
        # Store metadata for tile i+1 (prompts its loader).
        now += invoke
        if i + 1 < tiles:
            store_time[i + 1] = now
            start = now if now > mem_free else mem_free
            mem_free = start + service[i + 1]
            mem_done = mem_free + exposed
            mem_done_arr[i + 1] = mem_done
            turnaround = now + loader
            ready = mem_done if mem_done > turnaround else turnaround
            dec_start = ready if ready > dec_free else dec_free
            dec_start_arr[i + 1] = dec_start
            dec_free = dec_start + dec_list[i + 1]
            dec_done[i + 1] = dec_free
        now += fence
        # TLoad of tile i waits for DECA plus the data path back.
        wait = dec_done[i] + handoff
        if wait > now:
            now = wait
        mtx_start_arr[i] = now
        now += mtx
        done[i] = now
    return PipelineTrace(
        np.asarray(store_time), np.asarray(mem_done_arr),
        np.asarray(dec_start_arr), np.asarray(dec_done),
        np.asarray(mtx_start_arr), np.asarray(done),
    )


def _run_serialized_reference(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """Per-tile reference for the SERIALIZED discipline (channel calls)."""
    tiles = len(nbytes)
    done = np.zeros(tiles)
    dec_done = np.zeros(tiles)
    store_time = np.zeros(tiles + 1)
    mem_done_arr = np.zeros(tiles)
    dec_start_arr = np.zeros(tiles)
    mtx_start_arr = np.zeros(tiles)
    dec_free = 0.0
    now = 0.0
    # Priming store for tile 0 before the loop begins.
    now += timing.invoke_cycles
    store_time[0] = now
    mem_done0 = channel.request(now, nbytes[0], timing.exposed_latency)
    mem_done_arr[0] = mem_done0
    ready0 = max(mem_done0, now + timing.loader_latency_cycles)
    dec_start_arr[0] = max(ready0, dec_free)
    dec_free = dec_start_arr[0] + dec[0]
    dec_done[0] = dec_free
    for i in range(tiles):
        # Store metadata for tile i+1 (prompts its loader).
        now += timing.invoke_cycles
        store_time[i + 1] = now
        if i + 1 < tiles:
            mem_done = channel.request(
                now, nbytes[i + 1], timing.exposed_latency
            )
            mem_done_arr[i + 1] = mem_done
            ready = max(mem_done, now + timing.loader_latency_cycles)
            dec_start_arr[i + 1] = max(ready, dec_free)
            dec_free = dec_start_arr[i + 1] + dec[i + 1]
            dec_done[i + 1] = dec_free
        now += timing.fence_cycles
        # TLoad of tile i waits for DECA plus the data path back.
        now = max(now, dec_done[i] + timing.handoff_cycles)
        mtx_start_arr[i] = now
        now += timing.mtx_cycles
        done[i] = now
    return PipelineTrace(
        store_time[:tiles], mem_done_arr, dec_start_arr, dec_done,
        mtx_start_arr, done,
    )


def _run_tepl(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """TEPL invocation (Figure 10): out-of-order, two-loader hazard.

    TEPL i may issue only when TEPL i - n_loaders has completed (its
    loader freed) — a feedback with lag ``n_loaders`` (two tiles for
    DECA), so exactness requires the per-tile loop. As with SERIALIZED,
    the loop is kept tight (precomputed service times, plain floats) and
    is bit-identical to the retained :func:`_run_tepl_reference`.
    """
    tiles = len(nbytes)
    service = (nbytes / channel.bytes_per_cycle).tolist()
    dec_list = dec.tolist()
    exposed = timing.exposed_latency * channel.latency_cycles
    invoke = timing.invoke_cycles
    loader = timing.loader_latency_cycles
    handoff = timing.handoff_cycles
    mtx = timing.mtx_cycles
    n_loaders = timing.n_loaders
    window = max(timing.prefetch_window, timing.n_loaders)
    prefetch_ahead = timing.prefetch_window > timing.n_loaders
    done = [0.0] * tiles
    complete = [0.0] * tiles
    dec_start = [0.0] * tiles
    fetch_issue_arr = [0.0] * tiles
    mem_done_arr = [0.0] * tiles
    dec_done_arr = [0.0] * tiles
    mtx_start_arr = [0.0] * tiles
    mem_free = 0.0
    dec_free = 0.0
    mtx_free = 0.0
    for i in range(tiles):
        hazard = 0.0 if i < n_loaders else complete[i - n_loaders]
        issue = hazard + invoke
        if prefetch_ahead and i >= window:
            # DECA's own prefetcher predicts future tiles and fetches ahead
            # of the TEPL issue, decoupling the fetch from the hazard.
            fetch_issue = dec_start[i - window]
            if issue < fetch_issue:
                fetch_issue = issue
        elif prefetch_ahead:
            fetch_issue = 0.0
        else:
            fetch_issue = issue
        start = fetch_issue if fetch_issue > mem_free else mem_free
        mem_free = start + service[i]
        mem_done = mem_free + exposed
        ready = issue + loader
        ds = mem_done if mem_done > dec_free else dec_free
        if ready > ds:
            ds = ready
        dec_start[i] = ds
        dec_done = ds + dec_list[i]
        dec_free = dec_done
        comp = dec_done + handoff
        complete[i] = comp
        mtx_start = comp if comp > mtx_free else mtx_free
        mtx_free = mtx_start + mtx
        fetch_issue_arr[i] = fetch_issue
        mem_done_arr[i] = mem_done
        dec_done_arr[i] = dec_done
        mtx_start_arr[i] = mtx_start
        done[i] = mtx_free
    return PipelineTrace(
        np.asarray(fetch_issue_arr), np.asarray(mem_done_arr),
        np.asarray(dec_start), np.asarray(dec_done_arr),
        np.asarray(mtx_start_arr), np.asarray(done),
    )


def _run_tepl_reference(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """Per-tile reference for the TEPL discipline (channel calls)."""
    tiles = len(nbytes)
    done = np.zeros(tiles)
    complete = np.zeros(tiles)
    dec_start = np.zeros(tiles)
    fetch_issue_arr = np.zeros(tiles)
    mem_done_arr = np.zeros(tiles)
    dec_done_arr = np.zeros(tiles)
    mtx_start_arr = np.zeros(tiles)
    dec_free = 0.0
    mtx_free = 0.0
    window = max(timing.prefetch_window, timing.n_loaders)
    prefetch_ahead = timing.prefetch_window > timing.n_loaders
    for i in range(tiles):
        hazard = 0.0 if i < timing.n_loaders else complete[i - timing.n_loaders]
        issue = hazard + timing.invoke_cycles
        if prefetch_ahead and i >= window:
            # DECA's own prefetcher predicts future tiles and fetches ahead
            # of the TEPL issue, decoupling the fetch from the hazard.
            fetch_issue = min(dec_start[i - window], issue)
        elif prefetch_ahead:
            fetch_issue = 0.0
        else:
            fetch_issue = issue
        mem_done = channel.request(
            fetch_issue, nbytes[i], timing.exposed_latency
        )
        dec_start[i] = max(
            mem_done, dec_free, issue + timing.loader_latency_cycles
        )
        dec_done = dec_start[i] + dec[i]
        dec_free = dec_done
        complete[i] = dec_done + timing.handoff_cycles
        mtx_start = max(complete[i], mtx_free)
        mtx_free = mtx_start + timing.mtx_cycles
        fetch_issue_arr[i] = fetch_issue
        mem_done_arr[i] = mem_done
        dec_done_arr[i] = dec_done
        mtx_start_arr[i] = mtx_start
        done[i] = mtx_free
    return PipelineTrace(
        fetch_issue_arr, mem_done_arr, dec_start, dec_done_arr,
        mtx_start_arr, done,
    )


_ENGINES = {
    InvocationMode.OVERLAPPED: _run_overlapped,
    InvocationMode.SERIALIZED: _run_serialized,
    InvocationMode.TEPL: _run_tepl,
}

_REFERENCE_ENGINES = {
    InvocationMode.OVERLAPPED: _run_overlapped_reference,
    InvocationMode.SERIALIZED: _run_serialized_reference,
    InvocationMode.TEPL: _run_tepl_reference,
}


def tile_stream_key(system: SimSystem, timing: KernelTiming, tiles: int):
    """The cache key :func:`simulate_tile_stream` files results under.

    Exposed so batched callers can probe the two-tier cache for a cell
    without recomputing the keying convention (the ``extra`` slot
    carries the ambient ``DRAM_EFFICIENCY`` calibration, exactly as the
    per-cell front door passes it).
    """
    return _simcache.simulation_key(system, timing, int(tiles), DRAM_EFFICIENCY)


def batch_group_key(timing: KernelTiming, tiles: int, dec=None):
    """The shape-compatibility class of one cell, or ``None``.

    Cells with equal keys can run as rows of one stacked engine pass:
    everything that steers *control flow* inside an engine — invocation
    mode, stream length, window geometry, which tiles decompress — must
    match across the stack, while per-cell magnitudes (byte counts,
    cycle costs, bandwidth shares, latencies) become per-row columns.
    ``None`` marks a cell the batched engines do not handle (an
    OVERLAPPED stream mixing dec and no-dec tiles); such cells take the
    per-cell path unchanged.
    """
    tiles = int(tiles)
    mode = timing.mode
    if mode is InvocationMode.SERIALIZED:
        # The serialized loop has no window feedback and treats zero dec
        # cycles like any other cost: stream length is the whole shape.
        return (mode.value, tiles)
    if mode is InvocationMode.TEPL:
        return (mode.value, tiles, timing.prefetch_window, timing.n_loaders)
    if dec is None:
        raw = timing.dec_cycles
        if np.ndim(raw) == 0:
            # Scalar dec broadcasts uniformly: the class is decided
            # without materializing the per-tile array.
            active = tiles if float(raw) > 0.0 else 0
        else:
            active = int(np.count_nonzero(timing.tile_dec_cycles(tiles) > 0.0))
    else:
        active = int(np.count_nonzero(dec > 0.0))
    if active == tiles:
        dec_class = "all"
    elif active == 0:
        dec_class = "none"
    else:
        return None
    return (mode.value, tiles, timing.prefetch_window, dec_class)


def _shifted2(cum: np.ndarray) -> np.ndarray:
    """Row-wise exclusive prefix of an inclusive ``(cells, tiles)`` cumsum."""
    out = np.zeros_like(cum)
    out[:, 1:] = cum[:, :-1]
    return out


def _stack_tile_rows(timings, tiles: int, field: str) -> np.ndarray:
    """Stack one per-tile timing field across cells into ``(cells, tiles)``.

    Scalar fields fill their row directly (same float64 value the
    per-cell ``_broadcast`` would ``np.full``); per-tile arrays go
    through ``_broadcast`` itself, so each row matches the per-cell
    engine's input bit for bit.
    """
    out = np.empty((len(timings), tiles))
    for i, timing in enumerate(timings):
        value = getattr(timing, field)
        if np.ndim(value) == 0:
            out[i, :] = float(value)
        else:
            out[i, :] = _broadcast(value, tiles, field)
    return out


def _run_overlapped_batch(channels, timings, nbytes2, dec2):
    """The OVERLAPPED scans of :func:`_run_overlapped`, one pass per stage.

    Identical algebra with one leading ``cells`` axis: the cumsums and
    ``maximum.accumulate`` scans run along axis 1 of C-contiguous
    ``(cells, tiles)`` stacks (both are strictly sequential per row, so
    each row computes the per-cell engine's floats bit for bit), and the
    per-cell scalars enter as ``(cells, 1)`` columns whose broadcast
    applies the same elementwise IEEE ops. The fixed-point iteration
    converges per row; a row already at its fixed point recomputes
    identical values while slower rows catch up (the iteration map is
    idempotent there), and a row that exhausts the budget falls back to
    the exact per-tile reference, exactly like the per-cell engine.
    Returns one :class:`PipelineTrace` per row.
    """
    k, tiles = nbytes2.shape
    window = timings[0].prefetch_window
    # batch_group_key guarantees a uniform dec class across the stack.
    all_dec = bool(dec2[0, 0] > 0.0)
    exposed = np.array([
        t.exposed_latency * c.latency_cycles
        for t, c in zip(timings, channels)
    ])[:, None]
    bpc = np.array([c.bytes_per_cycle for c in channels])[:, None]
    if all_dec:
        overhead = np.array(
            [t.core_overhead_cycles for t in timings]
        )[:, None]
        dec_cum = np.cumsum(dec2 + overhead, axis=1)
        dec_cum_prev = _shifted2(dec_cum)
    mem_cum = np.cumsum(nbytes2 / bpc, axis=1)
    mem_cum_prev = _shifted2(mem_cum)
    # The fixed point converges per row at its own rate; rows are
    # independent, so a converged row's state is scattered into the
    # full-stack buffers and the iteration continues on the shrinking
    # active submatrix (fancy indexing copies rows verbatim, and every
    # scan is per-row sequential, so each row still computes the
    # per-cell engine's floats bit for bit).
    issue_full = np.zeros((k, tiles))
    mem_done_full = np.zeros((k, tiles))
    dec_start_full = np.zeros((k, tiles))
    dec_done_full = np.zeros((k, tiles))
    ok_full = np.zeros(k, dtype=bool)
    active = np.arange(k)
    issue = np.zeros((k, tiles))
    mcum, mprev, exp_col = mem_cum, mem_cum_prev, exposed
    if all_dec:
        dcum, dprev = dec_cum, dec_cum_prev
    for round_index in range(_OVERLAPPED_MAX_ROUNDS):
        if round_index == 0:
            mem_done = mcum + exp_col
        else:
            # In-place chain of the same ops: peak = accumulate(max(
            # issue - mprev, 0)), mem_done = (peak + mcum) + exp_col.
            peak = np.subtract(issue, mprev)
            np.maximum(peak, 0.0, out=peak)
            np.maximum.accumulate(peak, axis=1, out=peak)
            mem_done = peak
            mem_done += mcum
            mem_done += exp_col
        if all_dec:
            peak = np.subtract(mem_done, dprev)
            np.maximum(peak, 0.0, out=peak)
            np.maximum.accumulate(peak, axis=1, out=peak)
            dec_start = peak + dprev
            dec_done = peak + dcum
        else:
            dec_start = mem_done
            dec_done = mem_done
        new_issue = np.zeros_like(issue)
        if tiles > window:
            new_issue[:, window:] = dec_start[:, :-window]
        row_ok = np.all(new_issue == issue, axis=1)
        issue = new_issue
        if row_ok.any():
            done_rows = active[row_ok]
            issue_full[done_rows] = issue[row_ok]
            mem_done_full[done_rows] = mem_done[row_ok]
            dec_start_full[done_rows] = dec_start[row_ok]
            dec_done_full[done_rows] = dec_done[row_ok]
            ok_full[done_rows] = True
            if row_ok.all():
                break
            keep = ~row_ok
            active = active[keep]
            issue = issue[keep]
            mcum = mcum[keep]
            mprev = mprev[keep]
            exp_col = exp_col[keep]
            if all_dec:
                dcum = dcum[keep]
                dprev = dprev[keep]
    mtx = np.array([t.mtx_cycles for t in timings])[:, None]
    handoff = np.array([t.handoff_cycles for t in timings])[:, None]
    mtx_cum_prev = np.arange(tiles) * mtx
    mtx_cum = np.arange(1, tiles + 1) * mtx
    ready = dec_done_full + handoff
    peak = np.maximum.accumulate(
        np.maximum(ready - mtx_cum_prev, 0.0), axis=1
    )
    mtx_start = peak + mtx_cum_prev
    mtx_done = peak + mtx_cum
    traces = []
    for r in range(k):
        if ok_full[r]:
            # Contiguous row views: each trace owns its row logically
            # (the backing stacks are internal and never touched after
            # this point), so no per-row copies are needed — the rows
            # collectively hold exactly the per-cell arrays' bytes.
            traces.append(PipelineTrace(
                issue_full[r], mem_done_full[r],
                dec_start_full[r], dec_done_full[r],
                mtx_start[r], mtx_done[r],
            ))
        else:
            traces.append(_run_overlapped_reference(
                channels[r], timings[r], nbytes2[r], dec2[r]
            ))
    return traces


def _run_serialized_batch(channels, timings, nbytes2, dec2):
    """The SERIALIZED loop of :func:`_run_serialized`, cells-vectorized.

    The per-tile feedback (lag 1 through the core's program order) keeps
    the tile loop, but each iteration now advances *every* cell's scalar
    state as one ``(cells,)`` vector op: ``max`` on floats and
    ``np.maximum`` on float64 vectors select the same IEEE values, so
    each row is bit-identical to the per-cell loop. State matrices are
    tile-major so the per-tile row views are contiguous.
    """
    k, tiles = nbytes2.shape
    bpc = np.array([c.bytes_per_cycle for c in channels])
    service_t = np.ascontiguousarray((nbytes2 / bpc[:, None]).T)
    dec_t = np.ascontiguousarray(dec2.T)
    exposed = np.array([
        t.exposed_latency * c.latency_cycles
        for t, c in zip(timings, channels)
    ])
    invoke = np.array([t.invoke_cycles for t in timings])
    fence = np.array([t.fence_cycles for t in timings])
    loader = np.array([t.loader_latency_cycles for t in timings])
    handoff = np.array([t.handoff_cycles for t in timings])
    mtx = np.array([t.mtx_cycles for t in timings])
    done_t = np.zeros((tiles, k))
    dec_done_t = np.zeros((tiles, k))
    store_t = np.zeros((tiles, k))
    mem_done_t = np.zeros((tiles, k))
    dec_start_t = np.zeros((tiles, k))
    mtx_start_t = np.zeros((tiles, k))
    # Hoist the per-tile row views and the ufunc lookups out of the
    # loop: at small stack widths the loop is dispatch-bound, and
    # list() materializes all row views in one C pass.
    service_rows = list(service_t)
    dec_rows = list(dec_t)
    done_rows = list(done_t)
    dec_done_rows = list(dec_done_t)
    store_rows = list(store_t)
    mem_done_rows = list(mem_done_t)
    dec_start_rows = list(dec_start_t)
    mtx_start_rows = list(mtx_start_t)
    add = np.add
    maximum = np.maximum
    mem_free = np.zeros(k)
    start = np.empty(k)
    turnaround = np.empty(k)
    ready = np.empty(k)
    wait = np.empty(k)
    # Priming store for tile 0 before the loop begins (dec_free is zero).
    now = invoke.copy()
    store_rows[0][:] = now
    maximum(now, mem_free, out=start)
    add(start, service_rows[0], out=mem_free)
    add(mem_free, exposed, out=mem_done_rows[0])
    add(now, loader, out=turnaround)
    maximum(mem_done_rows[0], turnaround, out=ready)
    dec_start_rows[0][:] = ready
    add(dec_start_rows[0], dec_rows[0], out=dec_done_rows[0])
    dec_free = dec_done_rows[0]
    for i in range(tiles):
        # Store metadata for tile i+1 (prompts its loader).
        add(now, invoke, out=now)
        j = i + 1
        if j < tiles:
            store_rows[j][:] = now
            maximum(now, mem_free, out=start)
            add(start, service_rows[j], out=mem_free)
            md = mem_done_rows[j]
            add(mem_free, exposed, out=md)
            add(now, loader, out=turnaround)
            maximum(md, turnaround, out=ready)
            dsr = dec_start_rows[j]
            maximum(ready, dec_free, out=dsr)
            dec_free = dec_done_rows[j]
            add(dsr, dec_rows[j], out=dec_free)
        add(now, fence, out=now)
        # TLoad of tile i waits for DECA plus the data path back.
        add(dec_done_rows[i], handoff, out=wait)
        maximum(now, wait, out=now)
        mtx_start_rows[i][:] = now
        add(now, mtx, out=now)
        done_rows[i][:] = now
    return [
        PipelineTrace(
            store_t[:, r].copy(), mem_done_t[:, r].copy(),
            dec_start_t[:, r].copy(), dec_done_t[:, r].copy(),
            mtx_start_t[:, r].copy(), done_t[:, r].copy(),
        )
        for r in range(k)
    ]


def _run_tepl_batch(channels, timings, nbytes2, dec2):
    """The TEPL loop of :func:`_run_tepl`, cells-vectorized.

    Same structure as :func:`_run_serialized_batch`: the lag-``n_loaders``
    hazard feedback keeps the tile loop, each iteration advances all
    cells at once, and ``min``/``max`` on floats vs ``np.minimum`` /
    ``np.maximum`` on float64 vectors select identical IEEE values.
    ``prefetch_window`` and ``n_loaders`` are group-uniform (they steer
    the loop's branches); every other timing knob is a per-row column.
    """
    k, tiles = nbytes2.shape
    bpc = np.array([c.bytes_per_cycle for c in channels])
    service_t = np.ascontiguousarray((nbytes2 / bpc[:, None]).T)
    dec_t = np.ascontiguousarray(dec2.T)
    exposed = np.array([
        t.exposed_latency * c.latency_cycles
        for t, c in zip(timings, channels)
    ])
    invoke = np.array([t.invoke_cycles for t in timings])
    loader = np.array([t.loader_latency_cycles for t in timings])
    handoff = np.array([t.handoff_cycles for t in timings])
    mtx = np.array([t.mtx_cycles for t in timings])
    n_loaders = timings[0].n_loaders
    window = max(timings[0].prefetch_window, n_loaders)
    prefetch_ahead = timings[0].prefetch_window > n_loaders
    done_t = np.zeros((tiles, k))
    complete_t = np.zeros((tiles, k))
    dec_start_t = np.zeros((tiles, k))
    fetch_issue_t = np.zeros((tiles, k))
    mem_done_t = np.zeros((tiles, k))
    dec_done_t = np.zeros((tiles, k))
    mtx_start_t = np.zeros((tiles, k))
    # Same dispatch-bound hoisting as the serialized loop: row views and
    # ufuncs resolved once, reused every tile.
    service_rows = list(service_t)
    dec_rows = list(dec_t)
    done_rows = list(done_t)
    complete_rows = list(complete_t)
    dec_start_rows = list(dec_start_t)
    fetch_rows = list(fetch_issue_t)
    mem_done_rows = list(mem_done_t)
    dec_done_rows = list(dec_done_t)
    mtx_start_rows = list(mtx_start_t)
    add = np.add
    maximum = np.maximum
    minimum = np.minimum
    mem_free = np.zeros(k)
    dec_free = np.zeros(k)
    mtx_free = np.zeros(k)
    issue = np.empty(k)
    start = np.empty(k)
    ready = np.empty(k)
    ds = np.empty(k)
    for i in range(tiles):
        if i < n_loaders:
            issue[:] = invoke
        else:
            add(complete_rows[i - n_loaders], invoke, out=issue)
        fi = fetch_rows[i]
        if prefetch_ahead and i >= window:
            # DECA's own prefetcher predicts future tiles and fetches
            # ahead of the TEPL issue, decoupling fetch from the hazard.
            minimum(dec_start_rows[i - window], issue, out=fi)
        elif not prefetch_ahead:
            fi[:] = issue
        # (prefetch_ahead below the window: the row stays zero.)
        maximum(fi, mem_free, out=start)
        add(start, service_rows[i], out=mem_free)
        md = mem_done_rows[i]
        add(mem_free, exposed, out=md)
        add(issue, loader, out=ready)
        maximum(md, dec_free, out=ds)
        dsr = dec_start_rows[i]
        maximum(ds, ready, out=dsr)
        dec_free = dec_done_rows[i]
        add(dsr, dec_rows[i], out=dec_free)
        comp = complete_rows[i]
        add(dec_free, handoff, out=comp)
        ms = mtx_start_rows[i]
        maximum(comp, mtx_free, out=ms)
        mtx_free = done_rows[i]
        add(ms, mtx, out=mtx_free)
    return [
        PipelineTrace(
            fetch_issue_t[:, r].copy(), mem_done_t[:, r].copy(),
            dec_start_t[:, r].copy(), dec_done_t[:, r].copy(),
            mtx_start_t[:, r].copy(), done_t[:, r].copy(),
        )
        for r in range(k)
    ]


_BATCH_ENGINES = {
    InvocationMode.OVERLAPPED: _run_overlapped_batch,
    InvocationMode.SERIALIZED: _run_serialized_batch,
    InvocationMode.TEPL: _run_tepl_batch,
}


def _build_results_batch(group, nbytes2, dec2, traces):
    """Per-row :func:`_build_result`, with the reductions vectorized.

    Mirrors ``_build_result`` exactly — every scalar op per row is the
    same float arithmetic — but the two steady-window sums run once over
    the ``(cells, tiles)`` stacks instead of once per cell (each row
    slice is the same contiguous buffer the per-cell sum reduces, so
    the axis-wise pairwise sums are bit-identical per row).
    """
    k, tiles = nbytes2.shape
    half = tiles // 2
    denom = tiles - 1 - half
    mem_sums = np.sum(nbytes2[:, half + 1:], axis=1)
    dec_sums = np.sum(dec2[:, half + 1:], axis=1)
    done_last = np.empty(k)
    done_half = np.empty(k)
    for pos, trace in enumerate(traces):
        done = trace.mtx_done
        done_last[pos] = done[-1]
        done_half[pos] = done[half]
    # The same scalar arithmetic as _build_result, one vector op per
    # quantity (float64 elementwise ops match Python-float ops bit for
    # bit; np.minimum matches min() on finite operands).
    steady = (done_last - done_half) / denom
    if not np.all(steady > 0):
        raise SimulationError("non-positive steady-state interval")
    window = done_last - done_half
    raw_bpc = np.array([s.per_core_bytes_per_cycle() for s, _, _ in group])
    mtx_vec = np.array([t.mtx_cycles for _, t, _ in group])
    memory_u = np.minimum(1.0, (mem_sums / raw_bpc) / window)
    matrix_u = np.minimum(1.0, (mtx_vec * denom) / window)
    dec_u = np.minimum(1.0, dec_sums / window)
    results = []
    for pos, (system, timing, _) in enumerate(group):
        trace = traces[pos]
        report = UtilizationReport(
            memory=float(memory_u[pos]),
            matrix=float(matrix_u[pos]),
            decompress=float(dec_u[pos]),
        )
        for array in (
            trace.fetch_issue, trace.mem_done, trace.dec_start,
            trace.dec_done, trace.mtx_start, trace.mtx_done,
        ):
            array.setflags(write=False)
        results.append(SimResult(
            system=system,
            tiles=tiles,
            makespan_cycles=float(done_last[pos]),
            steady_interval_cycles=float(steady[pos]),
            utilization=report,
            trace=trace,
        ))
    return results


def simulate_tile_stream_batch(
    cells, use_cache: bool = True, resolve_cached: bool = True
):
    """Simulate many ``(system, timing, tiles)`` cells, stacking compatible ones.

    The cross-cell batched front door: cells whose
    :func:`batch_group_key` matches are stacked on a leading ``cells``
    axis and drained through one vectorized engine pass per stage;
    incompatible cells, singleton groups, and (under
    ``FORCE_REFERENCE_ENGINE``) everything fall back to
    :func:`simulate_tile_stream`. Returns one :class:`SimResult` per
    input cell, in input order, bit-identical to calling
    :func:`simulate_tile_stream` per cell.

    With ``use_cache=True`` the stack is built *around* the two-tier
    cache: cells already resident in memory or on disk are excluded up
    front (and served through the normal per-cell lookup, so hit
    counters move exactly as they would unbatched), duplicate keys are
    computed once, and every freshly batched row is fanned back in under
    its cell's own :func:`tile_stream_key` — counting one miss and
    spilling to disk exactly like a per-cell compute.

    ``resolve_cached=False`` is the *seeding* contract the sweep
    executor uses: cells excluded as already cached (or duplicates of
    an earlier cell in this stack) are left as ``None`` in the result
    list instead of being looked up here. The callers' own per-cell
    lookups then touch each entry exactly once, so cache hit/disk-hit
    accounting stays identical to the unbatched sweep (a warm disk
    restart still reads 100% from disk, not 50/50 across a double
    lookup).
    """
    cells = list(cells)
    results: list = [None] * len(cells)
    if FORCE_REFERENCE_ENGINE:
        for idx, (system, timing, tiles) in enumerate(cells):
            results[idx] = simulate_tile_stream(
                system, timing, tiles, use_cache=use_cache
            )
        return results
    groups: dict = {}
    deferred: list = []
    seen: set = set()
    keys: dict = {}
    for idx, (system, timing, tiles) in enumerate(cells):
        if tiles < 8:
            raise ConfigurationError(
                "need at least 8 tiles for a steady state"
            )
        if use_cache:
            key = tile_stream_key(system, timing, tiles)
            if key in seen or _simcache.simulation_cache_contains(key):
                # Already cached (either tier) or a duplicate of a cell
                # earlier in this stack: resolve through the per-cell
                # lookup after the stacks have landed.
                deferred.append(idx)
                continue
            seen.add(key)
            keys[idx] = key
        gkey = batch_group_key(timing, tiles)
        if gkey is None:
            results[idx] = simulate_tile_stream(
                system, timing, tiles, use_cache=use_cache
            )
            continue
        groups.setdefault(gkey, []).append(idx)
    for gkey, members in groups.items():
        if len(members) == 1:
            system, timing, tiles = cells[members[0]]
            results[members[0]] = simulate_tile_stream(
                system, timing, tiles, use_cache=use_cache
            )
            continue
        tiles = gkey[1]
        group = [cells[i] for i in members]
        timings = [t for _, t, _ in group]
        channels = [
            MemoryChannel(_effective_bytes_per_cycle(s, t), s.memory_latency)
            for s, t, _ in group
        ]
        nbytes2 = _stack_tile_rows(timings, tiles, "bytes_per_tile")
        dec2 = _stack_tile_rows(timings, tiles, "dec_cycles")
        if np.any(nbytes2 < 0):
            raise SimulationError("request size must be non-negative")
        traces = _BATCH_ENGINES[InvocationMode(gkey[0])](
            channels, timings, nbytes2, dec2
        )
        rows = _build_results_batch(group, nbytes2, dec2, traces)
        if use_cache:
            # Fan the rows back in under the keys probed during the
            # exclusion pass (one lock acquisition): each fresh key
            # counts one miss and spills to disk exactly as a per-cell
            # compute would.
            rows = _simcache.insert_simulation_results(
                [(keys[idx], rows[pos]) for pos, idx in enumerate(members)]
            )
        for pos, idx in enumerate(members):
            results[idx] = rows[pos]
    if resolve_cached:
        for idx in deferred:
            system, timing, tiles = cells[idx]
            results[idx] = simulate_tile_stream(system, timing, tiles)
    return results


def _multicore_setup(
    system: SimSystem,
    timing: KernelTiming,
    tiles_per_core: int,
    cores: Optional[int],
):
    """Validated shared inputs of the two multi-core engines.

    Returns ``(n_cores, nbytes, dec, server)``. Both engines must build
    their chain coordinates from these *identical* arrays — every float
    op downstream is then the same in both, which is what makes them
    bit-identical.
    """
    if timing.mode is not InvocationMode.OVERLAPPED:
        raise ConfigurationError(
            "the event backend models the OVERLAPPED discipline only"
        )
    if tiles_per_core < 2:
        raise ConfigurationError(
            "need at least 2 waves per core to measure a steady interval"
        )
    n_cores = cores if cores is not None else system.cores
    if n_cores < 1:
        raise ConfigurationError("cores must be >= 1")
    nbytes = timing.tile_bytes(tiles_per_core)
    dec = timing.tile_dec_cycles(tiles_per_core)
    if np.any(nbytes < 0):
        raise SimulationError("request size must be non-negative")
    cap = timing.demand_load_cap
    eff_bw = system.bytes_per_cycle() * DRAM_EFFICIENCY
    if cap is not None:
        eff_bw = min(eff_bw, cap * n_cores)
    server = MemoryChannel(eff_bw, system.memory_latency)
    return n_cores, nbytes, dec, server


def _multicore_chain_coords(timing: KernelTiming, dec: np.ndarray):
    """Global relative coordinates of the decompress and TMUL chains.

    ``dcum``/``dcum_prev`` are the cumsum of per-wave decompress costs
    over the *dec-active* subsequence (waves with ``dec > 0``; zero-dec
    waves pass memory data straight through). ``dec_pos[w]`` maps a wave
    to its position in that subsequence (-1 when inactive). The TMUL
    coordinates are exact multiples of ``mtx_cycles``, with the handoff
    pre-folded into ``hm`` (``handoff - w * mtx``) so the TMUL slack is
    one add. Both engines share these arrays, so the chain recurrences

        ``chain_done[w] = peak[w] + cum[w]``,
        ``peak[w] = max(peak[w-1], ready[w] - cum_prev[w])``

    evaluate the same floats whether advanced one wave at a time or as a
    ``maximum.accumulate`` over a whole block (``max`` is exact).
    """
    tiles = len(dec)
    dec_idx = np.flatnonzero(dec > 0.0)
    dec_cost = dec[dec_idx] + timing.core_overhead_cycles
    dcum = np.cumsum(dec_cost)
    dcum_prev = np.concatenate(([0.0], dcum[:-1]))
    dec_pos = np.full(tiles, -1)
    dec_pos[dec_idx] = np.arange(dec_idx.size)
    mtx_prev = np.arange(tiles) * timing.mtx_cycles
    hm = timing.handoff_cycles - mtx_prev
    mtx_cum = np.arange(1, tiles + 1) * timing.mtx_cycles
    return dec_pos, dcum, dcum_prev, hm, mtx_cum


def _multicore_blocked_matrices(
    system: SimSystem,
    timing: KernelTiming,
    tiles_per_core: int,
    cores: Optional[int],
    full: bool = False,
):
    """The window-blocked engine: per-wave matrices in one pass per block.

    Wave ``w``'s issue times are wave ``w - prefetch_window``'s
    ``dec_start`` — a fixed lag — so every wave in a block of at most
    ``window`` waves depends only on *previous* blocks. Each block is
    serviced as one ``(waves, cores)`` drain through the channel's
    :class:`~repro.sim.memory.WaveBlockScan` (requests ordered by issue
    time within each wave, waves in order — the same FIFO sequence the
    per-wave loop produces), and the per-core decompress/TMUL chains
    advance as a ``maximum.accumulate`` max-plus scan over the block's
    wave axis instead of elementwise per wave. Python-level work drops
    from O(tiles) to O(tiles / window) round-trips.

    All matrices are wave-major ``(tiles, cores)``. With ``full=False``
    only ``dec_start`` (the issue feedback) and ``done`` are recorded;
    ``full=True`` additionally fills ``mem_done`` and ``dec_done`` for
    the equivalence tests. Timestamps are bit-identical to
    :func:`_multicore_reference_matrices` either way.
    """
    n_cores, nbytes, dec, server = _multicore_setup(
        system, timing, tiles_per_core, cores
    )
    dec_pos, dcum, dcum_prev, hm, mtx_cum = _multicore_chain_coords(
        timing, dec
    )
    window = timing.prefetch_window
    block = min(window, tiles_per_core)
    scan = server.wave_scan(nbytes, n_cores, timing.exposed_latency)
    shape = (tiles_per_core, n_cores)
    mem = np.zeros(shape) if full else None
    dec_done = np.zeros(shape) if full else None
    dec_start = np.zeros(shape)
    done = np.zeros(shape)
    dpeak = np.zeros(n_cores)
    mpeak = np.zeros(n_cores)
    all_dec = int(dcum.size) == tiles_per_core
    no_dec = dcum.size == 0
    if dcum.size:
        # Per-wave chain coordinates (inactive waves index -1 and wrap;
        # those rows are never read — the chain skips them).
        dcum_prev_col = dcum_prev[dec_pos][:, None]
        dcum_col = dcum[dec_pos][:, None]
    else:
        dcum_prev_col = dcum_col = None
    hm_col = hm[:, None]
    mtx_cum_col = mtx_cum[:, None]
    for lo in range(0, tiles_per_core, block):
        hi = min(lo + block, tiles_per_core)
        if lo < window:
            # Only the first block (block <= window): every wave in it
            # issues at 0 — the fetch engine primes its whole window.
            issue_block = np.zeros((hi - lo, n_cores))
        else:
            issue_block = dec_start[lo - window:hi - window]
        # Order each wave's requests by issue time (stable in core
        # order, matching the event heap the scan replaces). Symmetric
        # streams are already sorted; skip the permutation machinery
        # then — stable argsort of a sorted row is the identity, so the
        # fast path is bit-identical, just cheaper.
        if (issue_block[:, :-1] <= issue_block[:, 1:]).all():
            mem_block = scan.drain(issue_block)
        else:
            order = np.argsort(issue_block, axis=1, kind="stable")
            served = scan.drain(
                np.take_along_axis(issue_block, order, axis=1)
            )
            mem_block = np.empty_like(served)
            np.put_along_axis(mem_block, order, served, axis=1)
        if full:
            mem[lo:hi] = mem_block
        # Decompress chain over the block's dec-active waves.
        if all_dec:
            slack = mem_block - dcum_prev_col[lo:hi]
            np.maximum(slack[0], dpeak, out=slack[0])
            np.maximum.accumulate(slack, axis=0, out=slack)
            dpeak = slack[-1]
            np.add(slack, dcum_prev_col[lo:hi], out=dec_start[lo:hi])
            dd_block = slack + dcum_col[lo:hi]
        elif no_dec:
            dec_start[lo:hi] = mem_block
            dd_block = mem_block
        else:
            active = np.flatnonzero(dec_pos[lo:hi] >= 0)
            dec_start[lo:hi] = mem_block
            if active.size == 0:
                dd_block = mem_block
            else:
                dd_block = mem_block.copy()
                slack = mem_block[active] - dcum_prev_col[lo:hi][active]
                np.maximum(slack[0], dpeak, out=slack[0])
                np.maximum.accumulate(slack, axis=0, out=slack)
                dpeak = slack[-1]
                dec_start[lo:hi][active] = slack + dcum_prev_col[lo:hi][active]
                dd_block[active] = slack + dcum_col[lo:hi][active]
        if full:
            dec_done[lo:hi] = dd_block
        # TMUL chain over the block: slack = (dd + handoff) - w*mtx,
        # pre-folded into one add via hm = handoff - w*mtx.
        np.add(dd_block, hm_col[lo:hi], out=dd_block)
        np.maximum(dd_block[0], mpeak, out=dd_block[0])
        np.maximum.accumulate(dd_block, axis=0, out=dd_block)
        mpeak = dd_block[-1]
        np.add(dd_block, mtx_cum_col[lo:hi], out=done[lo:hi])
    return n_cores, nbytes, dec, mem, dec_start, dec_done, done


def _multicore_reference_matrices(
    system: SimSystem,
    timing: KernelTiming,
    tiles_per_core: int,
    cores: Optional[int],
    full: bool = False,
):
    """The retained per-wave loop: one Python round-trip per wave.

    Evaluates the same recurrences as :func:`_multicore_blocked_matrices`
    one wave at a time, in the same global relative-coordinate algebra
    (shared precomputed cumsums, running peaks carried through exact
    ``max`` ops), so the two engines produce bit-identical timestamps —
    the golden model for the equivalence tests and the "before"
    measurement in ``benchmarks/perf``.
    """
    n_cores, nbytes, dec, server = _multicore_setup(
        system, timing, tiles_per_core, cores
    )
    dec_pos, dcum, dcum_prev, hm, mtx_cum = _multicore_chain_coords(
        timing, dec
    )
    window = timing.prefetch_window
    scan = server.wave_scan(nbytes, n_cores, timing.exposed_latency)
    shape = (tiles_per_core, n_cores)
    mem = np.zeros(shape) if full else None
    dec_done = np.zeros(shape) if full else None
    dec_start = np.zeros(shape)
    done = np.zeros(shape)
    dpeak = np.zeros(n_cores)
    mpeak = np.zeros(n_cores)
    zeros = np.zeros(n_cores)
    mem_done = np.empty(n_cores)
    for i in range(tiles_per_core):
        issue = zeros if i < window else dec_start[i - window]
        order = np.argsort(issue, kind="stable")
        mem_done[order] = scan.drain(issue[order][np.newaxis, :])[0]
        if full:
            mem[i] = mem_done
        j = dec_pos[i]
        if j >= 0:
            np.maximum(dpeak, mem_done - dcum_prev[j], out=dpeak)
            np.add(dpeak, dcum_prev[j], out=dec_start[i])
            dd = dpeak + dcum[j]
        else:
            dec_start[i] = mem_done
            dd = mem_done.copy()
        if full:
            dec_done[i] = dd
        np.maximum(mpeak, dd + hm[i], out=mpeak)
        np.add(mpeak, mtx_cum[i], out=done[i])
    return n_cores, nbytes, dec, mem, dec_start, dec_done, done


def _multicore_result(
    system: SimSystem,
    timing: KernelTiming,
    n_cores: int,
    nbytes: np.ndarray,
    dec: np.ndarray,
    done: np.ndarray,
) -> SimResult:
    tiles_per_core = done.shape[0]
    makespan = float(done[-1].max())
    half = min(tiles_per_core // 2, tiles_per_core - 2)
    steady = float(
        (done[-1].max() - done[half].max()) / (tiles_per_core - 1 - half)
    )
    window_cycles = makespan - float(done[half].max())
    if n_cores == system.machine.cores:
        per_core_system = system
    else:
        per_core_system = replace(
            system, machine=system.machine.with_cores(n_cores)
        )
    if window_cycles <= 0.0:
        # Degenerate zero-work window (every wave finishing at the same
        # instant): report idle resources rather than dividing by zero.
        report = UtilizationReport(memory=0.0, matrix=0.0, decompress=0.0)
    else:
        raw_total_bpc = system.bytes_per_cycle()
        mem_busy = float(np.sum(nbytes[half + 1:])) * n_cores / raw_total_bpc
        mtx_busy = timing.mtx_cycles * (tiles_per_core - 1 - half)
        dec_busy = float(np.sum(dec[half + 1:]))
        report = UtilizationReport(
            memory=min(1.0, mem_busy / window_cycles),
            matrix=min(1.0, mtx_busy / window_cycles),
            decompress=min(1.0, dec_busy / window_cycles),
        )
    return SimResult(
        system=per_core_system,
        tiles=tiles_per_core,
        makespan_cycles=makespan,
        steady_interval_cycles=steady,
        utilization=report,
    )


def simulate_multicore_event(
    system: SimSystem,
    timing: KernelTiming,
    tiles_per_core: int = 200,
    cores: Optional[int] = None,
) -> SimResult:
    """Exact multi-core event simulation (OVERLAPPED mode only).

    Every core runs its own tile stream against one shared FIFO bandwidth
    server. Used to validate the fair-share single-core approximation; the
    two backends agree to within a fraction of a percent for symmetric
    streams.

    Fetches are issued round-robin in waves of one tile per core so the
    shared server sees interleaved traffic like real banked memory would.
    Waves are processed in *blocks* of up to ``prefetch_window`` waves:
    a wave's issue times lag ``dec_start`` by exactly the window, so a
    whole block's ``(waves × cores)`` requests are known up front, are
    drained through one vectorized FIFO scan, and the per-core
    decompress/TMUL chains advance as a max-plus scan over the block
    (see :func:`_multicore_blocked_matrices`). The retained per-wave
    loop, :func:`simulate_multicore_event_reference`, computes
    bit-identical timestamps and is the golden model in the tests.
    """
    if FORCE_REFERENCE_ENGINE:
        return simulate_multicore_event_reference(
            system, timing, tiles_per_core, cores
        )
    n_cores, nbytes, dec, _, _, _, done = _multicore_blocked_matrices(
        system, timing, tiles_per_core, cores
    )
    return _multicore_result(system, timing, n_cores, nbytes, dec, done)


def simulate_multicore_event_reference(
    system: SimSystem,
    timing: KernelTiming,
    tiles_per_core: int = 200,
    cores: Optional[int] = None,
) -> SimResult:
    """Run the retained per-wave multi-core loop (the golden model)."""
    n_cores, nbytes, dec, _, _, _, done = _multicore_reference_matrices(
        system, timing, tiles_per_core, cores
    )
    return _multicore_result(system, timing, n_cores, nbytes, dec, done)


def multicore_batch_group_key(
    system: SimSystem,
    timing: KernelTiming,
    tiles_per_core: int,
    cores: Optional[int] = None,
):
    """Shape-compatibility class of one multicore cell, or ``None``.

    The window-blocked engine's control flow is steered by the wave
    count, the core count, the prefetch window, and which waves
    decompress; cells agreeing on all four stack into one
    ``(cells, waves, cores)`` pass. Anything else — including inputs the
    blocked engine would reject outright — takes the per-cell path.
    """
    if timing.mode is not InvocationMode.OVERLAPPED or tiles_per_core < 2:
        return None
    n_cores = cores if cores is not None else system.cores
    if n_cores < 1:
        return None
    dec = timing.tile_dec_cycles(tiles_per_core)
    active = int(np.count_nonzero(dec > 0.0))
    if active == tiles_per_core:
        dec_class = "all"
    elif active == 0:
        dec_class = "none"
    else:
        return None
    return (
        int(tiles_per_core), int(n_cores), timing.prefetch_window, dec_class
    )


def _multicore_blocked_matrices_batch(group):
    """The window-blocked engine over a stack of compatible cells.

    Exactly :func:`_multicore_blocked_matrices` with one leading
    ``cells`` axis: each cell keeps its own shared server (rows of a
    :class:`~repro.sim.memory.BatchWaveScan`), the dec/TMUL chains
    accumulate along the wave axis (axis 1), and the per-cell sorted
    fast path widens to the whole stack — if any row's block is
    unsorted, every row takes the stable-argsort path, which is
    bit-identical for the sorted rows (stable argsort of a sorted row
    is the identity permutation). Returns ``(setups, done)`` where
    ``done`` is ``(cells, waves, cores)``.
    """
    setups = [
        _multicore_setup(system, timing, tiles_per_core, cores)
        for system, timing, tiles_per_core, cores in group
    ]
    k = len(group)
    timings = [timing for _, timing, _, _ in group]
    n_cores = setups[0][0]
    tiles_per_core = len(setups[0][1])
    window = timings[0].prefetch_window
    block = min(window, tiles_per_core)
    nbytes2 = np.stack([nbytes for _, nbytes, _, _ in setups])
    dec2 = np.stack([dec for _, _, dec, _ in setups])
    coords = [
        _multicore_chain_coords(timing, dec)
        for timing, (_, _, dec, _) in zip(timings, setups)
    ]
    all_dec = int(coords[0][1].size) == tiles_per_core
    scan = BatchWaveScan(
        np.array([server.bytes_per_cycle for _, _, _, server in setups]),
        np.array([server.latency_cycles for _, _, _, server in setups]),
        nbytes2,
        n_cores,
        np.array([timing.exposed_latency for timing in timings]),
    )
    shape = (k, tiles_per_core, n_cores)
    dec_start = np.zeros(shape)
    done = np.zeros(shape)
    dpeak = np.zeros((k, n_cores))
    mpeak = np.zeros((k, n_cores))
    if all_dec:
        # dec_pos is the identity for an all-dec stream, so the per-wave
        # chain coordinates are the cumsums themselves.
        dcum_prev_col = np.stack([c[2] for c in coords])[:, :, None]
        dcum_col = np.stack([c[1] for c in coords])[:, :, None]
    hm_col = np.stack([c[3] for c in coords])[:, :, None]
    mtx_cum_col = np.stack([c[4] for c in coords])[:, :, None]
    for lo in range(0, tiles_per_core, block):
        hi = min(lo + block, tiles_per_core)
        if lo < window:
            issue_block = np.zeros((k, hi - lo, n_cores))
        else:
            issue_block = dec_start[:, lo - window:hi - window]
        if (issue_block[:, :, :-1] <= issue_block[:, :, 1:]).all():
            mem_block = scan.drain(issue_block)
        else:
            order = np.argsort(issue_block, axis=2, kind="stable")
            served = scan.drain(
                np.take_along_axis(issue_block, order, axis=2)
            )
            mem_block = np.empty_like(served)
            np.put_along_axis(mem_block, order, served, axis=2)
        if all_dec:
            slack = mem_block - dcum_prev_col[:, lo:hi]
            np.maximum(slack[:, 0], dpeak, out=slack[:, 0])
            np.maximum.accumulate(slack, axis=1, out=slack)
            dpeak = slack[:, -1]
            np.add(slack, dcum_prev_col[:, lo:hi], out=dec_start[:, lo:hi])
            dd_block = slack + dcum_col[:, lo:hi]
        else:
            dec_start[:, lo:hi] = mem_block
            dd_block = mem_block
        np.add(dd_block, hm_col[:, lo:hi], out=dd_block)
        np.maximum(dd_block[:, 0], mpeak, out=dd_block[:, 0])
        np.maximum.accumulate(dd_block, axis=1, out=dd_block)
        mpeak = dd_block[:, -1]
        np.add(dd_block, mtx_cum_col[:, lo:hi], out=done[:, lo:hi])
    return setups, done


def simulate_multicore_event_batch(cells):
    """Simulate many ``(system, timing, tiles_per_core, cores)`` cells.

    The multicore counterpart of :func:`simulate_tile_stream_batch`:
    cells whose :func:`multicore_batch_group_key` matches run as rows of
    one stacked window-blocked pass; incompatible cells, singletons, and
    (under ``FORCE_REFERENCE_ENGINE``) everything fall back to
    :func:`simulate_multicore_event` per cell. Returns one
    :class:`SimResult` per input cell, in input order, bit-identical to
    the per-cell engine. Multicore simulations are not cached, so there
    is no cache fan-in here.
    """
    cells = [tuple(cell) for cell in cells]
    results: list = [None] * len(cells)
    groups: dict = {}
    for idx, (system, timing, tiles_per_core, cores) in enumerate(cells):
        gkey = None
        if not FORCE_REFERENCE_ENGINE:
            gkey = multicore_batch_group_key(
                system, timing, tiles_per_core, cores
            )
        if gkey is None:
            results[idx] = simulate_multicore_event(
                system, timing, tiles_per_core, cores
            )
        else:
            groups.setdefault(gkey, []).append(idx)
    for gkey, members in groups.items():
        if len(members) == 1:
            system, timing, tiles_per_core, cores = cells[members[0]]
            results[members[0]] = simulate_multicore_event(
                system, timing, tiles_per_core, cores
            )
            continue
        group = [cells[i] for i in members]
        setups, done = _multicore_blocked_matrices_batch(group)
        for pos, idx in enumerate(members):
            system, timing, _, _ = cells[idx]
            n_cores, nbytes, dec, _ = setups[pos]
            results[idx] = _multicore_result(
                system, timing, n_cores, nbytes, dec, done[pos]
            )
    return results
