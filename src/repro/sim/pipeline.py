"""Tile-stream pipeline simulation: the timing engine behind Figures 12-17.

A compressed GeMM is a stream of tiles flowing through up to four
resources: the memory system, a decompression engine (core AVX units or a
DECA PE), the core<->engine communication path, and the TMUL. This module
simulates one core's stream against its fair bandwidth share (exact for
the symmetric workloads evaluated) under three invocation disciplines:

* ``OVERLAPPED`` — the libxsmm software kernel (Figure 2): AVX
  decompression double-buffered against AMX on the same core, and also the
  idealised DECA pipeline when communication costs are zero.
* ``SERIALIZED`` — store+fence DECA invocation (Figure 9): every iteration
  exposes the MMIO store, the fence drain, and the TOut/L2 read latency.
* ``TEPL`` — out-of-order TEPL invocation (Figure 10): communication
  overlaps computation, but at most ``n_loaders`` TEPLs are in flight
  (the structural hazard), so the per-tile interval can never drop below
  (exposed latency + decompress + handoff + issue) / n_loaders.

Calibrated second-order effects (see DESIGN.md section 5):

* DRAM efficiency: streams achieve ~93% of nominal bandwidth
  (``SimSystem``-independent constant ``DRAM_EFFICIENCY``), matching the
  paper's 91-93% memory utilisation for memory-bound DECA runs (Table 3).
* The software kernel's demand loads go through the core's load queue and
  MSHRs; a core can sustain only ``SW_DEMAND_LOAD_BYTES_PER_CYCLE`` of
  demand-load traffic. On DDR the fair share sits below this cap (software
  reaches the roofline, Figure 12); on HBM the cap binds and is exactly
  the paper's observed 74% memory utilisation for dense Q8 (Table 3).
  DECA's dedicated loaders/prefetcher at the L2 are not subject to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import EventEngine
from repro.sim.memory import MemoryChannel, SharedMemoryServer
from repro.sim.stats import UtilizationReport
from repro.sim.system import SimSystem
from repro.units import TMUL_CYCLES, flops_per_tile

#: Fraction of nominal bandwidth a well-formed stream actually achieves.
DRAM_EFFICIENCY = 0.93

#: Per-core demand-load bandwidth cap for the software kernel (bytes per
#: cycle). 4.5 B/cycle at 2.5 GHz is ~11 GB/s per core.
SW_DEMAND_LOAD_BYTES_PER_CYCLE = 4.5


class InvocationMode(enum.Enum):
    """How the decompression engine is driven (Section 5)."""

    OVERLAPPED = "overlapped"
    SERIALIZED = "serialized"
    TEPL = "tepl"


@dataclass(frozen=True)
class KernelTiming:
    """Per-tile resource costs and pipeline discipline of one kernel.

    Attributes:
        bytes_per_tile: Compressed bytes fetched per tile (scalar or one
            value per simulated tile).
        dec_cycles: Decompression-engine occupancy per tile (scalar or per
            tile). Zero means the tile needs no decompression (BF16
            baseline: tload straight from memory).
        mtx_cycles: TMUL occupancy per tile operation.
        mode: Invocation discipline.
        handoff_cycles: Latency from decompressed data to the tile
            register (TOut read, or the longer L2 round trip).
        invoke_cycles: Core cost to trigger one tile (MMIO store or TEPL
            issue).
        fence_cycles: Pipeline-drain cost per iteration (store+fence mode).
        exposed_latency: Fraction of memory latency left visible per fetch
            (prefetching discipline).
        prefetch_window: Outstanding tile fetches the fetch engine keeps.
        n_loaders: In-flight limit for TEPL (DECA has two Loaders).
        core_overhead_cycles: Serial per-tile core work that cannot overlap
            the AVX sequence (loop control, AMX issue) — software only.
        loader_latency_cycles: Turnaround from an invocation reaching a
            DECA Loader to the first codes entering the pipeline (the
            LDQ's L2 read of an already-prefetched line, streaming into
            the SQQ).
        demand_load_cap: Per-core demand-load bandwidth cap in
            bytes/cycle, or ``None`` for dedicated-loader paths.
        dec_is_avx: Whether decompression runs on the core's AVX units
            (affects which utilisation column the busy time lands in).
    """

    bytes_per_tile: Union[float, Sequence[float]]
    dec_cycles: Union[float, Sequence[float]]
    mtx_cycles: float = float(TMUL_CYCLES)
    mode: InvocationMode = InvocationMode.OVERLAPPED
    handoff_cycles: float = 0.0
    invoke_cycles: float = 0.0
    fence_cycles: float = 0.0
    exposed_latency: float = 0.08
    prefetch_window: int = 8
    n_loaders: int = 2
    core_overhead_cycles: float = 0.0
    loader_latency_cycles: float = 0.0
    demand_load_cap: Optional[float] = None
    dec_is_avx: bool = True

    def __post_init__(self) -> None:
        if self.mtx_cycles <= 0:
            raise ConfigurationError("mtx_cycles must be positive")
        if self.prefetch_window < 1:
            raise ConfigurationError("prefetch_window must be >= 1")
        if self.n_loaders < 1:
            raise ConfigurationError("n_loaders must be >= 1")
        if not 0.0 <= self.exposed_latency <= 1.0:
            raise ConfigurationError("exposed_latency must be in [0, 1]")

    def tile_bytes(self, tiles: int) -> np.ndarray:
        """Per-tile byte counts as an array of length ``tiles``."""
        return _broadcast(self.bytes_per_tile, tiles, "bytes_per_tile")

    def tile_dec_cycles(self, tiles: int) -> np.ndarray:
        """Per-tile decompression occupancy as an array."""
        return _broadcast(self.dec_cycles, tiles, "dec_cycles")


def _broadcast(
    value: Union[float, Sequence[float]], tiles: int, name: str
) -> np.ndarray:
    if np.isscalar(value):
        return np.full(tiles, float(value))
    array = np.asarray(value, dtype=float)
    if array.size == 0:
        raise ConfigurationError(f"{name} sequence must not be empty")
    if array.size >= tiles:
        return array[:tiles]
    repeats = int(np.ceil(tiles / array.size))
    return np.tile(array, repeats)[:tiles]


@dataclass(frozen=True)
class PipelineTrace:
    """Per-tile stage timestamps of a simulated stream (cycles).

    Every array has one entry per tile: when its fetch was issued, when
    its data arrived, when decompression started/finished, and when the
    TMUL consumed it. ``repro.sim.trace`` renders these as a Gantt chart.
    """

    fetch_issue: np.ndarray
    mem_done: np.ndarray
    dec_start: np.ndarray
    dec_done: np.ndarray
    mtx_start: np.ndarray
    mtx_done: np.ndarray

    def stage_spans(self, index: int) -> dict:
        """(start, end) spans per stage for one tile."""
        if not 0 <= index < len(self.mtx_done):
            raise SimulationError(f"no tile {index} in this trace")
        return {
            "fetch": (float(self.fetch_issue[index]), float(self.mem_done[index])),
            "decompress": (
                float(self.dec_start[index]), float(self.dec_done[index])
            ),
            "matrix": (
                float(self.mtx_start[index]), float(self.mtx_done[index])
            ),
        }


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one core's tile stream."""

    system: SimSystem
    tiles: int
    makespan_cycles: float
    steady_interval_cycles: float
    utilization: UtilizationReport
    trace: Optional[PipelineTrace] = None

    @property
    def tiles_per_second(self) -> float:
        """Machine-wide steady-state tile rate (all cores)."""
        return (
            self.system.cores
            * self.system.frequency_hz
            / self.steady_interval_cycles
        )

    def flops(self, batch_rows: int) -> float:
        """Machine-wide FMAs/second for a given activation batch."""
        return flops_per_tile(batch_rows) * self.tiles_per_second

    def seconds_for(self, total_tiles_per_core: int) -> float:
        """Extrapolated wall-clock time for a longer stream on one core."""
        if total_tiles_per_core < self.tiles:
            scale = total_tiles_per_core / self.tiles
            return self.makespan_cycles * scale / self.system.frequency_hz
        extra = total_tiles_per_core - self.tiles
        cycles = self.makespan_cycles + extra * self.steady_interval_cycles
        return cycles / self.system.frequency_hz


def _effective_bytes_per_cycle(system: SimSystem, timing: KernelTiming) -> float:
    share = system.per_core_bytes_per_cycle() * DRAM_EFFICIENCY
    if timing.demand_load_cap is not None:
        return min(share, timing.demand_load_cap)
    return share


def simulate_tile_stream(
    system: SimSystem,
    timing: KernelTiming,
    tiles: int = 600,
) -> SimResult:
    """Simulate one core's compressed-GeMM tile stream.

    All cores run identical streams, so one core against its fair
    bandwidth share reproduces machine throughput exactly in steady state
    (validated against :func:`simulate_multicore_event` in the tests).
    """
    if tiles < 8:
        raise ConfigurationError("need at least 8 tiles for a steady state")
    nbytes = timing.tile_bytes(tiles)
    dec = timing.tile_dec_cycles(tiles)
    channel = MemoryChannel(
        _effective_bytes_per_cycle(system, timing), system.memory_latency
    )
    if timing.mode is InvocationMode.OVERLAPPED:
        trace = _run_overlapped(channel, timing, nbytes, dec)
    elif timing.mode is InvocationMode.SERIALIZED:
        trace = _run_serialized(channel, timing, nbytes, dec)
    else:
        trace = _run_tepl(channel, timing, nbytes, dec)
    return _build_result(system, timing, channel, nbytes, dec, trace)


def _build_result(
    system: SimSystem,
    timing: KernelTiming,
    channel: MemoryChannel,
    nbytes: np.ndarray,
    dec: np.ndarray,
    trace: PipelineTrace,
) -> SimResult:
    done = trace.mtx_done
    tiles = len(done)
    makespan = float(done[-1])
    half = tiles // 2
    steady = float(done[-1] - done[half]) / (tiles - 1 - half)
    if steady <= 0:
        raise SimulationError("non-positive steady-state interval")
    # Utilization over the steady half of the run. Memory busy time is the
    # raw transfer time at nominal bandwidth, so a DRAM_EFFICIENCY-limited
    # stream reports ~93%, matching the paper's accounting.
    window = makespan - float(done[half])
    raw_bpc = system.per_core_bytes_per_cycle()
    mem_busy = float(np.sum(nbytes[half + 1:])) / raw_bpc
    mtx_busy = timing.mtx_cycles * (tiles - 1 - half)
    dec_busy = float(np.sum(dec[half + 1:]))
    report = UtilizationReport(
        memory=min(1.0, mem_busy / window),
        matrix=min(1.0, mtx_busy / window),
        decompress=min(1.0, dec_busy / window),
    )
    return SimResult(
        system=system,
        tiles=tiles,
        makespan_cycles=makespan,
        steady_interval_cycles=steady,
        utilization=report,
        trace=trace,
    )


def _run_overlapped(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """Double-buffered software pipeline (Figure 2)."""
    tiles = len(nbytes)
    window = timing.prefetch_window
    fetch_issue = np.zeros(tiles)
    mem_done_arr = np.zeros(tiles)
    dec_start = np.zeros(tiles)
    dec_done_arr = np.zeros(tiles)
    mtx_start_arr = np.zeros(tiles)
    done = np.zeros(tiles)
    dec_free = 0.0
    mtx_free = 0.0
    for i in range(tiles):
        issue = 0.0 if i < window else dec_start[i - window]
        mem_done = channel.request(issue, nbytes[i], timing.exposed_latency)
        if dec[i] > 0.0:
            # The AVX sequence plus its serial loop overhead occupy the core.
            dec_start[i] = max(mem_done, dec_free)
            dec_done = dec_start[i] + dec[i] + timing.core_overhead_cycles
            dec_free = dec_done
        else:
            dec_start[i] = mem_done
            dec_done = mem_done
        mtx_start = max(dec_done + timing.handoff_cycles, mtx_free)
        mtx_free = mtx_start + timing.mtx_cycles
        fetch_issue[i] = issue
        mem_done_arr[i] = mem_done
        dec_done_arr[i] = dec_done
        mtx_start_arr[i] = mtx_start
        done[i] = mtx_free
    return PipelineTrace(
        fetch_issue, mem_done_arr, dec_start, dec_done_arr,
        mtx_start_arr, done,
    )


def _run_serialized(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """Store+fence invocation (Figure 9): the core never overlaps.

    Iteration i: the core stores the metadata of tile i+1 (triggering its
    fetch), executes a fence, waits for tile i's decompressed data, and
    runs the TMUL. DECA's two loaders still let fetch/decompress of tile i
    overlap the previous iteration — it is the core that serializes.
    """
    tiles = len(nbytes)
    done = np.zeros(tiles)
    dec_done = np.zeros(tiles)
    store_time = np.zeros(tiles + 1)
    mem_done_arr = np.zeros(tiles)
    dec_start_arr = np.zeros(tiles)
    mtx_start_arr = np.zeros(tiles)
    dec_free = 0.0
    now = 0.0
    # Priming store for tile 0 before the loop begins.
    now += timing.invoke_cycles
    store_time[0] = now
    mem_done0 = channel.request(now, nbytes[0], timing.exposed_latency)
    mem_done_arr[0] = mem_done0
    ready0 = max(mem_done0, now + timing.loader_latency_cycles)
    dec_start_arr[0] = max(ready0, dec_free)
    dec_free = dec_start_arr[0] + dec[0]
    dec_done[0] = dec_free
    for i in range(tiles):
        # Store metadata for tile i+1 (prompts its loader).
        now += timing.invoke_cycles
        store_time[i + 1] = now
        if i + 1 < tiles:
            mem_done = channel.request(
                now, nbytes[i + 1], timing.exposed_latency
            )
            mem_done_arr[i + 1] = mem_done
            ready = max(mem_done, now + timing.loader_latency_cycles)
            dec_start_arr[i + 1] = max(ready, dec_free)
            dec_free = dec_start_arr[i + 1] + dec[i + 1]
            dec_done[i + 1] = dec_free
        now += timing.fence_cycles
        # TLoad of tile i waits for DECA plus the data path back.
        now = max(now, dec_done[i] + timing.handoff_cycles)
        mtx_start_arr[i] = now
        now += timing.mtx_cycles
        done[i] = now
    return PipelineTrace(
        store_time[:tiles], mem_done_arr, dec_start_arr, dec_done,
        mtx_start_arr, done,
    )


def _run_tepl(
    channel: MemoryChannel,
    timing: KernelTiming,
    nbytes: np.ndarray,
    dec: np.ndarray,
) -> PipelineTrace:
    """TEPL invocation (Figure 10): out-of-order, two-loader hazard.

    TEPL i may issue only when TEPL i - n_loaders has completed (its
    loader freed). The instruction's completion covers the exposed fetch
    latency, the DECA pipeline, and the TOut-to-tile-register handoff; the
    TMUL consumes completions in order.
    """
    tiles = len(nbytes)
    done = np.zeros(tiles)
    complete = np.zeros(tiles)
    dec_start = np.zeros(tiles)
    fetch_issue_arr = np.zeros(tiles)
    mem_done_arr = np.zeros(tiles)
    dec_done_arr = np.zeros(tiles)
    mtx_start_arr = np.zeros(tiles)
    dec_free = 0.0
    mtx_free = 0.0
    window = max(timing.prefetch_window, timing.n_loaders)
    prefetch_ahead = timing.prefetch_window > timing.n_loaders
    for i in range(tiles):
        hazard = 0.0 if i < timing.n_loaders else complete[i - timing.n_loaders]
        issue = hazard + timing.invoke_cycles
        if prefetch_ahead:
            # DECA's own prefetcher predicts future tiles and fetches ahead
            # of the TEPL issue, decoupling the fetch from the hazard.
            fetch_issue = 0.0 if i < window else dec_start[i - window]
            fetch_issue = min(fetch_issue, issue) if i >= window else 0.0
        else:
            fetch_issue = issue
        mem_done = channel.request(
            fetch_issue, nbytes[i], timing.exposed_latency
        )
        dec_start[i] = max(
            mem_done, dec_free, issue + timing.loader_latency_cycles
        )
        dec_done = dec_start[i] + dec[i]
        dec_free = dec_done
        complete[i] = dec_done + timing.handoff_cycles
        mtx_start = max(complete[i], mtx_free)
        mtx_free = mtx_start + timing.mtx_cycles
        fetch_issue_arr[i] = fetch_issue
        mem_done_arr[i] = mem_done
        dec_done_arr[i] = dec_done
        mtx_start_arr[i] = mtx_start
        done[i] = mtx_free
    return PipelineTrace(
        fetch_issue_arr, mem_done_arr, dec_start, dec_done_arr,
        mtx_start_arr, done,
    )


def simulate_multicore_event(
    system: SimSystem,
    timing: KernelTiming,
    tiles_per_core: int = 200,
    cores: Optional[int] = None,
) -> SimResult:
    """Exact multi-core event simulation (OVERLAPPED mode only).

    Every core runs its own tile stream against one shared FIFO bandwidth
    server. Used to validate the fair-share single-core approximation; the
    two backends agree to within a fraction of a percent for symmetric
    streams.
    """
    if timing.mode is not InvocationMode.OVERLAPPED:
        raise ConfigurationError(
            "the event backend models the OVERLAPPED discipline only"
        )
    n_cores = cores if cores is not None else system.cores
    nbytes = timing.tile_bytes(tiles_per_core)
    dec = timing.tile_dec_cycles(tiles_per_core)
    cap = timing.demand_load_cap
    eff_bw = system.bytes_per_cycle() * DRAM_EFFICIENCY
    if cap is not None:
        eff_bw = min(eff_bw, cap * n_cores)
    server = SharedMemoryServer(eff_bw, system.memory_latency)
    engine = EventEngine()
    done = np.zeros((n_cores, tiles_per_core))

    class _CoreState:
        def __init__(self, core_id: int) -> None:
            self.core_id = core_id
            self.index = 0
            self.dec_free = 0.0
            self.mtx_free = 0.0
            self.outstanding: List[int] = []

    states = [_CoreState(c) for c in range(n_cores)]
    window = timing.prefetch_window

    # Issue fetches round-robin in waves of one tile per core so the shared
    # server sees interleaved traffic like real banked memory would.
    tickets = {}
    for wave in range(tiles_per_core):
        for state in states:
            tickets[(state.core_id, wave)] = None

    # The event model: process tiles wave by wave; each core's issue time
    # for tile i is its dec_start of tile i-window (0 early on). Because
    # issue times only depend on earlier waves, we can drain per wave.
    dec_start = np.zeros((n_cores, tiles_per_core))
    for i in range(tiles_per_core):
        for state in states:
            issue = 0.0 if i < window else dec_start[state.core_id, i - window]
            tickets[(state.core_id, i)] = server.enqueue(
                issue, nbytes[i], timing.exposed_latency
            )
        completions = server.drain()
        for state in states:
            mem_done = completions[tickets[(state.core_id, i)]]
            if dec[i] > 0.0:
                dec_start[state.core_id, i] = max(mem_done, state.dec_free)
                dec_done = (
                    dec_start[state.core_id, i]
                    + dec[i]
                    + timing.core_overhead_cycles
                )
                state.dec_free = dec_done
            else:
                dec_start[state.core_id, i] = mem_done
                dec_done = mem_done
            mtx_start = max(dec_done + timing.handoff_cycles, state.mtx_free)
            state.mtx_free = mtx_start + timing.mtx_cycles
            done[state.core_id, i] = state.mtx_free
    del engine  # the wave formulation needs no callback scheduling

    makespan = float(done[:, -1].max())
    half = tiles_per_core // 2
    steady = float(
        (done[:, -1].max() - done[:, half].max()) / (tiles_per_core - 1 - half)
    )
    window_cycles = makespan - float(done[:, half].max())
    raw_total_bpc = system.bytes_per_cycle()
    mem_busy = float(np.sum(nbytes[half + 1:])) * n_cores / raw_total_bpc
    mtx_busy = timing.mtx_cycles * (tiles_per_core - 1 - half)
    dec_busy = float(np.sum(dec[half + 1:]))
    per_core_system = replace(system, machine=system.machine.with_cores(n_cores))
    report = UtilizationReport(
        memory=min(1.0, mem_busy / window_cycles),
        matrix=min(1.0, mtx_busy / window_cycles),
        decompress=min(1.0, dec_busy / window_cycles),
    )
    return SimResult(
        system=per_core_system,
        tiles=tiles_per_core,
        makespan_cycles=makespan,
        steady_interval_cycles=steady,
        utilization=report,
    )
