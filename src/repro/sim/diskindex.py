"""Persistent index + pack format for the disk cache tier (v2).

:mod:`repro.sim.diskcache` stores one pickled entry per file and, until
this module existed, answered every membership question with a ``stat``
and learned about its own contents only by walking the directory. Both
costs scale with the store: a warm attach over a few thousand entries
pays a few thousand ``stat`` calls, and a 48-entry sweep delta pays 48
``tmp+rename+fsync`` round-trips. This module supplies the two on-disk
structures that fix that:

The index manifest
------------------

``<schema_dir>/index.repri`` is a line-oriented, append-only manifest
mapping key digests to entry locations. The first line pins the format
and the schema generation::

    repri 1 <fingerprint>

and every following line is one record (space-separated fields):

``E <digest> <size> <mtime>``
    A loose one-file-per-entry ``.pkl`` entry of ``size`` bytes.
``P <digest> <size> <atime> <pack> <offset> <length>``
    An entry stored inside pack file ``packs/<pack>`` at
    ``offset``/``length``; ``atime`` is its last-access time (pack
    reads cannot refresh a per-entry file mtime, so recency lives
    here).
``T <digest> <atime>``
    A touch: the entry was read at ``atime`` (throttled — see
    :data:`TOUCH_INTERVAL_S`).
``D <digest>``
    The entry was removed (corrupt payload, pruned).

Appends are single ``write(2)`` calls on an ``O_APPEND`` descriptor, so
concurrent writer *processes* interleave at line granularity and a
group commit of N entries is one write. Readers parse complete lines
only: a torn trailing line (a crashed writer) is simply not consumed
yet, and a malformed line in the middle (two writers' lines sheared on
an exotic filesystem) is skipped. The index is **advisory**: the store
itself is the source of truth, and every consumer falls back to the
directory when the index disagrees — a lost record degrades to a
``stat``/read, never to a wrong answer. A missing, unreadable, foreign-
generation, or otherwise corrupt index is rebuilt wholesale from a
directory walk (:meth:`DiskCacheIndex.rebuild`).

The pack format
---------------

``<schema_dir>/packs/<name>.pack`` holds many entries in one file so a
whole sweep delta commits with one append and one ``fsync``. A pack
starts with the magic line ``RPKP1\\n`` followed by records::

    RPKR <64 hex digest chars> <8-byte big-endian payload length> <payload>

The payload is byte-identical to a loose entry file's pickle
(``{"format", "fingerprint", "key", "value"}``), which is what makes
cross-format bit-identity trivially true: a reader cannot tell where an
entry came from. Packs are written to a temp file, fsynced, and
published with an atomic rename, so a visible pack is always complete;
:func:`scan_pack` additionally stops at the first malformed record, so
even a torn copy of a pack yields its intact prefix.
"""

from __future__ import annotations

import os
import struct
import tempfile
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Bump when the manifest line format changes incompatibly.
INDEX_FORMAT_VERSION = 1

#: Manifest filename inside a schema directory.
INDEX_NAME = "index.repri"

#: Subdirectory of a schema directory holding pack files.
PACK_DIR_NAME = "packs"

#: Magic first line of a pack file.
PACK_MAGIC = b"RPKP1\n"

#: Per-record marker inside a pack.
PACK_RECORD_MAGIC = b"RPKR"

#: A touch record is appended only when the recorded last-access is at
#: least this much older than the new one — a hot entry read thousands
#: of times per sweep must not grow the manifest by thousands of lines.
TOUCH_INTERVAL_S = 60.0

_DIGEST_LEN = 64
_LENGTH_STRUCT = struct.Struct(">Q")
_RECORD_HEADER_LEN = len(PACK_RECORD_MAGIC) + _DIGEST_LEN + _LENGTH_STRUCT.size


@dataclass(frozen=True)
class IndexRecord:
    """Where one entry lives and when it was last used.

    ``pack`` is ``None`` for a loose one-file-per-entry ``.pkl``;
    otherwise the entry is ``length`` bytes at ``offset`` inside
    ``packs/<pack>``. ``atime`` is the best-known last-access time
    (store time until a touch record moves it).
    """

    size: int
    atime: float
    pack: Optional[str] = None
    offset: int = 0
    length: int = 0

    @property
    def packed(self) -> bool:
        return self.pack is not None


def _is_hex_digest(text: str) -> bool:
    if len(text) != _DIGEST_LEN:
        return False
    try:
        int(text, 16)
    except ValueError:
        return False
    return True


# ---------------------------------------------------------------------
# Pack files
# ---------------------------------------------------------------------


def pack_dir(schema_dir: "Path | str") -> Path:
    """Where a schema directory keeps its pack files."""
    return Path(schema_dir) / PACK_DIR_NAME


def write_pack(
    schema_dir: "Path | str",
    items: Sequence[Tuple[str, bytes]],
) -> Tuple[str, List[Tuple[str, int, int]]]:
    """Group-commit ``(digest, payload)`` pairs into one new pack file.

    The whole pack is staged in a temp file, flushed with **one**
    ``fsync``, and published with an atomic rename — readers only ever
    see a complete pack. Returns the published pack's name and each
    entry's ``(digest, offset, length)`` location within it. Raises
    ``OSError`` on any filesystem failure (callers fall back to
    per-entry stores).
    """
    if not items:
        raise ValueError("write_pack needs at least one entry")
    directory = pack_dir(schema_dir)
    directory.mkdir(parents=True, exist_ok=True)
    locations: List[Tuple[str, int, int]] = []
    chunks: List[bytes] = [PACK_MAGIC]
    offset = len(PACK_MAGIC)
    for digest, payload in items:
        if not _is_hex_digest(digest):
            raise ValueError(f"not a pack digest: {digest!r}")
        header = (
            PACK_RECORD_MAGIC
            + digest.encode("ascii")
            + _LENGTH_STRUCT.pack(len(payload))
        )
        chunks.append(header)
        chunks.append(payload)
        locations.append((digest, offset + len(header), len(payload)))
        offset += len(header) + len(payload)
    name = f"{os.getpid()}-{os.urandom(6).hex()}.pack"
    fd, tmp_path = tempfile.mkstemp(
        prefix=".pack.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(b"".join(chunks))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, directory / name)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return name, locations


def read_pack_payload(
    schema_dir: "Path | str", pack: str, offset: int, length: int
) -> bytes:
    """The raw payload bytes of one packed entry.

    Raises ``OSError`` when the pack is missing/unreadable and
    ``ValueError`` when the region is out of range — callers treat
    both as a miss.
    """
    path = pack_dir(schema_dir) / pack
    with open(path, "rb") as handle:
        handle.seek(offset)
        payload = handle.read(length)
    if len(payload) != length:
        raise ValueError(
            f"pack {pack} truncated: wanted {length} bytes at {offset}"
        )
    return payload


def scan_pack(path: "Path | str") -> Iterator[Tuple[str, int, int]]:
    """Yield ``(digest, offset, length)`` for every intact record.

    Used by index rebuilds and pack compaction. Scanning is sequential
    and stops at the first malformed or truncated record, so the intact
    prefix of a damaged pack still contributes its entries.
    """
    try:
        path = Path(path)
        file_size = path.stat().st_size
        with open(path, "rb") as handle:
            if handle.read(len(PACK_MAGIC)) != PACK_MAGIC:
                return
            offset = len(PACK_MAGIC)
            while True:
                header = handle.read(_RECORD_HEADER_LEN)
                if len(header) < _RECORD_HEADER_LEN:
                    return
                if not header.startswith(PACK_RECORD_MAGIC):
                    return
                digest_bytes = header[
                    len(PACK_RECORD_MAGIC):len(PACK_RECORD_MAGIC) + _DIGEST_LEN
                ]
                try:
                    digest = digest_bytes.decode("ascii")
                except UnicodeDecodeError:
                    return
                if not _is_hex_digest(digest):
                    return
                (length,) = _LENGTH_STRUCT.unpack(header[-_LENGTH_STRUCT.size:])
                payload_offset = offset + _RECORD_HEADER_LEN
                if payload_offset + length > file_size:
                    return  # truncated payload (seek past EOF "succeeds")
                handle.seek(length, os.SEEK_CUR)
                yield digest, payload_offset, length
                offset = payload_offset + length
    except OSError:
        return


# ---------------------------------------------------------------------
# The index manifest
# ---------------------------------------------------------------------


class DiskCacheIndex:
    """In-memory view of one schema directory's manifest.

    Thread-safe; every filesystem operation is best-effort (an
    unwritable manifest degrades to an in-memory-only index — the
    consumers all fall back to the directory anyway). Use
    :meth:`attach` to load-or-rebuild in one step.
    """

    def __init__(self, schema_dir: "Path | str", fingerprint: str) -> None:
        self.schema_dir = Path(schema_dir)
        self.fingerprint = fingerprint
        self.path = self.schema_dir / INDEX_NAME
        self._lock = threading.Lock()
        self._records: Dict[str, IndexRecord] = {}
        #: Bytes of the manifest parsed so far; refresh() reads the tail.
        self._consumed = 0
        #: Whether load()/refresh() ever hit an unparseable header — the
        #: caller decides to rebuild.
        self.rebuilt = False

    # -- loading -------------------------------------------------------

    @classmethod
    def attach(
        cls, schema_dir: "Path | str", fingerprint: str
    ) -> "DiskCacheIndex":
        """Load the manifest, rebuilding from the directory if needed.

        A parseable manifest is additionally reconciled against the
        pack files on disk: loose entries forgotten by a truncated
        manifest degrade to a ``stat`` fallback, but packed entries
        have no per-file fallback, so a manifest that knows fewer
        records for a pack than the pack holds triggers a rebuild.
        """
        index = cls(schema_dir, fingerprint)
        if not index.load() or not index._packs_consistent():
            index.rebuild()
        return index

    def _packs_consistent(self) -> bool:
        """Whether every on-disk pack record is reflected in the view.

        Scans pack *headers* only (payloads are seeked over), so the
        check costs one short read per packed entry, not an unpickle.
        A pack holding **more** records than the index knows means the
        manifest lost history (truncation past the torn-tail case);
        fewer is legitimate — ``D`` records drop corrupt payloads
        without rewriting the pack. A rebuild may resurrect such
        dropped records, which is harmless: loads re-validate the
        payload and re-drop it.
        """
        try:
            packs = pack_dir(self.schema_dir)
            if not packs.is_dir():
                return True
            with self._lock:
                counts: Dict[str, int] = {}
                for record in self._records.values():
                    if record.pack is not None:
                        counts[record.pack] = counts.get(record.pack, 0) + 1
            for path in packs.glob("*.pack"):
                if sum(1 for _ in scan_pack(path)) > counts.get(path.name, 0):
                    return False
        except OSError:
            return False
        return True

    def load(self) -> bool:
        """Parse the manifest from scratch; ``False`` asks for a rebuild."""
        with self._lock:
            self._records.clear()
            self._consumed = 0
            try:
                with open(self.path, "rb") as handle:
                    data = handle.read()
            except OSError:
                return False
            if not self._parse(data, expect_header=True):
                return False
        return True

    def refresh(self) -> None:
        """Absorb records other writers appended since the last parse.

        Cheap when nothing changed (one ``stat``). A manifest that
        *shrank* (another process rebuilt or pruned it) is reparsed
        from scratch; one that vanished keeps the in-memory view.
        """
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return
        with self._lock:
            if size == self._consumed:
                return
            if size < self._consumed:
                reload_needed = True
            else:
                reload_needed = False
                try:
                    with open(self.path, "rb") as handle:
                        handle.seek(self._consumed)
                        tail = handle.read()
                except OSError:
                    return
                self._parse(tail, expect_header=False)
        if reload_needed:
            if not self.load():
                self.rebuild()

    def _parse(self, data: bytes, expect_header: bool) -> bool:
        """Consume complete lines from ``data``; caller holds the lock.

        Returns ``False`` only for a bad/foreign header. The consumed
        offset advances past every complete line (parsed or skipped),
        never past a torn trailing fragment.
        """
        offset = 0
        header_pending = expect_header
        while True:
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # torn tail — not consumed, re-read next refresh
            line = data[offset:newline]
            offset = newline + 1
            try:
                fields = line.decode("utf-8").split()
            except UnicodeDecodeError:
                continue
            if header_pending:
                header_pending = False
                if fields != [
                    "repri", str(INDEX_FORMAT_VERSION), self.fingerprint,
                ]:
                    return False
                self._consumed += offset
                # restart accounting relative to the remaining data
                data = data[offset:]
                offset = 0
                continue
            self._apply(fields)
        self._consumed += offset
        # An empty or header-torn manifest proves nothing — rebuild.
        return not header_pending

    def _apply(self, fields: List[str]) -> None:
        """Fold one parsed record into the in-memory view."""
        try:
            kind = fields[0]
            if kind == "E" and len(fields) == 4:
                digest = fields[1]
                if not _is_hex_digest(digest):
                    return
                self._records[digest] = IndexRecord(
                    size=int(fields[2]), atime=float(fields[3])
                )
            elif kind == "P" and len(fields) == 7:
                digest = fields[1]
                if not _is_hex_digest(digest):
                    return
                self._records[digest] = IndexRecord(
                    size=int(fields[2]),
                    atime=float(fields[3]),
                    pack=fields[4],
                    offset=int(fields[5]),
                    length=int(fields[6]),
                )
            elif kind == "T" and len(fields) == 3:
                record = self._records.get(fields[1])
                if record is not None:
                    atime = float(fields[2])
                    if atime > record.atime:
                        self._records[fields[1]] = replace(
                            record, atime=atime
                        )
            elif kind == "D" and len(fields) == 2:
                self._records.pop(fields[1], None)
        except (ValueError, IndexError):
            return  # a sheared/foreign line — advisory data, skip it

    # -- queries -------------------------------------------------------

    def contains(self, digest: str) -> bool:
        with self._lock:
            return digest in self._records

    def get(self, digest: str) -> Optional[IndexRecord]:
        with self._lock:
            return self._records.get(digest)

    def entry_count(self) -> int:
        with self._lock:
            return len(self._records)

    def packed_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._records.values() if r.packed)

    def snapshot(self) -> Dict[str, IndexRecord]:
        with self._lock:
            return dict(self._records)

    # -- appends -------------------------------------------------------

    def _append(self, blob: bytes) -> bool:
        """One ``O_APPEND`` write; creates the manifest (with header) if
        absent. Best-effort: an unwritable manifest leaves the
        in-memory view authoritative for this process."""
        header = (
            f"repri {INDEX_FORMAT_VERSION} {self.fingerprint}\n"
            .encode("ascii")
        )
        try:
            fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                if os.fstat(fd).st_size == 0:
                    os.write(fd, header)
                    with_header = True
                else:
                    with_header = False
                os.write(fd, blob)
            finally:
                os.close(fd)
        except OSError:
            return False
        # Our own append is already reflected in memory; advance the
        # consumed offset so refresh() does not re-parse it.
        with self._lock:
            self._consumed += len(blob) + (len(header) if with_header else 0)
        return True

    def record_store(self, digest: str, size: int, mtime: float) -> None:
        """One loose entry landed on disk."""
        with self._lock:
            self._records[digest] = IndexRecord(size=size, atime=mtime)
        self._append(f"E {digest} {size} {mtime:.6f}\n".encode("ascii"))

    def record_pack(
        self,
        pack: str,
        locations: Sequence[Tuple[str, int, int]],
        atime: float,
    ) -> None:
        """One pack commit landed: N entries, **one** manifest append."""
        lines = []
        with self._lock:
            for digest, offset, length in locations:
                self._records[digest] = IndexRecord(
                    size=length, atime=atime,
                    pack=pack, offset=offset, length=length,
                )
                lines.append(
                    f"P {digest} {length} {atime:.6f} {pack} "
                    f"{offset} {length}\n"
                )
        self._append("".join(lines).encode("ascii"))

    def record_touch(self, digest: str, atime: float) -> None:
        """Refresh an entry's last-access time (throttled)."""
        with self._lock:
            record = self._records.get(digest)
            if record is None or atime - record.atime < TOUCH_INTERVAL_S:
                return
            self._records[digest] = replace(record, atime=atime)
        self._append(f"T {digest} {atime:.6f}\n".encode("ascii"))

    def record_remove(self, digest: str) -> None:
        """An entry was deleted (corrupt payload, external cleanup)."""
        with self._lock:
            if self._records.pop(digest, None) is None:
                return
        self._append(f"D {digest}\n".encode("ascii"))

    # -- rebuild -------------------------------------------------------

    def rebuild(self) -> int:
        """Reconstruct the manifest from a directory walk; entries found.

        Loose entries contribute their filename digest and file
        mtime/size; packs are scanned record-by-record (no unpickling).
        Last-access times already known in memory are preserved when
        newer than the walked mtime, so a rebuild after a corrupt tail
        does not forget which entries were hot. The new manifest is
        written atomically (temp + rename); a failed write leaves the
        in-memory view authoritative. Marks :attr:`rebuilt`.
        """
        with self._lock:
            previous = dict(self._records)
            records: Dict[str, IndexRecord] = {}
            for path in sorted(self.schema_dir.glob("*/*.pkl")):
                digest = path.stem
                if not _is_hex_digest(digest):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                records[digest] = IndexRecord(
                    size=stat.st_size, atime=stat.st_mtime
                )
            packs = pack_dir(self.schema_dir)
            if packs.is_dir():
                for path in sorted(packs.glob("*.pack")):
                    try:
                        mtime = path.stat().st_mtime
                    except OSError:
                        continue
                    for digest, offset, length in scan_pack(path):
                        records[digest] = IndexRecord(
                            size=length, atime=mtime,
                            pack=path.name, offset=offset, length=length,
                        )
            for digest, record in records.items():
                old = previous.get(digest)
                if old is not None and old.atime > record.atime:
                    records[digest] = replace(record, atime=old.atime)
            self._records = records
            self._consumed = 0
            self.rebuilt = True
            return self._write_locked()

    def rewrite(self) -> int:
        """Persist the current in-memory view as a fresh manifest."""
        with self._lock:
            return self._write_locked()

    def _write_locked(self) -> int:
        """Atomic full rewrite of the manifest; caller holds the lock."""
        lines = [f"repri {INDEX_FORMAT_VERSION} {self.fingerprint}\n"]
        for digest in sorted(self._records):
            record = self._records[digest]
            if record.packed:
                lines.append(
                    f"P {digest} {record.size} {record.atime:.6f} "
                    f"{record.pack} {record.offset} {record.length}\n"
                )
            else:
                lines.append(
                    f"E {digest} {record.size} {record.atime:.6f}\n"
                )
        blob = "".join(lines).encode("ascii")
        try:
            self.schema_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=f".{INDEX_NAME}.", suffix=".tmp", dir=self.schema_dir
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            return len(self._records)  # in-memory view stays authoritative
        self._consumed = len(blob)
        return len(self._records)
