"""Textual Gantt rendering of simulated tile streams.

Turns a :class:`~repro.sim.pipeline.SimResult`'s per-tile stage
timestamps into an ASCII timeline, making the pipeline behaviour visible:
where the software kernel's AVX sequence back-pressures memory, how the
store+fence discipline serializes, and how TEPL overlaps tiles.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.sim.pipeline import SimResult

_STAGE_GLYPHS = (("fetch", "."), ("decompress", "d"), ("matrix", "M"))


def render_gantt(
    result: SimResult,
    first_tile: int = 0,
    tiles: int = 8,
    width: int = 96,
) -> str:
    """Render a window of a simulated stream as an ASCII Gantt chart.

    One row per tile; ``.`` marks the fetch in flight, ``d`` the
    decompression engine occupancy, ``M`` the TMUL. Overlapping stages on
    one tile keep the later stage's glyph.
    """
    if result.trace is None:
        raise SimulationError("this SimResult carries no pipeline trace")
    trace = result.trace
    last = first_tile + tiles
    if first_tile < 0 or last > len(trace.mtx_done):
        raise SimulationError(
            f"tile window [{first_tile}, {last}) outside the trace of "
            f"{len(trace.mtx_done)} tiles"
        )
    if width < 16:
        raise SimulationError("gantt width must be at least 16 columns")
    t0 = float(trace.fetch_issue[first_tile])
    t1 = float(trace.mtx_done[last - 1])
    span = max(t1 - t0, 1e-9)
    scale = (width - 1) / span

    def column(when: float) -> int:
        return min(width - 1, max(0, int((when - t0) * scale)))

    lines: List[str] = [
        f"tiles {first_tile}..{last - 1}: cycles {t0:.0f}..{t1:.0f} "
        f"(interval {result.steady_interval_cycles:.1f} cy/tile)"
    ]
    for index in range(first_tile, last):
        spans = trace.stage_spans(index)
        row = [" "] * width
        for stage, glyph in _STAGE_GLYPHS:
            start, end = spans[stage]
            if end < start:
                continue
            for col in range(column(start), column(end) + 1):
                row[col] = glyph
        lines.append(f"tile {index:4d} |{''.join(row)}|")
    lines.append("legend: . fetch   d decompress   M matrix (TMUL)")
    return "\n".join(lines)


def stage_latency_summary(result: SimResult) -> dict:
    """Mean per-tile stage durations over the steady half of the run."""
    if result.trace is None:
        raise SimulationError("this SimResult carries no pipeline trace")
    trace = result.trace
    half = len(trace.mtx_done) // 2
    fetch = (trace.mem_done[half:] - trace.fetch_issue[half:]).mean()
    dec = (trace.dec_done[half:] - trace.dec_start[half:]).mean()
    mtx = (trace.mtx_done[half:] - trace.mtx_start[half:]).mean()
    wait = (trace.mtx_start[half:] - trace.dec_done[half:]).mean()
    return {
        "fetch_cycles": float(fetch),
        "decompress_cycles": float(dec),
        "matrix_cycles": float(mtx),
        "handoff_wait_cycles": float(wait),
    }
