"""Discrete simulation substrate for compressed-GeMM execution.

The paper evaluates DECA on an internal Sniper-based cycle-level simulator.
This package substitutes a tile-granularity model that captures the same
first-order phenomena:

* a shared-bandwidth memory system with latency and prefetch hiding,
* per-core decompression engines (AVX units or a DECA PE),
* the per-core TMUL occupancy,
* and the three core<->DECA invocation disciplines (overlapped software,
  store+fence serialization, and TEPL with a two-loader structural hazard).

``simulate_tile_stream`` runs the per-core recurrence (all cores are
symmetric, so one core with a 1/cores bandwidth share is exact in steady
state) as vectorized max-plus scans, memoized through ``repro.sim.cache``;
``simulate_multicore_event`` is an exact event-driven multi-core
cross-check used by the test suite.
"""

from repro.sim.system import (
    SimSystem,
    ddr_system,
    hbm_system,
)
from repro.sim.cache import (
    CacheMergeStats,
    CacheStats,
    clear_simulation_cache,
    configure_simulation_cache_dir,
    export_simulation_cache,
    merge_simulation_cache,
    simulation_cache_dir,
    simulation_cache_stats,
)
from repro.sim.diskcache import DiskCache, DiskCacheStats, open_disk_cache
from repro.sim.memory import MemoryChannel, SharedMemoryServer, WaveBlockScan
from repro.sim.noc import MeshNoc, spr_mesh
from repro.sim.engine import EventEngine
from repro.sim.pipeline import (
    InvocationMode,
    KernelTiming,
    PipelineTrace,
    SimResult,
    simulate_multicore_event,
    simulate_multicore_event_reference,
    simulate_tile_stream,
    simulate_tile_stream_reference,
)
from repro.sim.stats import UtilizationReport
from repro.sim.trace import render_gantt, stage_latency_summary

__all__ = [
    "SimSystem",
    "ddr_system",
    "hbm_system",
    "CacheMergeStats",
    "CacheStats",
    "clear_simulation_cache",
    "configure_simulation_cache_dir",
    "export_simulation_cache",
    "merge_simulation_cache",
    "simulation_cache_dir",
    "simulation_cache_stats",
    "DiskCache",
    "DiskCacheStats",
    "open_disk_cache",
    "MemoryChannel",
    "SharedMemoryServer",
    "WaveBlockScan",
    "MeshNoc",
    "spr_mesh",
    "EventEngine",
    "InvocationMode",
    "KernelTiming",
    "PipelineTrace",
    "SimResult",
    "simulate_multicore_event",
    "simulate_multicore_event_reference",
    "simulate_tile_stream",
    "simulate_tile_stream_reference",
    "UtilizationReport",
    "render_gantt",
    "stage_latency_summary",
]
