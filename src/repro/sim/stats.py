"""Utilization accounting for simulated runs (Table 3's raw material)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class UtilizationReport:
    """Busy-fraction of each resource over a simulated run.

    ``decompress`` is the AVX-unit utilization for the software kernel and
    the DECA-PE utilization for DECA runs — the same column the paper
    labels "AVX" or "DECA" in Table 3.
    """

    memory: float
    matrix: float
    decompress: float

    def __post_init__(self) -> None:
        for name in ("memory", "matrix", "decompress"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0 + 1e-9:
                raise SimulationError(
                    f"{name} utilization must be in [0, 1], got {value}"
                )

    @property
    def bottleneck(self) -> str:
        """Name of the most-utilized resource."""
        pairs = [
            ("MEM", self.memory),
            ("MTX", self.matrix),
            ("DEC", self.decompress),
        ]
        return max(pairs, key=lambda item: item[1])[0]

    def as_percentages(self) -> dict:
        """Rounded percentage view, keyed like the paper's Table 3."""
        return {
            "MEM": round(self.memory * 100),
            "TMUL": round(self.matrix * 100),
            "DEC": round(self.decompress * 100),
        }
