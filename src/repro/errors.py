"""Exception hierarchy for the DECA reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch one base class. Subclasses communicate which subsystem rejected
the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(ReproError):
    """A number-format codec received values or codes it cannot represent."""


class CompressionError(ReproError):
    """A tensor cannot be compressed as requested (bad shape, density...)."""


class ConfigurationError(ReproError):
    """A hardware or scheme configuration is internally inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an invalid state."""


class DeadlineExceededError(ReproError):
    """A deadlined sweep ran out of time before completing.

    Raised by the streaming executors (:mod:`repro.experiments.parallel`)
    when a ``deadline`` passes mid-sweep: dispatch stops, in-flight cells
    drain, and the partial results already yielded remain valid.
    """


class ProgramError(ReproError):
    """An ISA-level instruction stream is malformed (e.g. hazard misuse)."""


class RemoteWorkerError(ReproError):
    """A socket sweep worker failed in a way the parent cannot recover.

    Raised by the remote executor (:mod:`repro.experiments.remote`) when
    a worker reports a cell exception, or when the transport desyncs
    beyond the host-death recovery path (lost hosts themselves are
    recovered silently by in-parent recompute, not by this error).
    """
