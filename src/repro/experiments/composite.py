"""Composite scenarios: several sweeps chained in one streamed run.

The registry's plain scenarios each run one :class:`~repro.experiments.
sweepspec.SweepSpec`. A :class:`~repro.experiments.sweepspec.
CompositeSweep` chains several of them into a single invocation sharing
the persistent worker pool and the simulation cache — the natural demo
for the executor's cache round-trip: the first sub-sweep's worker
results merge into the parent as cells land, and the next sub-sweep's
dispatch broadcasts the parent's warm entries back out to the (by then
stale) persistent workers, each selected by that sub-sweep's own
``warm_prefix``.

``figure12+figure13`` is the registered composite: both DDR and HBM
per-scheme speedup sweeps in one streamed run, with per-spec result
sections. Run it via ``repro experiments figure12+figure13`` (add
``--jobs N`` for the pool, ``--out``/``--stream`` for incremental
rows — each row carries a ``"spec"`` column naming its section).
"""

from __future__ import annotations

from repro.experiments import figure12, figure13
from repro.experiments.sweepspec import CompositeSweep, register_scenario

#: Registry name of the chained Figure 12 + Figure 13 run.
FIGURE12_FIGURE13 = "figure12+figure13"


def figure12_figure13_sweep(batch_rows: int = 1) -> CompositeSweep:
    """Figures 12 and 13 as one chained, pool-sharing streamed sweep."""
    return CompositeSweep(
        FIGURE12_FIGURE13,
        (
            figure12.sweep_spec(batch_rows=batch_rows),
            figure13.sweep_spec(batch_rows=batch_rows),
        ),
        title="Figures 12+13 (DDR then HBM): speedup vs uncompressed BF16",
    )


def run(batch_rows: int = 1, jobs: int = 1):
    """Regenerate Figures 12 and 13 in one chained run.

    Returns a :class:`~repro.experiments.sweepspec.CompositeResult`
    whose ``figure12`` / ``figure13`` sections are bit-identical to the
    standalone ``figure12.run()`` / ``figure13.run()`` outputs.
    """
    return figure12_figure13_sweep(batch_rows=batch_rows).run(jobs=jobs)


register_scenario(
    FIGURE12_FIGURE13,
    "figures 12+13 chained in one streamed run (shared pool and caches)",
    figure12_figure13_sweep,
)
