"""Sensitivity analysis of the model's calibration constants.

The simulator carries three fitted constants (DESIGN.md §5): the DRAM
efficiency, the software demand-load cap, and the DECA loader fill
latency. This experiment perturbs each by ±20% and reports the effect on
the two headline metrics — the max DECA-over-software speedup on HBM
(Figure 13) and the Q8_5% TEPL interval — demonstrating the conclusions
are not knife-edge artifacts of the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.schemes import parse_scheme
from repro.deca.integration import deca_kernel_timing
from repro.experiments.report import Table
from repro.experiments.sweepspec import SweepSpec, register_scenario
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim import pipeline
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import hbm_system

_PERTURBATIONS: Tuple[float, ...] = (0.8, 1.0, 1.2)

_CONSTANTS: Tuple[str, ...] = (
    "DRAM efficiency", "SW demand-load cap", "loader fill latency"
)


@dataclass(frozen=True)
class SensitivityRow:
    """Headline metrics under one perturbed constant."""

    constant: str
    scale: float
    max_deca_over_sw: float


@dataclass(frozen=True)
class SensitivityResult:
    """All perturbations and their headline effects."""

    rows: List[SensitivityRow]

    def format_table(self) -> str:
        table = Table(
            "Sensitivity: calibration constants vs the Figure 13 headline",
            ["constant", "scale", "max DECA/SW"],
        )
        for row in self.rows:
            table.add_row(
                row.constant, f"{row.scale:.0%}", round(row.max_deca_over_sw, 2)
            )
        return table.render()

    def max_headline_shift(self) -> float:
        """Largest relative change of the headline across perturbations."""
        nominal = next(
            row.max_deca_over_sw for row in self.rows if row.scale == 1.0
        )
        return max(
            abs(row.max_deca_over_sw - nominal) / nominal for row in self.rows
        )


def _headline(system, demand_cap_scale: float, loader_scale: float) -> float:
    """Max DECA/SW speedup across three representative schemes."""
    ratios = []
    for name in ("Q4", "Q8_20%", "Q8_5%"):
        scheme = parse_scheme(name)
        sw_timing = software_kernel_timing(system, scheme)
        sw_timing = replace(
            sw_timing,
            demand_load_cap=(sw_timing.demand_load_cap or 0) * demand_cap_scale
            or None,
        )
        deca_timing = deca_kernel_timing(system, scheme)
        deca_timing = replace(
            deca_timing,
            loader_latency_cycles=(
                deca_timing.loader_latency_cycles * loader_scale
            ),
        )
        sw = simulate_tile_stream(system, sw_timing)
        dc = simulate_tile_stream(system, deca_timing)
        ratios.append(
            sw.steady_interval_cycles / dc.steady_interval_cycles
        )
    return max(ratios)


def _perturbation_task(task: Tuple[str, float]) -> SensitivityRow:
    """Evaluate one (constant, scale) perturbation.

    Module-level so the parallel executor can pickle it. Each task is
    self-contained: the DRAM-efficiency patch happens *inside* the task
    (and is restored before returning), so a forked worker perturbs its
    own copy of the module constant without racing its siblings — and
    the cache key's ``extra`` slot keeps perturbed entries distinct.
    """
    constant, scale = task
    system = hbm_system()
    if constant == "DRAM efficiency":
        nominal_eff = pipeline.DRAM_EFFICIENCY
        pipeline.DRAM_EFFICIENCY = min(1.0, nominal_eff * scale)
        try:
            headline = _headline(system, 1.0, 1.0)
        finally:
            pipeline.DRAM_EFFICIENCY = nominal_eff
    elif constant == "SW demand-load cap":
        headline = _headline(system, scale, 1.0)
    else:
        headline = _headline(system, 1.0, scale)
    return SensitivityRow(constant, scale, headline)


def sweep_spec() -> SweepSpec:
    """The nine (constant, scale) perturbations as a declarative spec."""
    return SweepSpec(
        name="sensitivity",
        title="calibration-constant sensitivity of the Figure 13 headline",
        axes={"constant": _CONSTANTS, "scale": _PERTURBATIONS},
        task=_perturbation_task,
        make_cell=lambda coords: (coords["constant"], coords["scale"]),
        reduce=SensitivityResult,
        format_result=lambda result: result.format_table(),
    )


def run(jobs: Optional[int] = 1) -> SensitivityResult:
    """Perturb each calibration constant by ±20%.

    ``jobs > 1`` streams the nine perturbations across forked workers
    (bit-identical to the serial run).
    """
    return sweep_spec().run(jobs=jobs)


register_scenario(
    "sensitivity",
    "±20% calibration-constant perturbations vs the headline speedup",
    sweep_spec,
)
