"""Shared compressed-GeMM speedup harness for Figures 12, 13 and 15."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.roofline import Roofline
from repro.core.schemes import CompressionScheme, PAPER_SCHEMES, UNCOMPRESSED
from repro.deca.config import DecaConfig
from repro.deca.integration import DecaIntegration, deca_kernel_timing
from repro.kernels.avx import AvxVariant
from repro.experiments.parallel import parallel_map
from repro.kernels.libxsmm import (
    software_kernel_timing,
    uncompressed_kernel_timing,
)
from repro.sim.pipeline import SimResult, simulate_tile_stream
from repro.sim.system import SimSystem


@dataclass(frozen=True)
class SchemeSpeedup:
    """Speedups of one scheme over the uncompressed BF16 baseline."""

    scheme: CompressionScheme
    software: float
    deca: float
    optimal: float

    @property
    def deca_over_software(self) -> float:
        """How much faster DECA is than the software kernel."""
        return self.deca / self.software


def baseline_result(system: SimSystem, tiles: int = 600) -> SimResult:
    """Simulate the uncompressed BF16 baseline."""
    return simulate_tile_stream(
        system, uncompressed_kernel_timing(system), tiles=tiles
    )


def scheme_speedup(
    system: SimSystem,
    scheme: CompressionScheme,
    baseline: SimResult,
    batch_rows: int = 1,
    deca_config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
    avx_variant: AvxVariant = AvxVariant.BASELINE,
    tiles: int = 600,
) -> SchemeSpeedup:
    """Software / DECA / roofline-optimal speedups for one scheme.

    "Optimal" follows the paper: the traditional roofline bound at the
    scheme's arithmetic intensity, i.e. all decompression overheads hidden
    (Section 9.1).
    """
    software = simulate_tile_stream(
        system, software_kernel_timing(system, scheme, variant=avx_variant),
        tiles=tiles,
    )
    deca = simulate_tile_stream(
        system,
        deca_kernel_timing(
            system, scheme, config=deca_config, integration=integration
        ),
        tiles=tiles,
    )
    roofline = Roofline(system.machine, batch_rows)
    optimal_flops = roofline.attainable_flops(scheme.traditional_ai(batch_rows))
    baseline_flops_optimal = roofline.attainable_flops(
        UNCOMPRESSED.traditional_ai(batch_rows)
    )
    base_interval = baseline.steady_interval_cycles
    return SchemeSpeedup(
        scheme=scheme,
        software=base_interval / software.steady_interval_cycles,
        deca=base_interval / deca.steady_interval_cycles,
        optimal=optimal_flops / baseline_flops_optimal,
    )


def _scheme_speedup_task(task) -> SchemeSpeedup:
    """Module-level cell body so the parallel executor can pickle it."""
    (system, scheme, baseline, batch_rows, deca_config, integration,
     tiles) = task
    return scheme_speedup(
        system,
        scheme,
        baseline,
        batch_rows=batch_rows,
        deca_config=deca_config,
        integration=integration,
        tiles=tiles,
    )


def sweep_speedups(
    system: SimSystem,
    schemes: Sequence[CompressionScheme] = PAPER_SCHEMES,
    batch_rows: int = 1,
    deca_config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
    tiles: int = 600,
    jobs: Optional[int] = 1,
) -> List[SchemeSpeedup]:
    """Speedups for a list of schemes (Figures 12/13's x axis).

    The shared baseline is simulated once up front and embedded in each
    task (workers also inherit its cache entry through the fork, so it
    is never re-simulated); the per-scheme cells then fan out across
    ``jobs`` workers via :mod:`repro.experiments.parallel`. ``jobs=1``
    is the bit-identical serial path.
    """
    baseline = baseline_result(system, tiles=tiles)
    tasks = [
        (system, scheme, baseline, batch_rows, deca_config, integration,
         tiles)
        for scheme in schemes
    ]
    return parallel_map(_scheme_speedup_task, tasks, jobs=jobs)
