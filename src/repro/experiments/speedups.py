"""Shared compressed-GeMM speedup harness for Figures 12, 13 and 15.

The per-scheme sweep is declared once as a
:class:`repro.experiments.sweepspec.SweepSpec` (:func:`speedup_spec`)
with a single ``scheme`` axis; ``sweep_speedups`` is its buffered entry
point, and the figure modules re-parameterize the same spec with their
own system, name, and reducer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.roofline import Roofline
from repro.core.schemes import CompressionScheme, PAPER_SCHEMES, UNCOMPRESSED
from repro.deca.config import DecaConfig
from repro.deca.integration import DecaIntegration, deca_kernel_timing
from repro.kernels.avx import AvxVariant
from repro.experiments.sweepspec import (
    CellResult,
    SweepSpec,
    batchable,
    register_scenario,
)
from repro.kernels.libxsmm import (
    software_kernel_timing,
    uncompressed_kernel_timing,
)
from repro.sim.pipeline import SimResult, simulate_tile_stream
from repro.sim.system import SimSystem, hbm_system


@dataclass(frozen=True)
class SchemeSpeedup:
    """Speedups of one scheme over the uncompressed BF16 baseline."""

    scheme: CompressionScheme
    software: float
    deca: float
    optimal: float

    @property
    def deca_over_software(self) -> float:
        """How much faster DECA is than the software kernel."""
        return self.deca / self.software


def baseline_result(system: SimSystem, tiles: int = 600) -> SimResult:
    """Simulate the uncompressed BF16 baseline."""
    return simulate_tile_stream(
        system, uncompressed_kernel_timing(system), tiles=tiles
    )


def scheme_speedup(
    system: SimSystem,
    scheme: CompressionScheme,
    baseline: SimResult,
    batch_rows: int = 1,
    deca_config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
    avx_variant: AvxVariant = AvxVariant.BASELINE,
    tiles: int = 600,
) -> SchemeSpeedup:
    """Software / DECA / roofline-optimal speedups for one scheme.

    "Optimal" follows the paper: the traditional roofline bound at the
    scheme's arithmetic intensity, i.e. all decompression overheads hidden
    (Section 9.1).
    """
    software = simulate_tile_stream(
        system, software_kernel_timing(system, scheme, variant=avx_variant),
        tiles=tiles,
    )
    deca = simulate_tile_stream(
        system,
        deca_kernel_timing(
            system, scheme, config=deca_config, integration=integration
        ),
        tiles=tiles,
    )
    roofline = Roofline(system.machine, batch_rows)
    optimal_flops = roofline.attainable_flops(scheme.traditional_ai(batch_rows))
    baseline_flops_optimal = roofline.attainable_flops(
        UNCOMPRESSED.traditional_ai(batch_rows)
    )
    base_interval = baseline.steady_interval_cycles
    return SchemeSpeedup(
        scheme=scheme,
        software=base_interval / software.steady_interval_cycles,
        deca=base_interval / deca.steady_interval_cycles,
        optimal=optimal_flops / baseline_flops_optimal,
    )


def _scheme_speedup_task(task) -> SchemeSpeedup:
    """Module-level cell body so the parallel executor can pickle it."""
    (system, scheme, baseline, batch_rows, deca_config, integration,
     tiles) = task
    return scheme_speedup(
        system,
        scheme,
        baseline,
        batch_rows=batch_rows,
        deca_config=deca_config,
        integration=integration,
        tiles=tiles,
    )


def _speedup_cell_sims(task):
    """The cached simulations one speedup cell will request, for batching.

    Each cell simulates the software kernel and the DECA kernel for its
    scheme (the baseline is simulated once at spec build time and rides
    along inside the cell payload, so it never re-enters the cache from
    here). The timing construction mirrors :func:`scheme_speedup`
    exactly so the batched stack lands under the keys the task looks up.
    """
    (system, scheme, _baseline, _batch_rows, deca_config, integration,
     tiles) = task
    return (
        (system, software_kernel_timing(system, scheme), tiles),
        (
            system,
            deca_kernel_timing(
                system, scheme, config=deca_config, integration=integration
            ),
            tiles,
        ),
    )


def speedup_rows(cell: CellResult) -> Tuple[Dict[str, Any], ...]:
    """Emission rows for one speedup cell: flat per-scheme ratios."""
    speedup = cell.value
    return ({
        "scheme": speedup.scheme.name,
        "software": speedup.software,
        "deca": speedup.deca,
        "optimal": speedup.optimal,
        "deca_over_software": speedup.deca_over_software,
    },)


def speedup_spec(
    system: SimSystem,
    schemes: Sequence[CompressionScheme] = PAPER_SCHEMES,
    batch_rows: int = 1,
    deca_config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
    tiles: int = 600,
    name: str = "speedups",
    title: str = "per-scheme speedups vs uncompressed BF16",
    reduce: Optional[Callable[[List[SchemeSpeedup]], Any]] = None,
    format_result: Optional[Callable[[Any], str]] = None,
) -> SweepSpec:
    """The per-scheme speedup sweep as a declarative spec.

    The shared baseline is simulated once, at spec build time, and
    embedded in every cell payload (workers also inherit its cache
    entry through the fork, so it is never re-simulated). The figure
    modules re-parameterize ``name``/``reduce``/``format_result`` to
    wrap the same cells in their own result types.
    """
    baseline = baseline_result(system, tiles=tiles)

    def make_cell(coords: Dict[str, Any]):
        return (
            system, coords["scheme"], baseline, batch_rows, deca_config,
            integration, tiles,
        )

    return SweepSpec(
        name=name,
        title=title,
        axes={"scheme": tuple(schemes)},
        task=_scheme_speedup_task,
        make_cell=make_cell,
        reduce=reduce,
        rows=speedup_rows,
        format_result=format_result,
        # Every cell simulates on this system: the warm-start broadcast
        # ships only the parent entries keyed by it.
        warm_prefix=(system,),
        batchable=batchable(_speedup_cell_sims),
    )


def sweep_speedups(
    system: SimSystem,
    schemes: Sequence[CompressionScheme] = PAPER_SCHEMES,
    batch_rows: int = 1,
    deca_config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
    tiles: int = 600,
    jobs: Optional[int] = 1,
    batch: Optional[bool] = None,
) -> List[SchemeSpeedup]:
    """Speedups for a list of schemes (Figures 12/13's x axis).

    The buffered front door over :func:`speedup_spec`: the per-scheme
    cells stream across ``jobs`` workers (cache deltas merged as each
    lands); ``jobs=1`` is the bit-identical serial path. ``batch``
    overrides the cross-cell batching default.
    """
    return speedup_spec(
        system, schemes=schemes, batch_rows=batch_rows,
        deca_config=deca_config, integration=integration, tiles=tiles,
    ).run(jobs=jobs, batch=batch)


def _speedup_table(speedups: List[SchemeSpeedup]) -> str:
    """Plain table for the standalone ``speedups`` scenario."""
    from repro.experiments.report import Table

    table = Table(
        "Speedups vs uncompressed BF16 (HBM, N=1)",
        ["scheme", "software", "DECA", "optimal", "DECA/SW"],
    )
    for row in speedups:
        table.add_row(
            row.scheme.name,
            round(row.software, 2),
            round(row.deca, 2),
            round(row.optimal, 2),
            round(row.deca_over_software, 2),
        )
    return table.render()


register_scenario(
    "speedups",
    "per-scheme software/DECA/optimal speedups on the HBM machine",
    lambda: speedup_spec(hbm_system(), format_result=_speedup_table),
)
