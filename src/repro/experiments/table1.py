"""Table 1: FC-GeMM fraction of the next-token time (Llama2-70B)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.paper_reference import TABLE1_FRACTIONS
from repro.experiments.report import Table
from repro.llm.inference import EngineKind, next_token_latency
from repro.llm.models import llama2_70b
from repro.sim.system import ddr_system, hbm_system


@dataclass(frozen=True)
class Table1Result:
    """GeMM-time fractions keyed by (memory, input_tokens, batch)."""

    fractions: Dict[Tuple[str, int, int], float]

    def format_table(self) -> str:
        """Side-by-side comparison with the paper's Table 1."""
        table = Table(
            "Table 1: FC-GeMM fraction of next-token time (Llama2-70B, %)",
            ["memory", "tokens", "batch", "reproduced", "paper"],
        )
        for key in sorted(self.fractions):
            memory, tokens, batch = key
            table.add_row(
                memory,
                tokens,
                batch,
                round(self.fractions[key] * 100, 1),
                TABLE1_FRACTIONS.get(key, float("nan")),
            )
        return table.render()


def run(
    batches: Tuple[int, ...] = (1, 4, 16),
    token_counts: Tuple[int, ...] = (32, 128),
) -> Table1Result:
    """Regenerate Table 1 for both memory systems."""
    model = llama2_70b()
    fractions: Dict[Tuple[str, int, int], float] = {}
    for memory, system in (("DDR", ddr_system()), ("HBM", hbm_system())):
        for tokens in token_counts:
            for batch in batches:
                breakdown = next_token_latency(
                    model,
                    system,
                    engine=EngineKind.UNCOMPRESSED,
                    batch=batch,
                    input_tokens=tokens,
                )
                fractions[(memory, tokens, batch)] = breakdown.gemm_fraction
    return Table1Result(fractions)
