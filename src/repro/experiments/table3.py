"""Table 3: component utilisation for Q8 at several densities (HBM, N=1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.schemes import CompressionScheme
from repro.deca.integration import deca_kernel_timing
from repro.experiments.paper_reference import TABLE3_UTILIZATION
from repro.experiments.report import Table
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.stats import UtilizationReport
from repro.sim.system import hbm_system

DENSITIES: Tuple[int, ...] = (100, 50, 20, 5)


@dataclass(frozen=True)
class Table3Result:
    """Utilisation reports keyed by (density percent, engine)."""

    reports: Dict[Tuple[int, str], UtilizationReport]

    def format_table(self) -> str:
        table = Table(
            "Table 3: component utilisation, Q8, N=1, HBM "
            "(reproduced | paper)",
            ["density", "engine", "MEM", "TMUL", "AVX/DECA"],
        )
        for (density, engine), report in sorted(
            self.reports.items(), key=lambda kv: (kv[0][1], -kv[0][0])
        ):
            paper = TABLE3_UTILIZATION.get((density, engine), {})
            pct = report.as_percentages()
            table.add_row(
                f"{density}%",
                engine,
                f"{pct['MEM']} | {paper.get('MEM', '?')}",
                f"{pct['TMUL']} | {paper.get('TMUL', '?')}",
                f"{pct['DEC']} | {paper.get('DEC', '?')}",
            )
        return table.render()


def run(densities: Tuple[int, ...] = DENSITIES) -> Table3Result:
    """Regenerate Table 3."""
    system = hbm_system()
    reports: Dict[Tuple[int, str], UtilizationReport] = {}
    for density in densities:
        scheme = CompressionScheme("bf8", density / 100.0)
        sw = simulate_tile_stream(
            system, software_kernel_timing(system, scheme)
        )
        dc = simulate_tile_stream(system, deca_kernel_timing(system, scheme))
        reports[(density, "software")] = sw.utilization
        reports[(density, "deca")] = dc.utilization
    return Table3Result(reports)
