"""The declarative sweep engine: ``SweepSpec`` + the scenario registry.

Before this module existed, every experiment harness hand-rolled the
same three steps: enumerate a cartesian product of configurations,
dispatch the cells (serially or through the process pool), and fold the
ordered results into a table object. A :class:`SweepSpec` names those
steps declaratively —

* **axes** — named, ordered value lists whose cartesian product (in
  axis declaration order, optionally pruned) is the cell grid;
* **task** — a picklable module-level callable run once per cell (in
  the parent for ``jobs=1``, in forked pool workers otherwise);
* **reduce** — a function from the ordered result list to the sweep's
  final output (a figure result, a record list, …);

— plus optional hooks for building per-cell payloads (``make_cell``),
flattening results into emission rows (``rows``), and rendering the
reduced output (``format_result``).

Running a spec streams: :meth:`SweepSpec.stream` yields one
:class:`CellResult` per cell *in index order, as results land* (workers
join incrementally through :func:`repro.experiments.parallel.stream_map`
— there is no barrier), so consumers can emit JSONL/CSV rows, update
progress, or stop early while later cells are still computing.
:meth:`SweepSpec.run` is the buffered wrapper every pre-existing entry
point keeps using: drain the stream, reduce, return — bit-identical to
the old hand-rolled loops.

The scenario registry
---------------------

Modules register their default-parameterized specs as *scenarios*
(:func:`register_scenario`): a name, a one-line summary, and a
zero-argument spec builder. ``repro experiments --list`` enumerates the
registry, and any registered name can be run (and streamed) by the CLI
without a dedicated module — a new workload is one spec definition.
Builders run lazily: listing scenarios never simulates anything.

Incremental emission
--------------------

:func:`open_emitter` returns a line-buffered JSONL or CSV writer
(chosen by file suffix); each :meth:`CellResult` flattens through the
spec's ``rows`` hook into plain dicts, and every row is flushed as it
is written — a consumer tailing the file sees results while the sweep
is still running.
"""

from __future__ import annotations

import csv
import dataclasses
import itertools
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError
from repro.experiments.parallel import stream_map

#: A progress callback: called as ``progress(completed, total)`` after
#: each cell finishes (completion order, not index order).
ProgressCallback = Callable[[int, int], None]


def _json_scalar(value: Any) -> Any:
    """Coerce one row value into something JSON/CSV can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return str(value)


@dataclass(frozen=True)
class CellResult:
    """One streamed cell: its index, axis coordinates, and result."""

    index: int
    coords: Mapping[str, Any]
    value: Any

    def coord_labels(self) -> Dict[str, Any]:
        """The coordinates as row-friendly scalars (names over reprs)."""
        return {name: _json_scalar(value) for name, value in self.coords.items()}


# ---------------------------------------------------------------------
# Cross-cell batching
# ---------------------------------------------------------------------

_BATCHING_ENABLED = True


def set_batching_enabled(enabled: bool) -> bool:
    """Flip the process-wide batching default; returns the previous value."""
    global _BATCHING_ENABLED
    previous = _BATCHING_ENABLED
    _BATCHING_ENABLED = bool(enabled)
    return previous


def batching_enabled(override: Optional[bool] = None) -> bool:
    """Whether batched sweep execution is active.

    Precedence: an explicit ``override`` (a ``batch=`` argument) wins;
    else the ``REPRO_NO_BATCH`` environment escape (any value other
    than empty or ``"0"`` disables batching, mirroring the
    ``FORCE_REFERENCE_ENGINE``-style escapes); else the process-wide
    flag set by :func:`set_batching_enabled`.
    """
    if override is not None:
        return bool(override)
    env = os.environ.get("REPRO_NO_BATCH", "")
    if env and env != "0":
        return False
    return _BATCHING_ENABLED


@dataclass(frozen=True)
class BatchRule:
    """How a spec's cells map onto batchable tile-stream simulations.

    ``sims(payload)`` returns the ``(system, timing, tiles)`` triples
    the cell's task will request through the cached simulation front
    door. The batched executor collects the triples across cells,
    stacks shape-compatible ones through
    :func:`repro.sim.pipeline.simulate_tile_stream_batch` (which fans
    the results into the cache under each cell's own key), and then
    runs the tasks unchanged — every task's own lookup is a warm hit,
    so results are bit-identical to the unbatched sweep. A cell whose
    simulations cannot be pre-seeded (e.g. one that bypasses the
    cache) returns ``()`` and simply computes inside its task.
    """

    sims: Callable[[Any], Tuple[Tuple[Any, Any, int], ...]]


def batchable(
    sims: Callable[[Any], Tuple[Tuple[Any, Any, int], ...]]
) -> BatchRule:
    """Annotate a spec with its cell → simulations mapping."""
    return BatchRule(sims=sims)


def _run_batched_group(payload):
    """Pool task for one cell chunk: seed the stack, then run the cells.

    Runs inside a forked worker (or in-parent under the serial
    degradation contract): the chunk's simulations are stacked into the
    worker's cache first, then the per-cell tasks run against that warm
    cache. The worker's cache delta ships back to the parent exactly
    like any other pool task's.
    """
    task, sims, chunk = payload
    if sims:
        from repro.sim.pipeline import simulate_tile_stream_batch

        simulate_tile_stream_batch(sims, resolve_cached=False)
    return [task(cell) for cell in chunk]


def _prefetch_key_list(
    sims_per_cell: List[Tuple[Tuple[Any, Any, int], ...]]
) -> List[Any]:
    """Deduped ``simulation_key``s of a grid's simulations, dispatch order.

    Feeds :func:`repro.experiments.parallel.stream_map`'s pipelined
    prefetch broadcast: each ``(system, timing, tiles)`` triple a
    batchable spec declares maps to the exact cache key its cell will
    look up (``tile_stream_key``), so workers can warm those entries
    from the disk tier ahead of the task that needs them. Order follows
    the grid so the prefix a worker warms synchronously matches the
    first cells dispatched.
    """
    from repro.sim.pipeline import tile_stream_key

    keys: List[Any] = []
    seen: set = set()
    for sims in sims_per_cell:
        for system, timing, tiles in sims:
            key = tile_stream_key(system, timing, tiles)
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


def _default_rows(cell: CellResult) -> Iterable[Dict[str, Any]]:
    """One flat dict per cell: axis labels + the result's scalar fields."""
    row = cell.coord_labels()
    value = cell.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for f in dataclasses.fields(value):
            if f.name not in row:
                row[f.name] = _json_scalar(getattr(value, f.name))
    else:
        row["value"] = _json_scalar(value)
    return (row,)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: named axes, a per-cell task, a reducer.

    ``axes`` maps axis names to value sequences; the cell grid is their
    cartesian product in declaration order (rightmost axis fastest —
    exactly the nested-loop order the hand-rolled sweeps used), with
    ``keep`` (if given) filtering coordinates out of the grid before
    any work is dispatched.

    ``task`` runs once per cell and must be a module-level picklable
    callable; its argument is the cell payload — the coordinate dict
    itself, unless ``make_cell`` maps coordinates to a custom payload
    (``make_cell`` runs in the parent and may close over unpicklable
    context only if the *payload* stays picklable).

    ``reduce`` folds the ordered result list into the sweep's output
    (default: the list itself). ``rows`` flattens one
    :class:`CellResult` into emission rows (default: axis labels +
    dataclass fields). ``format_result`` renders the reduced output for
    the CLI (default: ``str``).
    """

    name: str
    axes: "OrderedDict[str, Tuple[Any, ...]]"
    task: Callable[[Any], Any]
    title: str = ""
    make_cell: Optional[Callable[[Dict[str, Any]], Any]] = None
    keep: Optional[Callable[[Dict[str, Any]], bool]] = None
    reduce: Optional[Callable[[List[Any]], Any]] = None
    rows: Optional[Callable[[CellResult], Iterable[Dict[str, Any]]]] = None
    format_result: Optional[Callable[[Any], str]] = None
    #: ``simulation_key`` prefix naming which parent cache entries are
    #: relevant to this sweep (e.g. ``(system,)``) — drives the
    #: warm-start broadcast to persistent workers; ``None`` ships the
    #: most-recently-used entries regardless of key.
    warm_prefix: Optional[Tuple[Any, ...]] = None
    #: Cell → simulations mapping (see :func:`batchable`); ``None``
    #: means the spec always runs per cell.
    batchable: Optional[BatchRule] = None

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigurationError(
                f"sweep spec {self.name!r} needs at least one axis"
            )
        normalized = OrderedDict(
            (name, tuple(values)) for name, values in self.axes.items()
        )
        for name, values in normalized.items():
            if not values:
                raise ConfigurationError(
                    f"sweep spec {self.name!r}: axis {name!r} has no values"
                )
        object.__setattr__(self, "axes", normalized)

    # -- the grid ------------------------------------------------------

    def coords(self) -> List[Dict[str, Any]]:
        """Every cell's axis-value dict, in grid (index) order."""
        names = list(self.axes)
        grid = [
            dict(zip(names, combo))
            for combo in itertools.product(*self.axes.values())
        ]
        if self.keep is not None:
            grid = [c for c in grid if self.keep(c)]
        return grid

    def cells(
        self, coords: Optional[List[Dict[str, Any]]] = None
    ) -> List[Any]:
        """The per-cell task payloads, in grid order.

        ``coords`` (if given) must be this spec's :meth:`coords` list —
        callers that already enumerated the grid pass it to avoid
        rebuilding the product.
        """
        if coords is None:
            coords = self.coords()
        if self.make_cell is None:
            return coords
        return [self.make_cell(c) for c in coords]

    @property
    def cell_count(self) -> int:
        """Number of cells in the (pruned) grid."""
        return len(self.coords())

    def describe_axes(self) -> str:
        """``"system×2 · scheme×8 · engine×2"`` — the grid's shape."""
        return " · ".join(
            f"{name}×{len(values)}" for name, values in self.axes.items()
        )

    # -- execution -----------------------------------------------------

    def stream(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[ProgressCallback] = None,
        batch: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> Iterator[CellResult]:
        """Yield one :class:`CellResult` per cell, in index order.

        Results stream as they complete — with ``jobs > 1`` through the
        incremental worker join in
        :mod:`repro.experiments.parallel`, with ``jobs=1`` straight
        from the serial loop. Closing the iterator early cancels
        outstanding dispatch (see the executor's cancellation
        contract). ``deadline`` (a :func:`time.monotonic` timestamp)
        passes through to the executor's deadline seam: an expired
        sweep stops dispatching within one cell and raises
        :class:`repro.errors.DeadlineExceededError`.

        Specs carrying a :func:`batchable` annotation route through the
        cross-cell batched executor when batching is active (``batch``
        overrides :func:`batching_enabled`): compatible cells' stacks
        are simulated in bulk and the per-cell tasks then run against
        the warm cache — results, ordering, and emission are
        bit-identical to the per-cell path.
        """
        coords = self.coords()
        cells = self.cells(coords)
        sims_per_cell = None
        if self.batchable is not None:
            sims_per_cell = [
                tuple(self.batchable.sims(cell)) for cell in cells
            ]
        if (
            sims_per_cell is not None
            and len(cells) > 1
            and batching_enabled(batch)
            and any(sims_per_cell)
        ):
            yield from self._stream_batched(
                coords, cells, sims_per_cell, jobs, progress,
                deadline=deadline,
            )
            return
        # Even when batching is off, a batchable annotation still tells
        # us which simulation keys the cells are about to look up — the
        # pipelined prefetch broadcast warms workers from the disk tier
        # ahead of them (a no-op without a disk tier or under
        # REPRO_NO_PREFETCH).
        prefetch = (
            _prefetch_key_list(sims_per_cell) if sims_per_cell else None
        )
        for index, value in stream_map(
            self.task, cells, jobs=jobs, progress=progress,
            warm_prefix=self.warm_prefix, deadline=deadline,
            prefetch_keys=prefetch,
        ):
            yield CellResult(index=index, coords=coords[index], value=value)

    def _stream_batched(
        self,
        coords: List[Dict[str, Any]],
        cells: List[Any],
        sims_per_cell: List[Tuple[Tuple[Any, Any, int], ...]],
        jobs: Optional[int],
        progress: Optional[ProgressCallback],
        deadline: Optional[float] = None,
    ) -> Iterator[CellResult]:
        """The batched executor behind :meth:`stream`.

        Serial (resolved ``jobs <= 1``): one in-parent stack over every
        cell's simulations seeds the cache, then the plain serial
        stream runs — per-cell streaming order and emission unchanged.
        Parallel: the grid splits into one contiguous chunk per worker,
        each dispatched as a single :func:`_run_batched_group` pool
        task (stack, then cells); chunk results are split back into
        per-cell :class:`CellResult`s in index order.
        """
        from repro.experiments.parallel import resolve_jobs

        total = len(cells)
        n_jobs = resolve_jobs(jobs, total)
        if n_jobs <= 1:
            from repro.sim.pipeline import simulate_tile_stream_batch

            flat = [sim for sims in sims_per_cell for sim in sims]
            if flat:
                simulate_tile_stream_batch(flat, resolve_cached=False)
            for index, value in stream_map(
                self.task, cells, jobs=1, progress=progress,
                warm_prefix=self.warm_prefix, deadline=deadline,
            ):
                yield CellResult(
                    index=index, coords=coords[index], value=value
                )
            return
        payloads = []
        starts = []
        step, remainder = divmod(total, n_jobs)
        start = 0
        for chunk_index in range(n_jobs):
            size = step + (1 if chunk_index < remainder else 0)
            chunk = cells[start:start + size]
            sims = [
                sim
                for per_cell in sims_per_cell[start:start + size]
                for sim in per_cell
            ]
            payloads.append((self.task, sims, chunk))
            starts.append(start)
            start += size
        completed = 0
        for chunk_index, values in stream_map(
            _run_batched_group, payloads, jobs=n_jobs,
            warm_prefix=self.warm_prefix, deadline=deadline,
            prefetch_keys=_prefetch_key_list(sims_per_cell),
        ):
            base = starts[chunk_index]
            for offset, value in enumerate(values):
                index = base + offset
                yield CellResult(
                    index=index, coords=coords[index], value=value
                )
            completed += len(values)
            if progress is not None:
                progress(completed, total)

    def run(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[ProgressCallback] = None,
        batch: Optional[bool] = None,
    ) -> Any:
        """Drain the stream and reduce — the buffered entry-point path."""
        results = [
            cell.value for cell in self.stream(jobs, progress, batch=batch)
        ]
        return self.reduced(results)

    def reduced(self, results: List[Any]) -> Any:
        """Apply the spec's reducer to an ordered result list."""
        if self.reduce is None:
            return results
        return self.reduce(results)

    # -- presentation --------------------------------------------------

    def rows_for(self, cell: CellResult) -> Iterable[Dict[str, Any]]:
        """Flatten one streamed cell into emission rows."""
        if self.rows is not None:
            return self.rows(cell)
        return _default_rows(cell)

    def render(self, output: Any) -> str:
        """Render the reduced output for terminal display."""
        if self.format_result is not None:
            return self.format_result(output)
        if hasattr(output, "format_table"):
            return output.format_table()
        return str(output)


# ---------------------------------------------------------------------
# Composite sweeps
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class CompositeResult:
    """The reduced output of a :class:`CompositeSweep`: named sections."""

    sections: Tuple[Tuple[str, Any], ...]

    def section(self, name: str) -> Any:
        """The reduced output of the sub-sweep registered as ``name``."""
        for section_name, value in self.sections:
            if section_name == name:
                return value
        raise ConfigurationError(
            f"composite result has no section {name!r}; sections: "
            f"{', '.join(name for name, _ in self.sections)}"
        )


class CompositeSweep:
    """Several :class:`SweepSpec` runs chained into one streamed sweep.

    The sub-specs execute back-to-back in declaration order through one
    invocation: they share the persistent worker pool, the simulation
    cache (worker deltas merged after each cell, warm entries broadcast
    back out at each sub-sweep's dispatch — each with its own
    ``warm_prefix``), and the output stream. Cells are re-indexed
    globally and their coordinates gain a ``"spec"`` axis naming the
    sub-sweep, so emitted rows from different sections stay
    distinguishable in one JSONL/CSV file.

    Duck-types the :class:`SweepSpec` surface the CLI and
    :func:`stream_to_emitter` use (``stream`` / ``rows_for`` /
    ``reduced`` / ``run`` / ``render`` / ``cell_count``), reducing to a
    :class:`CompositeResult` of per-spec sections.

    After a run, :attr:`executions` holds one ``(spec_name,
    SweepExecution)`` pair per sub-sweep — the cache-traffic evidence
    (worker hits vs misses, broadcast sizes) the warm-worker benchmark
    anchors read.
    """

    def __init__(
        self, name: str, specs: Sequence[SweepSpec], title: str = ""
    ) -> None:
        if not specs:
            raise ConfigurationError(
                f"composite sweep {name!r} needs at least one spec"
            )
        self.name = name
        self.title = title or name
        self.specs = tuple(specs)
        #: ``(spec_name, SweepExecution)`` per sub-sweep of the last run.
        self.executions: List[Tuple[str, Any]] = []

    @property
    def cell_count(self) -> int:
        """Total cells across every sub-sweep."""
        return sum(spec.cell_count for spec in self.specs)

    def describe_axes(self) -> str:
        """Per-section grid shapes, ``figure12[scheme×8] + …``."""
        return " + ".join(
            f"{spec.name}[{spec.describe_axes()}]" for spec in self.specs
        )

    def stream(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[ProgressCallback] = None,
        batch: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> Iterator[CellResult]:
        """Yield every sub-sweep's cells in order, globally re-indexed."""
        from repro.experiments.parallel import last_sweep_execution

        self.executions = []
        offset = 0
        total = self.cell_count
        for spec in self.specs:
            base = offset
            sub_progress = None
            if progress is not None:
                def sub_progress(done: int, _sub_total: int, _base=base):
                    progress(_base + done, total)
            for cell in spec.stream(
                jobs=jobs, progress=sub_progress, batch=batch,
                deadline=deadline,
            ):
                yield CellResult(
                    index=base + cell.index,
                    coords={"spec": spec.name, **cell.coords},
                    value=cell.value,
                )
            offset = base + spec.cell_count
            self.executions.append((spec.name, last_sweep_execution()))

    def _owner(self, index: int) -> Tuple[Optional[SweepSpec], int]:
        """The sub-spec owning a global cell index, and its index base.

        Sub-sweeps occupy contiguous global index ranges in declaration
        order, so ownership is derivable — no per-cell state is kept.
        """
        base = 0
        for spec in self.specs:
            count = spec.cell_count
            if index < base + count:
                return spec, base
            base += count
        return None, 0

    def rows_for(self, cell: CellResult) -> Iterable[Dict[str, Any]]:
        """The owning sub-spec's rows, each tagged with its section."""
        spec, base = self._owner(cell.index)
        if spec is None:
            return _default_rows(cell)
        inner = CellResult(
            index=cell.index - base,
            coords={
                name: value
                for name, value in cell.coords.items() if name != "spec"
            },
            value=cell.value,
        )
        return tuple(
            {"spec": spec.name, **row} for row in spec.rows_for(inner)
        )

    def reduced(self, results: List[Any]) -> CompositeResult:
        """Split the ordered results per sub-sweep and reduce each."""
        sections = []
        offset = 0
        for spec in self.specs:
            count = spec.cell_count
            sections.append(
                (spec.name, spec.reduced(results[offset:offset + count]))
            )
            offset += count
        return CompositeResult(sections=tuple(sections))

    def run(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[ProgressCallback] = None,
        batch: Optional[bool] = None,
    ) -> CompositeResult:
        """Drain the chained stream and reduce every section."""
        results = [
            cell.value for cell in self.stream(jobs, progress, batch=batch)
        ]
        return self.reduced(results)

    def render(self, output: CompositeResult) -> str:
        """Every section's rendering, joined with blank lines."""
        parts = []
        for spec, (_name, value) in zip(self.specs, output.sections):
            parts.append(spec.render(value))
        return "\n\n".join(parts)


# ---------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A named, lazily built sweep: what ``experiments --list`` shows."""

    name: str
    summary: str
    build: Callable[[], SweepSpec] = field(repr=False)


_SCENARIOS: "OrderedDict[str, Scenario]" = OrderedDict()


def register_scenario(
    name: str, summary: str, build: Callable[[], SweepSpec]
) -> Scenario:
    """Register a sweep scenario under ``name`` (idempotent re-register).

    ``build`` must be a zero-argument callable returning the scenario's
    default-parameterized :class:`SweepSpec`; it is invoked only when
    the scenario is actually run, never for listing.
    """
    scenario = Scenario(name=name, summary=summary, build=build)
    _SCENARIOS[name] = scenario
    return scenario


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(_SCENARIOS)


def find_scenario(name: str) -> Optional[Scenario]:
    """The scenario registered under ``name``, or ``None``."""
    return _SCENARIOS.get(name)


def get_scenario(name: str) -> Scenario:
    """The scenario registered under ``name`` (raises if unknown)."""
    scenario = _SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown sweep scenario {name!r}; registered: "
            f"{', '.join(_SCENARIOS) or '(none)'}"
        )
    return scenario


def iter_scenarios() -> Tuple[Scenario, ...]:
    """Every registered scenario, in registration order."""
    return tuple(_SCENARIOS.values())


def spec_request_key(spec: Any) -> str:
    """Canonical identity of a sweep request, stable across processes.

    The serving layer coalesces concurrent requests that would perform
    identical work; "identical" is pinned here as the SHA-256 digest of
    the spec's name plus its axes — names and values, in declaration
    order — plus the disk cache's schema fingerprint. Two requests with
    equal keys stream bit-identical rows (axes determine every cell
    payload through the spec's builder), so one may safely subscribe to
    the other's run. The schema fingerprint participates so a daemon
    serving across a result-dataclass change can never hand rows
    computed under the old shapes to a client keyed on the new ones.

    Works for both :class:`SweepSpec` (hashes the axes) and
    :class:`CompositeSweep` (hashes the sub-specs' keys). Axis values
    must be digestible by :func:`repro.sim.diskcache.key_digest` —
    scalars, tuples, and frozen dataclasses, i.e. exactly the value
    shapes sweep axes already use for cache keys.
    """
    from repro.sim.diskcache import key_digest, schema_fingerprint

    axes = getattr(spec, "axes", None)
    if axes is not None:
        signature = tuple((name, values) for name, values in axes.items())
        return key_digest(
            ("sweep-request", schema_fingerprint(), spec.name, signature)
        )
    subs = getattr(spec, "specs", None)
    if subs is not None:
        return key_digest(
            (
                "composite-request",
                schema_fingerprint(),
                spec.name,
                tuple(spec_request_key(sub) for sub in subs),
            )
        )
    raise ConfigurationError(
        f"cannot derive a request key for {type(spec).__name__}: "
        "the object exposes neither axes nor sub-specs"
    )


# ---------------------------------------------------------------------
# Incremental emission
# ---------------------------------------------------------------------


class ResultEmitter:
    """Base class for incremental row writers (one flush per row)."""

    def __init__(self, handle: IO[str]) -> None:
        self._handle = handle
        self.rows_written = 0

    def emit(self, row: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "ResultEmitter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def jsonl_line(row: Mapping[str, Any]) -> str:
    """One row as a JSON line (values coerced to scalars, no newline).

    The single serialization both :class:`JsonlEmitter` and the CLI's
    ``--stream`` stdout path share, so file rows and printed rows can
    never diverge.
    """
    return json.dumps(
        {k: _json_scalar(v) for k, v in row.items()}, sort_keys=False
    )


class JsonlEmitter(ResultEmitter):
    """One JSON object per line, flushed as each row lands."""

    def emit(self, row: Mapping[str, Any]) -> None:
        self._handle.write(jsonl_line(row))
        self._handle.write("\n")
        self._handle.flush()
        self.rows_written += 1


class CsvEmitter(ResultEmitter):
    """CSV with a header from the first row's keys, flushed per row.

    CSV is a single-schema format: every row must carry the keys the
    first row established. A row with different keys (e.g. a second
    scenario sharing the file) raises :class:`ConfigurationError` —
    use JSONL when mixing scenarios in one output file.
    """

    def __init__(self, handle: IO[str]) -> None:
        super().__init__(handle)
        self._writer: Optional[csv.DictWriter] = None

    def emit(self, row: Mapping[str, Any]) -> None:
        coerced = {k: _json_scalar(v) for k, v in row.items()}
        if self._writer is None:
            self._writer = csv.DictWriter(
                self._handle, fieldnames=list(coerced), lineterminator="\n"
            )
            self._writer.writeheader()
        elif set(coerced) != set(self._writer.fieldnames):
            raise ConfigurationError(
                "CSV emission needs one row schema per file: got columns "
                f"{sorted(coerced)} after a header of "
                f"{sorted(self._writer.fieldnames)}; write mixed scenarios "
                "to a .jsonl file instead"
            )
        self._writer.writerow(coerced)
        self._handle.flush()
        self.rows_written += 1


def open_emitter(path: Union[str, "Any"]) -> ResultEmitter:
    """An incremental emitter for ``path``: ``.csv`` → CSV, else JSONL."""
    text = str(path)
    handle = open(text, "w", encoding="utf-8", newline="")
    if text.lower().endswith(".csv"):
        return CsvEmitter(handle)
    return JsonlEmitter(handle)


def stream_to_emitter(
    spec: SweepSpec,
    emitter: Optional[ResultEmitter],
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    on_cell: Optional[Callable[[CellResult], None]] = None,
    batch: Optional[bool] = None,
) -> Any:
    """Stream a spec, emitting rows per cell, and return the reduced output.

    The convenience loop behind the CLI's ``--out``/``--stream`` path:
    every finished cell's rows are written (and flushed) before the
    next cell is awaited, so the output file grows while the sweep is
    still running.
    """
    results: List[Any] = []
    for cell in spec.stream(jobs=jobs, progress=progress, batch=batch):
        results.append(cell.value)
        if emitter is not None:
            for row in spec.rows_for(cell):
                emitter.emit(row)
        if on_cell is not None:
            on_cell(cell)
    return spec.reduced(results)
